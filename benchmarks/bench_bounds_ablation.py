"""Theorem 3.2 / 3.3 ablation: measured substeps and steps vs the bounds.

The paper proves (Thm 3.2) at most k+2 substeps per step when
r(v) ≤ r̄_k(v), and (Thm 3.3) at most ⌈n/ρ⌉(1+⌈log₂ ρL⌉) steps when
|B(v, r(v))| ≥ ρ.  §5.3 then observes the measured step count sits far
below the bound on real graphs.  This bench preprocesses with every
heuristic, runs the solver, and asserts both bounds hold with slack —
plus certifies one configuration per heuristic with the exact
(brute-force) (k,ρ)-graph verifier.
"""

import pytest

from repro.experiments.bounds_check import render_bounds, run_bounds_check
from repro.graphs.generators import grid_2d
from repro.graphs.weights import random_integer_weights
from repro.preprocess import build_kr_graph, verify_kr_graph

pytestmark = pytest.mark.paper_artifact("Theorems 3.2/3.3 (ablation)")


def test_bounds_ablation(benchmark, tiny_scale, report_sink):
    points = benchmark.pedantic(
        run_bounds_check,
        args=(tiny_scale,),
        kwargs=dict(
            datasets=("road-pa", "web-st", "grid2d"),
            ks=(1, 2, 3),
            rhos=(5, 10, 20),
        ),
        rounds=1,
        iterations=1,
    )
    assert points, "ablation must produce configurations"
    for p in points:
        assert p.holds, (
            f"{p.dataset} k={p.k} rho={p.rho} {p.heuristic}: "
            f"substeps {p.worst_substeps}/{p.substep_bound}, "
            f"steps {p.mean_steps}/{p.step_bound}"
        )
    # §5.3's empirical claim: measured steps sit well below the bound.
    slacks = [p.step_slack for p in points]
    assert sum(slacks) / len(slacks) < 0.5
    report_sink.append(("Thm 3.2/3.3 ablation", render_bounds(points)))


@pytest.mark.parametrize("heuristic,k", [("full", 1), ("greedy", 2), ("dp", 3)])
def test_exact_kr_certificate(benchmark, heuristic, k):
    """Brute-force certificate: the preprocessing output is a genuine
    (k,ρ)-graph by Definition 4, not merely bound-satisfying by luck."""
    g = random_integer_weights(grid_2d(7, 7), low=1, high=50, seed=k)
    pre = benchmark.pedantic(
        build_kr_graph,
        args=(g, k, 8),
        kwargs=dict(heuristic=heuristic),
        rounds=1,
        iterations=1,
    )
    assert verify_kr_graph(pre.graph, pre.radii, k, 8).ok
