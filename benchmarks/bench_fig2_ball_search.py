"""Figure 2: the pathological graph where ball search costs Ω(d²) edges.

§4.1 warns that even on a sparse unweighted graph a BFS may scan O(ρ²)
edges to reach ρ vertices, and Figure 2 constructs the witness: a cycle
of bicliques where any source must cross a d×d biclique to collect ~3d
vertices.  The bench measures `edges_scanned` of the truncated-Dijkstra
ball search on that construction and asserts the quadratic growth — plus
the contrast case (constant-degree grid) where the same search is linear,
matching "if the input graph has constant degree … the work for this
step is O(nρ)".
"""

import pytest

from repro.graphs.generators import figure2_graph, grid_2d
from repro.preprocess import ball_search

pytestmark = pytest.mark.paper_artifact("Figure 2")


@pytest.mark.parametrize("d", [4, 8, 16])
def test_fig2_quadratic_edge_visits(benchmark, d, report_sink):
    g = figure2_graph(d)
    rho = 3 * d + 1
    ball = benchmark.pedantic(
        ball_search, args=(g, 0, rho), rounds=3, iterations=1
    )
    assert len(ball) >= rho
    # Crossing one biclique already costs ~d^2 edge scans.
    assert ball.edges_scanned >= d * d
    report_sink.append(
        (
            f"Figure 2 (d={d})",
            f"rho={rho}: visited {len(ball)} vertices, "
            f"scanned {ball.edges_scanned} edges (d^2={d * d})",
        )
    )


def test_fig2_quadratic_growth_in_d():
    """Doubling d roughly quadruples the scanned edges."""
    scans = {}
    for d in (6, 12, 24):
        scans[d] = ball_search(figure2_graph(d), 0, 3 * d + 1).edges_scanned
    assert scans[12] >= 2.5 * scans[6]
    assert scans[24] >= 2.5 * scans[12]


def test_constant_degree_contrast(benchmark):
    """On a constant-degree grid the scan stays ~linear in rho."""
    g = grid_2d(30, 30)
    rho = 73
    ball = benchmark.pedantic(
        ball_search, args=(g, 465, rho), rounds=3, iterations=1
    )
    # 4-regular grid: edges scanned ~ 4x vertices settled, far below rho^2.
    assert ball.edges_scanned <= 10 * rho
