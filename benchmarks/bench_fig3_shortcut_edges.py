"""Figure 3: factor of additional edges, greedy vs DP, k=3, ρ sweep.

Paper reference (k=3): on the road map and 2D grid the two heuristics
track each other; on the webgraph DP stays orders of magnitude below
greedy (0.02 vs 3.11 at ρ=10, 0.13 vs 39.99 at ρ=100).  The bench
regenerates the same series at tiny scale and times the full sweep.
"""

import pytest

from repro.experiments.shortcut_edges import render_fig3, run_shortcut_suite

pytestmark = pytest.mark.paper_artifact("Figure 3")

RHOS = (5, 10, 20, 50)
KS = (2, 3)


@pytest.mark.parametrize("dataset", ["road-pa", "web-st", "grid2d"])
def test_fig3_panel(benchmark, dataset, report_sink):
    suite = benchmark.pedantic(
        run_shortcut_suite,
        args=("tiny",),
        kwargs=dict(
            datasets=(dataset,), ks=KS, rhos=RHOS, with_rounds=False
        ),
        rounds=2,
        iterations=1,
    )
    # Shape assertions from the paper:
    for rho in RHOS:
        assert suite.factor(dataset, "dp", 3, rho) <= suite.factor(
            dataset, "greedy", 3, rho
        ) + 1e-12
    if dataset == "web-st":
        # hubs: DP adds almost nothing even at the largest rho
        assert suite.factor(dataset, "dp", 3, RHOS[-1]) < 1.0
    report_sink.append(
        (f"Figure 3 ({dataset})", render_fig3(suite, k=3))
    )
