"""Figure 4 + Tables 4/5: unweighted Radius-Stepping steps vs ρ.

Paper reference: on a log-log scale the average step count falls roughly
linearly as ρ grows (steps ∝ 1/ρ), the ρ=1 row *is* standard BFS, and
webgraphs start from far fewer rounds than road maps / grids because hubs
keep the hop diameter tiny (28–109 vs 619–1504 rounds at paper scale).
The bench regenerates all three artifacts at tiny scale and asserts those
shapes.
"""

import pytest

from repro.experiments.steps import (
    render_reduction_table,
    render_steps_figure,
    render_steps_table,
    run_steps_suite,
)

pytestmark = pytest.mark.paper_artifact("Figure 4, Table 4, Table 5")

RHOS = (1, 2, 5, 10, 20, 50)


@pytest.fixture(scope="module")
def suite(tiny_scale):
    return run_steps_suite(tiny_scale, weighted=False, rhos=RHOS)


def test_fig4_table4_unweighted_suite(benchmark, suite, tiny_scale, report_sink):
    bench_suite = benchmark.pedantic(
        run_steps_suite,
        args=(tiny_scale,),
        kwargs=dict(weighted=False, rhos=RHOS, datasets=("road-pa", "web-st")),
        rounds=1,
        iterations=1,
    )
    for name in ("road-pa", "web-st"):
        ds = bench_suite.results[name]
        steps = [ds.mean_steps(r) for r in RHOS]
        # steps fall monotonically (up to ties) as rho grows
        assert all(a >= b - 1e-9 for a, b in zip(steps, steps[1:])), (name, steps)
        # the rho=1 row is standard BFS (r_1 = 0 under self-counting)
        assert ds.mean_steps(1) == pytest.approx(ds.bfs_rounds)
    # hubs: the webgraph needs far fewer rounds than the road map
    assert (
        bench_suite.results["web-st"].mean_steps(1)
        < bench_suite.results["road-pa"].mean_steps(1)
    )
    # render the full six-dataset artifacts from the session fixture
    report_sink.append(("Figure 4 (unweighted)", render_steps_figure(suite)))
    report_sink.append(("Table 4 (unweighted rounds)", render_steps_table(suite)))
    report_sink.append(("Table 5 (reduction vs BFS)", render_reduction_table(suite)))


def test_table4_table5_all_datasets(suite):
    """Full six-dataset Tables 4 and 5 at tiny scale, with the paper's
    reduction shape: ρ=10 cuts rounds by ≥2x on road maps and grids."""
    for name in ("road-pa", "road-tx", "grid2d", "grid3d"):
        ds = suite.results[name]
        assert ds.reduction(10) >= 2.0, (name, ds.reduction(10))
        assert ds.reduction(50) >= ds.reduction(10) - 1e-9
