"""Figure 5 + Tables 6/7: weighted Radius-Stepping steps vs ρ.

Paper reference: with weights U{1..10^4} almost every vertex has a
distinct distance, so ρ=1 (batched Dijkstra) needs nearly n steps — and
even tiny ρ slashes the count (1000x at ρ=10 on million-vertex road maps;
proportionally smaller on smaller graphs).  Reduction factors on
webgraphs trail road maps / grids because hubs already keep the baseline
round count low.  The bench regenerates the figure and both tables at
tiny scale and asserts the monotone-decay and near-n-baseline shapes.
"""

import pytest

from repro.experiments.steps import (
    render_reduction_table,
    render_steps_figure,
    render_steps_table,
    run_steps_suite,
)

pytestmark = pytest.mark.paper_artifact("Figure 5, Table 6, Table 7")

RHOS = (1, 2, 5, 10, 20, 50)


@pytest.fixture(scope="module")
def suite(tiny_scale):
    return run_steps_suite(tiny_scale, weighted=True, rhos=RHOS)


def test_fig5_weighted_suite(benchmark, suite, tiny_scale, report_sink):
    bench_suite = benchmark.pedantic(
        run_steps_suite,
        args=(tiny_scale,),
        kwargs=dict(weighted=True, rhos=RHOS, datasets=("road-pa", "grid2d")),
        rounds=1,
        iterations=1,
    )
    for name in ("road-pa", "grid2d"):
        ds = bench_suite.results[name]
        steps = [ds.mean_steps(r) for r in RHOS]
        assert all(a >= b - 1e-9 for a, b in zip(steps, steps[1:])), (name, steps)
        # distinct weights: the rho=1 baseline needs nearly one step per vertex
        assert ds.mean_steps(1) >= 0.5 * ds.n
    # render the full six-dataset artifacts from the session fixture
    report_sink.append(("Figure 5 (weighted)", render_steps_figure(suite)))
    report_sink.append(("Table 6 (weighted rounds)", render_steps_table(suite)))
    report_sink.append(
        ("Table 7 (reduction vs rho=1 Dijkstra)", render_reduction_table(suite))
    )


def test_table6_table7_all_datasets(suite):
    for name, ds in suite.results.items():
        # even rho=10 pays off substantially on every dataset
        assert ds.reduction(10) >= 3.0, (name, ds.reduction(10))
        # and the reduction keeps growing with rho
        assert ds.reduction(50) >= ds.reduction(10) - 1e-9
