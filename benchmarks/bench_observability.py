"""Observability overhead benchmark: metric sites must be free-ish.

The observability layer's contract is that instrumentation lives off
the hot path: metric children are pre-bound locked primitives (a few
ns each), spans are a single context-variable read when no trace is
active, and scrape-time collectors cost nothing between scrapes.  This
bench measures and **gates** that claim:

1. **Cache-hot serving overhead** — the p50 latency of a cache-hot
   mixed planner batch with engine telemetry attached and a live trace
   rooted per request must stay within ``BENCH_OBS_MAX_OVERHEAD``
   (default 5%) of the bare, uninstrumented planner.  The un-traced
   instrumented mode (observer attached, no root span — the common
   production state between traced requests) is measured alongside.
2. **Primitive costs** — ns/op for ``Counter.inc``,
   ``Histogram.observe`` and a no-trace ``span()`` — the numbers the
   README quotes.
3. **Scrape cost** — rendering ``/metrics`` off a populated registry
   (HTTP + engine + planner-bridge series), recorded so a regression
   in exposition shows up in the artifact trajectory.

Results land in ``BENCH_obs.json`` (path via ``BENCH_OBS_JSON``).
"""

import json
import os
import statistics
import time

import pytest

from repro.core.solver import PreprocessedSSSP
from repro.graphs.generators import road_network
from repro.graphs.weights import random_integer_weights
from repro.obs import EngineTelemetry, MetricsRegistry, span, trace_request
from repro.obs.expo import parse, render
from repro.serve import KNearest, QueryPlanner, RoutingService

pytestmark = pytest.mark.paper_artifact("observability overhead")

N, K, RHO = 3000, 2, 24
HUBS = 12
BATCH_REPS = 600
WARMUP_REPS = 50
PRIMITIVE_OPS = 200_000
RENDER_REPS = 20


@pytest.fixture(scope="module")
def planner_case():
    g, _coords = road_network(N, seed=21)
    g = random_integer_weights(g, low=1, high=100, seed=22)
    sp = PreprocessedSSSP(g, k=K, rho=RHO, heuristic="dp")
    planner = QueryPlanner(sp, capacity=64, track_parents=True)
    hubs = list(range(HUBS))
    workload = (
        hubs[:4]
        + [(hubs[i], hubs[HUBS - 1 - i]) for i in range(4)]
        + [KNearest(hubs[0], 16)]
    )
    planner.warm(hubs)  # everything below is cache-hot
    planner.execute(workload)
    return g, sp, planner, workload


def _p50_batch_seconds(fn, reps: int) -> float:
    for _ in range(WARMUP_REPS):
        fn()
    samples = []
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - t0)
    return statistics.median(samples)


class TestObservabilityOverhead:
    def test_overhead_gate_and_artifact(self, planner_case, report_sink):
        g, sp, planner, workload = planner_case
        registry = MetricsRegistry()

        def bare():
            planner.execute(workload)

        # instrumented, un-traced: observer attached, span() is the
        # shared no-op — the steady state between traced requests
        def instrumented():
            planner.execute(workload)

        # instrumented + traced: a root span per batch, as the HTTP
        # front end does for every request
        def traced():
            with trace_request("GET batch"):
                planner.execute(workload)

        p50_off = _p50_batch_seconds(bare, BATCH_REPS)
        sp.set_observer(EngineTelemetry(registry))
        try:
            p50_on = _p50_batch_seconds(instrumented, BATCH_REPS)
            p50_traced = _p50_batch_seconds(traced, BATCH_REPS)
        finally:
            sp.set_observer(None)
        overhead_on = p50_on / p50_off - 1.0
        overhead_traced = p50_traced / p50_off - 1.0

        # primitive site costs (ns/op)
        counter = registry.counter("bench_ops_total", "bench").labels()
        t0 = time.perf_counter()
        for _ in range(PRIMITIVE_OPS):
            counter.inc()
        counter_ns = (time.perf_counter() - t0) / PRIMITIVE_OPS * 1e9

        hist = registry.histogram("bench_lat", "bench").labels()
        t0 = time.perf_counter()
        for _ in range(PRIMITIVE_OPS):
            hist.observe(0.003)
        hist_ns = (time.perf_counter() - t0) / PRIMITIVE_OPS * 1e9

        t0 = time.perf_counter()
        for _ in range(PRIMITIVE_OPS):
            with span("untraced"):
                pass
        span_ns = (time.perf_counter() - t0) / PRIMITIVE_OPS * 1e9

        # scrape cost over a realistically populated registry: request
        # counters, engine telemetry, and the service stats() bridge
        service = RoutingService(g, k=K, rho=RHO, heuristic="dp")
        service.instrument(registry)
        service.distances(0)
        http_hist = registry.histogram(
            "http_request_seconds", "bench", ("endpoint",)
        ).labels("distances")
        for i in range(200):
            http_hist.observe(0.001 * (i % 17))
        t0 = time.perf_counter()
        for _ in range(RENDER_REPS):
            text = render(registry)
        render_ms = (time.perf_counter() - t0) / RENDER_REPS * 1e3
        exp = parse(text)  # the artifact's exposition stays valid
        assert exp.value("bench_ops_total") == PRIMITIVE_OPS

        max_overhead = float(os.environ.get("BENCH_OBS_MAX_OVERHEAD", "0.05"))
        payload = {
            "workload": (
                f"road_network(n={g.n}, m={g.m}), cache-hot mixed batch "
                f"x{len(workload)}, p50 of {BATCH_REPS} reps"
            ),
            "p50_seconds": {
                "bare": round(p50_off, 7),
                "instrumented": round(p50_on, 7),
                "instrumented_traced": round(p50_traced, 7),
            },
            "overhead": {
                "instrumented": round(overhead_on, 4),
                "instrumented_traced": round(overhead_traced, 4),
                "gate_max": max_overhead,
            },
            "primitive_ns_per_op": {
                "counter_inc": round(counter_ns, 1),
                "histogram_observe": round(hist_ns, 1),
                "span_no_trace": round(span_ns, 1),
            },
            "metrics_render_ms": round(render_ms, 3),
            "exposition_bytes": len(text),
        }
        out_path = os.environ.get("BENCH_OBS_JSON", "BENCH_obs.json")
        with open(out_path, "w") as fh:
            json.dump(payload, fh, indent=2)
        report_sink.append(
            (
                f"observability overhead (road n={g.n})",
                "\n".join(
                    [
                        f"cache-hot batch p50: bare {p50_off * 1e6:.1f}us, "
                        f"instrumented {p50_on * 1e6:.1f}us "
                        f"({overhead_on:+.1%}), traced {p50_traced * 1e6:.1f}us "
                        f"({overhead_traced:+.1%})",
                        f"counter.inc {counter_ns:.0f}ns, "
                        f"histogram.observe {hist_ns:.0f}ns, "
                        f"no-trace span {span_ns:.0f}ns",
                        f"/metrics render {render_ms:.2f}ms "
                        f"({len(text)} bytes)",
                    ]
                ),
            )
        )
        # The gate: attaching telemetry must not move cache-hot p50 by
        # more than the configured fraction (5% by default; CI relaxes
        # via env because shared runners are noisy at the us scale).
        assert overhead_on <= max_overhead, payload
