"""Preprocessing ablation: heuristic cost and quality (Section 4).

Times `build_kr_graph` per heuristic on one road-map workload and asserts
the quality ordering the paper proves per tree: DP never selects more
shortcuts than greedy, and 'full' (the (1,ρ) strategy) is the
k-independent upper envelope.  Also times the two fidelity knobs of the
ball search (ties, lightest-edge restriction) that Lemma 4.2's cost
analysis is about.

The backend ablation (``TestBackendComparison``) pits the batched
slot-engine against the scalar heap reference on an n ≥ 5000 road
network: outputs must be bit-identical, the batched ball-search
throughput ≥ 3× the scalar backend's, and the forest-level selection
engine ≥ 2.5× the per-tree DP walk on the same trees.  Per-backend wall
times are written to ``BENCH_preprocessing.json`` (the CI artifact
tracking the preprocessing perf trajectory).
"""

import json
import os
import time

import numpy as np
import pytest

from repro.graphs.generators import road_network, scale_free
from repro.graphs.weights import random_integer_weights
from repro.preprocess import (
    ball_search,
    batched_ball_trees,
    block_from_trees,
    build_kr_graph,
    compute_radii_sweep,
    dp_select,
    forest_select,
    greedy_select,
    sort_adjacency_by_weight,
)

pytestmark = pytest.mark.paper_artifact("preprocessing ablation")

K, RHO = 3, 16


@pytest.fixture(scope="module")
def road():
    g, _coords = road_network(700, seed=1)
    return random_integer_weights(g, low=1, high=100, seed=2)


@pytest.mark.parametrize("heuristic", ["full", "greedy", "dp"])
def test_build_kr_graph_heuristics(benchmark, road, heuristic, report_sink):
    k = 1 if heuristic == "full" else K
    pre = benchmark.pedantic(
        build_kr_graph,
        args=(road, k, RHO),
        kwargs=dict(heuristic=heuristic),
        rounds=2,
        iterations=1,
    )
    report_sink.append(
        (
            f"preprocessing ({heuristic})",
            f"k={k} rho={RHO}: {pre.added_edges} selections, "
            f"{pre.new_edges} new edges ({pre.edge_factor:.2f}x m)",
        )
    )


def test_dp_beats_greedy_at_same_k(road):
    greedy = build_kr_graph(road, K, RHO, heuristic="greedy")
    dp = build_kr_graph(road, K, RHO, heuristic="dp")
    assert dp.added_edges <= greedy.added_edges


def test_dp_gap_explodes_on_scale_free():
    """§5.2: hubs off the (ki+1)-layer make greedy pay, DP does not."""
    web = scale_free(600, attach=4, seed=9)
    greedy = build_kr_graph(web, K, 32, heuristic="greedy")
    dp = build_kr_graph(web, K, 32, heuristic="dp")
    assert dp.added_edges * 2 <= greedy.added_edges


def test_ball_search_plain(benchmark, road):
    ball = benchmark(ball_search, road, 0, 32)
    assert len(ball) >= 32


def test_ball_search_lightest_edges(benchmark, road):
    """Lemma 4.2's lightest-ρ-edge restriction: correct ball interior at
    reduced scan cost on weight-sorted adjacency."""
    sorted_road = sort_adjacency_by_weight(road)
    ball = benchmark(
        ball_search, sorted_road, 0, 32, lightest_edges=True, weight_sorted=True
    )
    full = ball_search(road, 0, 32)
    assert ball.edges_scanned <= full.edges_scanned
    assert ball.r_rho(32) >= full.r_rho(32)  # restriction can only lose ties


# --------------------------------------------------------------------- #
# Scalar vs batched backend on an n >= 5000 road network
# --------------------------------------------------------------------- #
BIG_N = 5200
SWEEP_RHOS = (4, 16, 64, 256)


@pytest.fixture(scope="module")
def big_road():
    g, _coords = road_network(BIG_N, seed=1)
    return random_integer_weights(g, low=1, high=100, seed=2)


def _timed(fn, *args, repeats=1, **kwargs):
    """Best-of-N wall time plus the last result."""
    best, result = float("inf"), None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn(*args, **kwargs)
        best = min(best, time.perf_counter() - t0)
    return best, result


class TestBackendComparison:
    """The PR-2 acceptance gate: bit-identical outputs, >= 3x faster
    ball-search engine, and a JSON perf artifact per backend."""

    def test_backends_on_big_road(self, big_road, report_sink):
        g = big_road
        assert g.n >= 5000
        times: dict[str, float] = {}

        # Radii sweep — the pure ball-search workload (one truncated
        # search per vertex at rho_max; every smaller rho rides along).
        # Both backends use the identical best-of-2 protocol so the
        # gated ratio is not biased by asymmetric measurement.
        compute_radii_sweep(g, [4], backend="batched")  # warm scratch
        times["radii_sweep_scalar"], scalar_radii = _timed(
            compute_radii_sweep, g, SWEEP_RHOS, backend="scalar", repeats=2
        )
        times["radii_sweep_batched"], batched_radii_out = _timed(
            compute_radii_sweep, g, SWEEP_RHOS, backend="batched", repeats=2
        )
        for rho in SWEEP_RHOS:
            assert np.array_equal(scalar_radii[rho], batched_radii_out[rho])

        # Full (k, rho)-construction — ball trees + shortcut selection.
        # Same best-of-2 protocol on both sides.
        for heuristic in ("greedy", "dp"):
            key = f"build_kr_{heuristic}"
            times[f"{key}_scalar"], pre_s = _timed(
                build_kr_graph, g, K, RHO, heuristic=heuristic,
                backend="scalar", repeats=2,
            )
            times[f"{key}_batched"], pre_b = _timed(
                build_kr_graph, g, K, RHO, heuristic=heuristic,
                backend="batched", repeats=2,
            )
            assert pre_s.graph == pre_b.graph  # identical shortcut edges
            assert np.array_equal(pre_s.radii, pre_b.radii)
            assert pre_s.added_edges == pre_b.added_edges

        # Selection-stage comparison (the PR-3 tentpole): identical ball
        # trees, per-tree walkers vs the forest engine over one
        # TreeBlock.  The block is timed out of band because the real
        # pipeline gets it for free (the slot engine emits the flat
        # layout directly), so the measured quantity is the selection
        # stage alone — the per-tree Python that Amdahl-bounded
        # build_kr_graph's end-to-end ratio before the forest engine.
        sources = np.arange(g.n, dtype=np.int64)
        _, trees = batched_ball_trees(g, sources, RHO)
        blk = block_from_trees(trees)
        select_speedups: dict[str, float] = {}
        for heuristic, select in (("greedy", greedy_select), ("dp", dp_select)):
            key = f"select_{heuristic}"
            times[f"{key}_scalar"], sel_s = _timed(
                lambda sel=select: [sel(t, K) for t in trees], repeats=2
            )
            times[f"{key}_batched"], sel_b = _timed(
                forest_select, blk, heuristic, K, repeats=2
            )
            assert len(sel_s) == len(sel_b)
            for a, b in zip(sel_s, sel_b):
                assert np.array_equal(a, b)  # bit-identical selections
            select_speedups[heuristic] = (
                times[f"{key}_scalar"] / times[f"{key}_batched"]
            )

        sweep_speedup = times["radii_sweep_scalar"] / times["radii_sweep_batched"]
        build_speedups = {
            h: times[f"build_kr_{h}_scalar"] / times[f"build_kr_{h}_batched"]
            for h in ("greedy", "dp")
        }
        payload = {
            "workload": f"road_network(n={g.n}, m={g.m}), weights 1..100",
            "rhos": list(SWEEP_RHOS),
            "k": K,
            "rho": RHO,
            "seconds": {k: round(v, 4) for k, v in times.items()},
            "speedup": {
                "radii_sweep": round(sweep_speedup, 2),
                **{f"build_kr_{h}": round(s, 2) for h, s in build_speedups.items()},
                **{f"select_{h}": round(s, 2) for h, s in select_speedups.items()},
            },
        }
        out_path = os.environ.get(
            "BENCH_PREPROCESSING_JSON", "BENCH_preprocessing.json"
        )
        with open(out_path, "w") as fh:
            json.dump(payload, fh, indent=2)
        report_sink.append(
            (
                "preprocessing backends (road n=%d)" % g.n,
                "\n".join(
                    [
                        f"radii sweep rhos={list(SWEEP_RHOS)}: "
                        f"scalar {times['radii_sweep_scalar']:.3f}s, "
                        f"batched {times['radii_sweep_batched']:.3f}s "
                        f"({sweep_speedup:.2f}x)",
                    ]
                    + [
                        f"build_kr_graph[{h}] k={K} rho={RHO}: "
                        f"scalar {times[f'build_kr_{h}_scalar']:.3f}s, "
                        f"batched {times[f'build_kr_{h}_batched']:.3f}s "
                        f"({s:.2f}x)"
                        for h, s in build_speedups.items()
                    ]
                    + [
                        f"selection[{h}] k={K} rho={RHO}: "
                        f"per-tree {times[f'select_{h}_scalar']:.3f}s, "
                        f"forest {times[f'select_{h}_batched']:.3f}s "
                        f"({s:.2f}x)"
                        for h, s in select_speedups.items()
                    ]
                ),
            )
        )
        # The acceptance gate: the batched ball-search engine must be at
        # least 3x the scalar backend on the pure ball-search workload.
        # (build_kr_graph shares backend-independent heuristic work —
        # greedy/DP selection and shortcut merging — so its end-to-end
        # ratio is Amdahl-bounded; it is reported, and its outputs are
        # gated on bit-identity above.)  Shared CI runners are noisy, so
        # the enforced floor is env-tunable; the local acceptance check
        # keeps the full 3.0 (measured ~3.6-3.9x, best-of-2).
        min_sweep = float(os.environ.get("BENCH_PREPROCESSING_MIN_SPEEDUP", "3.0"))
        min_build = float(
            os.environ.get("BENCH_PREPROCESSING_MIN_BUILD_SPEEDUP", "1.1")
        )
        assert sweep_speedup >= min_sweep, payload
        assert build_speedups["greedy"] >= min_build, payload
        # The PR-3 acceptance gate: the forest engine must beat the
        # per-tree DP walk >= 2.5x on the dp-heuristic selection stage
        # of build_kr_graph (measured ~15-20x, best-of-2; the CI floor
        # is env-lowered for shared-runner noise).
        min_select = float(
            os.environ.get("BENCH_PREPROCESSING_MIN_SELECT_SPEEDUP", "2.5")
        )
        assert select_speedups["dp"] >= min_select, payload
