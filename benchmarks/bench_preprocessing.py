"""Preprocessing ablation: heuristic cost and quality (Section 4).

Times `build_kr_graph` per heuristic on one road-map workload and asserts
the quality ordering the paper proves per tree: DP never selects more
shortcuts than greedy, and 'full' (the (1,ρ) strategy) is the
k-independent upper envelope.  Also times the two fidelity knobs of the
ball search (ties, lightest-edge restriction) that Lemma 4.2's cost
analysis is about.
"""

import pytest

from repro.graphs.generators import road_network, scale_free
from repro.graphs.weights import random_integer_weights
from repro.preprocess import (
    ball_search,
    build_kr_graph,
    sort_adjacency_by_weight,
)

pytestmark = pytest.mark.paper_artifact("preprocessing ablation")

K, RHO = 3, 16


@pytest.fixture(scope="module")
def road():
    g, _coords = road_network(700, seed=1)
    return random_integer_weights(g, low=1, high=100, seed=2)


@pytest.mark.parametrize("heuristic", ["full", "greedy", "dp"])
def test_build_kr_graph_heuristics(benchmark, road, heuristic, report_sink):
    k = 1 if heuristic == "full" else K
    pre = benchmark.pedantic(
        build_kr_graph,
        args=(road, k, RHO),
        kwargs=dict(heuristic=heuristic),
        rounds=2,
        iterations=1,
    )
    report_sink.append(
        (
            f"preprocessing ({heuristic})",
            f"k={k} rho={RHO}: {pre.added_edges} selections, "
            f"{pre.new_edges} new edges ({pre.edge_factor:.2f}x m)",
        )
    )


def test_dp_beats_greedy_at_same_k(road):
    greedy = build_kr_graph(road, K, RHO, heuristic="greedy")
    dp = build_kr_graph(road, K, RHO, heuristic="dp")
    assert dp.added_edges <= greedy.added_edges


def test_dp_gap_explodes_on_scale_free():
    """§5.2: hubs off the (ki+1)-layer make greedy pay, DP does not."""
    web = scale_free(600, attach=4, seed=9)
    greedy = build_kr_graph(web, K, 32, heuristic="greedy")
    dp = build_kr_graph(web, K, 32, heuristic="dp")
    assert dp.added_edges * 2 <= greedy.added_edges


def test_ball_search_plain(benchmark, road):
    ball = benchmark(ball_search, road, 0, 32)
    assert len(ball) >= 32


def test_ball_search_lightest_edges(benchmark, road):
    """Lemma 4.2's lightest-ρ-edge restriction: correct ball interior at
    reduced scan cost on weight-sorted adjacency."""
    sorted_road = sort_adjacency_by_weight(road)
    ball = benchmark(
        ball_search, sorted_road, 0, 32, lightest_edges=True, weight_sorted=True
    )
    full = ball_search(road, 0, 32)
    assert ball.edges_scanned <= full.edges_scanned
    assert ball.r_rho(32) >= full.r_rho(32)  # restriction can only lose ties
