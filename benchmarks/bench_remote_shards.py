"""Remote-shard stitch overhead: what the network seam actually costs.

The transport refactor's claim is that moving shard backends across
HTTP keeps answers bit-identical and costs only the wire: binary row
frames (no JSON float laundering), pooled connections, and batched
``/internal/rows`` fetches that amortize one round trip over many
boundary rows.  This bench measures and **gates** that claim on a
loopback :class:`~repro.serve.cluster.ShardCluster`:

1. **Parity first** — remote answers are asserted bit-identical to the
   in-process router before any timing is trusted.
2. **Cold-stitch overhead** — p50 over fresh sources of a full stitched
   ``distances()`` on the remote router vs the in-process router over
   the *same* sharded preprocessing, gated by
   ``BENCH_REMOTE_MAX_OVERHEAD`` (fraction; loopback default 1.0 —
   CI relaxes via env because shared runners jitter at the ms scale).
3. **Batched vs per-row fetch** — the same boundary rows pulled through
   one batched ``rows()`` call vs one ``source_row()`` round trip each;
   the speedup is the reason the stitch layer batches.

Results land in ``BENCH_remote.json`` (path via ``BENCH_REMOTE_JSON``).
"""

import json
import os
import statistics
import time

import numpy as np
import pytest

from repro.graphs.generators import road_network
from repro.graphs.weights import random_integer_weights
from repro.preprocess import build_sharded_kr_graph
from repro.serve import ShardCluster, ShardRouter

pytestmark = pytest.mark.paper_artifact("remote shard stitch overhead")

N, K, RHO = 3000, 2, 24
N_SHARDS = 4
COLD_SOURCES = 12
BATCH_ROWS = 32
FETCH_REPS = 30


@pytest.fixture(scope="module")
def sharded_case():
    g, _coords = road_network(N, seed=31)
    g = random_integer_weights(g, low=1, high=100, seed=32)
    sharded = build_sharded_kr_graph(
        g, K, RHO, n_shards=N_SHARDS, partition="ldd", heuristic="dp"
    )
    return g, sharded


def _cold_p50_ms(router, sources) -> float:
    samples = []
    for s in sources:
        t0 = time.perf_counter()
        router.distances(int(s))
        samples.append((time.perf_counter() - t0) * 1e3)
    return statistics.median(samples)


class TestRemoteStitchOverhead:
    def test_overhead_gate_and_artifact(self, sharded_case, report_sink):
        g, sharded = sharded_case
        rng = np.random.default_rng(33)
        sources = rng.choice(g.n, size=COLD_SOURCES, replace=False)

        local = ShardRouter(sharded=sharded)
        with ShardCluster(sharded) as cluster:
            remote = cluster.router

            # -- 1. parity before timing: identical bits over the wire
            for s in map(int, sources[:4]):
                assert remote.distances(s).tobytes() == local.distances(s).tobytes()

            # fresh routers so every timed source is a cold stitch
            local = ShardRouter(sharded=sharded)
            local_p50 = _cold_p50_ms(local, sources)

        with ShardCluster(sharded) as cluster:
            remote_p50 = _cold_p50_ms(cluster.router, sources)

            # -- 3. batched rows vs one round trip per row ------------------
            backend = next(b for b in cluster.router.backends if b is not None)
            counts = np.bincount(sharded.labels, minlength=N_SHARDS)
            locals_ = list(range(min(BATCH_ROWS, int(counts[backend.shard]))))
            backend.rows(locals_)  # server-side cache warm: timing is transport
            t0 = time.perf_counter()
            for _ in range(FETCH_REPS):
                backend.rows(locals_)
            batched_ms = (time.perf_counter() - t0) / FETCH_REPS * 1e3
            t0 = time.perf_counter()
            for _ in range(FETCH_REPS):
                for s in locals_:
                    backend.source_row(s)
            per_row_ms = (time.perf_counter() - t0) / FETCH_REPS * 1e3

        overhead = remote_p50 / local_p50 - 1.0
        batch_speedup = per_row_ms / batched_ms
        max_overhead = float(os.environ.get("BENCH_REMOTE_MAX_OVERHEAD", "1.0"))
        payload = {
            "workload": (
                f"road_network(n={g.n}, m={g.m}), {N_SHARDS} ldd shards, "
                f"cold stitched distances() p50 over {COLD_SOURCES} sources"
            ),
            "cold_stitch_p50_ms": {
                "local": round(local_p50, 3),
                "remote": round(remote_p50, 3),
            },
            "remote_overhead": round(overhead, 4),
            "gate_max_overhead": max_overhead,
            "row_fetch_ms": {
                "batched_rows": round(batched_ms, 3),
                "per_row": round(per_row_ms, 3),
                "rows_per_fetch": len(locals_),
                "batch_speedup": round(batch_speedup, 2),
            },
        }
        out_path = os.environ.get("BENCH_REMOTE_JSON", "BENCH_remote.json")
        with open(out_path, "w") as fh:
            json.dump(payload, fh, indent=2)
        report_sink.append(
            (
                f"remote shard stitch (road n={g.n}, {N_SHARDS} shards)",
                "\n".join(
                    [
                        f"cold stitch p50: local {local_p50:.1f}ms, "
                        f"remote {remote_p50:.1f}ms ({overhead:+.1%})",
                        f"{len(locals_)} warm rows: batched {batched_ms:.1f}ms, "
                        f"per-row {per_row_ms:.1f}ms "
                        f"({batch_speedup:.1f}x from batching)",
                    ]
                ),
            )
        )
        # The gate: crossing the wire must not blow up the stitch —
        # loopback remote stays within the configured fraction of the
        # in-process router on cold stitched queries.
        assert overhead <= max_overhead, payload
        # batching must actually amortize round trips
        assert batched_ms < per_row_ms, payload
