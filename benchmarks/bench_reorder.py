"""Locality-aware reordering: what a cache-friendly numbering buys.

The relaxation kernel's gather → scatter-min substep and the batched
ball engine's CSR rounds fancy-index ``indices``/``weights`` with whole
frontiers at once, so their speed tracks how local those gathers are —
which is exactly what a vertex reordering controls.  This benchmark
measures both workloads under every registered ordering on one
representative graph per family (road-like, power-law, small-world),
against the adversarial ``random`` scramble baseline.

The kernel measurement is the substep itself, not a full solve: for a
set of hop-ball frontiers (the shape real Radius-Stepping frontiers
take on spatial graphs), time the row gather + relax + scatter-min
sequence the engines run per substep.  The arithmetic is identical
under every ordering — frontiers are the same external vertex sets,
mapped through each permutation — so timing differences are pure
memory-locality effects.  Graphs are sized (``BENCH_REORDER_N``,
default 150k vertices) so the CSR arrays outgrow L2 and the gathers
actually pay for cache misses; at toy sizes every ordering ties.

Output: ``BENCH_reorder.json`` (env ``BENCH_REORDER_JSON``) with
per-family per-ordering timings, the mean-neighbor-gap diagnostic, and
speedups over ``random``.  Gates (env-tunable for noisy runners):

* on every family the best ordering beats the ``random`` baseline by
  ≥ ``BENCH_REORDER_MIN_SPEEDUP`` (default 1.10×) on the relaxation
  substep — the permutation-invariant workload where timing deltas are
  pure locality (ball-round timings are reported alongside but carry no
  hard gate: on power-law graphs the batched search is dominated by
  hub-frontier *work*, which no numbering changes);
* on every family at least one locality ordering (bfs/rcm/degree)
  shrinks the mean neighbor gap below the random baseline's — the
  diagnostic agrees with the stopwatch.
"""

import json
import os
import time

import numpy as np
import pytest

from repro.graphs.generators import road_network, scale_free, small_world
from repro.graphs.reorder import available_orderings, mean_neighbor_gap, reorder_graph
from repro.graphs.weights import random_integer_weights
from repro.preprocess.backends import get_ball_backend

pytestmark = pytest.mark.paper_artifact("locality reordering throughput")

N = int(os.environ.get("BENCH_REORDER_N", "150000"))
FRONTIER_TARGET = 4096
N_FRONTIERS = 8
SUBSTEP_REPS = 20
BALL_SOURCES = 192
# ρ=8 keeps the batched search's hub-frontier blowup on scale-free
# graphs bounded; the gather-locality signal is the same at any ρ.
BALL_RHO = 8
REPEATS = 2


def _families():
    road, _ = road_network(N, seed=1)
    return {
        "road": random_integer_weights(road, low=1, high=100, seed=2),
        "power-law": random_integer_weights(
            scale_free(N, attach=4, seed=3), low=1, high=100, seed=4
        ),
        "small-world": random_integer_weights(
            small_world(N, k=6, p=0.05, seed=5), low=1, high=100, seed=6
        ),
    }


def _hop_ball(graph, seed_vertex, target):
    """Vertices within the smallest hop radius reaching ``target`` size —
    the frontier shape Radius-Stepping produces on spatial graphs."""
    seen = np.zeros(graph.n, dtype=bool)
    seen[seed_vertex] = True
    frontier = np.array([seed_vertex], dtype=np.int64)
    layers = [frontier]
    total = 1
    while total < target:
        nbrs = np.concatenate(
            [graph.indices[graph.indptr[u] : graph.indptr[u + 1]] for u in frontier]
        )
        fresh = np.unique(nbrs)
        fresh = fresh[~seen[fresh]]
        if not len(fresh):
            break
        seen[fresh] = True
        layers.append(fresh)
        total += len(fresh)
        frontier = fresh
    return np.concatenate(layers)


def _substep_seconds(graph, frontiers, rng):
    """Best-of-``REPEATS`` time for the gather → relax → scatter-min
    substep over ``frontiers`` (internal-id vertex sets), repeated
    ``SUBSTEP_REPS`` times."""
    dist = rng.uniform(0.0, 1.0, graph.n)
    degrees = np.diff(graph.indptr)
    best = float("inf")
    for _ in range(REPEATS):
        t0 = time.perf_counter()
        for _ in range(SUBSTEP_REPS):
            for f in frontiers:
                deg = degrees[f]
                starts = graph.indptr[f]
                span = int(deg.sum())
                # arc index list for all rows of the frontier
                idx = np.repeat(starts, deg) + (
                    np.arange(span) - np.repeat(np.cumsum(deg) - deg, deg)
                )
                heads = graph.indices[idx]
                cand = np.repeat(dist[f], deg) + graph.weights[idx]
                np.minimum.at(dist, heads, cand)
        best = min(best, time.perf_counter() - t0)
    return best


def test_reorder_throughput(report_sink):
    min_speedup = float(os.environ.get("BENCH_REORDER_MIN_SPEEDUP", "1.10"))

    orderings = available_orderings()
    backend = get_ball_backend("batched")
    table: dict[str, dict] = {}
    for family, graph in _families().items():
        rng = np.random.default_rng(11)
        balls_ext = [
            _hop_ball(graph, int(s), FRONTIER_TARGET)
            for s in rng.choice(graph.n, N_FRONTIERS, replace=False)
        ]
        sources_ext = rng.choice(graph.n, BALL_SOURCES, replace=False)
        rows: dict[str, dict] = {}
        for method in orderings:
            res = reorder_graph(graph, method, seed=4)
            frontiers = [np.sort(res.perm[b]) for b in balls_ext]
            sources = np.sort(res.perm[sources_ext]).astype(np.int64)

            substep_s = _substep_seconds(res.graph, frontiers, np.random.default_rng(13))
            best_ball = float("inf")
            for _ in range(REPEATS):
                t0 = time.perf_counter()
                backend.search(res.graph, sources, BALL_RHO, include_ties=False)
                best_ball = min(best_ball, time.perf_counter() - t0)

            rows[method] = {
                "neighbor_gap": round(mean_neighbor_gap(res.graph), 1),
                "substep_s": round(substep_s, 4),
                "ball_s": round(best_ball, 4),
                "total_s": round(substep_s + best_ball, 4),
            }
        substep_base = rows["random"]["substep_s"]
        total_base = rows["random"]["total_s"]
        for row in rows.values():
            row["substep_speedup_vs_random"] = round(
                substep_base / row["substep_s"], 3
            )
            row["speedup_vs_random"] = round(total_base / row["total_s"], 3)
        best = min(rows, key=lambda m: rows[m]["substep_s"])
        table[family] = {
            "n": graph.n,
            "m": graph.m,
            "orderings": rows,
            "best": best,
            "best_speedup_vs_random": rows[best]["substep_speedup_vs_random"],
        }

    payload = {
        "workload": (
            f"n={N} per family; substep: {N_FRONTIERS} hop-ball frontiers of "
            f"~{FRONTIER_TARGET} vertices x {SUBSTEP_REPS} reps; balls: "
            f"batched backend, {BALL_SOURCES} sources at rho={BALL_RHO}; "
            f"best of {REPEATS}"
        ),
        "orderings": list(orderings),
        "families": table,
    }
    out_path = os.environ.get("BENCH_REORDER_JSON", "BENCH_reorder.json")
    with open(out_path, "w") as fh:
        json.dump(payload, fh, indent=2)

    report_sink.append(
        (
            "locality reordering (n=%d per family)" % N,
            "\n".join(
                f"{family:>12}: best {row['best']} "
                f"({row['best_speedup_vs_random']:.2f}x vs random; gap "
                f"{row['orderings'][row['best']]['neighbor_gap']} vs "
                f"{row['orderings']['random']['neighbor_gap']})"
                for family, row in table.items()
            ),
        )
    )

    # Gate 1: reordering pays — on every family the best ordering beats
    # the adversarial random numbering by the floor on the substep
    # kernel (identical arithmetic, so the delta is pure locality).
    for family, row in table.items():
        assert row["best_speedup_vs_random"] >= min_speedup, (family, payload)

    # Gate 2: the diagnostic tracks reality — some locality ordering
    # shrinks the neighbor gap below random's on every family.
    for family, row in table.items():
        random_gap = row["orderings"]["random"]["neighbor_gap"]
        assert any(
            row["orderings"][m]["neighbor_gap"] < random_gap
            for m in ("bfs", "rcm", "degree")
        ), (family, payload)
