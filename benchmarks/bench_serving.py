"""Serving-layer benchmark: warm starts, cache hits, zero-copy batches.

The serving subsystem's three claims, measured and gated on a road-map
workload:

1. **Warm start** — restoring the (k,ρ)-preprocessing from a persisted
   artifact must be ≥ 5× faster than re-running ``build_kr_graph``
   (it is typically orders of magnitude faster; the floor is
   env-tunable for noisy shared CI runners via
   ``BENCH_SERVING_MIN_WARM_SPEEDUP``).
2. **Query cache** — repeating a mixed workload against the planner
   must be served from the LRU row cache with a measured speedup
   (``BENCH_SERVING_MIN_CACHE_SPEEDUP`` floor) and zero extra solves.
3. **Shared-memory batches** — ``solve_many_shm`` must be bit-identical
   to the pickled ``solve_many`` on distances, parents and per-row
   instrumentation (asserted, not just timed).

Wall times and speedups land in ``BENCH_serving.json`` (path via
``BENCH_SERVING_JSON``) — the CI artifact tracking the serving-layer
perf trajectory from PR 4 onward.
"""

import json
import os
import time

import numpy as np
import pytest

from repro.core.solver import PreprocessedSSSP
from repro.graphs.generators import road_network
from repro.graphs.weights import random_integer_weights
from repro.preprocess import build_kr_graph
from repro.serve import (
    KNearest,
    QueryPlanner,
    load_artifact,
    save_artifact,
    solve_many_shm,
)

pytestmark = pytest.mark.paper_artifact("serving subsystem")

N, K, RHO = 3000, 2, 24
BATCH_SOURCES = 24
CACHE_REPEATS = 5


@pytest.fixture(scope="module")
def big_road():
    g, _coords = road_network(N, seed=1)
    return random_integer_weights(g, low=1, high=100, seed=2)


def _timed(fn, *args, repeats=1, **kwargs):
    """Best-of-N wall time plus the last result."""
    best, result = float("inf"), None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn(*args, **kwargs)
        best = min(best, time.perf_counter() - t0)
    return best, result


class TestServing:
    """The PR-4 acceptance gate: warm-start ≥ 5× cold, measured cache
    speedup, shm/pickle bit-identity, and a JSON perf artifact."""

    def test_serving_stack_on_big_road(self, big_road, tmp_path, report_sink):
        g = big_road
        times: dict[str, float] = {}

        # Cold start: the full (k,rho)-construction a process pays when
        # it has no artifact.  Warm start: load + verify the persisted
        # bundle against the serving graph's content hash.
        times["cold_preprocess"], pre = _timed(
            build_kr_graph, g, K, RHO, heuristic="dp", repeats=2
        )
        artifact = tmp_path / "road.kr.npz"
        times["save_artifact"], _ = _timed(save_artifact, artifact, pre)
        times["warm_load"], warm_pre = _timed(
            load_artifact, artifact, expect_graph=g, repeats=2
        )
        assert warm_pre.graph == pre.graph
        assert np.array_equal(warm_pre.radii, pre.radii)
        warm_speedup = times["cold_preprocess"] / times["warm_load"]

        sp = PreprocessedSSSP.from_preprocessed(warm_pre, input_graph=g)
        rng = np.random.default_rng(5)
        sources = rng.choice(g.n, BATCH_SOURCES, replace=False)

        # Pickle vs shared-memory batch path: identical rows, and the
        # matrix path's wall time recorded alongside.  Both run over the
        # same 2-worker pool so per-row results really cross a process
        # boundary (inline n_jobs=1 would never serialize anything).
        times["batch_pickle"], results = _timed(
            sp.solve_many, sources, track_parents=True, n_jobs=2, repeats=2
        )
        t0 = time.perf_counter()
        dm = solve_many_shm(sp, sources, track_parents=True, n_jobs=2)
        times["batch_shm"] = time.perf_counter() - t0
        try:
            for i, res in enumerate(results):
                assert np.array_equal(dm.dist[i], res.dist)
                assert np.array_equal(dm.parent[i], res.parent)
                got = dm.result(i)
                assert (got.steps, got.substeps, got.relaxations) == (
                    res.steps,
                    res.substeps,
                    res.relaxations,
                )
        finally:
            dm.close()
            dm.unlink()

        # Cache: one mixed workload (full rows, routes, k-nearest over a
        # handful of hub sources), first pass solves, repeats must be
        # pure cache reads.
        hubs = sources[:8].tolist()
        workload = (
            [int(s) for s in hubs]
            + [(int(hubs[i]), int(hubs[-1 - i])) for i in range(4)]
            + [KNearest(int(hubs[0]), 10)]
        )
        planner = QueryPlanner(sp, capacity=64, track_parents=True)
        times["cache_miss_pass"], _ = _timed(planner.execute, workload)
        t0 = time.perf_counter()
        for _ in range(CACHE_REPEATS):
            planner.execute(workload)
        times["cache_hit_pass"] = (time.perf_counter() - t0) / CACHE_REPEATS
        stats = planner.stats()
        assert stats["solves"] == len(hubs)  # repeats added zero solves
        cache_speedup = times["cache_miss_pass"] / times["cache_hit_pass"]

        payload = {
            "workload": f"road_network(n={g.n}, m={g.m}), weights 1..100",
            "k": K,
            "rho": RHO,
            "batch_sources": int(BATCH_SOURCES),
            "seconds": {k: round(v, 5) for k, v in times.items()},
            "speedup": {
                "warm_start": round(warm_speedup, 2),
                "cache_hit": round(cache_speedup, 2),
                "shm_vs_pickle": round(
                    times["batch_pickle"] / times["batch_shm"], 2
                ),
            },
            "planner_stats": {
                k: v for k, v in stats.items() if isinstance(v, int)
            },
        }
        out_path = os.environ.get("BENCH_SERVING_JSON", "BENCH_serving.json")
        with open(out_path, "w") as fh:
            json.dump(payload, fh, indent=2)
        report_sink.append(
            (
                "serving stack (road n=%d)" % g.n,
                "\n".join(
                    [
                        f"cold preprocess {times['cold_preprocess']:.3f}s vs "
                        f"warm artifact load {times['warm_load'] * 1e3:.1f}ms "
                        f"({warm_speedup:.0f}x)",
                        f"batch of {BATCH_SOURCES}: pickle "
                        f"{times['batch_pickle']:.3f}s, shm "
                        f"{times['batch_shm']:.3f}s (bit-identical)",
                        f"mixed workload x{len(workload)}: miss pass "
                        f"{times['cache_miss_pass'] * 1e3:.1f}ms, hit pass "
                        f"{times['cache_hit_pass'] * 1e3:.2f}ms "
                        f"({cache_speedup:.0f}x)",
                    ]
                ),
            )
        )
        # Acceptance gates (floors env-tunable for noisy CI runners; the
        # issue-level bars are 5x warm start and a measured cache-hit
        # speedup — typical measurements are far above both).
        min_warm = float(os.environ.get("BENCH_SERVING_MIN_WARM_SPEEDUP", "5.0"))
        min_cache = float(os.environ.get("BENCH_SERVING_MIN_CACHE_SPEEDUP", "5.0"))
        assert warm_speedup >= min_warm, payload
        assert cache_speedup >= min_cache, payload
