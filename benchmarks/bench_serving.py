"""Serving-layer benchmark: warm starts, cache hits, batches, threads.

The serving subsystem's claims, measured and gated on road-map
workloads:

1. **Warm start** — restoring the (k,ρ)-preprocessing from a persisted
   artifact must be ≥ 5× faster than re-running ``build_kr_graph``
   (it is typically orders of magnitude faster; the floor is
   env-tunable for noisy shared CI runners via
   ``BENCH_SERVING_MIN_WARM_SPEEDUP``).  The ``mmap=True`` warm path
   is timed alongside and must answer bit-identically.
2. **Query cache** — repeating a mixed workload against the planner
   must be served from the LRU row cache with a measured speedup
   (``BENCH_SERVING_MIN_CACHE_SPEEDUP`` floor) and zero extra solves.
3. **Shared-memory batches** — ``solve_many_shm`` must be bit-identical
   to the pickled ``solve_many`` on distances, parents and per-row
   instrumentation (asserted, not just timed).
4. **Concurrent serving** — 8 threads hammering one planner with a
   cache-hot mixed workload: the striped/single-flight design must
   beat a single-global-lock baseline by
   ``BENCH_SERVING_MIN_CONC_SPEEDUP`` (default ≥ 2×) in throughput,
   with every answer bit-identical to a serial planner.  Parallel
   throughput is physically capped by core count, so on boxes with
   fewer than 4 CPUs the floor degrades to a no-regression sanity
   check (recorded either way — the 2× claim is enforced where the
   cores exist, i.e. in CI).

Wall times and speedups land in ``BENCH_serving.json`` (path via
``BENCH_SERVING_JSON``) — the CI artifact tracking the serving-layer
perf trajectory from PR 4 onward.
"""

import json
import os
import threading
import time

import numpy as np
import pytest

from repro.core.solver import PreprocessedSSSP
from repro.graphs.generators import road_network
from repro.graphs.weights import random_integer_weights
from repro.preprocess import build_kr_graph
from repro.serve import (
    KNearest,
    QueryPlanner,
    load_artifact,
    save_artifact,
    solve_many_shm,
)

pytestmark = pytest.mark.paper_artifact("serving subsystem")

N, K, RHO = 3000, 2, 24
BATCH_SOURCES = 24
CACHE_REPEATS = 5

#: concurrency section: a larger graph so per-query answer construction
#: is numpy-dominated (the part that runs outside the GIL and therefore
#: actually parallelizes across request threads).
CONC_N = 12000
CONC_THREADS = 8
CONC_REPS = 30
CONC_HUBS = 16


@pytest.fixture(scope="module")
def big_road():
    g, _coords = road_network(N, seed=1)
    return random_integer_weights(g, low=1, high=100, seed=2)


def _timed(fn, *args, repeats=1, **kwargs):
    """Best-of-N wall time plus the last result."""
    best, result = float("inf"), None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn(*args, **kwargs)
        best = min(best, time.perf_counter() - t0)
    return best, result


class TestServing:
    """The PR-4 acceptance gate: warm-start ≥ 5× cold, measured cache
    speedup, shm/pickle bit-identity, and a JSON perf artifact."""

    def test_serving_stack_on_big_road(self, big_road, tmp_path, report_sink):
        g = big_road
        times: dict[str, float] = {}

        # Cold start: the full (k,rho)-construction a process pays when
        # it has no artifact.  Warm start: load + verify the persisted
        # bundle against the serving graph's content hash.
        times["cold_preprocess"], pre = _timed(
            build_kr_graph, g, K, RHO, heuristic="dp", repeats=2
        )
        artifact = tmp_path / "road.kr.npz"
        times["save_artifact"], _ = _timed(save_artifact, artifact, pre)
        times["warm_load"], warm_pre = _timed(
            load_artifact, artifact, expect_graph=g, repeats=2
        )
        assert warm_pre.graph == pre.graph
        assert np.array_equal(warm_pre.radii, pre.radii)
        warm_speedup = times["cold_preprocess"] / times["warm_load"]

        # the near-RAM-size knob: mmap'd arrays, identical contents,
        # checksum still verified (timed for the JSON artifact)
        times["warm_load_mmap"], mmap_pre = _timed(
            load_artifact, artifact, expect_graph=g, mmap=True, repeats=2
        )
        assert mmap_pre.graph == pre.graph
        assert np.array_equal(mmap_pre.radii, pre.radii)

        sp = PreprocessedSSSP.from_preprocessed(warm_pre, input_graph=g)
        rng = np.random.default_rng(5)
        sources = rng.choice(g.n, BATCH_SOURCES, replace=False)

        # Pickle vs shared-memory batch path: identical rows, and the
        # matrix path's wall time recorded alongside.  Both run over the
        # same 2-worker pool so per-row results really cross a process
        # boundary (inline n_jobs=1 would never serialize anything).
        times["batch_pickle"], results = _timed(
            sp.solve_many, sources, track_parents=True, n_jobs=2, repeats=2
        )
        t0 = time.perf_counter()
        dm = solve_many_shm(sp, sources, track_parents=True, n_jobs=2)
        times["batch_shm"] = time.perf_counter() - t0
        try:
            for i, res in enumerate(results):
                assert np.array_equal(dm.dist[i], res.dist)
                assert np.array_equal(dm.parent[i], res.parent)
                got = dm.result(i)
                assert (got.steps, got.substeps, got.relaxations) == (
                    res.steps,
                    res.substeps,
                    res.relaxations,
                )
        finally:
            dm.close()
            dm.unlink()

        # Cache: one mixed workload (full rows, routes, k-nearest over a
        # handful of hub sources), first pass solves, repeats must be
        # pure cache reads.
        hubs = sources[:8].tolist()
        workload = (
            [int(s) for s in hubs]
            + [(int(hubs[i]), int(hubs[-1 - i])) for i in range(4)]
            + [KNearest(int(hubs[0]), 10)]
        )
        planner = QueryPlanner(sp, capacity=64, track_parents=True)
        times["cache_miss_pass"], _ = _timed(planner.execute, workload)
        t0 = time.perf_counter()
        for _ in range(CACHE_REPEATS):
            planner.execute(workload)
        times["cache_hit_pass"] = (time.perf_counter() - t0) / CACHE_REPEATS
        stats = planner.stats()
        assert stats["solves"] == len(hubs)  # repeats added zero solves
        cache_speedup = times["cache_miss_pass"] / times["cache_hit_pass"]

        payload = {
            "workload": f"road_network(n={g.n}, m={g.m}), weights 1..100",
            "k": K,
            "rho": RHO,
            "batch_sources": int(BATCH_SOURCES),
            "seconds": {k: round(v, 5) for k, v in times.items()},
            "speedup": {
                "warm_start": round(warm_speedup, 2),
                "warm_start_mmap": round(
                    times["cold_preprocess"] / times["warm_load_mmap"], 2
                ),
                "cache_hit": round(cache_speedup, 2),
                "shm_vs_pickle": round(
                    times["batch_pickle"] / times["batch_shm"], 2
                ),
            },
            "planner_stats": {
                k: v for k, v in stats.items() if isinstance(v, int)
            },
        }
        out_path = os.environ.get("BENCH_SERVING_JSON", "BENCH_serving.json")
        with open(out_path, "w") as fh:
            json.dump(payload, fh, indent=2)
        report_sink.append(
            (
                "serving stack (road n=%d)" % g.n,
                "\n".join(
                    [
                        f"cold preprocess {times['cold_preprocess']:.3f}s vs "
                        f"warm artifact load {times['warm_load'] * 1e3:.1f}ms "
                        f"({warm_speedup:.0f}x)",
                        f"batch of {BATCH_SOURCES}: pickle "
                        f"{times['batch_pickle']:.3f}s, shm "
                        f"{times['batch_shm']:.3f}s (bit-identical)",
                        f"mixed workload x{len(workload)}: miss pass "
                        f"{times['cache_miss_pass'] * 1e3:.1f}ms, hit pass "
                        f"{times['cache_hit_pass'] * 1e3:.2f}ms "
                        f"({cache_speedup:.0f}x)",
                    ]
                ),
            )
        )
        # Acceptance gates (floors env-tunable for noisy CI runners; the
        # issue-level bars are 5x warm start and a measured cache-hit
        # speedup — typical measurements are far above both).
        min_warm = float(os.environ.get("BENCH_SERVING_MIN_WARM_SPEEDUP", "5.0"))
        min_cache = float(os.environ.get("BENCH_SERVING_MIN_CACHE_SPEEDUP", "5.0"))
        assert warm_speedup >= min_warm, payload
        assert cache_speedup >= min_cache, payload


@pytest.fixture(scope="module")
def conc_solver():
    """The concurrency workload's solver: bigger rows than the main
    test so answer construction is numpy-bound, not dispatch-bound."""
    g, _coords = road_network(CONC_N, seed=11)
    g = random_integer_weights(g, low=1, high=100, seed=12)
    pre = build_kr_graph(g, K, RHO, heuristic="dp")
    return g, PreprocessedSSSP.from_preprocessed(pre, input_graph=g)


class _GlobalLockPlanner:
    """The naive thread-safety baseline: one mutex held across every
    ``execute`` — correct, but every request serializes behind it."""

    def __init__(self, planner: QueryPlanner) -> None:
        self._planner = planner
        self._lock = threading.Lock()

    def execute(self, queries):
        with self._lock:
            return self._planner.execute(queries)

    def warm(self, sources):
        with self._lock:
            self._planner.warm(sources)

    def stats(self):
        with self._lock:
            return self._planner.stats()


def _conc_workload() -> list:
    hubs = list(range(CONC_HUBS))
    return (
        [hubs[i] for i in range(4)]
        + [(hubs[i], hubs[CONC_HUBS - 1 - i]) for i in range(4)]
        + [KNearest(hubs[i], 64) for i in range(4)]
    )


def _hammer(planner, workload, n_threads: int, reps: int):
    """Throughput of ``n_threads`` × ``reps`` cache-hot batches; also
    returns one thread's final answers for the identity assert."""
    barrier = threading.Barrier(n_threads + 1)
    errors: list[BaseException] = []
    answers: list = []

    def worker(collect: bool) -> None:
        try:
            barrier.wait()
            for _ in range(reps):
                got = planner.execute(workload)
            if collect:
                answers.extend(got)
        except BaseException as exc:  # noqa: BLE001 - surfaced via assert
            errors.append(exc)

    threads = [
        threading.Thread(target=worker, args=(i == 0,))
        for i in range(n_threads)
    ]
    for t in threads:
        t.start()
    barrier.wait()
    t0 = time.perf_counter()
    for t in threads:
        t.join()
    wall = time.perf_counter() - t0
    assert not errors, errors
    return n_threads * reps * len(workload) / wall, answers


class TestConcurrentServing:
    """The PR-5 gate: striped/single-flight planner vs a single global
    lock under 8 threads of cache-hot mixed traffic — answers must stay
    bit-identical to the serial path, and on machines with enough cores
    the striped design must win ≥ 2× in throughput (env-overridable;
    degraded to a sanity floor below 4 CPUs, where parallel throughput
    is physically capped)."""

    def test_threaded_throughput_vs_global_lock(self, conc_solver, report_sink):
        g, sp = conc_solver
        workload = _conc_workload()
        hubs = list(range(CONC_HUBS))

        striped = QueryPlanner(sp, capacity=64, track_parents=True, stripes=8)
        baseline = _GlobalLockPlanner(
            QueryPlanner(sp, capacity=64, track_parents=True, stripes=1)
        )
        striped.warm(hubs)
        baseline.warm(hubs)

        thr_lock, lock_answers = _hammer(
            baseline, workload, CONC_THREADS, CONC_REPS
        )
        thr_striped, striped_answers = _hammer(
            striped, workload, CONC_THREADS, CONC_REPS
        )
        speedup = thr_striped / thr_lock

        # cache-hot means exactly CONC_HUBS solves each, ever
        s_stats, b_stats = striped.stats(), baseline.stats()
        assert s_stats["solves"] == b_stats["solves"] == CONC_HUBS
        assert s_stats["hits"] + s_stats["misses"] == s_stats["lookups"]
        assert s_stats["cached_rows"] <= s_stats["capacity"]

        # answers bit-identical to a fresh serial planner (and to the
        # global-lock baseline, transitively)
        serial = QueryPlanner(sp, capacity=64, track_parents=True, stripes=1)
        expected = serial.execute(workload)
        for got_set in (striped_answers, lock_answers):
            assert len(got_set) == len(expected)
            for got, want in zip(got_set, expected):
                if isinstance(want, np.ndarray):
                    assert np.array_equal(got, want)
                elif hasattr(want, "vertices"):  # Nearest
                    assert np.array_equal(got.vertices, want.vertices)
                    assert np.array_equal(got.distances, want.distances)
                else:  # Route
                    assert got == want

        cpus = os.cpu_count() or 1
        min_conc = float(
            os.environ.get("BENCH_SERVING_MIN_CONC_SPEEDUP", "2.0")
        )
        floor = min_conc
        if cpus < 4:
            # 8 threads cannot beat a serializing lock 2x without cores
            # to run on; keep a no-regression sanity floor and record
            # the measurement — CI (>= 4 vCPUs) enforces the real bar.
            floor = min(min_conc, 0.5 if cpus == 1 else 1.0)

        entry = {
            "workload": (
                f"road_network(n={g.n}, m={g.m}), cache-hot mixed batch "
                f"x{len(workload)} ({CONC_THREADS} threads x {CONC_REPS} reps)"
            ),
            "threads": CONC_THREADS,
            "cpus": cpus,
            "throughput_striped_qps": round(thr_striped),
            "throughput_global_lock_qps": round(thr_lock),
            "speedup_vs_global_lock": round(speedup, 2),
            "gate_floor": floor,
            "planner_stats": {
                k: v for k, v in s_stats.items() if isinstance(v, int)
            },
        }
        out_path = os.environ.get("BENCH_SERVING_JSON", "BENCH_serving.json")
        payload = {}
        if os.path.exists(out_path):
            with open(out_path) as fh:
                payload = json.load(fh)
        payload["concurrency"] = entry
        with open(out_path, "w") as fh:
            json.dump(payload, fh, indent=2)
        report_sink.append(
            (
                f"concurrent serving (road n={g.n}, {CONC_THREADS} threads)",
                f"striped+single-flight {thr_striped:,.0f} q/s vs "
                f"global lock {thr_lock:,.0f} q/s ({speedup:.2f}x, "
                f"{cpus} cpu(s), floor {floor}x)",
            )
        )
        assert speedup >= floor, entry
