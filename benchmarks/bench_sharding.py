"""Sharding benchmark: partition quality, stitch overhead, shard economics.

The sharded architecture's claims, measured and gated on a road-map
workload:

1. **Partition quality** — both shipped partitioners (`contiguous` RCM
   ranges, `ldd` ball growing) are tabulated on edge cut, cut fraction,
   balance and boundary size, and each must cut far fewer edges than an
   arbitrary equal-size labeling (the locality they exist to exploit).
2. **Intra-shard economics** — the unit of compute a shard box performs
   (one SSSP solve inside its shard) must be ≥
   ``BENCH_SHARDING_MIN_INTRA_SPEEDUP`` × faster than a full-graph
   solve on the unsharded preprocessing (default 2×; with S shards of
   ~n/S vertices the measured ratio tracks ≥ S).  This is the capacity
   argument for sharding: per-box work shrinks with the shard, while
   the overlay stitch amortizes across the row cache.
3. **Cross- vs intra-shard query latency** — routed through the
   ``ShardRouter``: cold rows (dominated by the overlay stitch, so
   intra and cross cost about the same), then cache-warm routes, where
   intra-shard pairs short-circuit to the shard planner's path and
   cross-shard pairs pay entry search + overlay chain walk.  Both
   regimes are recorded; answers are asserted bit-identical to the
   unsharded ``RoutingService`` before anything is timed.

Wall times, the partition table and the speedups land in
``BENCH_sharding.json`` (path via ``BENCH_SHARDING_JSON``) — the CI
artifact tracking the sharding-layer trajectory from PR 8 onward.
"""

import json
import os
import time

import numpy as np
import pytest

from repro.core.solver import PreprocessedSSSP
from repro.graphs import compute_partition
from repro.graphs.generators import road_network
from repro.graphs.weights import random_integer_weights
from repro.preprocess import build_kr_graph
from repro.serve import RoutingService, ShardRouter

pytestmark = pytest.mark.paper_artifact("sharded serving")

N, K, RHO = 3000, 2, 24
N_SHARDS = 4
SOLVE_SOURCES = 8
ROUTE_PAIRS = 12
WARM_REPEATS = 5


@pytest.fixture(scope="module")
def big_road():
    g, _coords = road_network(N, seed=1)
    return random_integer_weights(g, low=1, high=100, seed=2)


def _median_time(fn, inputs, repeats=1):
    """Median over per-input best-of-N wall times."""
    times = []
    for x in inputs:
        best = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            fn(x)
            best = min(best, time.perf_counter() - t0)
        times.append(best)
    return float(np.median(times))


def _pairs(labels, rng, *, same_shard: bool, want: int) -> list:
    n = len(labels)
    pairs = []
    while len(pairs) < want:
        s, t = (int(v) for v in rng.integers(0, n, 2))
        if s == t:
            continue
        if (labels[s] == labels[t]) == same_shard:
            pairs.append((s, t))
    return pairs


class TestSharding:
    """The PR-8 gate: partition table, the intra-shard solve floor, and
    the stitch-overhead measurement — plus parity asserts throughout."""

    def test_sharding_stack_on_big_road(self, big_road, report_sink):
        g = big_road
        payload: dict = {
            "workload": f"road_network(n={g.n}, m={g.m}), weights 1..100",
            "k": K,
            "rho": RHO,
            "n_shards": N_SHARDS,
        }

        # -- partition table: contiguous vs ldd vs random labels ---------
        rng = np.random.default_rng(0)
        random_labels = rng.permutation(np.arange(g.n) % N_SHARDS)
        random_cut = sum(
            1 for u, v, _w in g.iter_edges() if random_labels[u] != random_labels[v]
        )
        table = {}
        for method in ("contiguous", "ldd"):
            t0 = time.perf_counter()
            part = compute_partition(g, method, N_SHARDS, seed=0)
            t_part = time.perf_counter() - t0
            table[method] = {
                "edge_cut": int(part.edge_cut),
                "cut_fraction": round(part.edge_cut / g.m, 4),
                "balance": round(part.balance, 3),
                "boundary_vertices": int(len(part.boundary_vertices)),
                "seconds": round(t_part, 5),
            }
            assert part.balance < 2.0, table
            # the locality bar: far below an arbitrary equal-size split
            assert part.edge_cut < random_cut / 2, (table, random_cut)
        payload["partition"] = {**table, "random_label_cut": int(random_cut)}

        # -- intra-shard economics: shard solve vs full-graph solve ------
        times: dict[str, float] = {}
        t0 = time.perf_counter()
        router = ShardRouter(
            g, n_shards=N_SHARDS, partition="contiguous", k=K, rho=RHO
        )
        times["sharded_cold_start"] = time.perf_counter() - t0
        t0 = time.perf_counter()
        pre = build_kr_graph(g, K, RHO, heuristic="dp")
        times["unsharded_preprocess"] = time.perf_counter() - t0
        sp_full = PreprocessedSSSP.from_preprocessed(pre, input_graph=g)
        service = RoutingService(solver=sp_full, cache_capacity=256)

        rng = np.random.default_rng(5)
        sources = [int(s) for s in rng.choice(g.n, SOLVE_SOURCES, replace=False)]
        times["full_graph_solve"] = _median_time(
            lambda s: sp_full.solve(s), sources, repeats=2
        )
        # the biggest shard is the worst-case per-box unit of work
        sizes = [len(v) for v in router.sharded.shard_vertices]
        big = int(np.argmax(sizes))
        sp_shard = PreprocessedSSSP.from_preprocessed(router.sharded.shards[big])
        shard_sources = [s % sizes[big] for s in sources]
        times["shard_solve"] = _median_time(
            lambda s: sp_shard.solve(s), shard_sources, repeats=2
        )
        intra_speedup = times["full_graph_solve"] / times["shard_solve"]

        # -- parity before timing queries --------------------------------
        for s in sources[:3]:
            assert np.array_equal(router.distances(s), service.distances(s))

        # -- cross- vs intra-shard routed query latency ------------------
        labels = router.sharded.labels
        intra = _pairs(labels, rng, same_shard=True, want=ROUTE_PAIRS)
        cross = _pairs(labels, rng, same_shard=False, want=ROUTE_PAIRS)
        for s, t in intra + cross:
            assert router.route(s, t).distance == service.route(s, t).distance

        def cold_route(pair):
            fresh = ShardRouter(sharded=router.sharded)
            return fresh.route(*pair)

        times["cold_route_intra"] = _median_time(cold_route, intra[:4])
        times["cold_route_cross"] = _median_time(cold_route, cross[:4])

        warm = ShardRouter(sharded=router.sharded)
        warm.warm({s for s, _t in intra + cross})
        times["warm_route_intra"] = _median_time(
            lambda p: warm.route(*p), intra, repeats=WARM_REPEATS
        )
        times["warm_route_cross"] = _median_time(
            lambda p: warm.route(*p), cross, repeats=WARM_REPEATS
        )

        payload["seconds"] = {k: round(v, 6) for k, v in times.items()}
        payload["speedup"] = {
            "intra_shard_solve": round(intra_speedup, 2),
            "warm_intra_vs_cross": round(
                times["warm_route_cross"] / times["warm_route_intra"], 2
            ),
        }
        payload["router_stats"] = {
            k: v for k, v in warm.stats().items() if isinstance(v, int)
        }
        out_path = os.environ.get("BENCH_SHARDING_JSON", "BENCH_sharding.json")
        with open(out_path, "w") as fh:
            json.dump(payload, fh, indent=2)
        report_sink.append(
            (
                f"sharding (road n={g.n}, {N_SHARDS} shards)",
                "\n".join(
                    [
                        "cut: contiguous %d / ldd %d / random %d edges"
                        % (
                            table["contiguous"]["edge_cut"],
                            table["ldd"]["edge_cut"],
                            random_cut,
                        ),
                        f"shard solve {times['shard_solve'] * 1e3:.2f}ms vs "
                        f"full-graph {times['full_graph_solve'] * 1e3:.2f}ms "
                        f"({intra_speedup:.1f}x)",
                        f"warm routes: intra "
                        f"{times['warm_route_intra'] * 1e6:.0f}us, cross "
                        f"{times['warm_route_cross'] * 1e6:.0f}us; cold "
                        f"(stitch-bound) intra "
                        f"{times['cold_route_intra'] * 1e3:.1f}ms, cross "
                        f"{times['cold_route_cross'] * 1e3:.1f}ms",
                    ]
                ),
            )
        )
        # Acceptance gate (floor env-tunable for noisy CI runners): the
        # intra-shard unit of work must beat the full-graph solve.  With
        # 4 shards the measured ratio is typically >= 4x; default 2x.
        floor = float(os.environ.get("BENCH_SHARDING_MIN_INTRA_SPEEDUP", "2.0"))
        assert intra_speedup >= floor, payload
