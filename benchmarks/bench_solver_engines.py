"""Engine ablation: wall-clock and instrumentation across all solvers.

Not a paper artifact per se — the paper reports steps, not seconds — but
the design decisions DESIGN.md calls out (vectorized engine vs faithful
BST engine; Radius-Stepping vs the ∆-stepping / Dijkstra / Bellman–Ford
baselines) deserve a timing ablation.  All solvers must agree on
distances; the vectorized engine should not be slower than the BST
engine (that is its reason to exist), and the calendar-queue bucket
scheduler should not be slower than the heap schedule it replaces on
the hot path (compare ``test_radius_stepping_bucket`` against
``test_radius_stepping_vectorized`` in the benchmark table — the bucket
rows should sit at or below the heap rows on every weighted graph).
"""

import numpy as np
import pytest

from repro.core import (
    bellman_ford,
    delta_stepping,
    dijkstra,
    landmark_sssp,
    radius_stepping,
    radius_stepping_bst,
    suggest_delta,
)
from repro.core.solver import PreprocessedSSSP
from repro.engine import solve_with_engine
from repro.graphs.generators import road_network
from repro.graphs.weights import random_integer_weights
from repro.preprocess import build_kr_graph

pytestmark = pytest.mark.paper_artifact("engine ablation")


@pytest.fixture(scope="module")
def workload():
    base, _coords = road_network(900, seed=4)
    g = random_integer_weights(base, low=1, high=1000, seed=5)
    pre = build_kr_graph(g, k=2, rho=16, heuristic="dp")
    ref = dijkstra(g, 0).dist
    return g, pre, ref


def test_dijkstra_baseline(benchmark, workload):
    g, _, ref = workload
    res = benchmark(dijkstra, g, 0)
    assert np.allclose(res.dist, ref)


def test_bellman_ford_baseline(benchmark, workload):
    g, _, ref = workload
    res = benchmark(bellman_ford, g, 0)
    assert np.allclose(res.dist, ref)


def test_delta_stepping_baseline(benchmark, workload):
    g, _, ref = workload
    delta = suggest_delta(g)
    res = benchmark(delta_stepping, g, 0, delta)
    assert np.allclose(res.dist, ref)


def test_landmark_baseline(benchmark, workload):
    """The Ullman–Yannakakis / Klein–Subramanian family of Table 1:
    comparable depth knob, much more work than Radius-Stepping."""
    g, pre, ref = workload
    res = benchmark.pedantic(
        landmark_sssp, args=(g, 0, 8), kwargs=dict(seed=0), rounds=2, iterations=1
    )
    assert np.allclose(res.dist, ref)
    rs = radius_stepping(pre.graph, 0, pre.radii)
    assert res.relaxations > rs.relaxations  # the work gap Table 1 charges


def test_radius_stepping_vectorized(benchmark, workload):
    g, pre, ref = workload
    res = benchmark(radius_stepping, pre.graph, 0, pre.radii)
    assert np.allclose(res.dist, ref)
    assert res.max_substeps <= 2 + 2  # Thm 3.2 at k=2


def test_radius_stepping_bucket(benchmark, workload):
    """The calendar-queue schedule: same d_i sequence as the heap engine
    (identical steps/substeps, pinned below), O(1) batched pushes."""
    g, pre, ref = workload
    res = benchmark(solve_with_engine, "bucket", pre.graph, 0, pre.radii)
    assert np.allclose(res.dist, ref)
    assert res.max_substeps <= 2 + 2  # Thm 3.2 at k=2


def test_solve_many_batched(benchmark, workload):
    """Multi-source serving: 8 queries through the facade, serial pool
    path (the n_jobs>1 fork path is exercised by tests/core)."""
    g, pre, ref = workload
    sp = PreprocessedSSSP.from_preprocessed(pre, input_graph=g)
    sources = [0, 100, 200, 300, 400, 500, 600, 700]
    results = benchmark.pedantic(
        sp.solve_many, args=(sources,), rounds=3, iterations=1
    )
    assert np.allclose(results[0].dist, ref)


def test_radius_stepping_bst_reference(benchmark, workload):
    g, pre, ref = workload
    res = benchmark.pedantic(
        radius_stepping_bst,
        args=(pre.graph, 0, pre.radii),
        rounds=2,
        iterations=1,
    )
    assert np.allclose(res.dist, ref)


def test_engines_step_parity(workload):
    """The engines implement one algorithm: identical step counts."""
    _, pre, _ = workload
    a = radius_stepping(pre.graph, 0, pre.radii)
    b = radius_stepping_bst(pre.graph, 0, pre.radii)
    c = solve_with_engine("bucket", pre.graph, 0, pre.radii)
    assert (a.steps, a.substeps) == (b.steps, b.substeps)
    assert (a.steps, a.substeps) == (c.steps, c.substeps)
    assert np.array_equal(a.dist, c.dist)
