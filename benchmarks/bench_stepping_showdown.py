"""Stepping-algorithm showdown: every registered engine, head-to-head.

Dong, Gu & Sun (arXiv 2105.06145) frame ρ-stepping, ∆-stepping and
radius-stepping as one algorithm family whose per-graph winner varies
widely across graph families; this benchmark measures that claim on our
implementations.  Every registered engine races on one representative
graph per family — road-like, power-law, small-world, uniform random —
via the same calibration machinery serving uses
(:func:`repro.engine.autoselect.race_engines`: identical sampled
sources for every engine, a wall-clock budget per engine so the slow
references cannot stall the suite).

Output: ``BENCH_stepping.json`` (env ``BENCH_STEPPING_JSON``) with the
per-family timing table, the measured winner, and the engine
:func:`~repro.engine.autoselect.pick_engine` selects.  Gates (all
env-tunable for noisy shared runners):

* the winner beats the worst engine by ≥ ``BENCH_STEPPING_MIN_SPEEDUP``
  (default 1.5×) on at least one family — the family is genuinely
  non-uniform, so picking per graph matters;
* the winner is strictly faster than ``vectorized`` (the previous fixed
  serving default) on ≥ ``BENCH_STEPPING_MIN_DEFAULT_WINS`` families
  (default 2) — auto-selection pays for itself;
* ``pick_engine``'s independent race lands within
  ``BENCH_STEPPING_TOL`` (default 50%) of the table's best mean — the
  serving-side selector agrees with the head-to-head measurement.
"""

import json
import os

import pytest

from repro.engine.autoselect import DEFAULT_CANDIDATES, pick_engine, race_engines
from repro.engine.registry import available_engines
from repro.graphs.generators import erdos_renyi, road_network, scale_free, small_world
from repro.graphs.weights import random_integer_weights

pytestmark = pytest.mark.paper_artifact("stepping-algorithm showdown")

N = 600
SAMPLES = 2
SEED = 7


def _families():
    """One representative weighted graph per generator family."""
    road, _ = road_network(N, seed=1)
    return {
        "road": random_integer_weights(road, low=1, high=100, seed=2),
        "power-law": random_integer_weights(
            scale_free(N, attach=4, seed=3), low=1, high=100, seed=4
        ),
        "small-world": random_integer_weights(
            small_world(N, k=6, p=0.1, seed=5), low=1, high=100, seed=6
        ),
        "random": random_integer_weights(
            erdos_renyi(N, 3 * N, seed=7), low=1, high=100, seed=8
        ),
    }


def test_stepping_showdown(report_sink):
    budget = float(os.environ.get("BENCH_STEPPING_BUDGET", "3.0"))
    tol = float(os.environ.get("BENCH_STEPPING_TOL", "0.5"))
    min_speedup = float(os.environ.get("BENCH_STEPPING_MIN_SPEEDUP", "1.5"))
    min_default_wins = int(os.environ.get("BENCH_STEPPING_MIN_DEFAULT_WINS", "2"))

    engines = available_engines()
    table: dict[str, dict] = {}
    for family, graph in _families().items():
        timings = race_engines(
            graph, engines=engines, samples=SAMPLES, seed=SEED, budget=budget
        )
        assert timings, f"no engine completed a solve on {family}"
        winner = min(timings, key=timings.__getitem__)
        best = timings[winner]
        worst = max(timings.values())
        auto = pick_engine(
            graph, engines=DEFAULT_CANDIDATES, samples=SAMPLES, seed=SEED,
            budget=budget,
        )
        table[family] = {
            "n": graph.n,
            "m": graph.m,
            "seconds": {k: round(v, 5) for k, v in sorted(timings.items())},
            "winner": winner,
            "winner_vs_best": 1.0,  # winner is the table argmin by construction
            "worst_over_winner": round(worst / best, 2),
            "auto_choice": auto,
            "auto_over_best": round(timings.get(auto, float("inf")) / best, 2),
            "winner_over_default": round(
                timings.get("vectorized", float("inf")) / best, 2
            ),
        }

    payload = {
        "workload": f"one graph per family, n={N}, integer weights 1..100, "
        f"{SAMPLES} sources per engine (degree-biased, seed={SEED})",
        "engines": list(engines),
        "families": table,
    }
    out_path = os.environ.get("BENCH_STEPPING_JSON", "BENCH_stepping.json")
    with open(out_path, "w") as fh:
        json.dump(payload, fh, indent=2)

    report_sink.append(
        (
            "stepping showdown (n=%d per family)" % N,
            "\n".join(
                f"{family:>12}: winner {row['winner']} "
                f"({row['seconds'][row['winner']]:.4f}s/solve, "
                f"{row['worst_over_winner']:.1f}x over worst, "
                f"{row['winner_over_default']:.2f}x vs vectorized; "
                f"auto picks {row['auto_choice']})"
                for family, row in table.items()
            ),
        )
    )

    # Gate 1: the family is non-uniform — on at least one family the
    # winner beats the worst engine by the floor.
    assert any(
        row["worst_over_winner"] >= min_speedup for row in table.values()
    ), payload

    # Gate 2: auto-selection pays for itself — the measured winner is
    # strictly faster than the previous fixed default ("vectorized") on
    # at least `min_default_wins` families.
    default_wins = sum(
        1 for row in table.values() if row["winner_over_default"] > 1.0
    )
    assert default_wins >= min_default_wins, payload

    # Gate 3: pick_engine (its own race, same sources) selects an engine
    # within tolerance of the head-to-head table's best on every family.
    for family, row in table.items():
        assert row["auto_over_best"] <= 1.0 + tol, (family, payload)
