"""Substrate microbenchmarks: treap set operations and the CSR kernel.

The paper's Section 3.3 costs rest on two substrates: balanced-BST
split/union/difference (refs [3,21,22,23]) and the data-parallel frontier
gather (the CRCW relaxation).  These benches time both and sanity-check
the treap's expected O(log n) height — the property every cost bound
charges for.
"""

import numpy as np
import pytest

from repro.core.bfs import gather_frontier_arcs
from repro.graphs.generators import grid_2d
from repro.pram import treap
from repro.pram.ordered_set import VertexKeyedSet

pytestmark = pytest.mark.paper_artifact("substrates")

N = 2000


@pytest.fixture(scope="module")
def keys():
    rng = np.random.default_rng(0)
    vals = rng.permutation(N).astype(float)
    return [(float(v), i) for i, v in enumerate(vals)]


def test_treap_build_and_height(benchmark, keys):
    def build():
        t = None
        for key in keys:
            t = treap.insert(t, key)
        return t

    t = benchmark.pedantic(build, rounds=2, iterations=1)
    assert treap.size(t) == N
    # expected height ~ 3 log2 n for random priorities
    assert treap.height(t) <= 6 * np.log2(N)


def test_treap_union(benchmark, keys):
    a = treap.from_sorted(sorted(keys[: N // 2]))
    b = treap.from_sorted(sorted(keys[N // 2 :]))
    out = benchmark(treap.union, a, b)
    assert treap.size(out) == N


def test_treap_split(benchmark, keys):
    t = treap.from_sorted(sorted(keys))
    mid = sorted(keys)[N // 2]
    lo, found, hi = benchmark(treap.split, t, mid)
    assert found
    assert treap.size(lo) + treap.size(hi) == N - 1


def test_vertex_set_solver_pattern(benchmark):
    """The Q-set workload of one Algorithm-2 step: bulk union, then
    split-min, then bulk difference."""
    rng = np.random.default_rng(1)

    def step():
        q = VertexKeyedSet()
        q.union_values((int(v), float(d)) for v, d in enumerate(rng.random(500)))
        taken = q.split_leq(0.25)
        q.difference_vertices(v for _, v in taken)
        return len(q)

    remaining = benchmark.pedantic(step, rounds=3, iterations=1)
    assert 0 < remaining < 500


def test_csr_frontier_gather(benchmark):
    g = grid_2d(60, 60)
    frontier = np.arange(0, g.n, 7, dtype=np.int64)
    arcpos, tails = benchmark(gather_frontier_arcs, g, frontier)
    assert len(arcpos) == len(tails)
    assert len(arcpos) == int(np.sum(g.degrees()[frontier]))
