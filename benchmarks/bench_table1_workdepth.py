"""Table 1: measured PRAM work/depth of the Algorithm-2 engine.

The paper's Table 1 is analytic — O((m + nρ) log n) work and
O((n/ρ) log n log ρL) depth for this work.  The bench runs the BST engine
with a cost ledger on preprocessed grids of growing size and asserts the
measured totals track the bounds: the work ratio stays O(1) across sizes
and the depth ratio stays O(1) across ρ (both would diverge if the
implementation lost a factor somewhere).
"""

import pytest

from repro.experiments.workdepth import (
    render_table1,
    render_workdepth,
    run_workdepth,
)

pytestmark = pytest.mark.paper_artifact("Table 1")

SIDES = (8, 12, 16)
RHOS = (4, 8, 16)


def test_table1_workdepth(benchmark, report_sink):
    points = benchmark.pedantic(
        run_workdepth,
        kwargs=dict(sides=SIDES, rhos=RHOS, k=2),
        rounds=1,
        iterations=1,
    )
    assert len(points) == len(SIDES) * len(RHOS)
    work_ratios = [p.work_ratio for p in points]
    depth_ratios = [p.depth_ratio for p in points]
    # Work-efficiency: measured work / (k m log n) bounded, not growing
    # systematically with n (allow 3x drift across a 4x size range).
    assert max(work_ratios) <= 3.0 * min(work_ratios)
    assert max(work_ratios) < 50.0
    # Depth tracks (n/rho) log n log(rho L): bounded ratio across the sweep.
    assert max(depth_ratios) <= 5.0 * min(depth_ratios)
    # More processors help more at larger rho: depth falls as rho rises
    # within each graph size.
    for side in SIDES:
        per_size = [p for p in points if p.n >= side * side]
        by_rho = {p.rho: p.depth for p in per_size if p.n == per_size[0].n}
        rhos = sorted(by_rho)
        assert all(
            by_rho[a] >= by_rho[b] * 0.8 for a, b in zip(rhos, rhos[1:])
        ), by_rho
    report_sink.append(("Table 1 (paper bounds)", render_table1()))
    report_sink.append(("Table 1 (measured ledger)", render_workdepth(points)))
