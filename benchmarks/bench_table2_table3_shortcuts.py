"""Tables 2 & 3: added-edge factors for the greedy and DP heuristics
across k ∈ sweep and ρ ∈ sweep, with the "red. rounds" column.

Paper reference points (k, ρ, factor): greedy on roadNet-PA (3, 50) →
6.05 vs DP 3.59; greedy on web-Stanford (3, 100) → 39.99 vs DP 0.13 —
DP collapses on scale-free graphs, which this bench asserts as a shape.
"""

import pytest

from repro.experiments.shortcut_edges import (
    render_factor_table,
    run_shortcut_suite,
)

pytestmark = pytest.mark.paper_artifact("Tables 2 and 3")


@pytest.fixture(scope="module")
def suite():
    return run_shortcut_suite(
        "tiny",
        datasets=("road-pa", "web-st", "grid2d"),
        ks=(2, 3),
        rhos=(5, 10, 20, 50),
        with_rounds=True,
    )


def test_table2_greedy(benchmark, suite, report_sink):
    out = benchmark.pedantic(
        render_factor_table, args=(suite, "greedy"), rounds=3, iterations=1
    )
    assert "red. rounds" in out
    report_sink.append(("Table 2 (greedy factors)", out))


def test_table3_dp(benchmark, suite, report_sink):
    out = benchmark.pedantic(
        render_factor_table, args=(suite, "dp"), rounds=3, iterations=1
    )
    report_sink.append(("Table 3 (DP factors)", out))


def test_shape_webgraph_gap(suite):
    """The paper's key §5.2 finding: greedy ≫ DP on webgraphs, while on
    grids/roads the two are within a small factor."""
    g_web = suite.factor("web-st", "greedy", 3, 50)
    d_web = suite.factor("web-st", "dp", 3, 50)
    assert d_web <= g_web
    g_grid = suite.factor("grid2d", "greedy", 3, 50)
    d_grid = suite.factor("grid2d", "dp", 3, 50)
    if d_grid > 0:
        web_gap = (g_web + 1e-9) / (d_web + 1e-9)
        grid_gap = g_grid / d_grid
        assert web_gap >= grid_gap * 0.5  # webgraph gap at least comparable


def test_shape_factors_grow_with_rho(suite):
    for name in ("road-pa", "grid2d"):
        factors = [suite.factor(name, "dp", 2, r) for r in (5, 10, 20, 50)]
        assert factors == sorted(factors)
