"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures at the
``tiny`` scale preset (n ≈ 1k per graph) so the whole suite completes in
minutes on one core, and prints the rendered paper-style output — run

    pytest benchmarks/ --benchmark-only -s

to see the regenerated tables alongside the timings.  The
``--scale large`` CLI (``python -m repro.experiments``) produces the same
reports closer to paper scale.
"""

from __future__ import annotations

import pytest

from repro.experiments import get_scale, make_all_datasets


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "paper_artifact(name): the table/figure this bench regenerates"
    )


@pytest.fixture(scope="session")
def tiny_scale():
    return get_scale("tiny")


@pytest.fixture(scope="session")
def datasets(tiny_scale):
    """All six evaluation graphs at tiny scale, built once per session."""
    return make_all_datasets(tiny_scale)


@pytest.fixture(scope="session")
def report_sink():
    """Collects rendered reports; printed at the end of the session."""
    reports: list[tuple[str, str]] = []
    yield reports
    if reports:
        print("\n\n" + "=" * 72)
        print("Regenerated paper artifacts (tiny scale)")
        print("=" * 72)
        for title, body in reports:
            print(f"\n--- {title} ---")
            print(body)
