#!/usr/bin/env python
"""Table 1, measured: Radius-Stepping vs the landmark baseline family.

The paper's Table 1 places Radius-Stepping against earlier
work/depth-tradeoff algorithms — notably the Ullman–Yannakakis /
Klein–Subramanian landmark family, which buys O~(t) depth by running
hop-limited searches from ~(n ln n)/t sampled landmarks.  Both expose a
knob (their t, our ρ), so this example sweeps the knobs to comparable
depth budgets and compares the *work* (arc relaxations) each algorithm
pays — the quantity where Radius-Stepping's near-linear bound wins.

Run:  python examples/baseline_tradeoffs.py
"""

import numpy as np

from repro import build_kr_graph, dijkstra, generators, radius_stepping
from repro.core import landmark_sssp
from repro.graphs import random_integer_weights

# t below ~3·ln n clamps the landmark sample at n (every vertex); the
# sweep starts where the sample genuinely shrinks so the work trade shows.
T_SWEEP = (16, 32, 64)
RHO_SWEEP = (8, 16, 32)


def main(n: int = 800, t_sweep: tuple = T_SWEEP, rho_sweep: tuple = RHO_SWEEP) -> None:
    road, _coords = generators.road_network(n, seed=21)
    graph = random_integer_weights(road, low=1, high=1000, seed=22)
    ref = dijkstra(graph, 0).dist
    print(f"graph: {graph.n} vertices, {graph.m} edges\n")

    print("landmark SSSP (Ullman–Yannakakis / Klein–Subramanian family):")
    print(f"{'t':>5} {'landmarks':>10} {'depth~t':>8} {'relaxations':>12}")
    for t in t_sweep:
        res = landmark_sssp(graph, 0, t, seed=0)
        assert np.allclose(res.dist, ref)
        print(
            f"{t:>5} {res.params['landmarks']:>10} {res.substeps:>8} "
            f"{res.relaxations:>12}"
        )

    print("\nradius-stepping (after one-time (k=2, rho) preprocessing):")
    print(f"{'rho':>5} {'steps':>10} {'substeps':>8} {'relaxations':>12}")
    for rho in rho_sweep:
        pre = build_kr_graph(graph, k=2, rho=rho, heuristic="dp")
        res = radius_stepping(pre.graph, 0, pre.radii)
        assert np.allclose(res.dist, ref)
        print(f"{rho:>5} {res.steps:>10} {res.substeps:>8} {res.relaxations:>12}")

    print(
        "\nreading: the landmark family multiplies its work by the landmark"
        "\ncount (s hop-limited searches over the whole graph), while"
        "\nradius-stepping relaxes each vertex's arcs O(k) times total —"
        "\nthe O((m + nρ) log n) vs O((nρ² + m)·…) work gap of Table 1."
    )


if __name__ == "__main__":
    main()
