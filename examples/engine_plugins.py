#!/usr/bin/env python
"""Engine plugins: write a custom StepSchedule, register it, serve it.

The engine subsystem (:mod:`repro.engine`) factors every stepping
algorithm into one data-parallel relaxation loop plus a *step schedule*
that answers "what is the next round distance d_i?".  This example
builds a schedule the library does not ship — **geometric stepping**,
where the round boundaries grow as ``d_i = d_0 · growth^i`` (the annuli
double in width each step, mirroring how Theorem 3.3's ⌈log₂ ρL⌉ factor
slices distance scales) — registers it as a named engine, and serves
queries through the same :class:`repro.core.solver.PreprocessedSSSP`
facade as the built-in engines.

A schedule only implements four methods (bind/push/next_bound/
split_active); correctness comes for free from the shared kernel, which
is exactly the "correct for any radii/boundaries" robustness of
Algorithm 1 that §3 proves.

Run:  python examples/engine_plugins.py
"""

from __future__ import annotations

import numpy as np

from repro import PreprocessedSSSP, dijkstra, generators, random_integer_weights
from repro.engine import available_engines, register_engine, run_engine


class GeometricSchedule:
    """Round boundaries d_i = d_0 · growth^i over the reached frontier."""

    name = "geometric"

    def __init__(self, growth: float = 2.0) -> None:
        if growth <= 1.0:
            raise ValueError("growth must be > 1")
        self.growth = growth

    def bind(self, kernel) -> None:
        self.kernel = kernel
        base = kernel.graph.min_positive_weight
        self._d0 = base if np.isfinite(base) else 1.0
        self._bound = 0.0

    def push(self, improved) -> None:
        pass  # the frontier is recomputed from kernel state each step

    def _pending(self):
        k = self.kernel
        return np.isfinite(k.dist) & ~k.settled

    def next_bound(self) -> float | None:
        pending = self._pending()
        if not pending.any():
            return None
        low = float(self.kernel.dist[pending.nonzero()[0]].min())
        # smallest geometric boundary that covers the nearest vertex
        bound = max(self._bound * self.growth, self._d0)
        while bound < low:
            bound *= self.growth
        self._bound = bound
        return bound

    def split_active(self, bound: float):
        k = self.kernel
        pending = self._pending()
        return np.nonzero(pending & (k.dist <= bound))[0]


def geometric_engine(
    graph, source, radii, *, track_parents=False, track_trace=False, ledger=None
):
    """Registry adapter: the shared calling convention -> run_engine."""
    return run_engine(
        graph,
        source,
        GeometricSchedule(),
        track_parents=track_parents,
        track_trace=track_trace,
        ledger=ledger,
        algorithm_name="geometric-stepping",
    )


def main(n: int = 400, rho: int = 16, seed: int = 7) -> None:
    if "geometric" not in available_engines():  # idempotent for repeated runs
        register_engine(
            "geometric",
            geometric_engine,
            description="d_i = d_0 * growth^i boundaries (this example)",
        )

    # -- a weighted workload, preprocessed once -----------------------------
    base = generators.road_network(n, seed=seed)[0]
    graph = random_integer_weights(base, low=1, high=1000, seed=seed)
    sp = PreprocessedSSSP(graph, k=2, rho=rho, heuristic="dp")
    source = 0

    # -- the custom engine serves through the same facade -------------------
    geo = sp.solve(source, engine="geometric", track_trace=True)
    ref = dijkstra(graph, source)
    assert np.allclose(geo.dist, ref.dist), "custom schedule must stay exact"
    print(f"geometric-stepping distances match Dijkstra on {graph.n} vertices")

    # -- compare step structure against the built-ins -----------------------
    for engine in ("geometric", "vectorized", "bucket", "dijkstra"):
        res = sp.solve(source, engine=engine)
        print(
            f"  engine={engine:<11} steps={res.steps:>4} "
            f"substeps={res.substeps:>5} relaxations={res.relaxations:>7}"
        )
    widths = [t.radius for t in geo.trace[:6]]
    print("first geometric boundaries:", " ".join(f"{w:.0f}" for w in widths))
    print(
        "custom schedules plug in with four methods; the kernel supplies "
        "correctness"
    )


if __name__ == "__main__":
    main()
