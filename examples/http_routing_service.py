#!/usr/bin/env python
"""Routing over the wire: the HTTP front end and a tiny JSON client.

The serving stack ends at a network boundary: ``repro.serve.http``
exposes one :class:`~repro.serve.service.RoutingService` through a
stdlib ``ThreadingHTTPServer``, every request thread calling the same
thread-safe planner (striped LRU cache, single-flight solves).  This
example stands the whole thing up on a loopback socket:

1. **boot** — preprocess a road network, persist the artifact, then
   warm-start the service from it (the production boot path) and
   start the HTTP server on an ephemeral port,
2. **client** — a ~30-line ``urllib`` JSON client (the kind of thing a
   microservice consumer would write) issues single-source, route,
   k-nearest and batch requests, validating answers against Dijkstra,
3. **concurrency** — 8 client threads fire a mixed workload at the
   server; every answer must match the serial reference and the
   planner's books must balance (hits + misses == lookups),
4. **error contract** — malformed requests come back as structured
   4xx JSON, not stack traces,
5. **graceful shutdown** — the server drains and releases the socket.

Run:  python examples/http_routing_service.py

The same endpoints work from the shell::

    curl http://127.0.0.1:8080/route/3/94
    curl http://127.0.0.1:8080/nearest/3/5
    curl -X POST http://127.0.0.1:8080/batch \
         -d '{"queries": [{"type": "route", "source": 3, "target": 94}]}'
"""

import json
import tempfile
import threading
import urllib.error
import urllib.request
from pathlib import Path

import numpy as np

from repro import RoutingService, dijkstra
from repro.graphs.generators import road_network
from repro.graphs.weights import random_integer_weights
from repro.serve import RoutingHTTPServer


class RoutingClient:
    """Tiny stdlib JSON client for the routing HTTP API."""

    def __init__(self, base_url: str, timeout: float = 10.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    def _get(self, path: str) -> dict:
        with urllib.request.urlopen(
            f"{self.base_url}{path}", timeout=self.timeout
        ) as resp:
            return json.loads(resp.read())

    def healthz(self) -> dict:
        return self._get("/healthz")

    def stats(self) -> dict:
        return self._get("/stats")

    def distances(self, source: int) -> np.ndarray:
        doc = self._get(f"/distances/{source}")
        return np.array(
            [np.inf if d is None else d for d in doc["distances"]]
        )

    def route(self, source: int, target: int) -> dict:
        return self._get(f"/route/{source}/{target}")

    def nearest(self, source: int, k: int) -> dict:
        return self._get(f"/nearest/{source}/{k}")

    def batch(self, queries: list) -> list:
        data = json.dumps({"queries": queries}).encode()
        req = urllib.request.Request(
            f"{self.base_url}/batch",
            data=data,
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(req, timeout=self.timeout) as resp:
            return json.loads(resp.read())["answers"]


def main(n: int = 600, k: int = 2, rho: int = 16, threads: int = 8) -> None:
    g, _coords = road_network(n, seed=3)
    graph = random_integer_weights(g, low=1, high=100, seed=4)
    print(f"road network: {graph.n} vertices, {graph.m} edges")

    # -- 1. boot: preprocess once, persist, warm-start, serve ---------------
    with tempfile.TemporaryDirectory() as tmp:
        artifact = Path(tmp) / "road.kr.npz"
        RoutingService(graph, k=k, rho=rho).save_artifact(artifact)
        service = RoutingService.from_artifact(
            artifact, expect_graph=graph, cache_capacity=64
        )
    with RoutingHTTPServer(service) as server:
        client = RoutingClient(server.url)
        print(f"HTTP server listening on {server.url}")
        health = client.healthz()
        assert health["status"] == "ok"
        assert health["shards"] == 1  # single service = one-shard special case

        # -- 2. the client walks every endpoint --------------------------
        ref = dijkstra(graph, 3)
        row = client.distances(3)
        assert np.array_equal(row, ref.dist), "row must match Dijkstra"
        route = client.route(3, 94)
        assert route["distance"] == ref.dist[94]
        assert route["path"][0] == 3 and route["path"][-1] == 94
        near = client.nearest(3, 5)
        assert near["distances"] == np.sort(ref.dist)[1:6].tolist()
        answers = client.batch(
            [
                {"type": "route", "source": 3, "target": 94},
                {"type": "nearest", "source": 3, "k": 5},
                {"type": "distances", "source": 17},
            ]
        )
        assert answers[0]["distance"] == ref.dist[94]
        print(
            f"endpoints OK: route 3->94 distance {route['distance']:.0f} "
            f"({len(route['path'])} hops), {near['count']} nearest, "
            f"batch of {len(answers)} coalesced"
        )

        # -- 3. concurrent mixed workload --------------------------------
        errors: list = []
        hubs = list(range(0, 24))

        def hammer(i: int) -> None:
            try:
                c = RoutingClient(server.url)
                for r in range(5):
                    s, t = hubs[(i * 3 + r) % 24], hubs[(i * 5 + r + 1) % 24]
                    got = c.route(s, t)
                    assert got["distance"] == service.route(s, t).distance
                    c.batch(
                        [
                            {"type": "nearest", "source": s, "k": 4},
                            {"type": "route", "source": t, "target": s},
                        ]
                    )
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        workers = [
            threading.Thread(target=hammer, args=(i,)) for i in range(threads)
        ]
        for t in workers:
            t.start()
        for t in workers:
            t.join()
        assert not errors, errors
        stats = client.stats()
        assert stats["hits"] + stats["misses"] == stats["lookups"]
        print(
            f"{threads} concurrent clients: zero errors, "
            f"{stats['hits']} hits / {stats['misses']} misses over "
            f"{stats['lookups']} lookups, {stats['solves']} solver runs, "
            f"{stats['single_flight_waits']} single-flight waits"
        )

        # -- 4. the error contract ----------------------------------------
        try:
            client.route(3, -1)
            raise AssertionError("negative target must be rejected")
        except urllib.error.HTTPError as exc:
            body = json.loads(exc.read())
            assert exc.code == 400
            print(
                f"error contract: GET /route/3/-1 -> {exc.code} "
                f"{body['error']}: {body['message']}"
            )

        url = server.url
    # -- 5. graceful shutdown (the `with` exit drained the server) ----------
    try:
        urllib.request.urlopen(f"{url}/healthz", timeout=2)
        raise AssertionError("server must be down after close")
    except urllib.error.URLError:
        print("graceful shutdown: socket released, in-flight requests drained")


if __name__ == "__main__":
    main()
