#!/usr/bin/env python
"""Real (process-pool) parallelism for the preprocessing phase.

The paper's preprocessing runs n independent truncated Dijkstras
(Lemma 4.2) — embarrassingly parallel.  Python's GIL rules out
shared-memory threads, so the library fans source chunks out to forked
worker processes; the read-only CSR arrays are shared copy-on-write, in
the "communicate buffers, not objects" spirit of the mpi4py guide.

This example times `build_kr_graph` at n_jobs = 1 vs all cores and checks
that the outputs are bit-identical (the pool returns chunks in
deterministic order).  On a single-core container the pool degrades
gracefully — expect ~no speedup there, and that is the honest result: the
*depth* of preprocessing (O(ρ²) per Lemma 4.2) is what the PRAM ledger
measures, not what one box can deliver.

Run:  python examples/parallel_preprocessing.py
"""

import os
import time

import numpy as np

from repro import build_kr_graph, generators
from repro.graphs import random_integer_weights

K, RHO = 2, 24


def main(n: int = 3000, k: int = K, rho: int = RHO) -> None:
    road, _coords = generators.road_network(n, seed=11)
    graph = random_integer_weights(road, low=1, high=10_000, seed=12)
    cores = os.cpu_count() or 1
    print(f"graph: {graph.n} vertices, {graph.m} edges; machine has {cores} core(s)\n")

    t0 = time.perf_counter()
    serial = build_kr_graph(graph, k=k, rho=rho, heuristic="dp", n_jobs=1)
    t_serial = time.perf_counter() - t0
    print(f"n_jobs=1   : {t_serial:6.2f}s  ({serial.added_edges} shortcuts)")

    t0 = time.perf_counter()
    pooled = build_kr_graph(graph, k=k, rho=rho, heuristic="dp", n_jobs=0)
    t_pool = time.perf_counter() - t0
    print(f"n_jobs=all : {t_pool:6.2f}s  ({pooled.added_edges} shortcuts)")

    assert serial.added_edges == pooled.added_edges
    assert np.array_equal(serial.radii, pooled.radii)
    assert serial.graph == pooled.graph
    print("\noutputs bit-identical across n_jobs (deterministic chunk order)")
    if cores > 1:
        print(f"speedup: {t_serial / t_pool:.2f}x on {cores} cores")
    else:
        print("single core: pool overhead only — run on a bigger box to scale")


if __name__ == "__main__":
    main()
