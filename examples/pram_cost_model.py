#!/usr/bin/env python
"""Measure the paper's work/depth claims with the PRAM cost ledger.

The paper's headline (Theorem 1.1) is a *cost-model* statement: after
preprocessing, Radius-Stepping does O(m log n) work and O((n/ρ) log n
log ρL) depth.  CPython cannot run a PRAM, but it can *account* one: every
bulk operation of the solver charges its PRAM cost to a ledger, and
Brent's theorem turns (work, depth) into simulated wall-clock on a
p-processor machine.

This example sweeps ρ, showing:

* measured work barely moves (the solver stays work-efficient),
* measured depth falls ~1/ρ (more vertices settle per step),
* the parallelism factor P = W/D and the simulated 1024-core speedup grow
  accordingly — the trade Table 1 is about.

Run:  python examples/pram_cost_model.py
"""

from repro import build_kr_graph, generators, radius_stepping
from repro.graphs import random_integer_weights
from repro.pram import Ledger, simulated_time, speedup_curve

RHOS = (1, 4, 16, 64)
PROCS = (1, 16, 256, 1024)


def main(side: int = 32, rhos: tuple = RHOS) -> None:
    grid = generators.grid_2d(side, side)
    graph = random_integer_weights(grid, low=1, high=100, seed=1)
    print(f"graph: {graph.n} vertices, {graph.m} edges\n")

    print(
        f"{'rho':>5} {'work':>12} {'depth':>10} {'P=W/D':>8} "
        + "".join(f"{'T_p(' + str(p) + ')':>12}" for p in PROCS)
    )
    ledgers: dict[int, Ledger] = {}
    for rho in rhos:
        pre = build_kr_graph(graph, k=2, rho=rho, heuristic="dp")
        led = Ledger(record_phases=True)
        radius_stepping(pre.graph, 0, pre.radii, ledger=led)
        ledgers[rho] = led
        times = [simulated_time(led, p) for p in PROCS]
        print(
            f"{rho:>5} {led.work:>12.0f} {led.depth:>10.0f} "
            f"{led.parallelism:>8.1f} " + "".join(f"{t:>12.0f}" for t in times)
        )

    print(f"\nsimulated speedup at rho={max(rhos)} (Brent, phase-accurate):")
    print(f"{'procs':>6} {'time':>10} {'speedup':>8} {'efficiency':>11}")
    for pt in speedup_curve(ledgers[max(rhos)], PROCS):
        print(
            f"{pt.processors:>6} {pt.time:>10.0f} "
            f"{pt.speedup:>7.1f}x {pt.efficiency:>10.2f}"
        )

    lo, hi = ledgers[min(rhos)], ledgers[max(rhos)]
    print(
        f"\nrho {min(rhos)} -> {max(rhos)}: depth {lo.depth:.0f} -> {hi.depth:.0f} "
        f"({lo.depth / hi.depth:.0f}x less), work {lo.work:.0f} -> {hi.work:.0f} "
        f"({hi.work / lo.work:.1f}x more)"
    )
    print("depth buys parallelism; work stays near-linear — Theorem 1.1 measured.")


if __name__ == "__main__":
    main()
