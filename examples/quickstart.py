#!/usr/bin/env python
"""Quickstart: preprocess a graph and run Radius-Stepping.

This walks the full pipeline of the paper on a small weighted grid:

1. build a graph (a 40x40 grid with random integer weights, the paper's
   §5.1 weight model),
2. preprocess it into a (k,ρ)-graph with the DP shortcut heuristic
   (Section 4), obtaining the per-vertex radii r_ρ(·),
3. run Radius-Stepping (Algorithm 1) from a source,
4. cross-check distances against Dijkstra and show the step trace — the
   data behind the paper's Figure 1 illustration (one annulus per step).

Run:  python examples/quickstart.py
"""

from repro import (
    build_kr_graph,
    dijkstra,
    generators,
    radius_stepping,
    random_integer_weights,
)

K, RHO = 2, 32


def main(side: int = 40, k: int = K, rho: int = RHO) -> None:
    # -- 1. the input graph -------------------------------------------------
    grid = generators.grid_2d(side, side)
    graph = random_integer_weights(grid, low=1, high=10_000, seed=42)
    print(f"input graph: {graph.n} vertices, {graph.m} edges, L={graph.max_weight:.0f}")

    # -- 2. preprocessing: make it a (k,ρ)-graph ----------------------------
    pre = build_kr_graph(graph, k=k, rho=rho, heuristic="dp")
    print(
        f"(k={k}, rho={rho})-graph: +{pre.added_edges} shortcut selections "
        f"({pre.new_edges} new edges, {pre.edge_factor:.2f}x the original m)"
    )

    # -- 3. Radius-Stepping --------------------------------------------------
    source = 0
    res = radius_stepping(pre.graph, source, pre.radii, track_trace=True)
    print(
        f"radius-stepping: {res.steps} steps, {res.substeps} substeps "
        f"(max {res.max_substeps}/step; Thm 3.2 bound is k+2={k + 2})"
    )

    # -- 4. validation vs Dijkstra (and the step-count payoff) ---------------
    base = dijkstra(graph, source)
    assert (res.dist == base.dist).all(), "distances must match exactly"
    print(
        f"distances match Dijkstra; step reduction "
        f"{base.steps}/{res.steps} = {base.steps / res.steps:.0f}x"
    )

    # -- Figure 1: the first few annuli --------------------------------------
    print("\nfirst five steps (Figure 1: one annulus per step):")
    print(f"{'step':>5} {'d_i':>9} {'substeps':>9} {'settled':>8} {'relaxed':>8}")
    for t in res.trace[:5]:
        print(
            f"{t.step:>5} {t.radius:>9.0f} {t.substeps:>9} "
            f"{t.settled:>8} {t.relaxations:>8}"
        )


if __name__ == "__main__":
    main()
