#!/usr/bin/env python
"""Multi-box sharded serving: remote shard backends over HTTP.

``examples/sharded_service.py`` stitches shards that all live in one
process.  This example lifts that seam onto the network: every shard is
served by its **own HTTP server** (in production, its own box), and the
front-end router fetches distance rows across the wire as compact
binary float64 frames — so the stitched answers stay *bit-identical*
to the in-process router, sockets and all.

The walkthrough:

1. **preprocess + persist** — build the sharded (k,ρ)-preprocessing
   once and save the checksummed bundle directory; stamp per-shard
   endpoint hints into its manifest (``stamp_endpoints``), which is how
   a real deployment records where each shard lives,
2. **boot the cluster** — ``ShardCluster`` starts one
   ``RoutingHTTPServer`` per shard plus a stitching front end whose
   ``RemoteBackend`` transports pool connections, bound every request
   by a deadline, and retry transient failures with interruptible
   backoff,
3. **parity over the wire** — rows and cross-shard routes from the
   remote router compared bit-for-bit against the in-process
   ``ShardRouter`` on the same bundle,
4. **observability** — the front end's ``/stats`` now carries a
   ``backends`` table (kind, endpoint, health, consecutive failures,
   p50 row-fetch latency),
5. **degraded mode** — kill one shard server and watch the contract:
   queries needing it fail *typed* (``ShardUnavailableError`` → HTTP
   503 naming the shard) within the deadline, cached stitches keep
   serving, ``healthz`` flips to ``degraded``, and recovery is just
   the shard coming back.

Run:  python examples/remote_shard_cluster.py
"""

import json
import tempfile
import urllib.error
import urllib.request
from pathlib import Path

import numpy as np

from repro.graphs.generators import road_network
from repro.graphs.weights import random_integer_weights
from repro.serve import (
    ShardCluster,
    ShardRouter,
    ShardUnavailableError,
    load_shard_topology,
    stamp_endpoints,
)

K, RHO = 2, 24
N_SHARDS = 3


def main(n: int = 900, n_shards: int = N_SHARDS, k: int = K, rho: int = RHO) -> None:
    g, _coords = road_network(n, seed=7)
    graph = random_integer_weights(g, low=1, high=100, seed=8)
    print(f"road network: {graph.n} vertices, {graph.m} edges, {n_shards} shards")

    # -- 1. preprocess once, persist the bundle -----------------------------
    local = ShardRouter(graph, n_shards=n_shards, k=k, rho=rho, partition="ldd")
    with tempfile.TemporaryDirectory() as tmp:
        bundle = Path(tmp) / "bundle"
        local.save_artifact(bundle)
        # a deployment stamps where each shard will be served; the
        # front-end box then needs only the bundle's manifest + overlay
        stamp_endpoints(
            bundle,
            [f"http://127.0.0.1:{7000 + s}" for s in range(n_shards)],
        )
        topo = load_shard_topology(bundle)
        print(
            f"bundle saved; manifest hints: "
            f"{', '.join(e.rsplit(':', 1)[-1] for e in topo.endpoints)} "
            f"(ports the shard boxes would bind)"
        )

        # -- 2. boot shard servers + front end on ephemeral ports -----------
        with ShardCluster(bundle, timeout=2.0, retries=1, backoff=0.05) as cluster:
            print(f"front end at {cluster.url}")
            for s, url in enumerate(cluster.shard_urls):
                print(f"  shard {s} served at {url}")

            # -- 3. parity over the wire ------------------------------------
            rng = np.random.default_rng(0)
            for s in map(int, rng.choice(graph.n, size=4, replace=False)):
                assert (
                    cluster.router.distances(s).tobytes()
                    == local.distances(s).tobytes()
                )
            r_local = local.route(0, graph.n - 1)
            r_remote = cluster.router.route(0, graph.n - 1)
            assert r_remote.distance == r_local.distance
            assert r_remote.path == r_local.path
            print(
                "remote stitching bit-identical to in-process "
                f"(route 0 -> {graph.n - 1}: distance {r_remote.distance:g}, "
                f"{len(r_remote.path)} hops)"
            )

            # the JSON front end sees the same answers
            with urllib.request.urlopen(
                f"{cluster.url}/distances/0", timeout=10
            ) as resp:
                doc = json.loads(resp.read())
            assert doc["reachable"] == int(np.isfinite(local.distances(0)).sum())

            # -- 4. the backends table --------------------------------------
            table = cluster.router.stats()["backends"]
            print("backends:")
            for row in table:
                p50 = row["row_fetch_p50_ms"]
                print(
                    f"  shard {row['shard']}: {row['kind']:<6} "
                    f"{row['endpoint']} healthy={row['healthy']} "
                    f"p50={p50 if p50 is None else f'{p50:.1f}ms'}"
                )
            assert all(row["kind"] == "remote" for row in table)

            # -- 5. degraded mode: kill one shard ---------------------------
            victim = 1
            warm_source = int(np.flatnonzero(topo.labels == 0)[0])
            warm_row = cluster.router.distances(warm_source)  # cache it
            cluster.shard_servers[victim].close()
            try:
                cold = int(np.flatnonzero(topo.labels == 0)[1])
                cluster.router.distances(cold)
                raise AssertionError("expected the dead shard to surface")
            except ShardUnavailableError as exc:
                print(f"typed failure names the culprit: {exc}")
                assert exc.shard == victim
            try:
                urllib.request.urlopen(f"{cluster.url}/distances/{cold}", timeout=10)
                raise AssertionError("expected HTTP 503")
            except urllib.error.HTTPError as exc:
                body = json.loads(exc.read())
                assert exc.code == 503 and body["shard"] == victim
                print(
                    f"HTTP front end: 503 {body['error']} "
                    f"(shard {body['shard']} at {body['endpoint']})"
                )
            # cached stitches keep serving; health reports the hole
            assert np.array_equal(cluster.router.distances(warm_source), warm_row)
            health = cluster.router.healthz()
            assert health["status"] == "degraded"
            assert victim in health["backends"]["unhealthy"]
            print(
                "degraded, not down: cached rows still serve, healthz = "
                f"{health['status']} (unhealthy: {health['backends']['unhealthy']})"
            )
    print("done.")


if __name__ == "__main__":
    main()
