#!/usr/bin/env python
"""Vertex reordering: cache locality without changing a single answer.

The Radius-Stepping kernels are memory-bound — each substep gathers
whole CSR rows for a frontier — so the vertex *numbering* controls how
often those gathers hit cache.  ``repro.graphs.reorder`` provides the
named orderings (``bfs``, ``rcm``, ``degree``, ``random``, ``natural``)
and the serving stack threads a chosen one end to end:

1. **diagnose** — measure ``mean_neighbor_gap`` (mean |u−v| index gap
   over stored arcs) for every registered ordering of a road network,
2. **preprocess reordered** — ``build_kr_graph(..., reorder="rcm")``
   runs the whole (k,ρ)-construction on the renumbered graph and
   records the permutation,
3. **id-transparent serving** — a :class:`RoutingService` over the
   reordered preprocessing answers in *input* ids, bit-identical to an
   unreordered service (asserted here, per engine),
4. **persist** — the permutation rides inside the version-3 artifact,
   so a warm-started service keeps both the layout and the id mapping.

Run:  python examples/reordering.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import RoutingService, dijkstra
from repro.graphs.generators import road_network
from repro.graphs.reorder import available_orderings, mean_neighbor_gap, reorder_graph
from repro.graphs.weights import random_integer_weights

K, RHO = 2, 16


def main(n: int = 900, k: int = K, rho: int = RHO) -> None:
    g, _coords = road_network(n, seed=3)
    graph = random_integer_weights(g, low=1, high=100, seed=4)
    print(f"road network: {graph.n} vertices, {graph.m} edges")

    # -- 1. the locality diagnostic per ordering -----------------------------
    print("\nmean neighbor index gap (smaller = more cache-local):")
    for method in available_orderings():
        res = reorder_graph(graph, method)
        gap = mean_neighbor_gap(res.graph)
        print(f"  {method:>8}: {gap:8.1f}")

    # -- 2 + 3. reordered preprocessing behind an unchanged API --------------
    plain = RoutingService(graph, k=k, rho=rho, cache_capacity=32)
    reordered = RoutingService(
        graph, k=k, rho=rho, reorder="rcm", cache_capacity=32
    )
    stats = reordered.stats()
    print(
        f"\npreprocessed under 'rcm': locality "
        f"{stats['locality']['before']:.1f} -> {stats['locality']['after']:.1f}"
    )

    ref = dijkstra(graph, 0).dist
    assert np.array_equal(reordered.distances(0), ref)
    assert np.array_equal(plain.distances(0), reordered.distances(0))
    route = reordered.route(0, graph.n - 1)
    assert route.distance == ref[graph.n - 1]
    assert route.path[0] == 0 and route.path[-1] == graph.n - 1
    print("answers in input ids, bit-identical to the unreordered service")

    # -- 4. the permutation persists through artifacts -----------------------
    with tempfile.TemporaryDirectory() as tmp:
        artifact = Path(tmp) / "road.rcm.npz"
        reordered.save_artifact(artifact)
        warm = RoutingService.from_artifact(artifact, expect_graph=graph)
        assert np.array_equal(warm.distances(7), plain.distances(7))
        assert warm.stats()["reorder"] == "rcm"
        print(
            f"warm start keeps the layout: reorder={warm.stats()['reorder']}, "
            "answers still in input ids"
        )


if __name__ == "__main__":
    main()
