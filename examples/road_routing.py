#!/usr/bin/env python
"""Road-network routing: amortize preprocessing over many queries.

The paper's §5.4 advice: "since preprocessing is only run once, if Sssp
will be run from multiple sources, we suggest increasing ρ and decreasing
k: the cost for preprocessing is amortized over more sources."

This example plays a dispatch service on a synthetic road network (the
library's Delaunay-based stand-in for the SNAP road maps): it preprocesses
once, then answers shortest-path queries from many depot locations,
reporting the per-query step counts — the paper's depth proxy — against
the Dijkstra and ∆-stepping baselines.

Run:  python examples/road_routing.py
"""

import numpy as np

from repro import build_kr_graph, dijkstra, generators, radius_stepping
from repro.core import delta_stepping, suggest_delta
from repro.graphs import random_integer_weights

NUM_DEPOTS = 8
K, RHO = 3, 48


def main(n: int = 1500, depots: int = NUM_DEPOTS, k: int = K, rho: int = RHO) -> None:
    # -- the network ---------------------------------------------------------
    road, _coords = generators.road_network(n, seed=7)
    graph = random_integer_weights(road, low=1, high=10_000, seed=8)
    print(
        f"road network: {graph.n} vertices, {graph.m} edges "
        f"(avg degree {2 * graph.m / graph.n:.2f})"
    )

    # -- one-time preprocessing ----------------------------------------------
    pre = build_kr_graph(graph, k=k, rho=rho, heuristic="dp")
    print(
        f"preprocessing (k={k}, rho={rho}, DP): "
        f"{pre.new_edges} new edges ({pre.edge_factor:.2f}x m)\n"
    )

    # -- many-source query workload -------------------------------------------
    rng = np.random.default_rng(0)
    depot_ids = rng.choice(graph.n, size=depots, replace=False)
    delta = suggest_delta(graph)

    print(f"{'depot':>6} {'dijkstra':>9} {'delta':>7} {'radius':>7} {'reduction':>10}")
    ratios = []
    for depot in depot_ids:
        base = dijkstra(graph, int(depot))
        ds = delta_stepping(graph, int(depot), delta)
        rs = radius_stepping(pre.graph, int(depot), pre.radii)
        assert (rs.dist == base.dist).all(), "routing table must be exact"
        ratios.append(base.steps / rs.steps)
        print(
            f"{depot:>6} {base.steps:>9} {ds.steps:>7} {rs.steps:>7} "
            f"{ratios[-1]:>9.0f}x"
        )

    print(
        f"\nmean step reduction over {depots} depots: "
        f"{np.mean(ratios):.0f}x fewer parallel rounds than Dijkstra"
    )
    print(
        "each round is one bulk relaxation (Thm 3.2: <= k+2 substeps), so\n"
        "rounds ~ parallel depth: this is the §5.4 amortization story."
    )


if __name__ == "__main__":
    main()
