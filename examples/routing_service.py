#!/usr/bin/env python
"""Routing service end to end: persist, warm-start, cache, bulk-serve.

The serving subsystem (``repro.serve``) turns the paper's
"preprocess once, query many" model (§5.4) into an operational loop:

1. **cold start** — preprocess a road network into a (k,ρ)-graph and
   stand up a :class:`~repro.serve.service.RoutingService`,
2. **persist** — save the preprocessing as a checksummed ``.npz``
   artifact,
3. **warm start** — boot a second service from the artifact (no
   (k,ρ)-construction at all) and verify it against the graph hash,
4. **query traffic** — run a mixed batch of single-source,
   point-to-point and k-nearest queries through the caching planner,
   repeat it to show the LRU cache absorbing the repeats,
5. **bulk path** — produce an (n_sources × n) distance matrix in shared
   memory and cross-check it bit-for-bit against the pickle path,
   and validate every answer against Dijkstra on the input graph.

Run:  python examples/routing_service.py
"""

import tempfile
import time
from pathlib import Path

import numpy as np

from repro import RoutingService, dijkstra
from repro.graphs.generators import road_network
from repro.graphs.weights import random_integer_weights
from repro.serve import KNearest, load_artifact, solve_many_shm

K, RHO = 2, 24


def main(n: int = 1200, k: int = K, rho: int = RHO) -> None:
    g, _coords = road_network(n, seed=3)
    graph = random_integer_weights(g, low=1, high=100, seed=4)
    print(f"road network: {graph.n} vertices, {graph.m} edges")

    # -- 1. cold start -------------------------------------------------------
    t0 = time.perf_counter()
    service = RoutingService(graph, k=k, rho=rho, cache_capacity=64)
    t_cold = time.perf_counter() - t0
    print(f"cold start (build_kr_graph k={k} rho={rho}): {t_cold * 1e3:.1f} ms")

    with tempfile.TemporaryDirectory() as tmp:
        # -- 2. persist ------------------------------------------------------
        artifact = Path(tmp) / "road.kr.npz"
        service.save_artifact(artifact)
        print(f"artifact saved: {artifact.stat().st_size / 1024:.0f} KiB")

        # -- 3. warm start ---------------------------------------------------
        t0 = time.perf_counter()
        warm = RoutingService.from_artifact(
            artifact, expect_graph=graph, cache_capacity=64
        )
        t_warm = time.perf_counter() - t0
        print(
            f"warm start from artifact: {t_warm * 1e3:.1f} ms "
            f"({t_cold / t_warm:.0f}x faster than cold)"
        )
        pre = load_artifact(artifact, expect_graph=graph)
        assert pre.graph == service.solver.graph, "round trip must be exact"
        assert np.array_equal(pre.radii, service.solver.radii)

    # -- 4. query traffic through the planner --------------------------------
    rng = np.random.default_rng(7)
    hubs = rng.choice(graph.n, 6, replace=False).tolist()
    requests = [
        (hubs[0], hubs[1]),            # point-to-point
        hubs[2],                       # single-source
        KNearest(hubs[0], 5),          # k closest facilities
        (hubs[0], hubs[3]),            # same source again: no new solve
        (hubs[4], hubs[5]),
    ]
    t0 = time.perf_counter()
    answers = warm.batch(requests)
    t_miss = time.perf_counter() - t0
    t0 = time.perf_counter()
    warm.batch(requests)
    t_hit = time.perf_counter() - t0
    s = warm.stats()
    print(
        f"mixed batch of {len(requests)}: first pass {t_miss * 1e3:.1f} ms "
        f"(cache misses), repeat {t_hit * 1e3:.2f} ms (cache hits, "
        f"{t_miss / max(t_hit, 1e-9):.0f}x)"
    )
    print(
        f"planner stats: {s['hits']} hits, {s['misses']} misses, "
        f"{s['coalesced']} coalesced; only {s['solves']} solver runs "
        f"served {2 * len(requests)} requests"
    )

    route = answers[0]
    ref = dijkstra(graph, route.source)
    assert route.distance == ref.dist[route.target], "route must be exact"
    assert route.path is not None and route.path[0] == route.source
    assert route.path[-1] == route.target
    print(
        f"route {route.source} -> {route.target}: distance {route.distance:.0f}, "
        f"{len(route.path)} hops (shortcuts included); matches Dijkstra"
    )
    nearest = answers[2]
    assert np.array_equal(
        np.sort(ref.dist)[1 : len(nearest.distances) + 1], nearest.distances
    ), "k-nearest distances must be the k smallest"

    # -- 5. bulk shared-memory path ------------------------------------------
    bulk_sources = rng.choice(graph.n, 16, replace=False)
    pickled = warm.solver.solve_many(bulk_sources, track_parents=True)
    with solve_many_shm(
        warm.solver, bulk_sources, track_parents=True, n_jobs=2
    ) as dm:
        for i, res in enumerate(pickled):
            assert np.array_equal(dm.dist[i], res.dist)
            assert np.array_equal(dm.parent[i], res.parent)
        closest = int(dm.dist.sum(axis=1).argmin())
    print(
        f"shared-memory matrix ({len(bulk_sources)} x {graph.n}): "
        f"bit-identical to the pickle path; most central source: "
        f"vertex {int(bulk_sources[closest])}"
    )


if __name__ == "__main__":
    main()
