#!/usr/bin/env python
"""Sharded serving end to end: partition, preprocess per shard, stitch.

The single-graph pipeline scales until one box can no longer hold (or
rebuild) the whole (k,ρ)-preprocessing.  The sharded architecture splits
the graph into vertex shards, preprocesses each shard independently
(this is where a multi-box deployment would fan out), and answers
cross-shard queries by stitching through a small **boundary overlay** —
cut edges at their original weight plus exact within-shard distances
between boundary vertices.  Overlay shortest paths equal full-graph
shortest paths, so the stitched metric is *bit-identical* to the
unsharded service on integer weights.

This example walks the full lifecycle:

1. **partition** — compare the two shipped partitioners (`contiguous`
   RCM ranges vs `ldd` ball growing) on edge cut and balance,
2. **cold start** — `ShardRouter` builds the per-shard preprocessing
   and the overlay in one call,
3. **parity** — full rows, routes and k-nearest answers checked
   bit-for-bit against the unsharded `RoutingService` and Dijkstra,
   including a route that crosses shard boundaries,
4. **persist + warm start** — save the checksummed bundle directory
   (manifest + one artifact per shard + overlay + topology) and boot a
   second router from it with `from_artifact`,
5. **operations** — the router speaks the same query surface as the
   single service, so `/stats` topology and `healthz` shard counts come
   for free (and it drops behind `RoutingHTTPServer` unchanged).

Run:  python examples/sharded_service.py
"""

import tempfile
import time
from pathlib import Path

import numpy as np

from repro import RoutingService, dijkstra
from repro.graphs import compute_partition
from repro.graphs.generators import road_network
from repro.graphs.weights import random_integer_weights
from repro.serve import KNearest, ShardRouter

K, RHO = 2, 24
N_SHARDS = 4


def main(n: int = 1200, n_shards: int = N_SHARDS, k: int = K, rho: int = RHO) -> None:
    g, _coords = road_network(n, seed=3)
    graph = random_integer_weights(g, low=1, high=100, seed=4)
    print(f"road network: {graph.n} vertices, {graph.m} edges, {n_shards} shards")

    # -- 1. partitioner face-off --------------------------------------------
    for method in ("contiguous", "ldd"):
        part = compute_partition(graph, method, n_shards, seed=0)
        print(
            f"partition {method:<10}: edge cut {part.edge_cut:>4} "
            f"({part.edge_cut / graph.m:.1%} of edges), "
            f"balance {part.balance:.2f}, "
            f"boundary {len(part.boundary_vertices)} vertices"
        )

    # -- 2. cold start: shard, preprocess each shard, build the overlay -----
    t0 = time.perf_counter()
    router = ShardRouter(
        graph, n_shards=n_shards, partition="contiguous", k=k, rho=rho
    )
    t_cold = time.perf_counter() - t0
    print(f"sharded cold start (k={k} rho={rho}): {t_cold * 1e3:.1f} ms")

    # -- 3. parity against the unsharded service ----------------------------
    service = RoutingService(graph, k=k, rho=rho)
    rng = np.random.default_rng(7)
    sources = [int(s) for s in rng.choice(graph.n, 4, replace=False)]
    for s in sources:
        assert np.array_equal(router.distances(s), service.distances(s))
    print(f"full rows from {len(sources)} sources: bit-identical to unsharded")

    # a route that must cross shard boundaries: endpoints in different
    # shards, verified hop by hop against Dijkstra on the input graph
    s, t = sources[0], next(
        int(v)
        for v in range(graph.n - 1, -1, -1)
        if router.shard_of(v) != router.shard_of(sources[0])
    )
    route = router.route(s, t)
    ref = dijkstra(graph, s)
    assert route.distance == ref.dist[t], "stitched route must be exact"
    assert route.path is not None and route.path[0] == s and route.path[-1] == t
    print(
        f"cross-shard route {s} (shard {router.shard_of(s)}) -> "
        f"{t} (shard {router.shard_of(t)}): distance {route.distance:.0f}, "
        f"{len(route.path)} hops; matches Dijkstra"
    )

    near = router.nearest(s, 5)
    want = service.nearest(s, 5)
    assert np.array_equal(near.vertices, want.vertices)
    assert np.array_equal(near.distances, want.distances)

    # -- 4. persist the bundle, warm start from it ---------------------------
    with tempfile.TemporaryDirectory() as tmp:
        bundle = Path(tmp) / "road.shards"
        router.save_artifact(bundle)
        size = sum(p.stat().st_size for p in bundle.iterdir())
        members = sorted(p.name for p in bundle.iterdir())
        print(f"bundle saved: {size / 1024:.0f} KiB, members {members}")

        t0 = time.perf_counter()
        warm = ShardRouter.from_artifact(bundle, expect_graph=graph)
        t_warm = time.perf_counter() - t0
        print(
            f"warm start from bundle: {t_warm * 1e3:.1f} ms "
            f"({t_cold / t_warm:.0f}x faster than cold)"
        )
        answers = warm.batch([(s, t), sources[1], KNearest(s, 5)])
        assert answers[0].distance == route.distance
        assert np.array_equal(answers[1], service.distances(sources[1]))
        print("warm router batch: bit-identical to the unsharded service")

    # -- 5. operational surface ----------------------------------------------
    stats = router.stats()
    health = router.healthz()
    assert health["shards"] == n_shards
    per_shard = ", ".join(
        f"shard {e['shard']}: {e['vertices']}v/{e['boundary']}b"
        for e in stats["topology"]["shards"]
    )
    print(
        f"healthz: {health['status']}, {health['shards']} shards "
        f"(artifact v{health['artifact_version']})"
    )
    print(
        f"topology: {per_shard}; overlay "
        f"{stats['topology']['overlay']['vertices']} vertices / "
        f"{stats['topology']['overlay']['edges']} edges"
    )
    print(
        f"stitched-row cache: {stats['stitched']['hits']} hits, "
        f"{stats['stitched']['misses']} misses; "
        f"{stats['queries_answered']} shard-level solves "
        f"(boundary rows dominate, and the LRU amortizes them)"
    )


if __name__ == "__main__":
    main()
