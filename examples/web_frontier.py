#!/usr/bin/env python
"""Webgraph analysis: hubs, heuristics, and the §5.2/§5.3 story.

On scale-free graphs (webgraphs, social networks) the paper observes two
things this example reproduces end to end:

* the greedy shortcut heuristic adds orders of magnitude more edges than
  the DP heuristic, because hubs rarely sit at exactly the (ki+1)-th tree
  layer (§5.2) — DP "can discover the hubs accurately";
* once the hubs are inside the enclosed balls, Radius-Stepping needs very
  few steps even at modest ρ (§5.3).

The workload is a Barabási–Albert graph — the reference the paper itself
cites for the scale-free property of webgraphs.

Run:  python examples/web_frontier.py
"""

import numpy as np

from repro import generators, radius_stepping
from repro.core import bfs
from repro.preprocess import compute_radii_sweep, count_shortcuts_sweep

N, ATTACH = 1200, 4
RHOS = (4, 8, 16, 32, 64)


def main(n: int = N, attach: int = ATTACH, rhos: tuple = RHOS) -> None:
    web = generators.scale_free(n, attach=attach, seed=3)
    degrees = web.degrees()
    print(
        f"webgraph: {web.n} vertices, {web.m} edges; "
        f"max degree {degrees.max()} vs median {int(np.median(degrees))} "
        "(the 'super stars')"
    )

    # -- §5.2: greedy vs DP shortcut counts ----------------------------------
    mid, big = rhos[len(rhos) // 2], rhos[-1]
    counts = count_shortcuts_sweep(
        web, ks=(3,), rhos=(mid, big), heuristics=("greedy", "dp")
    )
    print("\nshortcut edges needed for a (3,ρ)-graph (factors of m):")
    print(f"{'rho':>5} {'greedy':>9} {'dp':>9} {'greedy/dp':>10}")
    for rho in (mid, big):
        gf = counts.factor("greedy", 3, rho)
        df = counts.factor("dp", 3, rho)
        print(f"{rho:>5} {gf:>9.3f} {df:>9.3f} {gf / max(df, 1e-9):>9.1f}x")

    # -- §5.3: steps vs rho on the unweighted metric -------------------------
    radii_by_rho = compute_radii_sweep(web, rhos)
    sources = [0, n // 3, 2 * n // 3]
    bfs_rounds = np.mean([bfs(web, s).steps for s in sources])
    print(f"\nBFS baseline: {bfs_rounds:.1f} rounds (the ρ=1 row of Table 4)")
    print(f"{'rho':>5} {'steps':>7} {'vs BFS':>7}")
    for rho in rhos:
        steps = np.mean(
            [radius_stepping(web, s, radii_by_rho[rho]).steps for s in sources]
        )
        print(f"{rho:>5} {steps:>7.1f} {bfs_rounds / steps:>6.1f}x")

    print(
        "\nhubs collapse the frontier: a handful of steps suffice once the\n"
        "balls reach the high-degree vertices — with DP adding only a\n"
        "fraction of m in shortcuts (the paper's recommended operating point)."
    )


if __name__ == "__main__":
    main()
