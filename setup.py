"""Legacy setup shim.

This offline environment lacks the ``wheel`` package, so PEP 660 editable
installs (``pip install -e .``) cannot build; ``python setup.py develop``
installs the same editable egg-link without needing wheels.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24", "scipy>=1.10"],
    entry_points={
        "console_scripts": ["radius-stepping=repro.experiments.runner:main"]
    },
)
