"""repro — Parallel Shortest-Paths Using Radius Stepping (SPAA 2016).

A complete reproduction of Blelloch, Gu, Sun & Tangwongsan's
Radius-Stepping: the solver (two engines), the (k,rho)-graph
preprocessing with greedy/DP shortcut heuristics, all baselines, the
simulated-PRAM cost substrate, and drivers regenerating every table and
figure of the paper's evaluation.

Quickstart::

    from repro import generators, random_integer_weights
    from repro import build_kr_graph, radius_stepping, dijkstra

    g = random_integer_weights(generators.grid_2d(60, 60), seed=0)
    pre = build_kr_graph(g, k=2, rho=32, heuristic="dp")
    res = radius_stepping(pre.graph, 0, pre.radii)
    assert (res.dist == dijkstra(g, 0).dist).all()
"""

from .graphs import (
    CSRGraph,
    GraphValidationError,
    add_shortcuts,
    from_arc_arrays,
    from_edge_list,
    generators,
    is_connected,
    largest_connected_component,
    normalize_weights,
    random_integer_weights,
    read_edge_list,
    unit_weights,
    validate_graph,
    write_edge_list,
)
from .core import (
    SsspResult,
    StepTrace,
    bellman_ford,
    bfs,
    delta_stepping,
    dijkstra,
    dijkstra_minhop,
    radius_stepping,
    radius_stepping_bst,
    radius_stepping_unweighted,
)
from .core.solver import PreprocessedSSSP
from .engine import (
    RelaxationKernel,
    StepSchedule,
    available_engines,
    get_engine,
    register_engine,
    run_engine,
)
from .preprocess import (
    BallSearchResult,
    PreprocessResult,
    ball_search,
    build_kr_graph,
    compute_radii,
    compute_radii_sweep,
)
from .pram import Ledger
from .analysis import max_steps_bound, max_substeps_bound
from .serve import (
    DistanceMatrix,
    QueryPlanner,
    RoutingHTTPServer,
    RoutingService,
    load_artifact,
    load_solver,
    save_artifact,
    solve_many_shm,
)

__version__ = "1.0.0"

__all__ = [
    "BallSearchResult",
    "CSRGraph",
    "DistanceMatrix",
    "GraphValidationError",
    "Ledger",
    "PreprocessedSSSP",
    "PreprocessResult",
    "QueryPlanner",
    "RelaxationKernel",
    "RoutingHTTPServer",
    "RoutingService",
    "SsspResult",
    "StepSchedule",
    "StepTrace",
    "__version__",
    "add_shortcuts",
    "available_engines",
    "ball_search",
    "bellman_ford",
    "bfs",
    "build_kr_graph",
    "compute_radii",
    "compute_radii_sweep",
    "delta_stepping",
    "dijkstra",
    "dijkstra_minhop",
    "from_arc_arrays",
    "from_edge_list",
    "generators",
    "get_engine",
    "is_connected",
    "largest_connected_component",
    "load_artifact",
    "load_solver",
    "max_steps_bound",
    "max_substeps_bound",
    "normalize_weights",
    "radius_stepping",
    "radius_stepping_bst",
    "radius_stepping_unweighted",
    "random_integer_weights",
    "read_edge_list",
    "register_engine",
    "run_engine",
    "save_artifact",
    "solve_many_shm",
    "unit_weights",
    "validate_graph",
    "write_edge_list",
]
