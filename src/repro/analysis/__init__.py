"""Analysis utilities: theory bounds, multi-source stats, tables, plots."""

from .ascii_plot import loglog_plot
from .figure1 import render_annuli
from .fitting import PowerLawFit, fit_power_law
from .stats import StepStats, aggregate_over_sources, pick_sources
from .tables import format_number, render_kv, render_table
from .theory import (
    TABLE1_ROWS,
    Table1Row,
    max_steps_bound,
    max_substeps_bound,
    preprocessing_depth,
    preprocessing_work,
    radius_stepping_depth,
    radius_stepping_work,
)

__all__ = [
    "PowerLawFit",
    "StepStats",
    "TABLE1_ROWS",
    "Table1Row",
    "aggregate_over_sources",
    "fit_power_law",
    "format_number",
    "loglog_plot",
    "max_steps_bound",
    "max_substeps_bound",
    "pick_sources",
    "preprocessing_depth",
    "preprocessing_work",
    "radius_stepping_depth",
    "radius_stepping_work",
    "render_annuli",
    "render_kv",
    "render_table",
]
