"""ASCII log-log plots — the library's "figures".

The paper's Figures 3–5 are log-log line plots (added-edge factors and
step counts vs ρ).  Without a display or matplotlib in this environment,
we render the same series as terminal scatter plots with logarithmic
axes; the shapes (downward-linear ≈ inverse proportionality, greedy/DP
separation) read off directly.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

__all__ = ["loglog_plot"]

_MARKERS = "ox+*#@%&"


def _log(v: float) -> float:
    return math.log10(v) if v > 0 else float("-inf")


def loglog_plot(
    series: Mapping[str, Sequence[tuple[float, float]]],
    *,
    title: str = "",
    width: int = 64,
    height: int = 20,
    xlabel: str = "rho",
    ylabel: str = "",
) -> str:
    """Render named (x, y) series on a shared log-log canvas.

    Non-positive values are dropped (cannot appear on a log axis).
    Returns a multi-line string; each series gets a marker from a fixed
    cycle, shown in the legend.
    """
    pts: dict[str, list[tuple[float, float]]] = {
        name: [(x, y) for x, y in data if x > 0 and y > 0]
        for name, data in series.items()
    }
    all_pts = [p for data in pts.values() for p in data]
    if not all_pts:
        return (title + "\n" if title else "") + "(no positive data)"
    xs = [_log(x) for x, _ in all_pts]
    ys = [_log(y) for _, y in all_pts]
    x0, x1 = min(xs), max(xs)
    y0, y1 = min(ys), max(ys)
    if x1 - x0 < 1e-9:
        x1 = x0 + 1.0
    if y1 - y0 < 1e-9:
        y1 = y0 + 1.0
    grid = [[" "] * width for _ in range(height)]
    legend: list[str] = []
    for idx, (name, data) in enumerate(pts.items()):
        mark = _MARKERS[idx % len(_MARKERS)]
        legend.append(f"{mark} = {name}")
        for x, y in data:
            cx = int(round((_log(x) - x0) / (x1 - x0) * (width - 1)))
            cy = int(round((_log(y) - y0) / (y1 - y0) * (height - 1)))
            grid[height - 1 - cy][cx] = mark
    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append(f"log10({ylabel or 'y'}): {y1:.2f} (top) .. {y0:.2f} (bottom)")
    lines += ["|" + "".join(row) for row in grid]
    lines.append("+" + "-" * width)
    lines.append(f" log10({xlabel}): {x0:.2f} (left) .. {x1:.2f} (right)")
    lines.append(" legend: " + "   ".join(legend))
    return "\n".join(lines)
