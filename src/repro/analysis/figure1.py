"""Figure 1, regenerated from a real run: the annuli of Radius-Stepping.

The paper's Figure 1 illustrates one step: the frontier picks the lead
node ``v_i`` minimizing ``δ(v) + r(v)``, and the round distance ``d_i``
settles the annulus ``d_{i-1} < d(s, v) ≤ d_i``.  This module renders the
*measured* version — the sequence of annuli an actual solve produced —
as an ASCII strip chart: one bar per step, spanning [d_{i-1}, d_i] on a
shared distance axis, annotated with vertices settled and substeps used.

Unlike the paper's schematic, every number here comes from a
:class:`~repro.core.result.StepTrace`, so the figure doubles as a
debugging view of the step schedule (e.g. the doubling behaviour of
Lemma 3.7 is visible as geometrically widening bars on sparse regions).
"""

from __future__ import annotations

from typing import Sequence

from ..core.result import StepTrace

__all__ = ["render_annuli"]


def render_annuli(
    trace: Sequence[StepTrace],
    *,
    width: int = 64,
    max_rows: int = 30,
) -> str:
    """ASCII strip chart of the step annuli in ``trace``.

    Each row is one step: the bar covers the annulus ``(d_{i-1}, d_i]``
    scaled onto ``width`` columns; the right-hand annotation shows the
    round distance, vertices settled, and substeps.  Long traces are
    elided in the middle (``max_rows`` rows shown).
    """
    if width < 16:
        raise ValueError("width >= 16 required")
    if not trace:
        return "(empty trace)"
    d_max = trace[-1].radius
    if d_max <= 0:
        d_max = 1.0

    def bar(lo: float, hi: float) -> str:
        a = int(round(width * lo / d_max))
        b = max(a + 1, int(round(width * hi / d_max)))
        return " " * a + "#" * (b - a)

    rows = list(trace)
    elide = len(rows) > max_rows
    if elide:
        head = rows[: max_rows // 2]
        tail = rows[-(max_rows - len(head) - 1) :]
    else:
        head, tail = rows, []

    out = [
        f"Figure 1 (measured): annuli of {len(trace)} steps, "
        f"d_max = {d_max:g}",
        f"{'step':>5} |{'annulus':<{width}}| {'d_i':>10} {'settled':>8} {'sub':>4}",
    ]
    prev = 0.0
    for t in head:
        out.append(
            f"{t.step:>5} |{bar(prev, t.radius):<{width}}| "
            f"{t.radius:>10.4g} {t.settled:>8} {t.substeps:>4}"
        )
        prev = t.radius
    if elide:
        out.append(f"{'...':>5} |{'':<{width}}| ({len(rows) - max_rows + 1} steps elided)")
        prev = tail[0].radius if tail else prev
        for i, t in enumerate(tail):
            lo = rows[rows.index(t) - 1].radius if rows.index(t) > 0 else 0.0
            out.append(
                f"{t.step:>5} |{bar(lo, t.radius):<{width}}| "
                f"{t.radius:>10.4g} {t.settled:>8} {t.substeps:>4}"
            )
    return "\n".join(out)
