"""Log-log regression for the steps-vs-ρ decay claims of §5.3.

The paper reads its Figures 4 and 5 qualitatively: "on a log-log scale,
the trends are downward linear as ρ increases … the average number of
steps is inversely proportional to ρ."  This module makes that claim
checkable: fit ``log y = α + β log x`` by least squares and report the
slope β and the coefficient of determination R².  A clean inverse
proportionality shows up as β ≈ -1 with R² near 1; the webgraphs'
"relatively smoother slope" shows up as β closer to 0.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["PowerLawFit", "fit_power_law"]


@dataclass(frozen=True)
class PowerLawFit:
    """Least-squares fit of ``y ≈ C · x^slope`` on log-log axes.

    Attributes
    ----------
    slope: the log-log slope β (−1 means y ∝ 1/x).
    intercept: α = log C.
    r_squared: fit quality in log space (1.0 = perfectly linear).
    npoints: samples used.
    """

    slope: float
    intercept: float
    r_squared: float
    npoints: int

    def predict(self, x: float) -> float:
        """Model value at ``x``."""
        return float(np.exp(self.intercept) * x**self.slope)


def fit_power_law(
    xs: Sequence[float], ys: Sequence[float]
) -> PowerLawFit:
    """Fit ``y = C·x^β`` to positive samples by log-log least squares.

    Raises ``ValueError`` on fewer than two distinct x values or any
    non-positive sample (log undefined) — callers filter degenerate rows
    (e.g. step counts that bottomed out at 1) before fitting.
    """
    x = np.asarray(xs, dtype=np.float64)
    y = np.asarray(ys, dtype=np.float64)
    if x.shape != y.shape or x.ndim != 1:
        raise ValueError("xs and ys must be 1-D and the same length")
    if len(x) < 2 or len(np.unique(x)) < 2:
        raise ValueError("need at least two distinct x values")
    if np.any(x <= 0) or np.any(y <= 0):
        raise ValueError("power-law fit requires positive samples")
    lx, ly = np.log(x), np.log(y)
    slope, intercept = np.polyfit(lx, ly, 1)
    resid = ly - (slope * lx + intercept)
    total = ly - ly.mean()
    ss_tot = float(total @ total)
    # Near-constant series: ss_tot at rounding-noise scale makes the
    # R² quotient meaningless garbage; report a perfect (flat-line) fit.
    noise_floor = len(ly) * (1e-12 * max(1.0, float(np.abs(ly).max()))) ** 2
    if ss_tot <= noise_floor:
        r2 = 1.0
    else:
        r2 = 1.0 - float(resid @ resid) / ss_tot
    return PowerLawFit(
        slope=float(slope),
        intercept=float(intercept),
        r_squared=r2,
        npoints=len(x),
    )
