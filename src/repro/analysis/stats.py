"""Multi-source step statistics.

"Since the cost of SSSP potentially varies with the source and we cannot
afford to try it from all possible sources, we take [sampled] sources for
each graph ... We report the arithmetic means over all sample sources"
(§5.3).  This module runs a solver over a seeded source sample and
aggregates exactly those means.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..core.result import SsspResult
from ..graphs.csr import CSRGraph

__all__ = ["StepStats", "aggregate_over_sources", "pick_sources"]


@dataclass
class StepStats:
    """Arithmetic means over sources, plus the raw per-source arrays."""

    sources: np.ndarray
    steps: np.ndarray
    substeps: np.ndarray
    max_substeps: np.ndarray
    relaxations: np.ndarray

    @property
    def mean_steps(self) -> float:
        return float(self.steps.mean())

    @property
    def mean_substeps(self) -> float:
        return float(self.substeps.mean())

    @property
    def mean_relaxations(self) -> float:
        return float(self.relaxations.mean())

    @property
    def worst_max_substeps(self) -> int:
        """Max over sources of the per-run worst substep count (the
        quantity bounded by Theorem 3.2)."""
        return int(self.max_substeps.max())


def pick_sources(n: int, num: int, *, seed: int = 0) -> np.ndarray:
    """Seeded sample of ``num`` distinct sources (all when num >= n).

    The same seed gives the same sources for the weighted and unweighted
    runs — the paper uses "the same 1000 sources for all our experiments".
    """
    if num < 1:
        raise ValueError("num >= 1 required")
    if num >= n:
        return np.arange(n, dtype=np.int64)
    rng = np.random.default_rng(seed)
    return np.sort(rng.choice(n, size=num, replace=False)).astype(np.int64)


def aggregate_over_sources(
    graph: CSRGraph,
    solve: Callable[[CSRGraph, int], SsspResult],
    sources: Sequence[int] | np.ndarray,
) -> StepStats:
    """Run ``solve(graph, s)`` for each source and collect step statistics."""
    sources = np.asarray(sources, dtype=np.int64)
    if len(sources) == 0:
        raise ValueError("need at least one source")
    steps = np.empty(len(sources), dtype=np.int64)
    substeps = np.empty(len(sources), dtype=np.int64)
    max_sub = np.empty(len(sources), dtype=np.int64)
    relax = np.empty(len(sources), dtype=np.int64)
    for i, s in enumerate(sources):
        res = solve(graph, int(s))
        steps[i] = res.steps
        substeps[i] = res.substeps
        max_sub[i] = res.max_substeps
        relax[i] = res.relaxations
    return StepStats(
        sources=sources,
        steps=steps,
        substeps=substeps,
        max_substeps=max_sub,
        relaxations=relax,
    )
