"""Paper-style text tables.

Renders the rows of Tables 2–7 in the same layout the paper uses so that
EXPERIMENTS.md's paper-vs-measured comparison is a visual diff.  Number
formatting follows the paper: two decimals for factors, "986K"-style
abbreviations for large step counts.
"""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["format_number", "render_table", "render_kv"]


def format_number(x: float, *, decimals: int = 2) -> str:
    """Paper-style numeric formatting (K/M suffixes past 100k)."""
    if x != x:  # NaN
        return "-"
    if x == float("inf"):
        return "inf"
    ax = abs(x)
    if ax >= 1_000_000:
        return f"{x / 1_000_000:.0f}M"
    if ax >= 100_000:
        return f"{x / 1_000:.0f}K"
    if float(x).is_integer() and ax >= 1000:
        return f"{int(x)}"
    return f"{x:.{decimals}f}"


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    *,
    title: str = "",
    decimals: int = 2,
) -> str:
    """Monospace table with right-aligned numeric columns."""
    srows: list[list[str]] = []
    for row in rows:
        srows.append(
            [
                cell if isinstance(cell, str) else format_number(cell, decimals=decimals)
                for cell in row
            ]
        )
    cols = len(headers)
    widths = [len(h) for h in headers]
    for row in srows:
        if len(row) != cols:
            raise ValueError("row width does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: list[str] = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.rjust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in srows:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_kv(pairs: Iterable[tuple[str, object]], *, title: str = "") -> str:
    """Simple aligned key/value block for experiment headers."""
    pairs = list(pairs)
    width = max((len(k) for k, _ in pairs), default=0)
    lines = [title] if title else []
    for k, v in pairs:
        lines.append(f"  {k.ljust(width)} : {v}")
    return "\n".join(lines)
