"""Theoretical bounds from the paper, as executable formulas.

Used three ways: (a) tests assert the measured step/substep counts respect
Theorems 3.2/3.3, (b) the work/depth benchmark fits ledger measurements
against Theorem 1.1's asymptotics, and (c) the Table 1 report prints the
cost expressions of every algorithm the paper compares against.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = [
    "max_substeps_bound",
    "max_steps_bound",
    "radius_stepping_work",
    "radius_stepping_depth",
    "preprocessing_work",
    "preprocessing_depth",
    "TABLE1_ROWS",
    "Table1Row",
]


def max_substeps_bound(k: int) -> int:
    """Theorem 3.2: at most ``k + 2`` substeps per step when
    ``r(v) ≤ r̄_k(v)``."""
    if k < 0:
        raise ValueError("k >= 0 required")
    return k + 2


def max_steps_bound(n: int, rho: int, L: float) -> int:
    """Theorem 3.3: ``⌈n/ρ⌉ (1 + ⌈log₂ ρL⌉)`` steps when
    ``|B(v, r(v))| ≥ ρ``."""
    if n < 1 or rho < 1 or L <= 0:
        raise ValueError("need n >= 1, rho >= 1, L > 0")
    log_term = max(0, math.ceil(math.log2(max(1.0, rho * L))))
    return math.ceil(n / rho) * (1 + log_term)


def radius_stepping_work(n: int, m: int, k: int = 1) -> float:
    """Lemma 3.9 work: O(k m log n) (constants dropped — these formulas
    are fit targets, not predictions)."""
    return k * m * math.log2(max(2, n))


def radius_stepping_depth(n: int, rho: int, L: float, k: int = 1) -> float:
    """Lemma 3.9 depth: O(k (n/ρ) log n log ρL)."""
    return (
        k
        * (n / rho)
        * math.log2(max(2, n))
        * math.log2(max(2.0, rho * L))
    )


def preprocessing_work(n: int, m: int, rho: int, *, bst: bool = False) -> float:
    """Lemma 4.2 work: O(m log n + nρ²) (Fibonacci-heap variant) or
    O(m log n + nρ² log ρ) (BST variant)."""
    base = m * math.log2(max(2, n)) + n * rho * rho
    if bst:
        base += n * rho * rho * (math.log2(max(2, rho)) - 1)
    return base


def preprocessing_depth(rho: int, *, bst: bool = False) -> float:
    """Lemma 4.2 depth: O(ρ²), or O(ρ log ρ) with BST priority queues."""
    if bst:
        return rho * math.log2(max(2, rho))
    return float(rho * rho)


@dataclass(frozen=True)
class Table1Row:
    """One row of the paper's Table 1 (cost bounds of exact SSSP)."""

    setting: str
    algorithm: str
    work: str
    depth: str
    parameters: str = ""


#: The paper's Table 1, verbatim, for the report generator.
TABLE1_ROWS: tuple[Table1Row, ...] = (
    Table1Row("Unweighted (BFS)", "Standard BFS", "O(m + n)", "O(n)"),
    Table1Row(
        "Unweighted (BFS)",
        "Ullman and Yannakakis",
        "~O(m sqrt(n) + nm/t + n^3/t^4)",
        "~O(t)",
        "t <= sqrt(n)",
    ),
    Table1Row(
        "Unweighted (BFS)",
        "Spencer",
        "O(m log p + n p^2 log^2 p)",
        "O((n/p) log^2 p)",
        "sqrt(m/n) <= p <= n",
    ),
    Table1Row(
        "Unweighted (BFS)",
        "This work",
        "O(m + n p)",
        "O((n/p) log p log* p)",
        "preproc: O(n p^2) work, O(p log* p) depth",
    ),
    Table1Row("Weighted SSSP", "Parallel Dijkstra [20]", "O(m + n log n)", "O(n log n)"),
    Table1Row("Weighted SSSP", "Parallel Dijkstra [4]", "O(m log n + n)", "O(n)"),
    Table1Row(
        "Weighted SSSP",
        "Klein and Subramanian",
        "O(m sqrt(n) log K log n)",
        "O(sqrt(n) log K log n)",
        "K = max dist from s",
    ),
    Table1Row(
        "Weighted SSSP",
        "Spencer",
        "O((n p^2 log p + m) log(n p L))",
        "O((n/p) log n log(p L))",
        "log(pL) <= p <= n",
    ),
    Table1Row(
        "Weighted SSSP",
        "Shi and Spencer",
        "O((n^3/p^2) log n log(n/p) + m log n)",
        "O(p log n)",
    ),
    Table1Row("Weighted SSSP", "Cohen", "O(n^2 + n^3/p^2)", "O(p polylog(n))"),
    Table1Row(
        "Weighted SSSP",
        "This work",
        "O((m + n p) log n)",
        "O((n/p) log n log(p L))",
        "preproc: O(m log n + n p^2) work, O(p^2) depth",
    ),
)
