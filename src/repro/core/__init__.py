"""SSSP solvers: Radius-Stepping (both engines) and the baselines."""

from .bellman_ford import bellman_ford
from .bfs import bfs, bfs_levels, gather_frontier_arcs
from .delta_stepping import delta_stepping, suggest_delta
from .dijkstra import dijkstra, dijkstra_minhop, dijkstra_steps
from .landmark import hop_limited_distances, landmark_sssp, sample_landmarks
from .radius_stepping import as_radii, radius_stepping
from .radius_stepping_bst import radius_stepping_bst
from .radius_stepping_unweighted import radius_stepping_unweighted
from .result import SsspResult, StepTrace
from .solver import PreprocessedSSSP

__all__ = [
    "PreprocessedSSSP",
    "SsspResult",
    "StepTrace",
    "as_radii",
    "bellman_ford",
    "bfs",
    "bfs_levels",
    "delta_stepping",
    "dijkstra",
    "dijkstra_minhop",
    "dijkstra_steps",
    "gather_frontier_arcs",
    "hop_limited_distances",
    "landmark_sssp",
    "radius_stepping",
    "sample_landmarks",
    "radius_stepping_bst",
    "radius_stepping_unweighted",
    "suggest_delta",
]
