"""Round-synchronous Bellman–Ford.

The other end of the paper's design space: Radius-Stepping with
``r(v) = ∞`` degenerates to Bellman–Ford (a single step whose substeps are
these rounds).  Each round relaxes, in one data-parallel operation, every
arc out of the vertices whose distance changed in the previous round; the
number of rounds is the hop radius of the shortest-path tree *plus one
final verification round* that confirms quiescence — the same convention
under which Theorem 3.2's ``k + 2`` substep bound counts its confirming
substep, so Radius-Stepping with ``r ≡ ∞`` reports identical substeps.
"""

from __future__ import annotations

import numpy as np

from ..graphs.csr import CSRGraph
from .bfs import gather_frontier_arcs
from .result import SsspResult

__all__ = ["bellman_ford"]


def bellman_ford(
    graph: CSRGraph, source: int, *, track_parents: bool = False
) -> SsspResult:
    """Frontier Bellman–Ford; rounds = hop eccentricity of the source + 1.

    With non-negative weights termination is guaranteed in at most ``n``
    rounds; the implementation asserts that invariant as a guard against
    graph corruption rather than re-checking weights.
    """
    n = graph.n
    if not (0 <= source < n):
        raise ValueError(f"source {source} out of range [0, {n})")
    dist = np.full(n, np.inf)
    parent = np.full(n, -1, dtype=np.int64) if track_parents else None
    dist[source] = 0.0
    changed = np.array([source], dtype=np.int64)
    rounds = 0
    relaxations = 0
    while len(changed):
        if rounds > n:
            raise RuntimeError("Bellman-Ford failed to converge (negative cycle?)")
        arcpos, tails = gather_frontier_arcs(graph, changed)
        if len(arcpos) == 0:
            break
        rounds += 1
        relaxations += len(arcpos)
        targets = graph.indices[arcpos]
        cand = dist[tails] + graph.weights[arcpos]
        uniq = np.unique(targets)
        before = dist[uniq].copy()
        np.minimum.at(dist, targets, cand)  # priority-write (WriteMin)
        if parent is not None:
            winners = cand <= dist[targets]
            parent[targets[winners]] = tails[winners]
        changed = uniq[dist[uniq] < before]
    return SsspResult(
        dist=dist,
        parent=parent,
        steps=1,
        substeps=rounds,
        max_substeps=rounds,
        relaxations=relaxations,
        algorithm="bellman-ford",
        params={"source": source},
    )
