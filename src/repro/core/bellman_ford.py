"""Round-synchronous Bellman–Ford.

The other end of the paper's design space: Radius-Stepping with
``r(v) = ∞`` degenerates to Bellman–Ford (a single step whose substeps are
these rounds).  Each round relaxes, in one data-parallel operation, every
arc out of the vertices whose distance changed in the previous round; the
number of rounds is the hop radius of the shortest-path tree *plus one
final verification round* that confirms quiescence — the same convention
under which Theorem 3.2's ``k + 2`` substep bound counts its confirming
substep, so Radius-Stepping with ``r ≡ ∞`` reports identical substeps.

The per-round relaxation is the shared
:class:`repro.engine.kernel.RelaxationKernel` substep (with
``exclude_settled=False``: classic Bellman–Ford has no settled set); only
the round loop and its instrumentation live here.
"""

from __future__ import annotations

import numpy as np

from ..engine.kernel import RelaxationKernel
from ..graphs.csr import CSRGraph
from .result import SsspResult

__all__ = ["bellman_ford"]


def bellman_ford(
    graph: CSRGraph, source: int, *, track_parents: bool = False
) -> SsspResult:
    """Frontier Bellman–Ford; rounds = hop eccentricity of the source + 1.

    With non-negative weights termination is guaranteed in at most ``n``
    rounds; the implementation asserts that invariant as a guard against
    graph corruption rather than re-checking weights.
    """
    n = graph.n
    if not (0 <= source < n):
        raise ValueError(f"source {source} out of range [0, {n})")
    kernel = RelaxationKernel(graph, source, track_parents=track_parents)
    changed = np.array([source], dtype=np.int64)
    rounds = 0
    while len(changed):
        if rounds > n:
            raise RuntimeError("Bellman-Ford failed to converge (negative cycle?)")
        improved, n_arcs = kernel.relax(changed, exclude_settled=False)
        if n_arcs == 0:
            break
        rounds += 1
        changed = improved
    return SsspResult(
        dist=kernel.dist,
        parent=kernel.parent,
        steps=1,
        substeps=rounds,
        max_substeps=rounds,
        relaxations=kernel.relaxations,
        algorithm="bellman-ford",
        params={"source": source},
    )
