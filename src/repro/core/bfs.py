"""Level-synchronous breadth-first search.

The "standard BFS implementation" baseline of Tables 4/5: one parallel
step per level, so the number of rounds equals the eccentricity of the
source.  The frontier expansion is fully vectorized (CSR gather +
``np.unique``) — each round is one data-parallel operation, mirroring the
O(n') work / O(log* n') depth per round the paper cites for CRCW BFS.
"""

from __future__ import annotations

import numpy as np

from ..engine.kernel import gather_frontier_arcs
from ..graphs.csr import CSRGraph
from .result import SsspResult

# Historically defined here; canonical home is now the relaxation kernel.
__all__ = ["bfs", "bfs_levels", "gather_frontier_arcs"]


def bfs_levels(graph: CSRGraph, source: int) -> tuple[np.ndarray, int]:
    """Return ``(levels, rounds)``.

    ``levels[v]`` is the hop distance from ``source`` (-1 when
    unreachable); ``rounds`` is the number of level expansions, i.e. the
    eccentricity of the source — the BFS step count of Table 4's ρ=1 row.
    """
    n = graph.n
    if not (0 <= source < n):
        raise ValueError(f"source {source} out of range [0, {n})")
    levels = np.full(n, -1, dtype=np.int64)
    levels[source] = 0
    frontier = np.array([source], dtype=np.int64)
    rounds = 0
    while len(frontier):
        arcpos, _ = gather_frontier_arcs(graph, frontier)
        nbrs = graph.indices[arcpos]
        fresh = np.unique(nbrs[levels[nbrs] < 0])
        if len(fresh) == 0:
            break
        rounds += 1
        levels[fresh] = rounds
        frontier = fresh
    return levels, rounds


def bfs(graph: CSRGraph, source: int) -> SsspResult:
    """BFS as an SSSP solver on the unweighted metric (dist = hop count)."""
    levels, rounds = bfs_levels(graph, source)
    dist = levels.astype(np.float64)
    dist[levels < 0] = np.inf
    return SsspResult(
        dist=dist,
        parent=None,
        steps=rounds,
        substeps=rounds,
        max_substeps=1,
        relaxations=int(np.sum(levels >= 0)),
        algorithm="bfs",
        params={"source": source},
    )
