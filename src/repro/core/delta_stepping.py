"""∆-stepping (Meyer & Sanders 2003) — the paper's practical baseline.

Radius-Stepping generalizes this algorithm by choosing a fresh, per-step
radius instead of the fixed increment ∆.  We implement the classic
formulation with light/heavy edge classes and bucket recycling, fully
instrumented: *steps* (buckets emptied) and *substeps* (light-relaxation
phases + one heavy phase per bucket) are the quantities the paper contrasts
against its own step bound.

Each phase's batched relaxation is the shared
:class:`repro.engine.kernel.RelaxationKernel` substep with an arc-class
mask; the light/heavy bucket choreography lives here.  (A second,
boundary-based ∆-stepping also exists as the ``delta`` engine in
:mod:`repro.engine.registry` — same distances, unified-loop accounting.)
"""

from __future__ import annotations

import math

import numpy as np

from ..engine.kernel import RelaxationKernel
from ..graphs.csr import CSRGraph
from .result import SsspResult, StepTrace

__all__ = ["delta_stepping", "suggest_delta"]


def suggest_delta(graph: CSRGraph) -> float:
    """Meyer & Sanders' rule of thumb ∆ = Θ(1 / max degree) scaled by the
    mean edge weight — a reasonable default when no tuning is done.

    Always positive and finite: degenerate weight ranges (edgeless
    graphs, or all-zero weights where ``min_positive_weight`` is ``inf``
    and the mean is 0) clamp to a floor of 1.0 so the derived bucket
    width is legal for any downstream queue.
    """
    deg = max(1, int(graph.degrees().max()) if graph.n else 1)
    mean_w = float(graph.weights.mean()) if graph.num_arcs else 1.0
    delta = max(graph.min_positive_weight, mean_w * 2.0 / deg)
    if not (delta > 0 and math.isfinite(delta)):
        return 1.0
    return delta


def delta_stepping(
    graph: CSRGraph,
    source: int,
    delta: float | None = None,
    *,
    track_trace: bool = False,
) -> SsspResult:
    """Solve SSSP with bucket width ``delta`` (auto-chosen when ``None``).

    Implementation notes
    --------------------
    * Buckets are a dict ``index -> set`` with an array of current bucket
      ids per vertex; a vertex moves buckets on every distance improvement.
    * Each light phase relaxes, as one vectorized kernel substep, every
      light arc out of the vertices newly added to the current bucket.
    * Heavy arcs of all vertices removed from the bucket are relaxed once
      after the bucket drains — they cannot re-enter the current bucket.
    """
    n = graph.n
    if not (0 <= source < n):
        raise ValueError(f"source {source} out of range [0, {n})")
    if delta is None:
        delta = suggest_delta(graph)
    if not (delta > 0 and math.isfinite(delta)):
        raise ValueError("delta must be positive and finite")

    light_arc = graph.weights <= delta
    heavy_arc = ~light_arc

    kernel = RelaxationKernel(graph, source)
    dist = kernel.dist
    bucket_of = np.full(n, -1, dtype=np.int64)
    buckets: dict[int, set[int]] = {0: {source}}
    bucket_of[source] = 0

    steps = substeps = max_substeps = 0
    trace: list[StepTrace] | None = [] if track_trace else None
    settled_before = 0

    def relax_batch(frontier: np.ndarray, arc_mask: np.ndarray) -> None:
        moved, _ = kernel.relax(frontier, exclude_settled=False, arc_mask=arc_mask)
        for v in moved.tolist():
            newb = int(dist[v] // delta)
            oldb = bucket_of[v]
            if oldb == newb:
                continue
            if oldb >= 0:
                buckets.get(oldb, set()).discard(v)
            buckets.setdefault(newb, set()).add(v)
            bucket_of[v] = newb

    while buckets:
        j = min(buckets)
        if not buckets[j]:
            del buckets[j]
            continue
        steps += 1
        removed: set[int] = set()
        phases_this_step = 0
        # Drain bucket j: light relaxations may re-insert vertices into j.
        while buckets.get(j):
            current = buckets.pop(j)
            for v in current:
                bucket_of[v] = -1
            removed |= current
            phases_this_step += 1
            frontier = np.fromiter(current, count=len(current), dtype=np.int64)
            relax_batch(frontier, light_arc)
        # Heavy relaxations once per bucket; heavy targets land beyond j.
        if removed:
            frontier = np.fromiter(removed, count=len(removed), dtype=np.int64)
            relax_batch(frontier, heavy_arc)
            phases_this_step += 1
        substeps += phases_this_step
        max_substeps = max(max_substeps, phases_this_step)
        if trace is not None:
            settled_now = int(np.isfinite(dist).sum())
            trace.append(
                StepTrace(
                    step=steps - 1,
                    radius=(j + 1) * delta,
                    substeps=phases_this_step,
                    settled=settled_now - settled_before,
                    relaxations=kernel.relaxations,
                )
            )
            settled_before = settled_now

    return SsspResult(
        dist=dist,
        parent=None,
        steps=steps,
        substeps=substeps,
        max_substeps=max_substeps,
        relaxations=kernel.relaxations,
        algorithm="delta-stepping",
        params={"source": source, "delta": delta},
        trace=trace,
    )
