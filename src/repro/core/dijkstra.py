"""Dijkstra's algorithm — the sequential ground truth (paper ref [8]).

Three entry points:

* :func:`dijkstra` — classic binary-heap Dijkstra, the correctness oracle
  for every other solver in the library.
* :func:`dijkstra_minhop` — lexicographic ``(distance, hops)`` Dijkstra.
  Among all shortest paths it finds, for every vertex, one with the fewest
  edges; the resulting parent tree is exactly the min-hop shortest-path
  tree that §4.2.2's DP heuristic requires ("among all shortest-path trees
  from s, one where every path has the smallest hop count possible").
* :func:`dijkstra_steps` — Dijkstra with equal-distance extractions batched
  into one step, the ρ=1 baseline of Tables 6/7.

The first two are deliberately *not* built on :mod:`repro.engine`: a
per-edge sequential implementation is the independent oracle the
engine-parity tests validate every schedule against.  ``dijkstra_steps``
is the engine's ``r ≡ 0`` degeneration (the ``dijkstra`` registry
engine) and goes through the shared kernel.
"""

from __future__ import annotations

import heapq

import numpy as np

from ..graphs.csr import CSRGraph
from .result import SsspResult

__all__ = ["dijkstra", "dijkstra_minhop", "dijkstra_steps"]


def dijkstra(graph: CSRGraph, source: int, *, track_parents: bool = True) -> SsspResult:
    """Binary-heap Dijkstra with lazy deletion.

    O((n + m) log n) time; distances are exact for non-negative weights.
    """
    n = graph.n
    if not (0 <= source < n):
        raise ValueError(f"source {source} out of range [0, {n})")
    dist = np.full(n, np.inf)
    parent = np.full(n, -1, dtype=np.int64) if track_parents else None
    dist[source] = 0.0
    heap: list[tuple[float, int]] = [(0.0, source)]
    done = np.zeros(n, dtype=bool)
    indptr, indices, weights = graph.indptr, graph.indices, graph.weights
    relaxations = 0
    steps = 0
    while heap:
        d, u = heapq.heappop(heap)
        if done[u]:
            continue
        done[u] = True
        steps += 1
        for j in range(indptr[u], indptr[u + 1]):
            v = indices[j]
            relaxations += 1
            nd = d + weights[j]
            if nd < dist[v]:
                dist[v] = nd
                if parent is not None:
                    parent[v] = u
                heapq.heappush(heap, (nd, v))
    return SsspResult(
        dist=dist,
        parent=parent,
        steps=steps,
        substeps=steps,
        max_substeps=1,
        relaxations=relaxations,
        algorithm="dijkstra",
        params={"source": source},
    )


def dijkstra_minhop(graph: CSRGraph, source: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Dijkstra under the lexicographic key ``(distance, hop count)``.

    Returns ``(dist, hops, parent)``.  ``hops[v]`` is the minimum number of
    edges over all shortest (minimum-weight) paths from ``source`` to
    ``v`` — the paper's hop distance ``d̂(source, v)`` (Definition 1) —
    and ``parent`` realizes a min-hop shortest-path tree.
    """
    n = graph.n
    if not (0 <= source < n):
        raise ValueError(f"source {source} out of range [0, {n})")
    dist = np.full(n, np.inf)
    hops = np.full(n, np.iinfo(np.int64).max, dtype=np.int64)
    parent = np.full(n, -1, dtype=np.int64)
    dist[source] = 0.0
    hops[source] = 0
    heap: list[tuple[float, int, int]] = [(0.0, 0, source)]
    done = np.zeros(n, dtype=bool)
    indptr, indices, weights = graph.indptr, graph.indices, graph.weights
    while heap:
        d, h, u = heapq.heappop(heap)
        if done[u]:
            continue
        done[u] = True
        for j in range(indptr[u], indptr[u + 1]):
            v = indices[j]
            nd = d + weights[j]
            nh = h + 1
            if nd < dist[v] or (nd == dist[v] and nh < hops[v]):
                dist[v] = nd
                hops[v] = nh
                parent[v] = u
                heapq.heappush(heap, (nd, nh, v))
    hops[~np.isfinite(dist)] = -1
    hops_out = hops.copy()
    return dist, hops_out, parent


def dijkstra_steps(graph: CSRGraph, source: int) -> SsspResult:
    """Dijkstra where all minimum-distance vertices settle together.

    This is Radius-Stepping with ``r(v) = 0`` ("when ρ = 1,
    Radius-Stepping becomes essentially Dijkstra's except vertices with
    the same distance are extracted together" — §5.3); its step count is
    the ρ=1 row of Tables 6/7.
    """
    from .radius_stepping import radius_stepping

    return radius_stepping(graph, source, radii=0.0, algorithm_name="dijkstra-steps")
