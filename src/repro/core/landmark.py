"""Landmark (hop-limited) parallel SSSP — the Table 1 shortcut baselines.

Ullman & Yannakakis [28] solve unweighted SSSP in O~(t) depth by sampling
~(n ln n)/t landmarks, running t-hop-limited searches from each in
parallel, and stitching the results through a small landmark graph; Klein
& Subramanian [16] extend the idea to weighted graphs.  Radius-Stepping's
Table 1 positions itself against both, so this module implements the
common core as an instrumented reference baseline:

1. sample landmarks so that, w.h.p., every min-hop shortest path contains
   a landmark in each window of ``t`` consecutive hops;
2. from every landmark run ``t`` synchronous Bellman–Ford rounds — this
   computes exact *hop-limited* distances (shortest using ≤ t edges),
   which is the quantity the stitching argument needs (a truncated
   Dijkstra would not be);
3. solve the (small, weighted) landmark graph by Dijkstra;
4. combine: ``d(v) = min_ℓ  d_H(s→ℓ) + d_t(ℓ, v)``.

The result is exact with high probability in the oversampling factor; the
(seeded) test suite cross-checks it against Dijkstra.  Cost accounting:
``substeps`` = t (the depth of the limited searches, all parallel);
``steps`` = the three phases.  Total work is Θ(s·t·m̄) — the work/depth
trade Table 1 charges this family for, and the reason Radius-Stepping's
near-linear work is an improvement.
"""

from __future__ import annotations

import heapq
import math

import numpy as np

from ..graphs.csr import CSRGraph
from .bfs import gather_frontier_arcs
from .result import SsspResult

__all__ = ["landmark_sssp", "sample_landmarks", "hop_limited_distances"]


def sample_landmarks(
    n: int, t: int, source: int, *, oversample: float = 3.0, seed: int = 0
) -> np.ndarray:
    """Sample ~oversample·(n ln n)/t landmarks, always including ``source``.

    The classic argument: a fixed path of ``t`` vertices avoids all
    landmarks with probability (1 - s/n)^t ≈ e^(-s·t/n); s =
    oversample·(n ln n)/t drives that below n^(-oversample) — union-bound
    safe over all shortest paths.
    """
    if t < 1:
        raise ValueError("t >= 1 required")
    if oversample <= 0:
        raise ValueError("oversample > 0 required")
    rng = np.random.default_rng(seed)
    want = int(math.ceil(oversample * n * math.log(max(2, n)) / t))
    want = min(n, max(1, want))
    picks = rng.choice(n, size=want, replace=False)
    return np.unique(np.append(picks, source)).astype(np.int64)


def hop_limited_distances(
    graph: CSRGraph, source: int, t: int
) -> np.ndarray:
    """Exact distances over paths of at most ``t`` edges (t synchronous
    Bellman–Ford rounds — one CSR gather + scatter-min per round)."""
    n = graph.n
    dist = np.full(n, np.inf)
    dist[source] = 0.0
    changed = np.array([source], dtype=np.int64)
    for _ in range(t):
        if len(changed) == 0:
            break
        arcpos, tails = gather_frontier_arcs(graph, changed)
        if len(arcpos) == 0:
            break
        targets = graph.indices[arcpos]
        cand = dist[tails] + graph.weights[arcpos]
        uniq = np.unique(targets)
        before = dist[uniq].copy()
        np.minimum.at(dist, targets, cand)
        changed = uniq[dist[uniq] < before]
    return dist


def landmark_sssp(
    graph: CSRGraph,
    source: int,
    t: int,
    *,
    oversample: float = 3.0,
    seed: int = 0,
) -> SsspResult:
    """Ullman–Yannakakis / Klein–Subramanian-style SSSP from ``source``.

    Exact with high probability (raise ``oversample`` to push the failure
    odds down); works on weighted and unweighted graphs alike because the
    limited searches are hop-limited Bellman–Ford rounds.  ``t`` is the
    depth knob of Table 1: larger t = fewer landmarks = less work but
    more depth — the mirror image of Radius-Stepping's ρ.
    """
    n = graph.n
    if not (0 <= source < n):
        raise ValueError(f"source {source} out of range [0, {n})")
    landmarks = sample_landmarks(n, t, source, oversample=oversample, seed=seed)
    s_idx = int(np.searchsorted(landmarks, source))

    # Phase 1 (parallel over landmarks): t-hop-limited searches.
    limited = np.vstack(
        [hop_limited_distances(graph, int(l), t) for l in landmarks]
    )  # shape (s, n)
    relaxations = int(np.isfinite(limited).sum())

    # Phase 2: Dijkstra on the landmark graph H (arcs = limited distances).
    s = len(landmarks)
    lm_cols = limited[:, landmarks]  # (s, s): d_t(l_i, l_j)
    dist_h = np.full(s, np.inf)
    dist_h[s_idx] = 0.0
    heap: list[tuple[float, int]] = [(0.0, s_idx)]
    done = np.zeros(s, dtype=bool)
    while heap:
        d, i = heapq.heappop(heap)
        if done[i]:
            continue
        done[i] = True
        nd = d + lm_cols[i]
        better = nd < dist_h
        for j in np.flatnonzero(better):
            dist_h[j] = nd[j]
            heapq.heappush(heap, (float(nd[j]), int(j)))

    # Phase 3 (one parallel min-reduction): stitch landmark distances.
    dist = np.min(dist_h[:, None] + limited, axis=0)
    dist[source] = 0.0

    return SsspResult(
        dist=dist,
        parent=None,
        steps=3,
        substeps=t,
        max_substeps=t,
        relaxations=relaxations,
        algorithm="landmark-sssp",
        params={
            "source": source,
            "t": t,
            "landmarks": s,
            "oversample": oversample,
            "seed": seed,
        },
    )
