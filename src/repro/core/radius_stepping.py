"""Radius-Stepping (Algorithm 1) — the paper's main contribution.

The solver settles vertices in annuli: on step *i* it picks the round
distance ``d_i = min_{v unsettled} (δ(v) + r(v))`` (Line 4) and runs
Bellman–Ford substeps until every tentative distance ≤ ``d_i`` is stable
(Lines 5–9), then settles all vertices within ``d_i``.

* ``r(v) = 0``      → Dijkstra with equal-distance batching,
* ``r(v) = ∞``      → Bellman–Ford (one step),
* ``r(v) = ∆``      → almost ∆-stepping (∆ added to the nearest frontier
  vertex rather than to ``d_{i-1}``),
* ``r(v) = r_ρ(v)`` from :mod:`repro.preprocess` → the paper's bounds:
  ≤ k+2 substeps per step on a (k,ρ)-graph (Thm 3.2) and
  ≤ ⌈n/ρ⌉(1+⌈log₂ ρL⌉) steps (Thm 3.3).

Engineering
-----------
This engine mirrors the role of Algorithm 2's two ordered sets with two
lazy binary heaps: ``R`` keyed by ``δ(v) + r(v)`` yields ``d_i`` (its
*extract-min*), and ``Q`` keyed by ``δ(v)`` yields the active set (its
*split* at ``d_i``).  Heaps support exactly the two operations this engine
needs at O(log n) amortized; the faithful treap-based engine with parallel
split/union/difference and PRAM cost accounting lives in
:mod:`repro.core.radius_stepping_bst`.

Each substep is one data-parallel relaxation: a CSR multi-gather of the
changed frontier's arcs followed by a ``np.minimum.at`` scatter-min — the
paper's priority-write (WriteMin) — with no per-edge Python work.  An
optional :class:`~repro.pram.ledger.Ledger` charges the PRAM work/depth
formulas of Section 3.3 for every bulk operation.
"""

from __future__ import annotations

import heapq
import math

import numpy as np

from ..graphs.csr import CSRGraph
from .bfs import gather_frontier_arcs
from .result import SsspResult, StepTrace

__all__ = ["radius_stepping", "as_radii"]


def as_radii(graph: CSRGraph, radii: float | np.ndarray | None) -> np.ndarray:
    """Normalize a radii spec to a per-vertex float array.

    ``None`` means zero radii (Dijkstra-like); a scalar is broadcast; an
    array is validated for shape and non-negativity.  ``inf`` entries are
    allowed (Bellman–Ford-like behaviour for those vertices).
    """
    n = graph.n
    if radii is None:
        return np.zeros(n)
    if np.isscalar(radii):
        val = float(radii)  # type: ignore[arg-type]
        if val < 0 or math.isnan(val):
            raise ValueError("radius must be non-negative")
        return np.full(n, val)
    arr = np.asarray(radii, dtype=np.float64)
    if arr.shape != (n,):
        raise ValueError(f"radii must have shape ({n},), got {arr.shape}")
    if np.any(arr < 0) or np.any(np.isnan(arr)):
        raise ValueError("radii must be non-negative and not NaN")
    return arr


def radius_stepping(
    graph: CSRGraph,
    source: int,
    radii: float | np.ndarray | None,
    *,
    track_parents: bool = False,
    track_trace: bool = False,
    ledger=None,
    algorithm_name: str = "radius-stepping",
) -> SsspResult:
    """Run Radius-Stepping from ``source`` with vertex radii ``radii``.

    Parameters
    ----------
    graph: validated undirected CSR graph with non-negative weights.
    source: source vertex id.
    radii: per-vertex radius ``r(·)`` (see :func:`as_radii`).  Correctness
        holds for *any* non-negative radii (§3: "The algorithm is correct
        for any radii r(·)"); the step/substep bounds need the
        (k,ρ)-graph preconditions established by :mod:`repro.preprocess`.
    track_parents: record a shortest-path tree.
    track_trace: record a per-step :class:`StepTrace` (the data behind
        Figure 1's illustration).
    ledger: optional :class:`repro.pram.ledger.Ledger`; when given, every
        bulk operation charges the PRAM work/depth costs of Section 3.3.

    Returns
    -------
    :class:`SsspResult` with exact distances (``inf`` when unreachable)
    and step/substep/relaxation instrumentation.
    """
    n = graph.n
    if not (0 <= source < n):
        raise ValueError(f"source {source} out of range [0, {n})")
    r = as_radii(graph, radii)
    indptr, indices, weights = graph.indptr, graph.indices, graph.weights
    logn = max(1.0, math.log2(max(2, n)))

    dist = np.full(n, np.inf)
    dist[source] = 0.0
    parent = np.full(n, -1, dtype=np.int64) if track_parents else None
    settled = np.zeros(n, dtype=bool)
    settled[source] = True
    settled_count = 1

    # Line 2: relax the source's neighbors before the first step.
    qheap: list[tuple[float, int]] = []  # keyed by δ(v)        (the BST Q)
    rheap: list[tuple[float, int]] = []  # keyed by δ(v) + r(v) (the BST R)
    for j in range(indptr[source], indptr[source + 1]):
        v = int(indices[j])
        w = float(weights[j])
        if w < dist[v]:
            dist[v] = w
            if parent is not None:
                parent[v] = source
            heapq.heappush(qheap, (w, v))
            heapq.heappush(rheap, (w + r[v], v))
    if ledger is not None:
        ledger.charge(work=graph.degree(source) * logn, depth=logn, label="init")

    steps = substeps_total = max_substeps = 0
    relaxations = graph.degree(source)  # Line 2 relaxes every arc of s
    trace: list[StepTrace] | None = [] if track_trace else None

    while settled_count < n:
        # ---- Line 4: d_i = min over unsettled v of δ(v) + r(v) ----------
        while rheap:
            key, v = rheap[0]
            if settled[v] or key != dist[v] + r[v]:
                heapq.heappop(rheap)  # stale entry (settled or superseded)
                continue
            break
        if not rheap:
            break  # remaining vertices unreachable (disconnected graph)
        d_i = rheap[0][0]
        if ledger is not None:
            ledger.charge(work=logn, depth=logn, label="extract-min R")

        # ---- Split Q at d_i: the initial active set -----------------------
        active: list[int] = []
        while qheap and qheap[0][0] <= d_i:
            key, v = heapq.heappop(qheap)
            if settled[v] or key != dist[v]:
                continue  # stale
            active.append(v)
        if ledger is not None:
            ledger.charge(
                work=max(1.0, len(active)) * logn, depth=logn, label="split Q"
            )
        changed = np.array(active, dtype=np.int64)
        step_settles: list[int] = list(active)
        step_relax = 0
        substeps = 0

        # ---- Lines 5–9: Bellman–Ford substeps until stable ≤ d_i ---------
        while len(changed):
            substeps += 1
            arcpos, tails = gather_frontier_arcs(graph, changed)
            if len(arcpos):
                keep = ~settled[indices[arcpos]]  # v ∈ N(u) \ S_{i-1}
                arcpos = arcpos[keep]
                tails = tails[keep]
            step_relax += len(arcpos)
            if ledger is not None:
                ledger.charge(
                    work=max(1.0, len(arcpos)) * logn,
                    depth=logn,
                    label="substep relax",
                )
            if len(arcpos) == 0:
                break
            targets = indices[arcpos]
            cand = dist[tails] + weights[arcpos]
            uniq = np.unique(targets)
            before = dist[uniq].copy()
            np.minimum.at(dist, targets, cand)  # WriteMin / priority-write
            if parent is not None:
                winners = cand <= dist[targets]
                parent[targets[winners]] = tails[winners]
            improved = uniq[dist[uniq] < before]
            for v in improved:  # refresh heap keys (decrease-key by re-push)
                heapq.heappush(qheap, (dist[v], v))
                heapq.heappush(rheap, (dist[v] + r[v], v))
            # Only updates with δ(v) ≤ d_i keep the substep loop running
            # (Line 9's termination test); they join the active set.
            within = improved[dist[improved] <= d_i]
            newly_active = within[~np.isin(within, changed)]
            # Vertices already active whose δ improved must be re-relaxed
            # too: their out-edges now carry smaller tentative distances.
            re_relax = within[np.isin(within, changed)]
            changed = np.concatenate([newly_active, re_relax])
            step_settles.extend(int(v) for v in newly_active)

        # ---- Line 10: S_i = {v | δ(v) ≤ d_i} ------------------------------
        newly = np.array(sorted(set(step_settles)), dtype=np.int64)
        if len(newly):
            settled[newly] = True
            settled_count += len(newly)
        steps += 1
        substeps_total += substeps
        max_substeps = max(max_substeps, substeps)
        relaxations += step_relax
        if trace is not None:
            trace.append(
                StepTrace(
                    step=steps - 1,
                    radius=float(d_i),
                    substeps=substeps,
                    settled=len(newly),
                    relaxations=step_relax,
                )
            )
        if len(newly) == 0:
            # d_i produced an empty annulus: impossible unless radii contain
            # inf/NaN interplay; guard against an infinite loop.
            raise RuntimeError("radius-stepping made no progress (empty step)")

    return SsspResult(
        dist=dist,
        parent=parent,
        steps=steps,
        substeps=substeps_total,
        max_substeps=max_substeps,
        relaxations=relaxations,
        algorithm=algorithm_name,
        params={"source": source},
        trace=trace,
    )
