"""Radius-Stepping (Algorithm 1) — the paper's main contribution.

The solver settles vertices in annuli: on step *i* it picks the round
distance ``d_i = min_{v unsettled} (δ(v) + r(v))`` (Line 4) and runs
Bellman–Ford substeps until every tentative distance ≤ ``d_i`` is stable
(Lines 5–9), then settles all vertices within ``d_i``.

* ``r(v) = 0``      → Dijkstra with equal-distance batching,
* ``r(v) = ∞``      → Bellman–Ford (one step),
* ``r(v) = ∆``      → almost ∆-stepping (∆ added to the nearest frontier
  vertex rather than to ``d_{i-1}``),
* ``r(v) = r_ρ(v)`` from :mod:`repro.preprocess` → the paper's bounds:
  ≤ k+2 substeps per step on a (k,ρ)-graph (Thm 3.2) and
  ≤ ⌈n/ρ⌉(1+⌈log₂ ρL⌉) steps (Thm 3.3).

Engineering
-----------
This function is a thin adapter over the unified relaxation engine in
:mod:`repro.engine`: the generic Algorithm-1 loop
(:func:`repro.engine.driver.run_engine`) runs under a
:class:`repro.engine.schedules.RadiusSchedule`, which realizes
Algorithm 2's two ordered sets as lazy binary heaps — ``R`` keyed by
``δ(v) + r(v)`` yields ``d_i`` (its *extract-min*) and ``Q`` keyed by
``δ(v)`` yields the active set (its *split* at ``d_i``), both at
O(log n) amortized per operation.  Swap the schedule to change the
substrate or the algorithm: ``RadiusBucketSchedule`` serves the same
``d_i`` sequence from O(1)-push calendar-queue buckets (the ``bucket``
registry engine), and the ∆-stepping / Dijkstra / Bellman–Ford
baselines are one-class schedule plugins over the same loop.  The
faithful treap-based engine with parallel split/union/difference and
PRAM cost accounting lives in :mod:`repro.core.radius_stepping_bst`.

Each substep is one data-parallel relaxation owned by
:class:`repro.engine.kernel.RelaxationKernel`: a CSR multi-gather of
the changed frontier's arcs followed by a ``np.minimum.at`` scatter-min
— the paper's priority-write (WriteMin) — with no per-edge Python work,
plus parent tracking (strict-improvement wins only) and optional
:class:`~repro.pram.ledger.Ledger` charging of the Section 3.3 PRAM
work/depth formulas for every bulk operation.
"""

from __future__ import annotations

import math

import numpy as np

from ..engine.driver import run_engine
from ..engine.schedules import RadiusSchedule
from ..graphs.csr import CSRGraph
from .result import SsspResult

__all__ = ["radius_stepping", "as_radii"]


def as_radii(graph: CSRGraph, radii: float | np.ndarray | None) -> np.ndarray:
    """Normalize a radii spec to a per-vertex float array.

    ``None`` means zero radii (Dijkstra-like); a scalar is broadcast; an
    array is validated for shape and non-negativity.  ``inf`` entries are
    allowed (Bellman–Ford-like behaviour for those vertices).
    """
    n = graph.n
    if radii is None:
        return np.zeros(n)
    if np.isscalar(radii):
        val = float(radii)  # type: ignore[arg-type]
        if val < 0 or math.isnan(val):
            raise ValueError("radius must be non-negative")
        return np.full(n, val)
    arr = np.asarray(radii, dtype=np.float64)
    if arr.shape != (n,):
        raise ValueError(f"radii must have shape ({n},), got {arr.shape}")
    if np.any(arr < 0) or np.any(np.isnan(arr)):
        raise ValueError("radii must be non-negative and not NaN")
    return arr


def radius_stepping(
    graph: CSRGraph,
    source: int,
    radii: float | np.ndarray | None,
    *,
    track_parents: bool = False,
    track_trace: bool = False,
    ledger=None,
    algorithm_name: str = "radius-stepping",
) -> SsspResult:
    """Run Radius-Stepping from ``source`` with vertex radii ``radii``.

    Parameters
    ----------
    graph: validated undirected CSR graph with non-negative weights.
    source: source vertex id.
    radii: per-vertex radius ``r(·)`` (see :func:`as_radii`).  Correctness
        holds for *any* non-negative radii (§3: "The algorithm is correct
        for any radii r(·)"); the step/substep bounds need the
        (k,ρ)-graph preconditions established by :mod:`repro.preprocess`.
    track_parents: record a shortest-path tree.
    track_trace: record a per-step :class:`~repro.core.result.StepTrace`
        (the data behind Figure 1's illustration).
    ledger: optional :class:`repro.pram.ledger.Ledger`; when given, every
        bulk operation charges the PRAM work/depth costs of Section 3.3.

    Returns
    -------
    :class:`SsspResult` with exact distances (``inf`` when unreachable)
    and step/substep/relaxation instrumentation.
    """
    n = graph.n
    if not (0 <= source < n):
        raise ValueError(f"source {source} out of range [0, {n})")
    return run_engine(
        graph,
        source,
        RadiusSchedule(as_radii(graph, radii)),
        track_parents=track_parents,
        track_trace=track_trace,
        ledger=ledger,
        algorithm_name=algorithm_name,
        params={"source": source},
    )
