"""Radius-Stepping on balanced BSTs — a faithful Algorithm 2.

This is the paper's "efficient implementation" verbatim: the tentative
distances of unvisited vertices live in two ordered sets,

* ``Q`` keyed by ``(δ(u), u)`` and
* ``R`` keyed by ``(δ(u) + r(u), u)``,

both balanced BSTs (treaps from :mod:`repro.pram.treap`).  Each step
extracts ``d_i`` as R's minimum (Line 6), splits Q at ``d_i`` to obtain the
active set ``A_i`` (Line 7), removes ``A_i`` from R (Line 8), and then runs
the k+2-bounded relaxation substeps with the three-way case analysis of
Lines 10–18.  Substep set maintenance uses the bulk union/difference path
of Section 3.3, so a :class:`~repro.pram.ledger.Ledger` attached here
measures exactly the O(k m log n) work and O(k (n/ρ) log n log ρL) depth
the paper proves.

This engine is the *reference semantics*: it is deliberately simple
(per-edge Python relaxation inside substeps) and is cross-validated against
the vectorized engine in :mod:`repro.core.radius_stepping`, which must
produce identical distances, steps, and substep counts.
"""

from __future__ import annotations

import numpy as np

from ..graphs.csr import CSRGraph
from ..pram.ledger import Ledger
from ..pram.ordered_set import VertexKeyedSet
from .radius_stepping import as_radii
from .result import SsspResult, StepTrace

__all__ = ["radius_stepping_bst"]


def radius_stepping_bst(
    graph: CSRGraph,
    source: int,
    radii: float | np.ndarray | None,
    *,
    track_trace: bool = False,
    ledger: Ledger | None = None,
) -> SsspResult:
    """Run Algorithm 2 from ``source``; see module docstring.

    Intended for validation, teaching, and PRAM cost measurement — use
    :func:`repro.core.radius_stepping.radius_stepping` for large runs.
    """
    n = graph.n
    if not (0 <= source < n):
        raise ValueError(f"source {source} out of range [0, {n})")
    r = as_radii(graph, radii)
    indptr, indices, weights = graph.indptr, graph.indices, graph.weights

    dist = np.full(n, np.inf)
    dist[source] = 0.0
    settled = np.zeros(n, dtype=bool)
    settled[source] = True

    # Lines 3–4: Q and R start with the relaxed neighbors of the source.
    Q = VertexKeyedSet(ledger=ledger, label="Q")
    R = VertexKeyedSet(ledger=ledger, label="R")
    for j in range(indptr[source], indptr[source + 1]):
        v = int(indices[j])
        w = float(weights[j])
        if w < dist[v]:
            dist[v] = w
    for j in range(indptr[source], indptr[source + 1]):
        v = int(indices[j])
        if not settled[v] and v not in Q:
            Q.insert(v, dist[v])
            R.insert(v, dist[v] + r[v])

    steps = substeps_total = max_substeps = relaxations = 0
    trace: list[StepTrace] | None = [] if track_trace else None

    # Line 5: while |Q| > 0
    while len(Q):
        d_i, _ = R.min()  # Line 6
        taken = Q.split_leq(d_i)  # Line 7
        active = [v for _, v in taken]
        R.difference_vertices(active)  # Line 8 (bulk removal)
        active_set = set(active)

        substeps = 0
        step_relax = 0
        while True:  # Lines 9–19 repeat-until
            substeps += 1
            updated_in_active = False
            new_entries: list[tuple[int, float]] = []
            # One substep is one *synchronous* parallel round: every
            # relaxation reads the tentative distances as they stood when
            # the round began (the PRAM priority-write model of §3.3).
            # Relaxing with live values instead would propagate several
            # hops per substep and undercount the depth proxy.
            frozen = [(u, float(dist[u])) for u in active_set]
            for u, du in frozen:  # foreach u ∈ A_i, v ∈ N(u)
                for j in range(indptr[u], indptr[u + 1]):
                    v = int(indices[j])
                    if settled[v]:
                        continue
                    step_relax += 1
                    nd = du + weights[j]
                    if dist[v] > nd:  # Line 10
                        # Line 11's "δ(v) > d_i" is an A_i-membership
                        # test in disguise; testing membership directly
                        # keeps it correct when r(v) = ∞ makes d_i = ∞
                        # (then δ(v) = ∞ > d_i = ∞ is false even though
                        # v is unreached and belongs in the annulus).
                        if v not in active_set and nd <= d_i:
                            Q.remove(v)  # Line 13
                            R.remove(v)  # Line 12
                            active_set.add(v)  # Line 14
                            dist[v] = nd  # Line 15
                            updated_in_active = True
                        elif nd > d_i:  # Line 16
                            dist[v] = nd
                            new_entries.append((v, nd))
                        else:  # v already ≤ d_i: update within the annulus
                            dist[v] = nd
                            updated_in_active = True
            if new_entries:
                # Section 3.3 bulk maintenance: difference out stale keys,
                # union in the successful relaxations.  A vertex that later
                # dropped into the annulus this same substep belongs to A_i
                # now and must not re-enter Q/R.
                last: dict[int, float] = {}
                for v, nd in new_entries:
                    if v not in active_set:
                        last[v] = min(nd, last.get(v, float("inf")))
                if last:
                    Q.union_values(last.items())  # Line 17
                    R.union_values((v, nd + r[v]) for v, nd in last.items())  # 18
            if not updated_in_active:
                break  # Line 19: no δ(v), v ∈ A_i, was updated

        for v in active_set:  # settle S_i
            settled[v] = True
        steps += 1
        substeps_total += substeps
        max_substeps = max(max_substeps, substeps)
        relaxations += step_relax
        if trace is not None:
            trace.append(
                StepTrace(
                    step=steps - 1,
                    radius=float(d_i),
                    substeps=substeps,
                    settled=len(active_set),
                    relaxations=step_relax,
                )
            )

    return SsspResult(
        dist=dist,
        parent=None,
        steps=steps,
        substeps=substeps_total,
        max_substeps=max_substeps,
        relaxations=relaxations,
        algorithm="radius-stepping-bst",
        params={"source": source},
        trace=trace,
    )
