"""Radius-Stepping specialized for unweighted graphs (Section 3.4).

On an unweighted graph every tentative distance in a step's frontier is an
integer, and §3.4 observes that the ordered sets Q and R of Algorithm 2
are unnecessary: "all vertices in the frontier have the same tentative
distances … a similar approach to parallel BFS can be directly used", for
O(m + n) work and O((n/ρ) log ρ log*ρ) depth (Lemma 3.10).

This engine is that specialization: the unsettled-reached frontier lives
in a flat vertex array, the round distance ``d_i`` is one priority-write
(a vectorized min of ``δ(v) + r(v)`` over the frontier), and each substep
is one BFS-style kernel relaxation (CSR gather + scatter-min via
:class:`repro.engine.kernel.RelaxationKernel`).  No heap, no tree, no
per-edge Python — and no ``log n`` ledger factors: this module charges
the flat Lemma 3.10 costs itself instead of using the kernel's weighted
charging.

It must agree *exactly* — distances, steps, substeps — with the general
engine run on the same unit-weight graph; the cross-validation lives in
``tests/core/test_radius_stepping_unweighted.py``.
"""

from __future__ import annotations

import numpy as np

from ..engine.kernel import RelaxationKernel
from ..graphs.csr import CSRGraph
from .radius_stepping import as_radii
from .result import SsspResult, StepTrace

__all__ = ["radius_stepping_unweighted"]


def radius_stepping_unweighted(
    graph: CSRGraph,
    source: int,
    radii: float | np.ndarray | None,
    *,
    track_trace: bool = False,
    ledger=None,
) -> SsspResult:
    """Run the §3.4 BFS-style Radius-Stepping from ``source``.

    Parameters
    ----------
    graph: validated undirected CSR graph with **unit weights** (raises
        ``ValueError`` otherwise — use :func:`repro.graphs.unit_weights`
        to strip weights first).
    source: source vertex id.
    radii: per-vertex radius ``r(·)`` on the hop metric (see
        :func:`repro.core.radius_stepping.as_radii`).
    track_trace: record a per-step :class:`StepTrace`.
    ledger: optional :class:`repro.pram.ledger.Ledger`; charges the
        unweighted costs of Lemma 3.10 — O(n') work and O(log* n') depth
        per round instead of the weighted engine's O(log n) tree factors.

    Returns
    -------
    :class:`SsspResult` with hop distances (``inf`` when unreachable).
    """
    n = graph.n
    if not (0 <= source < n):
        raise ValueError(f"source {source} out of range [0, {n})")
    if not graph.is_unweighted:
        raise ValueError(
            "radius_stepping_unweighted requires unit weights; "
            "see repro.graphs.unit_weights"
        )
    r = as_radii(graph, radii)
    # log*: effectively <= 5 for any feasible n; charged as a constant.
    log_star = 5.0 if n > 65536 else 4.0

    kernel = RelaxationKernel(graph, source)
    dist = kernel.dist
    settled = kernel.settled
    reached = np.zeros(n, dtype=bool)
    reached[source] = True

    # Line 2: relax N(s).  On the unit metric every neighbor lands at 1.
    frontier = kernel.relax_source(source, charge=False)
    reached[frontier] = True
    if ledger is not None:
        ledger.charge(work=float(graph.degree(source)), depth=log_star, label="init")

    steps = substeps_total = max_substeps = 0
    trace: list[StepTrace] | None = [] if track_trace else None

    while kernel.settled_count < n and len(frontier):
        # ---- Line 4: d_i by one priority-write over the frontier --------
        d_i = float(np.min(dist[frontier] + r[frontier]))
        if ledger is not None:
            ledger.charge(work=float(len(frontier)), depth=log_star, label="round min")

        changed = frontier[dist[frontier] <= d_i]
        step_settles = [changed]
        relax_before = kernel.relaxations
        substeps = 0

        # ---- Lines 5–9: BFS-style substeps until stable ≤ d_i ------------
        while len(changed):
            substeps += 1
            improved, n_arcs = kernel.relax(changed, exclude_settled=True)
            if ledger is not None:
                ledger.charge(
                    work=float(max(1, n_arcs)),
                    depth=log_star,
                    label="substep relax",
                )
            if n_arcs == 0:
                break
            # frontier bookkeeping: first-touch vertices enter the frontier
            first_touch = improved[~reached[improved]]
            reached[improved] = True
            if len(first_touch):
                frontier = np.union1d(frontier, first_touch)
            within = improved[dist[improved] <= d_i]
            changed = within
            if len(within):
                step_settles.append(within)

        # ---- Line 10: settle S_i -----------------------------------------
        newly = (
            np.unique(np.concatenate(step_settles))
            if step_settles
            else np.empty(0, np.int64)
        )
        newly = newly[~settled[newly]]
        kernel.settle(newly)
        frontier = frontier[~settled[frontier]]
        steps += 1
        substeps_total += substeps
        max_substeps = max(max_substeps, substeps)
        if trace is not None:
            trace.append(
                StepTrace(
                    step=steps - 1,
                    radius=d_i,
                    substeps=substeps,
                    settled=len(newly),
                    relaxations=kernel.relaxations - relax_before,
                )
            )
        if len(newly) == 0:
            raise RuntimeError("radius-stepping made no progress (empty step)")

    return SsspResult(
        dist=dist,
        parent=None,
        steps=steps,
        substeps=substeps_total,
        max_substeps=max_substeps,
        relaxations=kernel.relaxations,
        algorithm="radius-stepping-unweighted",
        params={"source": source},
        trace=trace,
    )
