"""Radius-Stepping specialized for unweighted graphs (Section 3.4).

On an unweighted graph every tentative distance in a step's frontier is an
integer, and §3.4 observes that the ordered sets Q and R of Algorithm 2
are unnecessary: "all vertices in the frontier have the same tentative
distances … a similar approach to parallel BFS can be directly used", for
O(m + n) work and O((n/ρ) log ρ log*ρ) depth (Lemma 3.10).

This engine is that specialization: the unsettled-reached frontier lives
in a flat vertex array, the round distance ``d_i`` is one priority-write
(a vectorized min of ``δ(v) + r(v)`` over the frontier), and each substep
is one BFS-style CSR gather + scatter-min.  No heap, no tree, no per-edge
Python.

It must agree *exactly* — distances, steps, substeps — with the general
engine run on the same unit-weight graph; the cross-validation lives in
``tests/core/test_radius_stepping_unweighted.py``.
"""

from __future__ import annotations

import numpy as np

from ..graphs.csr import CSRGraph
from .bfs import gather_frontier_arcs
from .radius_stepping import as_radii
from .result import SsspResult, StepTrace

__all__ = ["radius_stepping_unweighted"]


def radius_stepping_unweighted(
    graph: CSRGraph,
    source: int,
    radii: float | np.ndarray | None,
    *,
    track_trace: bool = False,
    ledger=None,
) -> SsspResult:
    """Run the §3.4 BFS-style Radius-Stepping from ``source``.

    Parameters
    ----------
    graph: validated undirected CSR graph with **unit weights** (raises
        ``ValueError`` otherwise — use :func:`repro.graphs.unit_weights`
        to strip weights first).
    source: source vertex id.
    radii: per-vertex radius ``r(·)`` on the hop metric (see
        :func:`repro.core.radius_stepping.as_radii`).
    track_trace: record a per-step :class:`StepTrace`.
    ledger: optional :class:`repro.pram.ledger.Ledger`; charges the
        unweighted costs of Lemma 3.10 — O(n') work and O(log* n') depth
        per round instead of the weighted engine's O(log n) tree factors.

    Returns
    -------
    :class:`SsspResult` with hop distances (``inf`` when unreachable).
    """
    n = graph.n
    if not (0 <= source < n):
        raise ValueError(f"source {source} out of range [0, {n})")
    if not graph.is_unweighted:
        raise ValueError(
            "radius_stepping_unweighted requires unit weights; "
            "see repro.graphs.unit_weights"
        )
    r = as_radii(graph, radii)
    indices = graph.indices
    # log*: effectively <= 5 for any feasible n; charged as a constant.
    log_star = 5.0 if n > 65536 else 4.0

    dist = np.full(n, np.inf)
    dist[source] = 0.0
    settled = np.zeros(n, dtype=bool)
    settled[source] = True
    settled_count = 1

    # Line 2: relax N(s).  On the unit metric every neighbor lands at 1.
    nbrs = np.unique(graph.neighbors(source))
    nbrs = nbrs[nbrs != source]
    dist[nbrs] = np.minimum(dist[nbrs], 1.0)
    frontier = nbrs  # reached, unsettled vertices (always deduplicated)
    relaxations = graph.degree(source)
    if ledger is not None:
        ledger.charge(work=float(graph.degree(source)), depth=log_star, label="init")

    steps = substeps_total = max_substeps = 0
    trace: list[StepTrace] | None = [] if track_trace else None

    while settled_count < n and len(frontier):
        # ---- Line 4: d_i by one priority-write over the frontier --------
        d_i = float(np.min(dist[frontier] + r[frontier]))
        if ledger is not None:
            ledger.charge(work=float(len(frontier)), depth=log_star, label="round min")

        active_mask = dist[frontier] <= d_i
        changed = frontier[active_mask]
        step_settles = [changed]
        step_relax = 0
        substeps = 0

        # ---- Lines 5–9: BFS-style substeps until stable ≤ d_i ------------
        while len(changed):
            substeps += 1
            arcpos, tails = gather_frontier_arcs(graph, changed)
            if len(arcpos):
                keep = ~settled[indices[arcpos]]
                arcpos = arcpos[keep]
                tails = tails[keep]
            step_relax += len(arcpos)
            if ledger is not None:
                ledger.charge(
                    work=float(max(1, len(arcpos))),
                    depth=log_star,
                    label="substep relax",
                )
            if len(arcpos) == 0:
                break
            targets = indices[arcpos]
            cand = dist[tails] + 1.0
            uniq = np.unique(targets)
            before = dist[uniq].copy()
            np.minimum.at(dist, targets, cand)  # CRCW priority-write
            improved_mask = dist[uniq] < before
            improved = uniq[improved_mask]
            # frontier bookkeeping: first-touch vertices enter the frontier
            first_touch = uniq[improved_mask & np.isinf(before)]
            if len(first_touch):
                frontier = np.union1d(frontier, first_touch)
            within = improved[dist[improved] <= d_i]
            changed = within
            if len(within):
                step_settles.append(within)

        # ---- Line 10: settle S_i -----------------------------------------
        newly = np.unique(np.concatenate(step_settles)) if step_settles else np.empty(0, np.int64)
        newly = newly[~settled[newly]]
        settled[newly] = True
        settled_count += len(newly)
        frontier = frontier[~settled[frontier]]
        steps += 1
        substeps_total += substeps
        max_substeps = max(max_substeps, substeps)
        relaxations += step_relax
        if trace is not None:
            trace.append(
                StepTrace(
                    step=steps - 1,
                    radius=d_i,
                    substeps=substeps,
                    settled=len(newly),
                    relaxations=step_relax,
                )
            )
        if len(newly) == 0:
            raise RuntimeError("radius-stepping made no progress (empty step)")

    return SsspResult(
        dist=dist,
        parent=None,
        steps=steps,
        substeps=substeps_total,
        max_substeps=max_substeps,
        relaxations=relaxations,
        algorithm="radius-stepping-unweighted",
        params={"source": source},
        trace=trace,
    )
