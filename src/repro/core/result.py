"""Shared result record for every SSSP solver in the library.

The paper's experiments measure *steps* and *substeps* (their proxy for
parallel depth), so every solver reports them alongside the distances.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

__all__ = ["SsspResult", "StepTrace", "parent_path"]


def parent_path(parent: np.ndarray, target: int) -> list[int]:
    """Walk predecessor pointers from ``target`` back to the root.

    Returns the vertex sequence source → … → ``target`` (the root is
    the entry whose parent is ``-1``).  Shared by
    :meth:`SsspResult.path_to` and the serving planner's cached rows so
    the parent-encoding invariants (root sentinel, cycle guard) live in
    exactly one place.
    """
    out = [int(target)]
    while parent[out[-1]] >= 0:
        out.append(int(parent[out[-1]]))
        if len(out) > len(parent):
            raise RuntimeError("parent cycle detected")
    out.reverse()
    return out


@dataclass(frozen=True)
class StepTrace:
    """Per-step record of one outer iteration of a stepping algorithm.

    Attributes
    ----------
    step: 0-based step index.
    radius: the round distance ``d_i`` chosen for this step (Line 4 of
        Algorithm 1); for bucket algorithms, the bucket's upper boundary.
    substeps: inner Bellman–Ford iterations executed in this step.
    settled: number of vertices settled by this step.
    relaxations: arcs relaxed during this step.
    """

    step: int
    radius: float
    substeps: int
    settled: int
    relaxations: int


@dataclass
class SsspResult:
    """Distances plus instrumentation from a single-source run.

    Attributes
    ----------
    dist: shortest-path distance per vertex (``inf`` when unreachable).
    parent: predecessor on a shortest path (``-1`` for source/unreachable),
        or ``None`` when the solver was asked not to track parents.
    steps: outer steps (Dijkstra extractions batched by equal distance
        count as one step; BFS levels count as one step each).
    substeps: total inner Bellman–Ford substeps across all steps.
    max_substeps: the largest substep count of any single step — the
        quantity Theorem 3.2 bounds by ``k + 2``.
    relaxations: total arcs processed (work proxy).
    algorithm: short solver name.
    params: solver parameters for provenance.
    trace: optional per-step :class:`StepTrace` list.
    """

    dist: np.ndarray
    parent: np.ndarray | None = None
    steps: int = 0
    substeps: int = 0
    max_substeps: int = 0
    relaxations: int = 0
    algorithm: str = ""
    params: dict[str, Any] = field(default_factory=dict)
    trace: list[StepTrace] | None = None

    @property
    def reached(self) -> int:
        """Number of vertices with a finite distance."""
        return int(np.isfinite(self.dist).sum())

    def path_to(self, v: int) -> list[int]:
        """Reconstruct the vertex sequence source -> ... -> ``v``.

        Requires parent tracking; raises ``ValueError`` if ``v`` is
        unreachable or parents were not recorded.
        """
        if self.parent is None:
            raise ValueError("solver did not record parents")
        if not np.isfinite(self.dist[v]):
            raise ValueError(f"vertex {v} is unreachable")
        return parent_path(self.parent, v)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SsspResult({self.algorithm}, reached={self.reached}/{len(self.dist)}, "
            f"steps={self.steps}, substeps={self.substeps}, "
            f"relaxations={self.relaxations})"
        )
