"""High-level amortized SSSP interface: preprocess once, query many.

The paper's operating model (§5.4): "since preprocessing is only run
once, if Sssp will be run from multiple sources, we suggest increasing ρ
and decreasing k: the cost for preprocessing is amortized over more
sources."  :class:`PreprocessedSSSP` packages that workflow — it owns the
(k,ρ)-graph and radii produced by :func:`repro.preprocess.build_kr_graph`
and answers any number of single-source queries against them.

Queries dispatch by *engine name* through
:mod:`repro.engine.registry`, so every registered engine — the
seed-compatible heap engine, the calendar-queue bucket engine, the
faithful BST reference, the §3.4 unweighted engine, the baseline
schedules, and any plugin registered at runtime — is servable through
one facade.  Batched multi-source queries (:meth:`solve_many`) fan out
over a fork-based process pool with the augmented CSR graph shared
copy-on-write (:func:`repro.parallel.parallel_map_shared`), returning
results in deterministic input order for any worker count.

When preprocessing ran under a locality reordering
(``build_kr_graph(reorder=...)``, :mod:`repro.graphs.reorder`), the
facade is the **id-translation boundary**: sources are mapped to the
internal (reordered) numbering before an engine runs, and every answer
— distance rows, parent rows — is mapped back to the caller's input
ids, so the reordering is invisible except for speed.  Distances are
bit-identical to solving the unreordered graph (the converged distance
is the min over paths of left-to-right weight sums, which relabeling
permutes but never changes).

This is the API a routing service or graph-analytics pipeline would
embed; the lower-level pieces stay available for research use.
"""

from __future__ import annotations

import threading
from typing import Iterable

import numpy as np

from ..engine.registry import get_engine, solve_with_engine
from ..graphs.csr import CSRGraph
from ..obs.trace import span
from ..parallel.pool import parallel_map_shared
from ..preprocess.pipeline import PreprocessResult, build_kr_graph
from .result import SsspResult

__all__ = ["PreprocessedSSSP", "externalize_result"]

#: engine selector: ``"auto"`` or any :func:`repro.engine.available_engines` name.
Engine = str


def _solve_chunk(payload: tuple, sources: np.ndarray) -> list[SsspResult]:
    """Pool worker: answer one chunk of sources against the shared graph.

    ``sources`` arrive already translated to internal numbering; results
    are externalized in the worker (the per-row gather parallelizes with
    the solves instead of serializing in the parent).
    """
    graph, radii, engine, track_parents, perm, inv = payload
    return [
        externalize_result(
            solve_with_engine(
                engine, graph, int(s), radii, track_parents=track_parents
            ),
            perm,
            inv,
        )
        for s in sources
    ]


def externalize_result(
    res: SsspResult, perm: np.ndarray | None, inv: np.ndarray | None
) -> SsspResult:
    """Map an internal-numbering :class:`SsspResult` back to input ids.

    ``perm`` is the external → internal map (``None`` = identity: the
    result is returned untouched, zero copies).  The distance row is
    gathered so ``dist[v]`` is the distance of *input* vertex ``v``;
    parent pointers are gathered the same way and their values mapped
    through ``inv`` (the ``-1`` root/unreachable sentinel is preserved).
    Step/substep/relaxation counts are schedule facts of the internal
    run and pass through unchanged.
    """
    if perm is None:
        return res
    dist = res.dist[perm]
    parent = None
    if res.parent is not None:
        p = res.parent[perm]
        parent = np.full(len(p), -1, dtype=np.int64)
        mask = p >= 0
        parent[mask] = inv[p[mask]]
    return SsspResult(
        dist=dist,
        parent=parent,
        steps=res.steps,
        substeps=res.substeps,
        max_substeps=res.max_substeps,
        relaxations=res.relaxations,
        algorithm=res.algorithm,
        params=res.params,
        trace=res.trace,
    )


class PreprocessedSSSP:
    """Amortized many-source shortest paths via Radius-Stepping.

    Parameters
    ----------
    graph: undirected, non-negatively weighted input graph.
    k: substep budget — each query step runs at most ``k + 2`` substeps
        (Theorem 3.2).  Small constants (2–4) per §5.4.
    rho: ball size — queries take O((n/ρ) log ρL) steps (Theorem 3.3).
        Larger ρ = fewer steps but more preprocessing and shortcut edges.
    heuristic: shortcut selector — ``"dp"`` (recommended, §4.2.2),
        ``"greedy"`` (§4.2.1), or ``"full"`` ((1,ρ), ignores ``k``).
    n_jobs: worker processes for the preprocessing phase.

    Examples
    --------
    >>> from repro import generators
    >>> from repro.core.solver import PreprocessedSSSP
    >>> sp = PreprocessedSSSP(generators.grid_2d(12, 12), k=2, rho=16)
    >>> res = sp.solve(0)
    >>> float(res.dist[143])
    22.0
    """

    def __init__(
        self,
        graph: CSRGraph,
        *,
        k: int = 2,
        rho: int = 32,
        heuristic: str = "dp",
        n_jobs: int = 1,
        reorder: str = "natural",
        reorder_seed: int = 0,
    ) -> None:
        self._input = graph
        self._pre: PreprocessResult = build_kr_graph(
            graph,
            k,
            rho,
            heuristic=heuristic,
            n_jobs=n_jobs,
            reorder=reorder,
            reorder_seed=reorder_seed,
        )
        self._init_id_maps()
        self._queries = 0
        self._queries_lock = threading.Lock()
        self._observer = None

    def _init_id_maps(self) -> None:
        """Cache the external↔internal id maps from the preprocessing
        record (``None`` = identity, the zero-overhead fast path)."""
        perm = getattr(self._pre, "perm", None)
        inv = getattr(self._pre, "inv_perm", None)
        if perm is not None:
            perm = np.asarray(perm, dtype=np.int64)
            if inv is None:
                inv = np.empty_like(perm)
                inv[perm] = np.arange(len(perm), dtype=np.int64)
            else:
                inv = np.asarray(inv, dtype=np.int64)
        self._perm: np.ndarray | None = perm
        self._inv: np.ndarray | None = inv

    @classmethod
    def from_preprocessed(
        cls, pre: PreprocessResult, *, input_graph: CSRGraph | None = None
    ) -> "PreprocessedSSSP":
        """Wrap an existing preprocessing result without recomputing it.

        A serving system preprocesses once, persists the
        :class:`~repro.preprocess.pipeline.PreprocessResult`, and
        rehydrates query facades from it at startup.
        """
        self = cls.__new__(cls)
        self._input = input_graph if input_graph is not None else pre.graph
        self._pre = pre
        self._init_id_maps()
        self._queries = 0
        self._queries_lock = threading.Lock()
        self._observer = None
        return self

    # ------------------------------------------------------------------ #
    @property
    def graph(self) -> CSRGraph:
        """The augmented (k,ρ)-graph queries actually run on."""
        return self._pre.graph

    @property
    def radii(self) -> np.ndarray:
        """The per-vertex radii r_ρ(·) driving the step schedule."""
        return self._pre.radii

    @property
    def preprocessing(self) -> PreprocessResult:
        """Full preprocessing record (edge counts, configuration)."""
        return self._pre

    @property
    def perm(self) -> np.ndarray | None:
        """External → internal id map (``None`` = identity numbering).

        Set when preprocessing ran under ``reorder=...``; every public
        query on this facade already translates through it, so callers
        only need it to reach the internal numbering deliberately (the
        shared-memory batch path, shard partitioning)."""
        return self._perm

    @property
    def inv_perm(self) -> np.ndarray | None:
        """Internal → external id map (``None`` iff :attr:`perm` is)."""
        return self._inv

    @property
    def queries_answered(self) -> int:
        """Number of queries so far — the amortization denominator.

        Every query path increments it: :meth:`solve` and
        :meth:`distances` by one, :meth:`solve_many` and
        :meth:`mean_steps` by the number of *requested* sources
        (duplicates included — the denominator counts answered queries,
        not distinct solves), and external batch paths such as
        :func:`repro.serve.shm.solve_many_shm` through
        :meth:`count_queries`.
        """
        return self._queries

    def count_queries(self, n: int = 1) -> None:
        """Charge ``n`` answered queries to the amortization counter.

        Hook for query paths living outside this class (the serving
        layer's shared-memory batch path) so ``queries_answered`` stays
        the one true denominator.  Lock-protected: a threaded serving
        front end charges this counter from many threads, and a bare
        ``+=`` is a read-modify-write that loses increments under
        preemption.
        """
        with self._queries_lock:
            self._queries += int(n)

    def set_observer(self, obs) -> None:
        """Install (or clear, with ``None``) an engine-telemetry observer.

        ``obs`` is a :class:`repro.obs.metrics.EngineTelemetry` —
        anything with ``bind(engine) -> handle`` where the handle has
        ``record_step``/``record_run``.  :meth:`solve` passes the bound
        handle live into the engine; :meth:`solve_many` folds run totals
        in post-hoc from the returned results, because fork-pool workers
        mutate a copy-on-write *copy* of the registry that the parent
        never sees.  Opt-in: the facade does no telemetry until a
        serving layer (``RoutingService.instrument`` /
        ``ShardRouter.instrument``) installs one.
        """
        self._observer = obs

    # ------------------------------------------------------------------ #
    def resolve_engine(self, engine: Engine) -> str:
        """Map ``"auto"`` to a concrete registered engine name.

        Preference order for ``"auto"``: the preprocessing record's
        calibrated ``preferred_engine`` when it is set and still
        registered (the per-graph measured winner a version-2 artifact
        carries), then the §3.4 unweighted engine when the augmented
        graph has unit weights, then ``"vectorized"``.

        Public because the serving layer keys caches and artifacts by
        the *resolved* name — two requests for ``"auto"`` and
        ``"vectorized"`` on a weighted graph must share cache entries.
        """
        if engine == "auto":
            preferred = getattr(self._pre, "preferred_engine", "")
            if preferred:
                from ..engine.registry import available_engines

                if preferred in available_engines():
                    return preferred
            return "unweighted" if self.graph.is_unweighted else "vectorized"
        return engine

    def solve(
        self,
        source: int,
        *,
        engine: Engine = "auto",
        track_parents: bool = False,
        track_trace: bool = False,
        ledger=None,
    ) -> SsspResult:
        """Exact shortest paths from ``source`` on the preprocessed graph.

        ``engine="auto"`` uses the §3.4 BFS-style engine when the
        *augmented* graph still has unit weights, else the vectorized
        general engine.  Any name from
        :func:`repro.engine.available_engines` is accepted — e.g.
        ``"bucket"`` for the calendar-queue scheduler or ``"bst"`` for
        the faithful Algorithm-2 reference (slow; for validation and
        PRAM accounting).

        Distances returned are distances in the *input* graph: shortcuts
        carry exact shortest-path weights, so augmentation never changes
        the metric (Lemma 4.1 discussion) — and they are indexed by
        *input* vertex ids even when preprocessing reordered the graph
        (the facade translates at the boundary).
        """
        self.count_queries(1)
        name = self.resolve_engine(engine)
        internal = source if self._perm is None else int(self._perm[source])
        with span("solver.solve", engine=name, source=int(source)):
            return externalize_result(
                solve_with_engine(
                    name,
                    self.graph,
                    internal,
                    self.radii,
                    track_parents=track_parents,
                    track_trace=track_trace,
                    ledger=ledger,
                    obs=self._observer,
                ),
                self._perm,
                self._inv,
            )

    def distances(self, source: int) -> np.ndarray:
        """Just the distance vector from ``source``."""
        return self.solve(source).dist

    def solve_many(
        self,
        sources: Iterable[int],
        *,
        engine: Engine = "auto",
        track_parents: bool = False,
        n_jobs: int = 1,
    ) -> list[SsspResult]:
        """Answer a batch of queries; one result per source, input order.

        Repeated sources are deduplicated before fan-out — each distinct
        source is solved exactly once and its result is fanned back to
        every input position that requested it (duplicate positions
        share one ``SsspResult`` object; treat results as read-only).

        ``n_jobs > 1`` (0 = all cores) fans source chunks out to a
        fork-based process pool.  The augmented CSR graph and radii are
        staged once and inherited copy-on-write by every worker — no
        per-query graph serialization — and chunked results are
        reassembled in input order, so the output is identical for any
        ``n_jobs``.
        """
        source_arr = np.asarray(list(sources), dtype=np.int64)
        name = self.resolve_engine(engine)
        # fail fast (unknown engine, unsupported parents) before forking
        spec = get_engine(name)
        if track_parents and not spec.supports_parents:
            raise ValueError(f"the {name} engine does not track parents")
        self.count_queries(len(source_arr))
        unique, inverse = np.unique(source_arr, return_inverse=True)
        internal = unique if self._perm is None else self._perm[unique]
        payload = (
            self.graph, self.radii, name, track_parents, self._perm, self._inv
        )
        with span(
            "solver.solve_many", engine=name, sources=int(len(unique)),
            n_jobs=int(n_jobs),
        ):
            blocks = parallel_map_shared(
                _solve_chunk, payload, internal, n_jobs=n_jobs
            )
        flat = [res for block in blocks for res in block]
        if self._observer is not None:
            # Telemetry is folded here, in the parent, from the returned
            # results: fork-pool workers saw only a copy-on-write copy of
            # the registry, so live in-worker observations would be lost.
            bound = self._observer.bind(name)
            for res in flat:
                bound.record_run(res)
        return [flat[i] for i in inverse]

    def mean_steps(self, sources: Iterable[int], *, n_jobs: int = 1) -> float:
        """Average step count over ``sources`` — the §5.3 metric."""
        results = self.solve_many(sources, n_jobs=n_jobs)
        return float(np.mean([r.steps for r in results]))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        p = self._pre
        return (
            f"PreprocessedSSSP(k={p.k}, rho={p.rho}, heuristic={p.heuristic!r}, "
            f"n={self.graph.n}, m={self.graph.m}, "
            f"+{p.new_edges} shortcut edges, {self._queries} queries)"
        )
