"""High-level amortized SSSP interface: preprocess once, query many.

The paper's operating model (§5.4): "since preprocessing is only run
once, if Sssp will be run from multiple sources, we suggest increasing ρ
and decreasing k: the cost for preprocessing is amortized over more
sources."  :class:`PreprocessedSSSP` packages that workflow — it owns the
(k,ρ)-graph and radii produced by :func:`repro.preprocess.build_kr_graph`
and answers any number of single-source queries against them, picking the
right engine per graph kind.

This is the API a routing service or graph-analytics pipeline would
embed; the lower-level pieces stay available for research use.
"""

from __future__ import annotations

from typing import Iterable, Literal

import numpy as np

from ..graphs.csr import CSRGraph
from ..preprocess.pipeline import PreprocessResult, build_kr_graph
from .radius_stepping import radius_stepping
from .radius_stepping_bst import radius_stepping_bst
from .radius_stepping_unweighted import radius_stepping_unweighted
from .result import SsspResult

__all__ = ["PreprocessedSSSP"]

Engine = Literal["auto", "vectorized", "bst", "unweighted"]


class PreprocessedSSSP:
    """Amortized many-source shortest paths via Radius-Stepping.

    Parameters
    ----------
    graph: undirected, non-negatively weighted input graph.
    k: substep budget — each query step runs at most ``k + 2`` substeps
        (Theorem 3.2).  Small constants (2–4) per §5.4.
    rho: ball size — queries take O((n/ρ) log ρL) steps (Theorem 3.3).
        Larger ρ = fewer steps but more preprocessing and shortcut edges.
    heuristic: shortcut selector — ``"dp"`` (recommended, §4.2.2),
        ``"greedy"`` (§4.2.1), or ``"full"`` ((1,ρ), ignores ``k``).
    n_jobs: worker processes for the preprocessing phase.

    Examples
    --------
    >>> from repro import generators
    >>> from repro.core.solver import PreprocessedSSSP
    >>> sp = PreprocessedSSSP(generators.grid_2d(12, 12), k=2, rho=16)
    >>> res = sp.solve(0)
    >>> float(res.dist[143])
    22.0
    """

    def __init__(
        self,
        graph: CSRGraph,
        *,
        k: int = 2,
        rho: int = 32,
        heuristic: str = "dp",
        n_jobs: int = 1,
    ) -> None:
        self._input = graph
        self._pre: PreprocessResult = build_kr_graph(
            graph, k, rho, heuristic=heuristic, n_jobs=n_jobs
        )
        self._queries = 0

    # ------------------------------------------------------------------ #
    @property
    def graph(self) -> CSRGraph:
        """The augmented (k,ρ)-graph queries actually run on."""
        return self._pre.graph

    @property
    def radii(self) -> np.ndarray:
        """The per-vertex radii r_ρ(·) driving the step schedule."""
        return self._pre.radii

    @property
    def preprocessing(self) -> PreprocessResult:
        """Full preprocessing record (edge counts, configuration)."""
        return self._pre

    @property
    def queries_answered(self) -> int:
        """Number of solve() calls so far — the amortization denominator."""
        return self._queries

    # ------------------------------------------------------------------ #
    def solve(
        self,
        source: int,
        *,
        engine: Engine = "auto",
        track_parents: bool = False,
        track_trace: bool = False,
        ledger=None,
    ) -> SsspResult:
        """Exact shortest paths from ``source`` on the preprocessed graph.

        ``engine="auto"`` uses the §3.4 BFS-style engine when the
        *augmented* graph still has unit weights, else the vectorized
        general engine.  ``"bst"`` forces the faithful Algorithm-2
        reference (slow; for validation and PRAM accounting).

        Distances returned are distances in the *input* graph: shortcuts
        carry exact shortest-path weights, so augmentation never changes
        the metric (Lemma 4.1 discussion).
        """
        self._queries += 1
        if engine == "auto":
            engine = "unweighted" if self.graph.is_unweighted else "vectorized"
        if engine == "vectorized":
            return radius_stepping(
                self.graph,
                source,
                self.radii,
                track_parents=track_parents,
                track_trace=track_trace,
                ledger=ledger,
            )
        if engine == "unweighted":
            if track_parents:
                raise ValueError("the unweighted engine does not track parents")
            return radius_stepping_unweighted(
                self.graph,
                source,
                self.radii,
                track_trace=track_trace,
                ledger=ledger,
            )
        if engine == "bst":
            if track_parents:
                raise ValueError("the BST engine does not track parents")
            return radius_stepping_bst(
                self.graph,
                source,
                self.radii,
                track_trace=track_trace,
                ledger=ledger,
            )
        raise ValueError(f"unknown engine {engine!r}")

    def distances(self, source: int) -> np.ndarray:
        """Just the distance vector from ``source``."""
        return self.solve(source).dist

    def solve_many(
        self, sources: Iterable[int], *, engine: Engine = "auto"
    ) -> list[SsspResult]:
        """Answer a batch of queries; one result per source, input order."""
        return [self.solve(int(s), engine=engine) for s in sources]

    def mean_steps(self, sources: Iterable[int]) -> float:
        """Average step count over ``sources`` — the §5.3 metric."""
        results = self.solve_many(sources)
        return float(np.mean([r.steps for r in results]))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        p = self._pre
        return (
            f"PreprocessedSSSP(k={p.k}, rho={p.rho}, heuristic={p.heuristic!r}, "
            f"n={self.graph.n}, m={self.graph.m}, "
            f"+{p.new_edges} shortcut edges, {self._queries} queries)"
        )
