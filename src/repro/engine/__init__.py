"""Unified relaxation-engine subsystem.

One kernel (:mod:`repro.engine.kernel`), one driver loop
(:mod:`repro.engine.driver`), pluggable step schedules
(:mod:`repro.engine.schedules`) on heap or calendar-queue substrates
(:mod:`repro.engine.buckets`), and a name-based registry
(:mod:`repro.engine.registry`) that :class:`repro.core.solver.\
PreprocessedSSSP` dispatches through.  The solvers in
:mod:`repro.core` are thin adapters over these pieces.
"""

from .buckets import LazyBucketQueue
from .kernel import RelaxationKernel, gather_frontier_arcs
from .schedules import (
    BellmanFordSchedule,
    DeltaSchedule,
    DeltaStarSchedule,
    DijkstraSchedule,
    RadiusBucketSchedule,
    RadiusSchedule,
    RhoSchedule,
    StepSchedule,
    default_bucket_width,
    default_rho,
)
from .driver import run_engine
from .autoselect import pick_engine, race_engines
from .registry import (
    EngineSpec,
    available_engines,
    get_engine,
    register_engine,
    solve_with_engine,
)

__all__ = [
    "BellmanFordSchedule",
    "DeltaSchedule",
    "DeltaStarSchedule",
    "DijkstraSchedule",
    "EngineSpec",
    "LazyBucketQueue",
    "RadiusBucketSchedule",
    "RadiusSchedule",
    "RelaxationKernel",
    "RhoSchedule",
    "StepSchedule",
    "available_engines",
    "default_bucket_width",
    "default_rho",
    "gather_frontier_arcs",
    "get_engine",
    "pick_engine",
    "race_engines",
    "register_engine",
    "run_engine",
    "solve_with_engine",
]
