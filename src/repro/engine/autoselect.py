"""Calibration races — measure, per graph, which engine actually wins.

Dong, Gu & Sun (arXiv 2105.06145) show the fastest member of the
stepping-algorithm family (ρ-stepping, ∆*-stepping, ∆-stepping,
radius-stepping …) varies widely across graph families; no static
heuristic picks the winner reliably.  This module makes the choice
empirical: :func:`race_engines` times every candidate engine on a small
sample of sources, and :func:`pick_engine` returns the fastest.

The race is deliberately cheap — a handful of solves per engine,
capped by a wall-clock budget — because its output is meant to be
*stored*: :func:`repro.preprocess.pipeline.build_kr_graph` can stamp
the winner into the preprocessing result, and versioned artifacts
(:mod:`repro.serve.artifacts`) carry it as ``preferred_engine`` so
every later ``engine="auto"`` query dispatches to the measured winner
at zero per-request cost.
"""

from __future__ import annotations

import time

import numpy as np

from ..graphs.csr import CSRGraph
from .registry import available_engines, solve_with_engine

__all__ = ["DEFAULT_CANDIDATES", "pick_engine", "race_engines", "sample_sources"]

#: Engines raced by default: the unified-loop schedules that are ever
#: competitive on general weighted graphs, always including
#: ``vectorized`` (the previous fixed default) so the winner can never
#: be a regression against it.  ``bellman-ford`` is included because a
#: race is exactly the safe place for it — on small or low-diameter
#: graphs its fat vectorized substeps win outright, and where its step
#: count blows up the per-engine budget caps the damage and it simply
#: loses.  ``bst`` (PRAM reference, orders of magnitude slower) and
#: ``unweighted`` (unit-weight only) are opt-in.
DEFAULT_CANDIDATES = (
    "vectorized",
    "bucket",
    "dijkstra",
    "delta",
    "delta-star",
    "rho",
    "bellman-ford",
)


def sample_sources(graph: CSRGraph, samples: int, *, seed: int = 0) -> np.ndarray:
    """``samples`` distinct source vertices, degree-biased.

    Sampling proportionally to (degree + 1) favours well-connected
    vertices, whose solves exercise realistic frontier growth; a
    uniform draw on a power-law graph mostly picks leaves.
    """
    if graph.n == 0:
        raise ValueError("cannot sample sources from an empty graph")
    samples = min(samples, graph.n)
    rng = np.random.default_rng(seed)
    weights = graph.degrees().astype(np.float64) + 1.0
    return rng.choice(
        graph.n, size=samples, replace=False, p=weights / weights.sum()
    )


def race_engines(
    graph: CSRGraph,
    radii: np.ndarray | None = None,
    *,
    engines: tuple[str, ...] | None = None,
    samples: int = 3,
    seed: int = 0,
    budget: float = 1.0,
) -> dict[str, float]:
    """Time every candidate engine on the same sampled sources.

    Parameters
    ----------
    graph: the graph queries will run on (after preprocessing, pass the
        augmented graph — that is what serving solves on).
    radii: per-vertex radii for the radius-stepping engines; ``None``
        lets each engine derive its own default.
    engines: candidate names; defaults to the registered subset of
        :data:`DEFAULT_CANDIDATES`.
    samples: number of distinct sources each engine solves.
    seed: source-sampling seed (same sources for every engine).
    budget: approximate wall-clock cap in seconds **per engine**; once
        an engine has spent it, its remaining sources are skipped and
        its mean covers the solves that ran.

    Returns
    -------
    Mean seconds per solve for each engine that completed at least one
    solve without error.  Engines that raise on this graph (e.g.
    ``unweighted`` on weighted input) are silently dropped.
    """
    if engines is None:
        registered = set(available_engines())
        engines = tuple(e for e in DEFAULT_CANDIDATES if e in registered)
    if not engines:
        raise ValueError("no candidate engines to race")
    sources = sample_sources(graph, samples, seed=seed)

    timings: dict[str, float] = {}
    for name in engines:
        elapsed: list[float] = []
        spent = 0.0
        try:
            for s in sources:
                t0 = time.perf_counter()
                solve_with_engine(name, graph, int(s), radii)
                dt = time.perf_counter() - t0
                elapsed.append(dt)
                spent += dt
                if spent >= budget:
                    break
        except Exception:
            continue  # engine inapplicable to this graph: drop from the race
        if elapsed:
            timings[name] = float(np.mean(elapsed))
    return timings


def pick_engine(
    graph: CSRGraph,
    radii: np.ndarray | None = None,
    *,
    budget: float = 1.0,
    engines: tuple[str, ...] | None = None,
    samples: int = 3,
    seed: int = 0,
) -> str:
    """Race the candidates on ``graph`` and return the fastest engine.

    A thin argmin over :func:`race_engines`; ties break toward the
    earlier candidate (so ``vectorized``, the historical default, wins
    exact ties).  Raises ``ValueError`` when no candidate completes a
    solve.
    """
    timings = race_engines(
        graph, radii, engines=engines, samples=samples, seed=seed, budget=budget
    )
    if not timings:
        raise ValueError("no candidate engine completed a calibration solve")
    return min(timings, key=timings.__getitem__)
