"""Lazy calendar-queue buckets — the heap replacement on the hot path.

The seed's general Radius-Stepping engine kept its two ordered sets
(Algorithm 2's Q and R) as binary heaps with decrease-key-by-re-push:
every improved vertex cost two ``heapq.heappush`` calls, one vertex at
a time, which profiling shows is the dominant Python-level cost of the
vectorized engine.  This module replaces the heaps with the lazy
batched discipline of Dong, Gu & Sun's ADDS framework
(arXiv:2105.06145) on a calendar queue (Brown 1988 — the structure
∆-stepping's buckets are a special case of):

* **push is O(1) and batch-oblivious** — the improved-vertex array from
  one relaxation substep is appended to a pending buffer as-is, with no
  per-vertex work at all;
* **ordering is amortized into the scans** — when extract-min or split
  next runs, the pending entries are distributed into buckets
  ``⌊key / width⌋`` in a handful of vectorized operations, and only the
  buckets the scan actually touches are inspected.

Entries are *lazy*: a vertex is pushed again each time its key
improves, and stale entries (settled vertex, or stored key no longer
equal to the current key) are dropped when a scan touches them — the
exact analogue of the heaps' lazy-deletion discipline, so the fresh-key
sequence the queue yields is identical to the heaps' (pinned by
``tests/engine/test_buckets.py::TestHeapEquivalence``).

With ``auto_resize=True`` the width is only a starting hint: following
Brown's calendar-queue resize rule (Brown 1988, §4), whenever the entry
population doubles (or collapses) since the last calibration the queue
re-estimates the width from the live key distribution — spread divided
by the target bucket count for a small constant occupancy per bucket —
and redistributes in one vectorized pass.  Scans pop exact ``(key,
vertex)``-ordered entries rather than bucket boundaries, so resizing
changes *cost only*, never the popped sequence; the amortized price is
O(1) per entry (each redistribution is paid for by the doubling that
triggered it).

The structure is deliberately generic over "current key": callers pass
a vectorized ``key_of(vertices) -> keys`` callable at query time, so
one class serves both Q (keyed by ``δ(v)``) and R (keyed by
``δ(v) + r(v)``) as well as ∆-stepping's distance buckets.
"""

from __future__ import annotations

import math
from typing import Callable

import numpy as np

__all__ = ["LazyBucketQueue"]

KeyFn = Callable[[np.ndarray], np.ndarray]

#: bucket index used for entries with key = inf; sorts after any finite
#: bucket index reachable from a float key.
_INF_BUCKET = np.iinfo(np.int64).max

#: auto-resize: entries below this never trigger a recalibration (tiny
#: queues are cheap under any width).
_RETUNE_MIN = 64

#: auto-resize: aim for this many entries per bucket — a few per bucket
#: keeps both the per-bucket repack scans and the ``min(buckets)``
#: bucket-index scans short (Brown 1988 recommends small constants).
_TARGET_OCCUPANCY = 16


class LazyBucketQueue:
    """Monotone bucket priority queue with lazy batched inserts.

    Parameters
    ----------
    width: bucket width; entry with key ``k`` lives in bucket
        ``⌊k / width⌋``.  Must be positive and finite.
    maybe_inf: whether pushed keys can be ``inf`` (Radius-Stepping with
        ``r(v) = ∞``).  Infinite keys live in a dedicated overflow
        bucket that sorts after every finite bucket; passing ``False``
        (when the caller knows its keys are finite) skips the
        inf-routing work on every flush.
    auto_resize: treat ``width`` as a starting hint and recalibrate it
        from the live key population whenever the entry count doubles
        or collapses (Brown's calendar-queue resize rule).  Popped
        sequences are unaffected — only scan cost changes.

    Notes
    -----
    Each bucket holds a list of ``(keys, vertices)`` array segments,
    concatenated lazily when a scan inspects the bucket.  Scans flush
    the pending buffer first, prune stale entries, and repack what
    survives into a single segment — that pruning is what keeps the
    lazy scheme amortized O(1) per entry.
    """

    __slots__ = (
        "width",
        "maybe_inf",
        "auto_resize",
        "_buckets",
        "_pending",
        "_size",
        "_tuned_size",
        "_retunes",
    )

    def __init__(
        self, width: float, *, maybe_inf: bool = True, auto_resize: bool = False
    ) -> None:
        if not (width > 0 and math.isfinite(width)):
            raise ValueError(f"bucket width must be positive and finite, got {width}")
        self.width = float(width)
        self.maybe_inf = maybe_inf
        self.auto_resize = auto_resize
        #: bucket index -> list of (keys, vertices) array segments
        self._buckets: dict[int, list[tuple[np.ndarray, np.ndarray]]] = {}
        #: batched inserts not yet distributed into buckets
        self._pending: list[tuple[np.ndarray, np.ndarray]] = []
        self._size = 0
        #: entry count at the last recalibration (resize trigger baseline)
        self._tuned_size = 0
        #: recalibrations performed (observability for tests/benchmarks)
        self._retunes = 0

    def __len__(self) -> int:
        """Number of stored entries (including stale ones)."""
        return self._size

    # ------------------------------------------------------------------ #
    def push(self, vertices: np.ndarray, keys: np.ndarray) -> None:
        """Insert one entry per ``(vertex, key)`` pair — one O(1) append
        for the whole batch.

        Earlier entries for the same vertex are *not* removed; they go
        stale and are pruned lazily by the scans.
        """
        if len(vertices) == 0:
            return
        self._pending.append((np.asarray(keys, dtype=np.float64), vertices))
        self._size += len(vertices)

    def _flush(self) -> None:
        """Distribute pending entries into their buckets, vectorized;
        recalibrate the width afterwards when auto-resize triggers."""
        pending = self._pending
        if pending:
            self._pending = []
            if len(pending) == 1:
                keys, verts = pending[0]
            else:
                keys = np.concatenate([p[0] for p in pending])
                verts = np.concatenate([p[1] for p in pending])
            self._distribute(keys, verts)
        if self.auto_resize:
            self._maybe_retune()

    def _distribute(self, keys: np.ndarray, verts: np.ndarray) -> None:
        """Scatter ``(keys, verts)`` into buckets under the current width."""
        if self.maybe_inf:
            finite = np.isfinite(keys)
            idx = np.floor_divide(np.where(finite, keys, 0.0), self.width).astype(
                np.int64
            )
            idx[~finite] = _INF_BUCKET
        else:
            idx = np.floor_divide(keys, self.width).astype(np.int64)
        buckets = self._buckets
        first = int(idx[0])
        if bool((idx == first).all()):  # common case: one bucket per flush
            buckets.setdefault(first, []).append((keys, verts))
            return
        order = np.argsort(idx, kind="stable")
        idx = idx[order]
        keys = keys[order]
        verts = verts[order]
        cuts = np.nonzero(idx[1:] != idx[:-1])[0] + 1
        lo = 0
        for hi in [*cuts.tolist(), len(idx)]:
            buckets.setdefault(int(idx[lo]), []).append(
                (keys[lo:hi], verts[lo:hi])
            )
            lo = hi

    # ------------------------------------------------------------------ #
    # Brown 1988 §4: calendar resize
    # ------------------------------------------------------------------ #
    def _maybe_retune(self) -> None:
        """Fire a recalibration when the population doubled or collapsed
        since the last one (never below the ``_RETUNE_MIN`` floor)."""
        size = self._size
        if size >= max(_RETUNE_MIN, 2 * self._tuned_size) or (
            self._tuned_size >= _RETUNE_MIN and 4 * size <= self._tuned_size
        ):
            self._retune(size)

    def _retune(self, size: int) -> None:
        """Re-estimate the width from the live keys and redistribute.

        Width = finite key spread / target bucket count, i.e. a few
        entries per bucket (Brown's rule of sampling the current event
        population).  Degenerate populations (all-equal, all-infinite,
        too few keys) keep the current width; a new width within 2x of
        the old is not worth the redistribution and is skipped.
        """
        self._tuned_size = size
        buckets = self._buckets
        if not buckets:
            return
        segments = [seg for segs in buckets.values() for seg in segs]
        keys, verts = self._concat(segments)
        finite = keys[np.isfinite(keys)] if self.maybe_inf else keys
        if len(finite) < 2:
            return
        spread = float(finite.max()) - float(finite.min())
        if not (spread > 0 and math.isfinite(spread)):
            return
        width = spread / max(1.0, len(finite) / _TARGET_OCCUPANCY)
        if not (width > 0 and math.isfinite(width)):
            return
        if 0.5 <= width / self.width <= 2.0:
            return  # close enough — skip the churn
        self.width = width
        self._retunes += 1
        self._buckets = {}
        self._distribute(keys, verts)

    # ------------------------------------------------------------------ #
    @staticmethod
    def _concat(segments: list[tuple[np.ndarray, np.ndarray]]):
        if len(segments) == 1:
            return segments[0]
        return (
            np.concatenate([s[0] for s in segments]),
            np.concatenate([s[1] for s in segments]),
        )

    def min_fresh_key(self, key_of: KeyFn, dead: np.ndarray) -> float | None:
        """Extract-min *peek*: the smallest fresh key, or ``None`` if empty.

        An entry is fresh iff its vertex is alive and its stored key
        still equals the vertex's current key (the heaps' lazy-deletion
        test; ``inf == inf`` holds, matching tuple comparison).  Scans
        buckets in increasing index, dropping fully-stale buckets and
        repacking partially-stale ones; fresh entries stay queued.
        """
        self._flush()
        buckets = self._buckets
        while buckets:
            b = min(buckets)
            keys, verts = self._concat(buckets[b])
            fresh = ~dead[verts] & (key_of(verts) == keys)
            n_fresh = int(fresh.sum())
            self._size -= len(keys) - n_fresh
            if n_fresh == 0:
                del buckets[b]
                continue
            if n_fresh != len(keys):
                keys = keys[fresh]
                verts = verts[fresh]
            buckets[b] = [(keys, verts)]
            if b == _INF_BUCKET:
                return math.inf
            return float(keys.min())
        return None

    def kth_fresh_key(self, k: int, key_of: KeyFn, dead: np.ndarray) -> float | None:
        """Partition-select: the ``k``-th smallest fresh key (1-indexed).

        When fewer than ``k`` fresh entries remain, returns the largest
        fresh key (the bound that covers everything); ``None`` when the
        queue holds no fresh entry at all.  This is ρ-stepping's
        extract-ρ-min: buckets cover disjoint, increasing key ranges, so
        the answer lives in the first bucket whose cumulative fresh count
        reaches ``k`` and one O(|bucket|) ``np.partition`` finds it — no
        global sort, and only the buckets below the answer are scanned.

        Prunes stale entries exactly like :meth:`min_fresh_key`; fresh
        entries stay queued (this is a peek, not a pop).  For finite
        keys each vertex has at most one fresh entry (pushes happen on
        strict improvement), so ``k`` counts distinct vertices.
        """
        if k < 1:
            raise ValueError(f"k >= 1 required, got {k}")
        self._flush()
        buckets = self._buckets
        count = 0
        tail_max: float | None = None
        for b in sorted(buckets):
            keys, verts = self._concat(buckets[b])
            fresh = ~dead[verts] & (key_of(verts) == keys)
            n_fresh = int(fresh.sum())
            self._size -= len(keys) - n_fresh
            if n_fresh == 0:
                del buckets[b]
                continue
            if n_fresh != len(keys):
                keys = keys[fresh]
                verts = verts[fresh]
            buckets[b] = [(keys, verts)]
            if count + n_fresh >= k:
                return float(np.partition(keys, k - count - 1)[k - count - 1])
            count += n_fresh
            tail_max = float(keys.max())
        return tail_max

    def pop_fresh_until(
        self, bound: float, key_of: KeyFn, dead: np.ndarray
    ) -> np.ndarray:
        """Split: pop every fresh entry with key ≤ ``bound``.

        Returns the popped vertices sorted by ``(key, vertex)`` — the
        same order a lazy binary heap yields them, deduplicated — and
        discards all stale entries it touches.  Fresh entries above
        ``bound`` in the boundary bucket are retained.
        """
        self._flush()
        buckets = self._buckets
        if math.isinf(bound):
            scan = sorted(buckets)
        else:
            # same floor_divide as _flush, so a key equal to the bound can
            # never round into a bucket the scan skips
            limit = int(np.floor_divide(np.float64(bound), self.width))
            scan = sorted(b for b in buckets if b <= limit)
        if not scan:
            return np.empty(0, dtype=np.int64)
        if len(scan) == 1:
            keys, verts = self._concat(buckets.pop(scan[0]))
        else:
            segments = [self._concat(buckets.pop(b)) for b in scan]
            keys = np.concatenate([s[0] for s in segments])
            verts = np.concatenate([s[1] for s in segments])
        self._size -= len(keys)
        fresh = ~dead[verts] & (key_of(verts) == keys)
        take = fresh & (keys <= bound)
        keep = fresh & ~take
        if keep.any():
            # fresh entries above the bound share the boundary bucket;
            # they go back (their bucket index is unchanged).
            kept = (keys[keep], verts[keep])
            buckets.setdefault(scan[-1], []).append(kept)
            self._size += len(kept[0])
        keys = keys[take]
        verts = verts[take]
        if len(verts) == 0:
            return verts.astype(np.int64)
        order = np.lexsort((verts, keys))
        keys = keys[order]
        verts = verts[order]
        inf_mask = np.isinf(keys)
        if inf_mask.any():
            # inf keys can carry duplicate fresh entries for one vertex
            # (every improvement re-pushes at key inf): dedupe.  They all
            # sort after the finite keys, so the (key, vertex) order of
            # the finite prefix is untouched.
            verts = np.concatenate([verts[~inf_mask], np.unique(verts[inf_mask])])
        return verts
