"""The unified stepping engine — Algorithm 1 over any step schedule.

One loop serves every schedule in :mod:`repro.engine.schedules`:

1. **Line 2** — relax the source's arcs (kernel, charged as ``init``).
2. **Line 4** — ask the schedule for ``d_i`` (charged ``extract-min R``).
3. **Line 5** — split the active set at ``d_i`` (charged ``split Q``).
4. **Lines 5–9** — Bellman–Ford substeps through the kernel until every
   tentative distance ≤ ``d_i`` is stable, feeding each substep's
   improvements back to the schedule as decrease-keys.
5. **Line 10** — settle everything the step touched within ``d_i``.

Run with :class:`~repro.engine.schedules.RadiusSchedule` this is
observationally identical to the seed's hand-fused implementation —
same steps, substeps, traces, relaxation counts and ledger charges —
which the engine-parity tests pin.  The frontier bookkeeping between
substeps uses the kernel's O(1) membership mask instead of the seed's
O(|within|·|changed|) ``np.isin`` scans.
"""

from __future__ import annotations

import numpy as np

from ..graphs.csr import CSRGraph
from ..core.result import SsspResult, StepTrace
from .kernel import RelaxationKernel
from .schedules import StepSchedule

__all__ = ["run_engine"]


def run_engine(
    graph: CSRGraph,
    source: int,
    schedule: StepSchedule,
    *,
    track_parents: bool = False,
    track_trace: bool = False,
    ledger=None,
    algorithm_name: str | None = None,
    params: dict | None = None,
    obs=None,
) -> SsspResult:
    """Run Algorithm 1 from ``source`` under ``schedule``.

    Parameters
    ----------
    graph: validated undirected CSR graph with non-negative weights.
    source: source vertex id.
    schedule: a :class:`~repro.engine.schedules.StepSchedule`; it is
        bound to this run's kernel and must not be reused concurrently.
    track_parents / track_trace / ledger: as in
        :func:`repro.core.radius_stepping.radius_stepping`.
    algorithm_name: ``SsspResult.algorithm``; defaults to the schedule
        name.
    obs: optional :class:`~repro.obs.metrics.BoundEngineTelemetry`
        (anything with ``record_step(settled, substeps)``); called once
        per outer step with the frontier size and substep count.
        Run-level totals are recorded by the dispatch layer
        (:func:`repro.engine.registry.solve_with_engine`), not here.
    """
    n = graph.n
    kernel = RelaxationKernel(
        graph, source, track_parents=track_parents, ledger=ledger
    )
    schedule.bind(kernel)
    schedule.push(kernel.relax_source(source))
    # Optional schedule hooks (∆*-stepping's light/heavy split): substeps
    # relax only the masked arc class; ``finish_step`` runs after Line 10
    # with the step's newly settled vertices, at their final distances.
    substep_arc_mask = getattr(schedule, "substep_arc_mask", None)
    finish_step = getattr(schedule, "finish_step", None)

    dist = kernel.dist
    logn = kernel.logn
    steps = substeps_total = max_substeps = 0
    trace: list[StepTrace] | None = [] if track_trace else None

    while kernel.settled_count < n:
        # ---- Line 4: d_i from the schedule's extract-min -----------------
        d_i = schedule.next_bound()
        if d_i is None:
            break  # remaining vertices unreachable (disconnected graph)
        if ledger is not None:
            ledger.charge(work=logn, depth=logn, label="extract-min R")

        # ---- Line 5: split at d_i — the initial active set ---------------
        changed = schedule.split_active(d_i)
        if ledger is not None:
            ledger.charge(
                work=max(1.0, len(changed)) * logn, depth=logn, label="split Q"
            )
        step_settles: list[np.ndarray] = [changed]
        relax_before = kernel.relaxations
        substeps = 0

        # ---- Lines 5–9: Bellman–Ford substeps until stable ≤ d_i ---------
        while len(changed):
            substeps += 1
            improved, n_arcs = kernel.relax(
                changed,
                exclude_settled=True,
                arc_mask=substep_arc_mask,
                charge_label="substep relax",
            )
            if n_arcs == 0:
                break
            schedule.push(improved)
            # Only updates with δ(v) ≤ d_i keep the substep loop running
            # (Line 9's termination test); they join the active set.
            within = improved[dist[improved] <= d_i]
            # Vertices already active whose δ improved must be re-relaxed
            # too: their out-edges now carry smaller tentative distances.
            newly_active, re_relax = kernel.split_members(changed, within)
            changed = np.concatenate([newly_active, re_relax])
            step_settles.append(newly_active)

        # ---- Line 10: S_i = {v | δ(v) ≤ d_i} ------------------------------
        newly = np.unique(np.concatenate(step_settles))
        kernel.settle(newly)
        if finish_step is not None:
            finish_step(newly)
        steps += 1
        substeps_total += substeps
        max_substeps = max(max_substeps, substeps)
        if obs is not None:
            obs.record_step(len(newly), substeps)
        if trace is not None:
            trace.append(
                StepTrace(
                    step=steps - 1,
                    radius=float(d_i),
                    substeps=substeps,
                    settled=len(newly),
                    relaxations=kernel.relaxations - relax_before,
                )
            )
        if len(newly) == 0:
            # d_i produced an empty annulus: impossible unless radii contain
            # inf/NaN interplay; guard against an infinite loop.
            raise RuntimeError(
                f"{schedule.name} schedule made no progress (empty step)"
            )

    return SsspResult(
        dist=kernel.dist,
        parent=kernel.parent,
        steps=steps,
        substeps=substeps_total,
        max_substeps=max_substeps,
        relaxations=kernel.relaxations,
        algorithm=algorithm_name or f"{schedule.name}-stepping",
        params={"source": source} if params is None else params,
        trace=trace,
    )
