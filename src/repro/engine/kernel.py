"""The shared relaxation kernel — one substep, one place.

Every stepping algorithm in this library (Radius-Stepping, ∆-stepping,
Dijkstra-with-batching, Bellman–Ford, BFS) spends its time in the same
data-parallel substep: gather the arcs out of a frontier from the CSR
arrays, add tentative distances to arc weights, and scatter-min the
candidates into the distance array — the paper's priority-write
(WriteMin).  The seed implementations each re-implemented that substep;
:class:`RelaxationKernel` owns it once, together with the state it
mutates (distances, parents, the settled set) and the cross-cutting
concerns that ride on it (relaxation counting, PRAM ledger charging,
an O(1)-membership scratch mask for frontier bookkeeping).

Schedules (:mod:`repro.engine.schedules`) decide *which* vertices to
relax and *when* to settle them; the kernel is the only code that
touches an edge.

Design notes
------------
* ``np.minimum.at`` is an unbuffered scatter: duplicate targets combine
  correctly, exactly like a CRCW priority-write.
* Parent tracking uses **strict improvement against the pre-scatter
  distances**: an arc wins ``parent[v]`` only when it actually lowered
  ``δ(v)``.  (The seed engines tested ``cand <= dist_after``, which let
  an arc that merely *tied* a pre-existing distance rewrite the parent
  of an already-correct vertex — on zero-weight ties that could even
  create parent cycles.)
* :func:`gather_frontier_arcs` lives here because it *is* the kernel's
  gather; :mod:`repro.core.bfs` re-exports it for backward
  compatibility.
"""

from __future__ import annotations

import math

import numpy as np

from ..graphs.csr import CSRGraph

__all__ = ["RelaxationKernel", "gather_frontier_arcs"]

_EMPTY = np.empty(0, dtype=np.int64)


def gather_frontier_arcs(
    graph: CSRGraph, frontier: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized multi-slice gather of all arcs out of ``frontier``.

    Returns ``(arc_positions, tails)``: flat indices into
    ``graph.indices`` / ``graph.weights`` and the corresponding tail
    vertex for every arc, with no per-vertex Python loop.  This is the
    shared CSR "multi-arange" primitive under every frontier solver.
    """
    counts = graph.indptr[frontier + 1] - graph.indptr[frontier]
    total = int(counts.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    starts = np.repeat(graph.indptr[frontier], counts)
    cum = np.cumsum(counts)
    within = np.arange(total, dtype=np.int64) - np.repeat(cum - counts, counts)
    tails = np.repeat(frontier, counts)
    return starts + within, tails


class RelaxationKernel:
    """Owns the solver state and the vectorized relax substep.

    Parameters
    ----------
    graph: validated undirected CSR graph with non-negative weights.
    source: source vertex; its distance is fixed at 0 and it starts
        settled.
    track_parents: allocate and maintain a shortest-path-tree parent
        array.
    ledger: optional :class:`repro.pram.ledger.Ledger`.  When given,
        :meth:`relax` calls that pass a ``charge_label`` charge the
        weighted-engine costs of Section 3.3 (``O(|arcs| log n)`` work,
        ``O(log n)`` depth); callers with different cost models (the
        §3.4 unweighted engine) keep ``charge_label=None`` and charge
        their own ledger.

    Attributes
    ----------
    dist: tentative distances, ``inf`` when unreached.
    parent: parent array or ``None``.
    settled: boolean settled mask; ``settled_count`` tracks its sum.
    relaxations: total arcs relaxed so far (the work proxy every
        :class:`~repro.core.result.SsspResult` reports).
    """

    __slots__ = (
        "graph",
        "dist",
        "parent",
        "settled",
        "settled_count",
        "relaxations",
        "ledger",
        "logn",
        "_member",
    )

    def __init__(
        self,
        graph: CSRGraph,
        source: int,
        *,
        track_parents: bool = False,
        ledger=None,
    ) -> None:
        n = graph.n
        if not (0 <= source < n):
            raise ValueError(f"source {source} out of range [0, {n})")
        self.graph = graph
        self.dist = np.full(n, np.inf)
        self.dist[source] = 0.0
        self.parent = np.full(n, -1, dtype=np.int64) if track_parents else None
        self.settled = np.zeros(n, dtype=bool)
        self.settled[source] = True
        self.settled_count = 1
        self.relaxations = 0
        self.ledger = ledger
        self.logn = max(1.0, math.log2(max(2, n)))
        self._member = np.zeros(n, dtype=bool)

    # ------------------------------------------------------------------ #
    def relax(
        self,
        frontier: np.ndarray,
        *,
        exclude_settled: bool = True,
        arc_mask: np.ndarray | None = None,
        charge_label: str | None = None,
    ) -> tuple[np.ndarray, int]:
        """One gather → scatter-min substep over ``frontier``'s arcs.

        Parameters
        ----------
        frontier: vertex ids whose out-arcs are relaxed.
        exclude_settled: drop arcs whose head is already settled
            (Algorithm 1 relaxes into ``V \\ S_{i-1}`` only).
        arc_mask: optional boolean mask over all arcs (∆-stepping's
            light/heavy classes); arcs where the mask is false are
            skipped.
        charge_label: when set and a ledger is attached, charge
            ``max(1, |arcs|)·log n`` work and ``log n`` depth under this
            label.

        Returns
        -------
        ``(improved, n_arcs)``: the sorted unique vertices whose
        tentative distance strictly decreased, and the number of arcs
        relaxed (after filtering) — callers use ``n_arcs == 0`` as the
        quiescence test.
        """
        graph = self.graph
        arcpos, tails = gather_frontier_arcs(graph, frontier)
        if arc_mask is not None and len(arcpos):
            keep = arc_mask[arcpos]
            arcpos = arcpos[keep]
            tails = tails[keep]
        if exclude_settled and len(arcpos):
            keep = ~self.settled[graph.indices[arcpos]]
            arcpos = arcpos[keep]
            tails = tails[keep]
        n_arcs = len(arcpos)
        self.relaxations += n_arcs
        if charge_label is not None and self.ledger is not None:
            self.ledger.charge(
                work=max(1.0, n_arcs) * self.logn,
                depth=self.logn,
                label=charge_label,
            )
        if n_arcs == 0:
            return _EMPTY, 0
        dist = self.dist
        targets = graph.indices[arcpos]
        cand = dist[tails] + graph.weights[arcpos]
        uniq = np.unique(targets)
        before = dist[uniq].copy()
        if self.parent is not None:
            pre = dist[targets]  # per-arc pre-scatter values (fancy index copies)
        np.minimum.at(dist, targets, cand)  # WriteMin / priority-write
        if self.parent is not None:
            winners = (cand <= dist[targets]) & (cand < pre)
            self.parent[targets[winners]] = tails[winners]
        improved = uniq[dist[uniq] < before]
        return improved, n_arcs

    def relax_source(self, source: int, *, charge: bool = True) -> np.ndarray:
        """Algorithm 1, Line 2: relax every arc out of the source.

        Returns the improved vertices (the initial heap/bucket seed).
        """
        improved, _ = self.relax(
            np.array([source], dtype=np.int64), exclude_settled=True
        )
        if charge and self.ledger is not None:
            self.ledger.charge(
                work=self.graph.degree(source) * self.logn,
                depth=self.logn,
                label="init",
            )
        return improved

    # ------------------------------------------------------------------ #
    def settle(self, vertices: np.ndarray) -> None:
        """Mark ``vertices`` settled (callers pass unsettled ids only)."""
        if len(vertices):
            self.settled[vertices] = True
            self.settled_count += len(vertices)

    def split_members(
        self, members: np.ndarray, candidates: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Partition ``candidates`` by membership in ``members``.

        Returns ``(fresh, seen)`` preserving candidate order.  Uses a
        reusable boolean scratch mask, so each call is
        O(|members| + |candidates|) — replacing the seed's
        O(|members| · |candidates|) ``np.isin`` inner-loop tests.
        """
        mask = self._member
        mask[members] = True
        seen_mask = mask[candidates]
        mask[members] = False  # restore scratch for the next call
        return candidates[~seen_mask], candidates[seen_mask]
