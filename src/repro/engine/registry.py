"""Named engine registry — how solvers are selected at query time.

:class:`repro.core.solver.PreprocessedSSSP` (and anything else that
answers SSSP queries) dispatches by engine *name* through this
registry, so adding a solver variant — a new schedule, a different
data-structure substrate, an accelerator backend — is one
:func:`register_engine` call away from being servable, benchmarkable
and parity-testable with no solver-facade changes.  Every entry shares
one calling convention::

    fn(graph, source, radii, *,
       track_parents=False, track_trace=False, ledger=None,
       obs=None) -> SsspResult

``radii`` may be ignored by engines that do not use per-vertex radii
(∆-stepping, Bellman–Ford); they accept it so one dispatch site serves
all engines.  ``obs`` is an optional per-engine telemetry handle (see
:class:`repro.obs.metrics.BoundEngineTelemetry`): engines built on the
unified driver feed it live per-step observations, others may ignore
it — run-level totals are recorded uniformly by
:func:`solve_with_engine` from the returned result either way.
Plugins may omit ``obs`` from their signature entirely (the
pre-telemetry convention); the dispatcher detects this at registration
and simply skips the live hook for them.

Built-in engines
----------------
``vectorized``    seed-compatible Radius-Stepping (heap schedule).
``bucket``        Radius-Stepping on calendar-queue buckets.
``bst``           the faithful Algorithm-2 treap reference.
``unweighted``    the §3.4 BFS-style specialization (unit weights only).
``dijkstra``      equal-distance batched Dijkstra (``r ≡ 0``).
``delta``         ∆-stepping boundaries in the unified engine.
``delta-star``    ∆*-stepping: floating min+∆ window, light/heavy split.
``rho``           ρ-stepping: the ρ nearest frontier vertices per step.
``bellman-ford``  single-step Bellman–Ford (``r ≡ ∞``).
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from typing import Callable

from ..core.result import SsspResult

__all__ = [
    "EngineSpec",
    "available_engines",
    "get_engine",
    "register_engine",
    "solve_with_engine",
]

EngineFn = Callable[..., SsspResult]


@dataclass(frozen=True)
class EngineSpec:
    """One registered engine.

    Attributes
    ----------
    name: registry key (what ``solve(engine=...)`` takes).
    fn: the solver callable (see module docstring for the convention).
    supports_parents: whether ``track_parents=True`` is honoured; the
        dispatcher raises ``ValueError`` up front instead of silently
        returning ``parent=None``.
    description: one-liner for ``available_engines`` listings.
    accepts_obs: whether ``fn`` takes the ``obs`` telemetry keyword —
        detected from its signature at registration, so plugins written
        against the pre-telemetry convention keep working (they still
        get run-level telemetry from the dispatcher, just no live
        per-step hook).
    """

    name: str
    fn: EngineFn
    supports_parents: bool = True
    description: str = ""
    accepts_obs: bool = True


_REGISTRY: dict[str, EngineSpec] = {}


def _accepts_obs(fn: EngineFn) -> bool:
    """Whether ``fn``'s signature admits the ``obs`` keyword."""
    try:
        params = inspect.signature(fn).parameters
    except (TypeError, ValueError):  # uninspectable callables: assume yes
        return True
    return "obs" in params or any(
        p.kind is inspect.Parameter.VAR_KEYWORD for p in params.values()
    )


def register_engine(
    name: str,
    fn: EngineFn,
    *,
    supports_parents: bool = True,
    description: str = "",
    overwrite: bool = False,
) -> EngineSpec:
    """Register ``fn`` under ``name``; returns the spec.

    Re-registering an existing name raises unless ``overwrite=True``
    (guards against plugin name collisions).  ``fn`` may omit the
    ``obs`` keyword (the pre-telemetry plugin convention); the
    dispatcher then skips the live hook for that engine.
    """
    if not name or name == "auto":
        raise ValueError(f"invalid engine name {name!r}")
    if name in _REGISTRY and not overwrite:
        raise ValueError(f"engine {name!r} already registered")
    spec = EngineSpec(
        name=name,
        fn=fn,
        supports_parents=supports_parents,
        description=description,
        accepts_obs=_accepts_obs(fn),
    )
    _REGISTRY[name] = spec
    return spec


def get_engine(name: str) -> EngineSpec:
    """Look up a registered engine; ``ValueError`` lists known names."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown engine {name!r}; registered engines: "
            f"{', '.join(sorted(_REGISTRY))}"
        ) from None


def available_engines() -> tuple[str, ...]:
    """Sorted names of every registered engine."""
    return tuple(sorted(_REGISTRY))


def solve_with_engine(
    name: str,
    graph,
    source: int,
    radii=None,
    *,
    track_parents: bool = False,
    track_trace: bool = False,
    ledger=None,
    obs=None,
) -> SsspResult:
    """Dispatch one query through the registry (shared validation).

    ``obs`` is an optional :class:`~repro.obs.metrics.EngineTelemetry`;
    the engine label is bound here (once per query, not per step) and
    run-level totals are folded in from the result after the solve, so
    every engine gets run telemetry even if it ignores the live hook.
    """
    spec = get_engine(name)
    if track_parents and not spec.supports_parents:
        raise ValueError(f"the {name} engine does not track parents")
    bound = obs.bind(name) if obs is not None else None
    kwargs = {
        "track_parents": track_parents,
        "track_trace": track_trace,
        "ledger": ledger,
    }
    if spec.accepts_obs:
        kwargs["obs"] = bound
    res = spec.fn(graph, source, radii, **kwargs)
    if bound is not None:
        bound.record_run(res)
    return res


# --------------------------------------------------------------------- #
# Built-in engines.  Imports happen inside the adapters: the core solver
# modules import the engine package, so importing them here at module
# load would be circular.
# --------------------------------------------------------------------- #
def _vectorized(graph, source, radii, *, track_parents, track_trace, ledger, obs=None):
    from ..core.radius_stepping import radius_stepping

    return radius_stepping(
        graph,
        source,
        radii,
        track_parents=track_parents,
        track_trace=track_trace,
        ledger=ledger,
    )


def _bucket(graph, source, radii, *, track_parents, track_trace, ledger, obs=None):
    from ..core.radius_stepping import as_radii
    from .driver import run_engine
    from .schedules import RadiusBucketSchedule

    return run_engine(
        graph,
        source,
        RadiusBucketSchedule(as_radii(graph, radii)),
        track_parents=track_parents,
        track_trace=track_trace,
        ledger=ledger,
        obs=obs,
        algorithm_name="radius-stepping-bucket",
    )


def _bst(graph, source, radii, *, track_parents, track_trace, ledger, obs=None):
    from ..core.radius_stepping_bst import radius_stepping_bst

    return radius_stepping_bst(
        graph, source, radii, track_trace=track_trace, ledger=ledger
    )


def _unweighted(graph, source, radii, *, track_parents, track_trace, ledger, obs=None):
    from ..core.radius_stepping_unweighted import radius_stepping_unweighted

    return radius_stepping_unweighted(
        graph, source, radii, track_trace=track_trace, ledger=ledger
    )


def _dijkstra(graph, source, radii, *, track_parents, track_trace, ledger, obs=None):
    from .driver import run_engine
    from .schedules import DijkstraSchedule

    return run_engine(
        graph,
        source,
        DijkstraSchedule(),
        track_parents=track_parents,
        track_trace=track_trace,
        ledger=ledger,
        obs=obs,
        algorithm_name="dijkstra-steps",
    )


def _delta(graph, source, radii, *, track_parents, track_trace, ledger, obs=None):
    from .driver import run_engine
    from .schedules import DeltaSchedule

    return run_engine(
        graph,
        source,
        DeltaSchedule(),
        track_parents=track_parents,
        track_trace=track_trace,
        ledger=ledger,
        obs=obs,
        algorithm_name="delta-stepping-engine",
    )


def _delta_star(graph, source, radii, *, track_parents, track_trace, ledger, obs=None):
    from .driver import run_engine
    from .schedules import DeltaStarSchedule

    return run_engine(
        graph,
        source,
        DeltaStarSchedule(),
        track_parents=track_parents,
        track_trace=track_trace,
        ledger=ledger,
        obs=obs,
        algorithm_name="delta-star-stepping",
    )


def _rho(graph, source, radii, *, track_parents, track_trace, ledger, obs=None):
    from .driver import run_engine
    from .schedules import RhoSchedule

    return run_engine(
        graph,
        source,
        RhoSchedule(),
        track_parents=track_parents,
        track_trace=track_trace,
        ledger=ledger,
        obs=obs,
        algorithm_name="rho-stepping",
    )


def _bellman_ford(graph, source, radii, *, track_parents, track_trace, ledger, obs=None):
    from .driver import run_engine
    from .schedules import BellmanFordSchedule

    return run_engine(
        graph,
        source,
        BellmanFordSchedule(),
        track_parents=track_parents,
        track_trace=track_trace,
        ledger=ledger,
        obs=obs,
        algorithm_name="bellman-ford-engine",
    )


register_engine(
    "vectorized",
    _vectorized,
    description="seed-compatible Radius-Stepping (lazy heap schedule)",
)
register_engine(
    "bucket",
    _bucket,
    description="Radius-Stepping on lazy calendar-queue buckets",
)
register_engine(
    "bst",
    _bst,
    supports_parents=False,
    description="faithful Algorithm-2 treap reference (slow; PRAM accounting)",
)
register_engine(
    "unweighted",
    _unweighted,
    supports_parents=False,
    description="§3.4 BFS-style engine (unit-weight graphs only)",
)
register_engine(
    "dijkstra",
    _dijkstra,
    description="equal-distance batched Dijkstra (r = 0)",
)
register_engine(
    "delta",
    _delta,
    description="Delta-stepping boundaries in the unified engine",
)
register_engine(
    "delta-star",
    _delta_star,
    description="Delta*-stepping: floating min+Delta window, light/heavy arc split",
)
register_engine(
    "rho",
    _rho,
    description="rho-stepping: settle the rho nearest frontier vertices per step",
)
register_engine(
    "bellman-ford",
    _bellman_ford,
    description="single-step Bellman-Ford (r = inf)",
)
