"""Step schedules — Algorithm 1 parameterized over "what is d_i?".

The paper's Algorithm 1 is one relaxation loop whose only degree of
freedom is the round distance ``d_i`` chosen on Line 4 (and, dually,
which vertices form the initial active set of Lines 5–9).  Dong, Gu &
Sun's stepping framework (arXiv:2105.06145) makes the same observation:
Dijkstra, ∆-stepping and ρ-stepping are *step schedules* plugged into
one lazy-batched engine.  This module is that factoring for this
library: a :class:`StepSchedule` answers three questions —

* :meth:`~StepSchedule.next_bound` — Line 4's extract-min: the next
  ``d_i`` (``None`` when every reachable vertex is settled);
* :meth:`~StepSchedule.split_active` — Line 5: the unsettled vertices
  with ``δ(v) ≤ d_i`` that seed the substep loop;
* :meth:`~StepSchedule.push` — the decrease-key hook: vertices whose
  tentative distance just improved.

and :func:`repro.engine.driver.run_engine` supplies the loop.  Concrete
schedules:

========================  ====================================================
:class:`RadiusSchedule`    the seed's two lazy binary heaps (Q by ``δ``, R by
                           ``δ + r``) — bit-compatible with the seed engine.
:class:`RadiusBucketSchedule`  the same ``d_i`` sequence from lazy
                           calendar-queue buckets (no per-vertex heap pushes).
:class:`DijkstraSchedule`  ``r ≡ 0``: equal-distance batched Dijkstra.
:class:`DeltaSchedule`     fixed bucket boundaries ``d_i = (j+1)·∆``.
:class:`DeltaStarSchedule` ∆*-stepping: floating window ``d_i = min + ∆``
                           with a light/heavy arc split.
:class:`RhoSchedule`       ρ-stepping: ``d_i`` = the ρ-th smallest frontier
                           distance (partition-select over lazy buckets).
:class:`BellmanFordSchedule`  ``d_i = ∞``: one step, substeps = rounds.
========================  ====================================================

Custom schedules only need the four-method protocol — see
``examples/engine_plugins.py`` for a worked third-party schedule.
"""

from __future__ import annotations

import heapq
import math
from typing import Protocol, runtime_checkable

import numpy as np

from .buckets import LazyBucketQueue
from .kernel import RelaxationKernel

__all__ = [
    "StepSchedule",
    "RadiusSchedule",
    "RadiusBucketSchedule",
    "DijkstraSchedule",
    "DeltaSchedule",
    "DeltaStarSchedule",
    "RhoSchedule",
    "BellmanFordSchedule",
    "default_bucket_width",
    "default_rho",
]


@runtime_checkable
class StepSchedule(Protocol):
    """What a scheduling plugin must provide to drive the engine."""

    #: short name, used as the default ``SsspResult.algorithm`` suffix.
    name: str

    def bind(self, kernel: RelaxationKernel) -> None:
        """Attach to a fresh kernel before the run starts."""

    def push(self, improved: np.ndarray) -> None:
        """Decrease-key: these vertices' tentative distances improved."""

    def next_bound(self) -> float | None:
        """Line 4: the next round distance, or ``None`` when done."""

    def split_active(self, bound: float) -> np.ndarray:
        """Line 5: unsettled vertices with ``δ(v) ≤ bound``."""


def _as_radius_array(radii: np.ndarray | None, n: int) -> np.ndarray:
    return np.zeros(n) if radii is None else radii


def default_rho(graph) -> int:
    """Batch-size heuristic for :class:`RhoSchedule`.

    ρ trades step count (≈ n/ρ steps) against wasted intra-batch
    re-relaxations; for an interpreter-bound engine the per-step
    dispatch overhead dominates long before the wasted work does, so
    the default leans large: a constant number of steps (n/16) with a
    floor of 64 so tiny graphs still batch.  Dong, Gu & Sun tune ρ in
    the millions for the same reason on native code — the right value
    is workload-specific, which is exactly what
    :func:`repro.engine.autoselect.pick_engine` measures.
    """
    return max(64, -(-graph.n // 16))


def default_bucket_width(graph) -> float:
    """Bucket width heuristic for calendar-queue schedules.

    A calendar queue wants a handful of live entries per bucket; keys
    advance by roughly one edge weight per relaxation, so the mean
    weight (floored at the smallest positive weight) is a robust
    default.  Falls back to 1.0 on edgeless / all-zero-weight graphs.

    Since the queues self-tune (``LazyBucketQueue(auto_resize=True)``,
    the :class:`RadiusBucketSchedule` default), this is only the
    starting hint — Brown's resize rule takes over once the live key
    population says otherwise.
    """
    if graph.num_arcs == 0:
        return 1.0
    mean_w = float(graph.weights.mean())
    min_pos = graph.min_positive_weight
    width = max(mean_w, min_pos if math.isfinite(min_pos) else 0.0)
    return width if width > 0 and math.isfinite(width) else 1.0


class RadiusSchedule:
    """Algorithm 2's two ordered sets as lazy binary heaps.

    ``R`` keyed by ``δ(v) + r(v)`` yields ``d_i`` (extract-min), ``Q``
    keyed by ``δ(v)`` yields the active set (split at ``d_i``).  Both
    use decrease-key-by-re-push with lazy deletion: an entry is stale
    when its vertex settled or its stored key no longer matches the
    current key.  This is exactly the seed engine's data structure, so
    the driver + this schedule reproduce the seed's steps, substeps,
    traces and ledger charges verbatim.
    """

    name = "radius"

    def __init__(self, radii: np.ndarray | None) -> None:
        self._radii = radii

    def bind(self, kernel: RelaxationKernel) -> None:
        self._kernel = kernel
        self.r = _as_radius_array(self._radii, kernel.graph.n)
        self._qheap: list[tuple[float, int]] = []  # keyed by δ(v)
        self._rheap: list[tuple[float, int]] = []  # keyed by δ(v) + r(v)

    def push(self, improved: np.ndarray) -> None:
        if len(improved) == 0:
            return
        dv = self._kernel.dist[improved]
        rv = dv + self.r[improved]
        qheap, rheap = self._qheap, self._rheap
        for v, dk, rk in zip(improved.tolist(), dv.tolist(), rv.tolist()):
            heapq.heappush(qheap, (dk, v))
            heapq.heappush(rheap, (rk, v))

    def next_bound(self) -> float | None:
        rheap = self._rheap
        dist, r, settled = self._kernel.dist, self.r, self._kernel.settled
        while rheap:
            key, v = rheap[0]
            if settled[v] or key != dist[v] + r[v]:
                heapq.heappop(rheap)  # stale (settled or superseded)
                continue
            return key
        return None

    def split_active(self, bound: float) -> np.ndarray:
        qheap = self._qheap
        dist, settled = self._kernel.dist, self._kernel.settled
        active: list[int] = []
        while qheap and qheap[0][0] <= bound:
            key, v = heapq.heappop(qheap)
            if settled[v] or key != dist[v]:
                continue  # stale
            active.append(v)
        return np.array(active, dtype=np.int64)


class RadiusBucketSchedule:
    """Radius-Stepping on lazy calendar-queue buckets.

    Produces the *same* ``d_i`` sequence and active sets as
    :class:`RadiusSchedule` (extract-min returns exact fresh keys, not
    bucket boundaries) but replaces every O(log n) heap push on the hot
    path with an O(1) batched append; ordering work happens only in the
    vectorized per-bucket scans.  Instrumentation parity with the heap
    schedule is pinned by the engine tests.

    Only ``R`` (keyed ``δ(v) + r(v)``, the Line-4 extract-min) needs an
    ordered structure and lives in a :class:`LazyBucketQueue`.  ``Q``'s
    sole operation is a *split* at ``d_i`` — a filter, not an ordering —
    so it is kept as a lazy flat frontier: segments of first-reached
    vertices, concatenated and partitioned by ``δ(v) ≤ d_i`` once per
    step.

    By default (``width=None``) the :func:`default_bucket_width`
    heuristic is only a *starting hint*: the queue recalibrates itself
    from the live key population via Brown's calendar-queue resize rule
    (see :class:`LazyBucketQueue`), so no graph can be pathological for
    the fixed-width guess.  Passing an explicit ``width`` pins it unless
    ``auto_resize=True`` is also given.
    """

    name = "radius-bucket"

    def __init__(
        self,
        radii: np.ndarray | None,
        *,
        width: float | None = None,
        auto_resize: bool | None = None,
    ) -> None:
        self._radii = radii
        self._width = width
        self._auto = auto_resize

    def bind(self, kernel: RelaxationKernel) -> None:
        self._kernel = kernel
        n = kernel.graph.n
        self.r = _as_radius_array(self._radii, n)
        width = self._width or default_bucket_width(kernel.graph)
        auto = self._auto if self._auto is not None else self._width is None
        has_inf = bool(np.isinf(self.r).any())
        self._rq = LazyBucketQueue(  # by δ(v) + r(v)
            width, maybe_inf=has_inf, auto_resize=auto
        )
        self._reached = np.zeros(n, dtype=bool)
        self._reached[kernel.settled.nonzero()[0]] = True
        self._segments: list[np.ndarray] = []  # lazy frontier (Q)

    def _radius_key(self, verts: np.ndarray) -> np.ndarray:
        return self._kernel.dist[verts] + self.r[verts]

    def push(self, improved: np.ndarray) -> None:
        if len(improved) == 0:
            return
        self._rq.push(improved, self._kernel.dist[improved] + self.r[improved])
        first_touch = improved[~self._reached[improved]]
        if len(first_touch):
            self._reached[first_touch] = True
            self._segments.append(first_touch)

    def next_bound(self) -> float | None:
        return self._rq.min_fresh_key(self._radius_key, self._kernel.settled)

    def split_active(self, bound: float) -> np.ndarray:
        segments = self._segments
        if not segments:
            return np.empty(0, dtype=np.int64)
        frontier = segments[0] if len(segments) == 1 else np.concatenate(segments)
        frontier = frontier[~self._kernel.settled[frontier]]
        below = self._kernel.dist[frontier] <= bound
        active = frontier[below]
        self._segments = [frontier[~below]]
        # match the heaps' (key, vertex) pop order for identical downstream
        # arc ordering (parent tie-breaks)
        order = np.lexsort((active, self._kernel.dist[active]))
        return active[order]


class DijkstraSchedule(RadiusSchedule):
    """``r ≡ 0``: Dijkstra with equal-distance extractions batched into
    one step (the ρ=1 baseline of Tables 6/7)."""

    name = "dijkstra"

    def __init__(self) -> None:
        super().__init__(None)


class DeltaSchedule:
    """∆-stepping's fixed boundaries inside the unified engine.

    ``d_i`` is the upper boundary ``(j+1)·∆`` of the lowest non-empty
    distance bucket.  Unlike the classic light/heavy formulation of
    :func:`repro.core.delta_stepping.delta_stepping` (kept as the
    instrumented paper baseline), all arcs of the active set are relaxed
    together and vertices landing exactly on a boundary settle with the
    lower bucket — distances are identical, step accounting differs.
    """

    name = "delta"

    def __init__(self, delta: float | None = None) -> None:
        if delta is not None and not (delta > 0 and math.isfinite(delta)):
            raise ValueError("delta must be positive and finite")
        self._delta = delta

    def bind(self, kernel: RelaxationKernel) -> None:
        from ..core.delta_stepping import suggest_delta  # avoid import cycle

        self._kernel = kernel
        # suggest_delta clamps degenerate weight ranges (all-zero
        # weights, edgeless graphs) to a positive finite floor, so the
        # bucket width below is always legal.
        self.delta = self._delta or suggest_delta(kernel.graph)
        # tentative distances of improved vertices are always finite
        self._q = LazyBucketQueue(self.delta, maybe_inf=False)

    def _dist_key(self, verts: np.ndarray) -> np.ndarray:
        return self._kernel.dist[verts]

    def push(self, improved: np.ndarray) -> None:
        if len(improved):
            self._q.push(improved, self._kernel.dist[improved])

    def next_bound(self) -> float | None:
        low = self._q.min_fresh_key(self._dist_key, self._kernel.settled)
        if low is None:
            return None
        return (math.floor(low / self.delta) + 1) * self.delta

    def split_active(self, bound: float) -> np.ndarray:
        return self._q.pop_fresh_until(bound, self._dist_key, self._kernel.settled)


class DeltaStarSchedule:
    """∆*-stepping — a floating ``min + ∆`` window with a light/heavy split.

    Dong, Gu & Sun's ∆*-variant of ∆-stepping: instead of
    :class:`DeltaSchedule`'s fixed boundaries ``(j+1)·∆``, each step
    processes every frontier vertex within ``∆`` of the current frontier
    *minimum* — ``d_i = min δ(frontier) + ∆`` — so sparse distance
    ranges never spin through empty windows and every step is at least
    ∆ deep regardless of where the frontier sits.

    Substeps relax **light arcs only** (``w ≤ ∆``, the Kranjčević et
    al. shared-memory ∆-stepping batching, arXiv:1604.02113): an active
    vertex has ``δ(u) ≥ min``, so a heavy arc's candidate lands at
    ``δ(u) + w > min + ∆ = d_i`` — strictly beyond the settling bound,
    irrelevant inside the step.  Heavy arcs are relaxed exactly once
    per vertex, in one batch as the step's vertices settle
    (:meth:`finish_step`), when their tail's distance is final.
    """

    name = "delta-star"

    def __init__(self, delta: float | None = None) -> None:
        if delta is not None and not (delta > 0 and math.isfinite(delta)):
            raise ValueError("delta must be positive and finite")
        self._delta = delta

    def bind(self, kernel: RelaxationKernel) -> None:
        from ..core.delta_stepping import suggest_delta  # avoid import cycle

        self._kernel = kernel
        self.delta = self._delta or suggest_delta(kernel.graph)
        self._q = LazyBucketQueue(self.delta, maybe_inf=False)
        #: driver hook — substeps relax only these arcs (the light class)
        self.substep_arc_mask = kernel.graph.weights <= self.delta
        self._heavy = ~self.substep_arc_mask
        self._has_heavy = bool(self._heavy.any())

    def _dist_key(self, verts: np.ndarray) -> np.ndarray:
        return self._kernel.dist[verts]

    def push(self, improved: np.ndarray) -> None:
        if len(improved):
            self._q.push(improved, self._kernel.dist[improved])

    def next_bound(self) -> float | None:
        low = self._q.min_fresh_key(self._dist_key, self._kernel.settled)
        if low is None:
            return None
        return low + self.delta

    def split_active(self, bound: float) -> np.ndarray:
        return self._q.pop_fresh_until(bound, self._dist_key, self._kernel.settled)

    def finish_step(self, settled: np.ndarray) -> None:
        """Driver hook (Line 10): one batched heavy-arc relaxation over
        the step's newly settled vertices, at their final distances."""
        if not self._has_heavy or len(settled) == 0:
            return
        improved, _ = self._kernel.relax(
            settled,
            exclude_settled=True,
            arc_mask=self._heavy,
            charge_label="heavy relax",
        )
        self.push(improved)


class RhoSchedule:
    """ρ-stepping — settle the ρ nearest frontier vertices per step.

    Dong, Gu & Sun's other sibling: ``d_i`` is the ρ-th smallest
    tentative distance on the unsettled frontier, found by
    partition-select over the lazy calendar-queue buckets
    (:meth:`~repro.engine.buckets.LazyBucketQueue.kth_fresh_key` — no
    global sort, only the buckets below the answer are scanned).  Each
    step then settles exactly those ρ vertices (plus boundary ties),
    interpolating between Dijkstra (ρ = 1, one extract-min per step)
    and Bellman–Ford (ρ = n, everything at once); the engine's substep
    loop keeps any choice exact, so larger ρ trades wasted intra-batch
    re-relaxations for fewer, fatter steps.
    """

    name = "rho"

    def __init__(
        self, rho: int | None = None, *, width: float | None = None
    ) -> None:
        if rho is not None and rho < 1:
            raise ValueError(f"rho >= 1 required, got {rho}")
        self._rho = rho
        self._width = width

    def bind(self, kernel: RelaxationKernel) -> None:
        self._kernel = kernel
        self.rho = self._rho or default_rho(kernel.graph)
        width = self._width or default_bucket_width(kernel.graph)
        self._q = LazyBucketQueue(
            width, maybe_inf=False, auto_resize=self._width is None
        )

    def _dist_key(self, verts: np.ndarray) -> np.ndarray:
        return self._kernel.dist[verts]

    def push(self, improved: np.ndarray) -> None:
        if len(improved):
            self._q.push(improved, self._kernel.dist[improved])

    def next_bound(self) -> float | None:
        return self._q.kth_fresh_key(self.rho, self._dist_key, self._kernel.settled)

    def split_active(self, bound: float) -> np.ndarray:
        return self._q.pop_fresh_until(bound, self._dist_key, self._kernel.settled)


class BellmanFordSchedule:
    """``r ≡ ∞``: a single step whose substeps are Bellman–Ford rounds.

    The standalone :func:`repro.core.bellman_ford.bellman_ford` counts
    one extra round (it relaxes the source inside the loop; the engine's
    Line 2 does it before the first substep) — distances are identical.
    """

    name = "bellman-ford"

    def bind(self, kernel: RelaxationKernel) -> None:
        self._kernel = kernel

    def push(self, improved: np.ndarray) -> None:
        pass  # no ordering structure: everything reached is active

    def _pending(self) -> np.ndarray:
        k = self._kernel
        return np.isfinite(k.dist) & ~k.settled

    def next_bound(self) -> float | None:
        return math.inf if bool(self._pending().any()) else None

    def split_active(self, bound: float) -> np.ndarray:
        return np.nonzero(self._pending())[0]
