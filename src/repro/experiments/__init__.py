"""Experiment drivers: one per table/figure of the paper's evaluation."""

from .bounds_check import BoundsPoint, render_bounds, run_bounds_check
from .config import SCALES, ScaleConfig, get_scale
from .datasets import DATASET_NAMES, Dataset, make_all_datasets, make_dataset
from .shortcut_edges import (
    FIG3_DATASETS,
    ShortcutSuite,
    render_factor_table,
    render_fig3,
    run_shortcut_suite,
)
from .steps import (
    DatasetSteps,
    StepsSuite,
    render_reduction_table,
    render_steps_figure,
    render_steps_table,
    run_steps_for_dataset,
    run_steps_suite,
)
from .workdepth import (
    WorkDepthPoint,
    render_table1,
    render_workdepth,
    run_workdepth,
)
from .runner import EXPERIMENTS, main

__all__ = [
    "BoundsPoint",
    "DATASET_NAMES",
    "Dataset",
    "DatasetSteps",
    "EXPERIMENTS",
    "FIG3_DATASETS",
    "SCALES",
    "ScaleConfig",
    "ShortcutSuite",
    "StepsSuite",
    "WorkDepthPoint",
    "get_scale",
    "main",
    "make_all_datasets",
    "make_dataset",
    "render_bounds",
    "render_factor_table",
    "render_fig3",
    "render_reduction_table",
    "render_steps_figure",
    "render_steps_table",
    "render_table1",
    "render_workdepth",
    "run_bounds_check",
    "run_shortcut_suite",
    "run_steps_for_dataset",
    "run_steps_suite",
    "run_workdepth",
]
