"""Theorem 3.2 / 3.3 ablation — measured steps and substeps vs bounds.

The paper proves the bounds; this driver *measures the slack*: for every
dataset, k, ρ, and heuristic, it preprocesses, solves, and reports
``max substeps / (k+2)`` and ``steps / ⌈n/ρ⌉(1+⌈log₂ ρL⌉)``.  Values
must stay ≤ 1 (the test suite enforces it); how far below 1 they sit is
the empirical "much less than the theoretical upper bound" claim of §5.3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..analysis.stats import pick_sources
from ..analysis.tables import render_table
from ..analysis.theory import max_steps_bound, max_substeps_bound
from ..core.radius_stepping import radius_stepping
from ..preprocess.pipeline import build_kr_graph
from .config import ScaleConfig, get_scale
from .datasets import make_all_datasets

__all__ = ["BoundsPoint", "run_bounds_check", "render_bounds"]


@dataclass
class BoundsPoint:
    """One measured configuration against both theorem bounds."""

    dataset: str
    k: int
    rho: int
    heuristic: str
    worst_substeps: int
    substep_bound: int
    mean_steps: float
    step_bound: int
    added_edges: int

    @property
    def substep_slack(self) -> float:
        return self.worst_substeps / self.substep_bound

    @property
    def step_slack(self) -> float:
        return self.mean_steps / self.step_bound

    @property
    def holds(self) -> bool:
        return self.worst_substeps <= self.substep_bound and (
            self.mean_steps <= self.step_bound
        )


def run_bounds_check(
    scale: ScaleConfig | str,
    *,
    datasets: Sequence[str] = ("road-pa", "web-st", "grid2d"),
    ks: Sequence[int] = (1, 2, 3),
    rhos: Sequence[int] = (5, 10, 20),
    heuristics: Sequence[str] = ("full", "greedy", "dp"),
    weighted: bool = True,
    n_jobs: int = 1,
) -> list[BoundsPoint]:
    """Preprocess + solve every configuration; collect bound slack."""
    cfg = get_scale(scale) if isinstance(scale, str) else scale
    data = make_all_datasets(cfg, tuple(datasets))
    points: list[BoundsPoint] = []
    for name, ds in data.items():
        graph = ds.weighted if weighted else ds.unweighted
        sources = pick_sources(graph.n, cfg.num_sources, seed=cfg.seed)
        for k in ks:
            for rho in rhos:
                for heuristic in heuristics:
                    if heuristic == "full" and k != min(ks):
                        continue  # 'full' is k-independent; run it once
                    pre = build_kr_graph(
                        graph, k, rho, heuristic=heuristic, n_jobs=n_jobs
                    )
                    worst = 0
                    steps = []
                    for s in sources:
                        res = radius_stepping(pre.graph, int(s), pre.radii)
                        worst = max(worst, res.max_substeps)
                        steps.append(res.steps)
                    k_eff = 1 if heuristic == "full" else k
                    points.append(
                        BoundsPoint(
                            dataset=name,
                            k=k_eff,
                            rho=rho,
                            heuristic=heuristic,
                            worst_substeps=worst,
                            substep_bound=max_substeps_bound(k_eff),
                            mean_steps=float(np.mean(steps)),
                            step_bound=max_steps_bound(
                                pre.graph.n, rho, pre.graph.max_weight
                            ),
                            added_edges=pre.added_edges,
                        )
                    )
    return points


def render_bounds(points: Sequence[BoundsPoint]) -> str:
    """Slack table; every row must show holds=yes."""
    headers = [
        "dataset",
        "heur",
        "k",
        "rho",
        "max substeps",
        "<= k+2",
        "mean steps",
        "<= bound",
        "holds",
    ]
    rows = [
        [
            p.dataset,
            p.heuristic,
            str(p.k),
            str(p.rho),
            str(p.worst_substeps),
            str(p.substep_bound),
            p.mean_steps,
            str(p.step_bound),
            "yes" if p.holds else "NO",
        ]
        for p in points
    ]
    return render_table(
        headers, rows, title="Theorem 3.2 / 3.3 ablation (measured vs bounds)"
    )
