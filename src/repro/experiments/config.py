"""Scale presets for the experiment drivers.

The paper runs ~1M-vertex graphs with 1000 sample sources and ρ up to
10,000.  Pure-Python substrates cannot match that wall-clock, so every
experiment takes a *scale* preset that shrinks graph sizes, source counts,
and ρ-sweeps together while preserving every qualitative shape (steps ∝
1/ρ, greedy≫DP on scale-free graphs, etc.).  ``tiny`` is wired into the
pytest-benchmark suite; ``small``/``medium`` are interactive CLI scales;
``large`` approaches paper shapes and runs in tens of minutes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["ScaleConfig", "SCALES", "get_scale"]


@dataclass(frozen=True)
class ScaleConfig:
    """Sizes and sweeps for one scale preset.

    Attributes
    ----------
    name: preset name.
    road_n / web_n / grid2d_side / grid3d_side: dataset sizes.
    web_attach: Barabási–Albert attachment counts (NotreDame-like,
        Stanford-like).
    num_sources: sample sources for step experiments (paper: 1000).
    steps_rhos: ρ-sweep for Figures 4/5 and Tables 4–7.
    shortcut_rhos: ρ-sweep for Figure 3 and Tables 2/3 (paper: 10..1000).
    shortcut_ks: k-sweep for Tables 2/3 (paper: 2..5).
    shortcut_sources: sampled sources for shortcut counting (None = all).
    """

    name: str
    road_n: tuple[int, int]
    web_n: tuple[int, int]
    web_attach: tuple[int, int]
    grid2d_side: int
    grid3d_side: int
    num_sources: int
    steps_rhos: tuple[int, ...]
    shortcut_rhos: tuple[int, ...]
    shortcut_ks: tuple[int, ...] = (2, 3, 4, 5)
    shortcut_sources: int | None = None
    seed: int = 20160614  # SPAA'16 conference date

    def describe(self) -> dict[str, object]:
        """Plain dict for report headers."""
        return {
            "scale": self.name,
            "road_n": self.road_n,
            "web_n": self.web_n,
            "grid2d": f"{self.grid2d_side}x{self.grid2d_side}",
            "grid3d": f"{self.grid3d_side}^3",
            "sources": self.num_sources,
        }


SCALES: dict[str, ScaleConfig] = {
    "tiny": ScaleConfig(
        name="tiny",
        road_n=(900, 1100),
        web_n=(800, 700),
        web_attach=(3, 5),
        grid2d_side=30,
        grid3d_side=10,
        num_sources=3,
        steps_rhos=(1, 2, 5, 10, 20, 50),
        shortcut_rhos=(5, 10, 20, 50),
        shortcut_ks=(2, 3),
        shortcut_sources=40,
    ),
    "small": ScaleConfig(
        name="small",
        road_n=(2200, 2600),
        web_n=(1800, 1500),
        web_attach=(4, 7),
        grid2d_side=48,
        grid3d_side=13,
        num_sources=5,
        steps_rhos=(1, 2, 5, 10, 20, 50, 100),
        shortcut_rhos=(10, 20, 50, 100),
        shortcut_ks=(2, 3, 4, 5),
        shortcut_sources=120,
    ),
    "medium": ScaleConfig(
        name="medium",
        road_n=(9000, 11000),
        web_n=(7000, 6000),
        web_attach=(5, 9),
        grid2d_side=100,
        grid3d_side=22,
        num_sources=10,
        steps_rhos=(1, 2, 5, 10, 20, 50, 100, 200),
        shortcut_rhos=(10, 20, 50, 100, 200),
        shortcut_ks=(2, 3, 4, 5),
        shortcut_sources=300,
    ),
    "large": ScaleConfig(
        name="large",
        road_n=(40000, 50000),
        web_n=(30000, 25000),
        web_attach=(6, 12),
        grid2d_side=200,
        grid3d_side=34,
        num_sources=25,
        steps_rhos=(1, 2, 5, 10, 20, 50, 100, 200, 500, 1000),
        shortcut_rhos=(10, 20, 50, 100, 200, 500, 1000),
        shortcut_ks=(2, 3, 4, 5),
        shortcut_sources=500,
    ),
}


def get_scale(name: str) -> ScaleConfig:
    """Look up a preset; raises with the available names on a typo."""
    try:
        return SCALES[name]
    except KeyError:
        raise ValueError(f"unknown scale {name!r}; choose from {sorted(SCALES)}") from None
