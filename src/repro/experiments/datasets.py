"""The six evaluation graphs (§5.1) at configurable scale.

Paper datasets → our substitutes (see DESIGN.md §2):

====================== =============================================
roadNet-PA (1.09M/3.08M)  ``road-pa``: thinned Delaunay, avg deg ≈ 2.8
roadNet-TX (1.39M/3.84M)  ``road-tx``: same family, different size/seed
web-NotreDame (325k/2.2M) ``web-nd``: Barabási–Albert, lower attachment
web-Stanford (281k/3.98M) ``web-st``: Barabási–Albert, higher attachment
2D grid (1M/2M)           ``grid2d``
3D grid (1M/5.94M)        ``grid3d``
====================== =============================================

Weighted variants assign U{1..10^4} integer weights (§5.1) with a seed
derived from the scale seed, identical across experiments — the paper uses
the same sources and weights throughout.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..graphs.csr import CSRGraph
from ..graphs.generators import grid_2d, grid_3d, road_network, scale_free
from ..graphs.weights import random_integer_weights
from .config import ScaleConfig

__all__ = ["Dataset", "DATASET_NAMES", "make_dataset", "make_all_datasets"]

DATASET_NAMES: tuple[str, ...] = (
    "road-pa",
    "road-tx",
    "web-nd",
    "web-st",
    "grid2d",
    "grid3d",
)

#: Display names matching the paper's table headers.
PAPER_NAMES: dict[str, str] = {
    "road-pa": "Road map of Pennsylvania (synthetic)",
    "road-tx": "Road map of Texas (synthetic)",
    "web-nd": "Webgraph of Notre Dame (synthetic)",
    "web-st": "Webgraph of Stanford (synthetic)",
    "grid2d": "2D-grid",
    "grid3d": "3D-grid",
}


@dataclass
class Dataset:
    """One named evaluation graph, unweighted + weighted variants."""

    name: str
    unweighted: CSRGraph
    weighted: CSRGraph

    @property
    def n(self) -> int:
        return self.unweighted.n

    @property
    def m(self) -> int:
        return self.unweighted.m


def make_dataset(name: str, scale: ScaleConfig) -> Dataset:
    """Build one dataset deterministically from the scale preset."""
    seed = scale.seed
    if name == "road-pa":
        g, _ = road_network(scale.road_n[0], seed=seed + 1)
    elif name == "road-tx":
        g, _ = road_network(scale.road_n[1], seed=seed + 2)
    elif name == "web-nd":
        g = scale_free(scale.web_n[0], scale.web_attach[0], seed=seed + 3)
    elif name == "web-st":
        g = scale_free(scale.web_n[1], scale.web_attach[1], seed=seed + 4)
    elif name == "grid2d":
        g = grid_2d(scale.grid2d_side, scale.grid2d_side)
    elif name == "grid3d":
        side = scale.grid3d_side
        g = grid_3d(side, side, side)
    else:
        raise ValueError(f"unknown dataset {name!r}; choose from {DATASET_NAMES}")
    weighted = random_integer_weights(g, seed=seed + 97)
    return Dataset(name=name, unweighted=g, weighted=weighted)


def make_all_datasets(
    scale: ScaleConfig, names: tuple[str, ...] = DATASET_NAMES
) -> dict[str, Dataset]:
    """All requested datasets, keyed by name."""
    return {name: make_dataset(name, scale) for name in names}
