"""Command-line experiment runner.

Regenerates every table and figure of the paper's evaluation at a chosen
scale::

    radius-stepping fig4 --scale small
    radius-stepping table2 table3 --scale medium --n-jobs 4
    radius-stepping all --scale tiny

(or ``python -m repro.experiments ...``).  Output is plain text — the same
renderers the benchmark suite and EXPERIMENTS.md use.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Sequence

from ..analysis.tables import render_kv
from .bounds_check import render_bounds, run_bounds_check
from .config import SCALES, get_scale
from .shortcut_edges import render_factor_table, render_fig3, run_shortcut_suite
from .steps import (
    render_reduction_table,
    render_steps_figure,
    render_steps_table,
    run_steps_suite,
)
from .workdepth import render_table1, render_workdepth, run_workdepth

__all__ = ["main", "EXPERIMENTS"]


def _fig1_report(args: argparse.Namespace) -> str:
    """Figure 1: the annuli of one measured Radius-Stepping run."""
    from ..analysis.figure1 import render_annuli
    from ..core.radius_stepping import radius_stepping
    from ..graphs.generators import grid_2d
    from ..graphs.weights import random_integer_weights
    from ..preprocess.pipeline import build_kr_graph

    g = random_integer_weights(grid_2d(24, 24), low=1, high=100, seed=1)
    pre = build_kr_graph(g, k=2, rho=24, heuristic="dp")
    res = radius_stepping(pre.graph, 0, pre.radii, track_trace=True)
    return render_annuli(res.trace)


def _fig2_report(args: argparse.Namespace) -> str:
    """Figure 2: ball search needs Ω(d²) edge scans for ~3d vertices."""
    from ..graphs.generators import figure2_graph
    from ..preprocess.ball import ball_search

    lines = [
        "Figure 2 check: cycle-of-bicliques where reaching rho ~ 3d vertices",
        "scans O(d^2) edges (Lemma 4.2 worst case).",
        "",
        f"{'d':>4} {'rho':>5} {'visited':>8} {'edges_scanned':>14} {'d^2':>7}",
    ]
    for d in (4, 8, 16, 32):
        g = figure2_graph(d)
        rho = 3 * d + 1
        ball = ball_search(g, 0, rho)
        lines.append(
            f"{d:>4} {rho:>5} {len(ball):>8} {ball.edges_scanned:>14} {d * d:>7}"
        )
    return "\n".join(lines)


def _steps_reports(weighted: bool, what: str) -> Callable[[argparse.Namespace], str]:
    def run(args: argparse.Namespace) -> str:
        suite = run_steps_suite(
            args.scale, weighted=weighted, n_jobs=args.n_jobs
        )
        if what == "figure":
            return render_steps_figure(suite)
        if what == "steps":
            return render_steps_table(suite)
        return render_reduction_table(suite)

    return run


def _shortcut_reports(what: str) -> Callable[[argparse.Namespace], str]:
    def run(args: argparse.Namespace) -> str:
        suite = run_shortcut_suite(
            args.scale, with_rounds=(what != "fig3"), n_jobs=args.n_jobs
        )
        if what == "fig3":
            return render_fig3(suite, k=3 if 3 in suite.ks else suite.ks[0])
        return render_factor_table(suite, "greedy" if what == "table2" else "dp")

    return run


def _workdepth_report(args: argparse.Namespace) -> str:
    points = run_workdepth()
    return render_table1() + "\n\n" + render_workdepth(points)


def _bounds_report(args: argparse.Namespace) -> str:
    points = run_bounds_check(args.scale, n_jobs=args.n_jobs)
    return render_bounds(points)


#: experiment name -> report function
EXPERIMENTS: dict[str, Callable[[argparse.Namespace], str]] = {
    "fig1": _fig1_report,
    "fig2": _fig2_report,
    "fig3": _shortcut_reports("fig3"),
    "table2": _shortcut_reports("table2"),
    "table3": _shortcut_reports("table3"),
    "fig4": _steps_reports(weighted=False, what="figure"),
    "table4": _steps_reports(weighted=False, what="steps"),
    "table5": _steps_reports(weighted=False, what="reduction"),
    "fig5": _steps_reports(weighted=True, what="figure"),
    "table6": _steps_reports(weighted=True, what="steps"),
    "table7": _steps_reports(weighted=True, what="reduction"),
    "table1": lambda args: render_table1(),
    "workdepth": _workdepth_report,
    "bounds": _bounds_report,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="radius-stepping",
        description="Regenerate the tables and figures of 'Parallel "
        "Shortest-Paths Using Radius Stepping' (SPAA 2016).",
    )
    parser.add_argument(
        "experiments",
        nargs="+",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="which table/figure to regenerate ('all' runs everything)",
    )
    parser.add_argument(
        "--scale",
        default="small",
        choices=sorted(SCALES),
        help="problem-size preset (default: small)",
    )
    parser.add_argument(
        "--n-jobs",
        type=int,
        default=1,
        help="worker processes for preprocessing (default 1; 0 = all cores)",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    wanted = list(EXPERIMENTS) if "all" in args.experiments else args.experiments
    cfg = get_scale(args.scale)
    print(render_kv(sorted(cfg.describe().items()), title="# configuration"))
    for name in wanted:
        t0 = time.perf_counter()
        print(f"\n===== {name} =====")
        print(EXPERIMENTS[name](args))
        print(f"[{name}: {time.perf_counter() - t0:.1f}s]")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
