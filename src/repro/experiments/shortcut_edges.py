"""Shortcut-edge experiments — Figure 3 and Tables 2/3 (§5.2).

How many edges do the greedy and DP heuristics add to make each graph a
(k,ρ)-graph?  The paper uses three representative graphs (roadNet-PA,
web-Stanford, the 2D grid) on the *unweighted* versions ("the performance
of the heuristics is independent of edge weights" — §5.2), sweeping
k ∈ {2..5} and ρ ∈ {10..1000}, reporting added edges as a fraction of m.

Tables 2/3 also carry a "red. rounds" column — the unweighted step
reduction at that ρ (same quantity as Table 5) — reproduced here when
``with_rounds`` is set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..analysis.ascii_plot import loglog_plot
from ..analysis.stats import aggregate_over_sources, pick_sources
from ..analysis.tables import render_table
from ..core.radius_stepping import radius_stepping
from ..preprocess.count import ShortcutCounts, count_shortcuts_sweep
from ..preprocess.radii import compute_radii_sweep
from .config import ScaleConfig, get_scale
from .datasets import Dataset, make_all_datasets

__all__ = [
    "ShortcutSuite",
    "FIG3_DATASETS",
    "run_shortcut_suite",
    "render_factor_table",
    "render_fig3",
]

#: The paper's three representative graphs for this experiment.
FIG3_DATASETS: tuple[str, ...] = ("road-pa", "web-st", "grid2d")


@dataclass
class ShortcutSuite:
    """Edge-factor sweep results for several datasets."""

    ks: tuple[int, ...]
    rhos: tuple[int, ...]
    counts: dict[str, ShortcutCounts]
    rounds_reduction: dict[str, dict[int, float]]  # dataset -> rho -> factor

    def factor(self, dataset: str, heuristic: str, k: int, rho: int) -> float:
        """Added-edge factor (added / m) for one configuration."""
        return self.counts[dataset].factor(heuristic, k, rho)


def _rounds_reduction(
    dataset: Dataset, rhos: Sequence[int], num_sources: int, seed: int, n_jobs: int
) -> dict[int, float]:
    """Unweighted step-reduction factors vs ρ=1 (the "red. rounds" column)."""
    graph = dataset.unweighted
    sweep = tuple(sorted({1, *map(int, rhos)}))
    radii_by_rho = compute_radii_sweep(graph, sweep, n_jobs=n_jobs)
    sources = pick_sources(graph.n, num_sources, seed=seed)
    means: dict[int, float] = {}
    for rho in sweep:
        radii = radii_by_rho[rho]
        means[rho] = aggregate_over_sources(
            graph, lambda g, s: radius_stepping(g, s, radii), sources
        ).mean_steps
    base = means[1]
    return {rho: (base / means[rho] if means[rho] else float("inf")) for rho in rhos}


def run_shortcut_suite(
    scale: ScaleConfig | str,
    *,
    datasets: Sequence[str] = FIG3_DATASETS,
    ks: Sequence[int] | None = None,
    rhos: Sequence[int] | None = None,
    heuristics: Sequence[str] = ("greedy", "dp"),
    with_rounds: bool = True,
    n_jobs: int = 1,
) -> ShortcutSuite:
    """Run the Figure 3 / Tables 2–3 sweep at the given scale."""
    cfg = get_scale(scale) if isinstance(scale, str) else scale
    ks = tuple(ks) if ks is not None else cfg.shortcut_ks
    rhos = tuple(rhos) if rhos is not None else cfg.shortcut_rhos
    data = make_all_datasets(cfg, tuple(datasets))
    counts: dict[str, ShortcutCounts] = {}
    rounds: dict[str, dict[int, float]] = {}
    for name, ds in data.items():
        counts[name] = count_shortcuts_sweep(
            ds.unweighted,
            ks=ks,
            rhos=rhos,
            heuristics=heuristics,
            num_sources=cfg.shortcut_sources,
            seed=cfg.seed,
            n_jobs=n_jobs,
        )
        if with_rounds:
            rounds[name] = _rounds_reduction(
                ds, rhos, cfg.num_sources, cfg.seed, n_jobs
            )
    return ShortcutSuite(ks=ks, rhos=rhos, counts=counts, rounds_reduction=rounds)


def render_factor_table(suite: ShortcutSuite, heuristic: str) -> str:
    """Table 2 (greedy) / Table 3 (DP): factors per dataset, k, and ρ."""
    blocks: list[str] = []
    which = {"greedy": "Table 2 (greedy heuristic)", "dp": "Table 3 (DP heuristic)"}
    title = which.get(heuristic, f"Shortcut factors ({heuristic})")
    for name, counts in suite.counts.items():
        headers = ["rho"] + [f"k={k}" for k in suite.ks]
        has_rounds = name in suite.rounds_reduction
        if has_rounds:
            headers.append("red. rounds")
        rows = []
        for rho in suite.rhos:
            row: list[object] = [str(rho)]
            row += [counts.factor(heuristic, k, rho) for k in suite.ks]
            if has_rounds:
                row.append(suite.rounds_reduction[name][rho])
            rows.append(row)
        blocks.append(
            render_table(
                headers,
                rows,
                title=f"{title} — {name} "
                f"(n={counts.n}, m={counts.m}, {counts.num_sources} sources)",
            )
        )
    return "\n\n".join(blocks)


def render_fig3(suite: ShortcutSuite, *, k: int = 3) -> str:
    """Figure 3: greedy-vs-DP added-edge factor at k=3, log-log in ρ."""
    blocks: list[str] = []
    for name, counts in suite.counts.items():
        if k not in suite.ks:
            raise ValueError(f"k={k} not in the sweep {suite.ks}")
        series = {
            h: [(rho, counts.factor(h, k, rho)) for rho in suite.rhos]
            for h in counts.totals
        }
        blocks.append(
            loglog_plot(
                series,
                title=f"Figure 3 — {name}: factor of additional edges (k={k})",
                ylabel="factor",
            )
        )
    return "\n\n".join(blocks)
