"""Step-count experiments — Figures 4/5 and Tables 4/5/6/7 (§5.3).

For each dataset and each ρ, run Radius-Stepping with radii ``r_ρ(·)``
from a seeded source sample and report the mean number of steps.  Key
facts this driver exploits (both §5.3):

* "the number of steps is independent of k and is only affected by ρ" —
  shortcuts never change distances or the d_i sequence, so no shortcut
  materialization is needed here, only radii;
* ρ = 1 gives the baselines for the reduction tables: BFS rounds
  (unweighted, Table 5) and batched Dijkstra (weighted, Table 7) — both
  are Radius-Stepping with r ≡ 0, which is exactly r_1 under the paper's
  self-counting convention.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..analysis.ascii_plot import loglog_plot
from ..analysis.stats import StepStats, aggregate_over_sources, pick_sources
from ..analysis.tables import render_table
from ..core.bfs import bfs
from ..core.radius_stepping import radius_stepping
from ..preprocess.radii import compute_radii_sweep
from .config import ScaleConfig, get_scale
from .datasets import DATASET_NAMES, Dataset, make_all_datasets

__all__ = [
    "DatasetSteps",
    "StepsSuite",
    "run_steps_for_dataset",
    "run_steps_suite",
    "render_steps_table",
    "render_reduction_table",
    "render_steps_figure",
]

#: Figure panel grouping, as in the paper: (a) road maps, (b) webgraphs,
#: (c) grids.
PANELS: tuple[tuple[str, tuple[str, str]], ...] = (
    ("Road maps", ("road-pa", "road-tx")),
    ("Webgraphs", ("web-nd", "web-st")),
    ("Grids", ("grid2d", "grid3d")),
)


@dataclass
class DatasetSteps:
    """Mean step counts for one dataset across the ρ-sweep."""

    name: str
    n: int
    m: int
    weighted: bool
    rhos: tuple[int, ...]
    stats: dict[int, StepStats]
    bfs_rounds: float | None = None  # unweighted cross-check

    def mean_steps(self, rho: int) -> float:
        return self.stats[rho].mean_steps

    def reduction(self, rho: int) -> float:
        """Step-reduction factor vs ρ=1 (Tables 5 and 7)."""
        base = self.mean_steps(min(self.rhos))
        cur = self.mean_steps(rho)
        return base / cur if cur else float("inf")


@dataclass
class StepsSuite:
    """All datasets for one weighted/unweighted experiment."""

    weighted: bool
    rhos: tuple[int, ...]
    num_sources: int
    results: dict[str, DatasetSteps]


def run_steps_for_dataset(
    dataset: Dataset,
    rhos: Sequence[int],
    num_sources: int,
    *,
    weighted: bool,
    seed: int = 0,
    n_jobs: int = 1,
) -> DatasetSteps:
    """Radii sweep + multi-source step statistics for one dataset."""
    graph = dataset.weighted if weighted else dataset.unweighted
    rhos = tuple(sorted(set(int(r) for r in rhos)))
    radii_by_rho = compute_radii_sweep(graph, rhos, n_jobs=n_jobs)
    sources = pick_sources(graph.n, num_sources, seed=seed)
    stats: dict[int, StepStats] = {}
    for rho in rhos:
        radii = radii_by_rho[rho]
        stats[rho] = aggregate_over_sources(
            graph, lambda g, s: radius_stepping(g, s, radii), sources
        )
    bfs_rounds = None
    if not weighted:
        bfs_rounds = float(np.mean([bfs(graph, int(s)).steps for s in sources]))
    return DatasetSteps(
        name=dataset.name,
        n=graph.n,
        m=graph.m,
        weighted=weighted,
        rhos=rhos,
        stats=stats,
        bfs_rounds=bfs_rounds,
    )


def run_steps_suite(
    scale: ScaleConfig | str,
    *,
    weighted: bool,
    datasets: Sequence[str] = DATASET_NAMES,
    rhos: Sequence[int] | None = None,
    num_sources: int | None = None,
    n_jobs: int = 1,
) -> StepsSuite:
    """Run the full Figure 4 (unweighted) or Figure 5 (weighted) suite."""
    cfg = get_scale(scale) if isinstance(scale, str) else scale
    rhos = tuple(rhos) if rhos is not None else cfg.steps_rhos
    num_sources = num_sources if num_sources is not None else cfg.num_sources
    data = make_all_datasets(cfg, tuple(datasets))
    results = {
        name: run_steps_for_dataset(
            ds, rhos, num_sources, weighted=weighted, seed=cfg.seed, n_jobs=n_jobs
        )
        for name, ds in data.items()
    }
    return StepsSuite(
        weighted=weighted,
        rhos=tuple(sorted(set(int(r) for r in rhos))),
        num_sources=num_sources,
        results=results,
    )


def render_steps_table(suite: StepsSuite) -> str:
    """Table 4 (unweighted) / Table 6 (weighted): mean rounds per ρ."""
    names = list(suite.results)
    headers = ["rho"] + names
    size_rows = [
        ["vertices"] + [f"{suite.results[n].n}" for n in names],
        ["edges"] + [f"{suite.results[n].m}" for n in names],
    ]
    rows = size_rows + [
        [str(rho)] + [suite.results[n].mean_steps(rho) for n in names]
        for rho in suite.rhos
    ]
    which = "6 (weighted)" if suite.weighted else "4 (unweighted)"
    return render_table(
        headers,
        rows,
        title=f"Table {which}: average Radius-Stepping rounds vs rho "
        f"({suite.num_sources} sources)",
    )


def render_reduction_table(suite: StepsSuite) -> str:
    """Table 5 / Table 7: reduction factor vs ρ=1."""
    names = list(suite.results)
    headers = ["rho"] + names
    rows = [
        [str(rho)] + [suite.results[n].reduction(rho) for n in names]
        for rho in suite.rhos
        if rho > min(suite.rhos)
    ]
    which = "7 (vs Dijkstra)" if suite.weighted else "5 (vs BFS)"
    return render_table(
        headers, rows, title=f"Table {which}: round-reduction factor vs rho=1"
    )


def render_steps_figure(suite: StepsSuite) -> str:
    """Figure 4 / Figure 5: three log-log panels of steps vs ρ."""
    blocks: list[str] = []
    fig = "Figure 5 (weighted)" if suite.weighted else "Figure 4 (unweighted)"
    for panel_name, names in PANELS:
        series = {
            name: [
                (rho, suite.results[name].mean_steps(rho)) for rho in suite.rhos
            ]
            for name in names
            if name in suite.results
        }
        if not series:
            continue
        blocks.append(
            loglog_plot(
                series,
                title=f"{fig} — {panel_name}",
                ylabel="avg steps",
            )
        )
    return "\n\n".join(blocks)
