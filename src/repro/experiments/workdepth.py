"""Work/depth measurements — the executable version of Table 1.

The paper's Table 1 is analytic.  Here we *measure* the PRAM costs the
BST engine charges to a ledger and check they track Theorem 1.1:

* work / (m log n) stays bounded as the graph grows (work-efficiency up
  to the log factor), and
* depth / ((n/ρ) log n log ρL) stays bounded as ρ varies (the depth
  trade-off that gives the parallelism knob).

Also reports the paper's Table 1 rows verbatim for context.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..analysis.tables import render_table
from ..analysis.theory import (
    TABLE1_ROWS,
    radius_stepping_depth,
    radius_stepping_work,
)
from ..core.radius_stepping_bst import radius_stepping_bst
from ..graphs.generators import grid_2d
from ..graphs.weights import random_integer_weights
from ..pram.ledger import Ledger
from ..preprocess.pipeline import build_kr_graph

__all__ = ["WorkDepthPoint", "run_workdepth", "render_workdepth", "render_table1"]


@dataclass
class WorkDepthPoint:
    """Measured vs theoretical costs for one (graph size, ρ) point."""

    n: int
    m: int
    rho: int
    k: int
    L: float
    work: float
    depth: float

    @property
    def work_ratio(self) -> float:
        """measured work / (k m log n) — should stay O(1) across sizes."""
        return self.work / radius_stepping_work(self.n, self.m, self.k)

    @property
    def depth_ratio(self) -> float:
        """measured depth / (k (n/ρ) log n log ρL) — should stay O(1)."""
        return self.depth / radius_stepping_depth(self.n, self.rho, self.L, self.k)


def run_workdepth(
    *,
    sides: Sequence[int] = (8, 12, 16, 24),
    rhos: Sequence[int] = (4, 8, 16),
    k: int = 2,
    weight_high: int = 100,
    source: int = 0,
    seed: int = 0,
) -> list[WorkDepthPoint]:
    """Measure ledger costs of the BST engine on preprocessed 2D grids.

    Grids keep the sweep deterministic and connected at every size; the
    BST engine is the one whose per-operation charges implement the
    Section 3.3 accounting.
    """
    points: list[WorkDepthPoint] = []
    for side in sides:
        g = random_integer_weights(
            grid_2d(side, side), low=1, high=weight_high, seed=seed
        )
        for rho in rhos:
            if rho > g.n:
                continue
            pre = build_kr_graph(g, k, rho, heuristic="dp")
            ledger = Ledger()
            res = radius_stepping_bst(pre.graph, source, pre.radii, ledger=ledger)
            assert np.isfinite(res.dist).all(), "grid must be fully reachable"
            points.append(
                WorkDepthPoint(
                    n=pre.graph.n,
                    m=pre.graph.m,
                    rho=rho,
                    k=k,
                    L=pre.graph.max_weight,
                    work=ledger.work,
                    depth=ledger.depth,
                )
            )
    return points


def render_workdepth(points: Sequence[WorkDepthPoint]) -> str:
    """Measured-vs-bound table; the ratio columns are the deliverable."""
    headers = [
        "n",
        "m",
        "rho",
        "work",
        "depth",
        "work/(km log n)",
        "depth/(k(n/p)log n log pL)",
    ]
    rows = [
        [
            str(p.n),
            str(p.m),
            str(p.rho),
            p.work,
            p.depth,
            p.work_ratio,
            p.depth_ratio,
        ]
        for p in points
    ]
    return render_table(
        headers,
        rows,
        title="Measured PRAM ledger costs of the Algorithm-2 engine vs "
        "Theorem 1.1 bounds (ratios should stay O(1))",
    )


def render_table1() -> str:
    """The paper's Table 1, reproduced as a reference report."""
    headers = ["Setting", "Algorithm", "Work", "Depth", "Parameters"]
    rows = [
        [r.setting, r.algorithm, r.work, r.depth, r.parameters]
        for r in TABLE1_ROWS
    ]
    return render_table(
        headers, rows, title="Table 1: work/depth bounds for exact SSSP (from the paper)"
    )
