"""Graph substrate: CSR kernel, builders, generators, weights, and I/O."""

from .csr import CSRGraph
from .build import (
    add_shortcuts,
    connected_components,
    from_adjacency,
    from_arc_arrays,
    from_edge_list,
    induced_subgraph,
    is_connected,
    largest_connected_component,
    reweighted,
)
from .validate import (
    GraphValidationError,
    check_min_weight_normalized,
    normalize_weights,
    validate_graph,
)
from .weights import (
    PAPER_WEIGHT_HIGH,
    PAPER_WEIGHT_LOW,
    euclidean_weights,
    random_integer_weights,
    uniform_weights,
    unit_weights,
)
from . import generators
from .io import load_snap_graph, read_edge_list, write_edge_list

__all__ = [
    "CSRGraph",
    "GraphValidationError",
    "PAPER_WEIGHT_HIGH",
    "PAPER_WEIGHT_LOW",
    "add_shortcuts",
    "check_min_weight_normalized",
    "connected_components",
    "euclidean_weights",
    "from_adjacency",
    "from_arc_arrays",
    "from_edge_list",
    "generators",
    "induced_subgraph",
    "is_connected",
    "largest_connected_component",
    "load_snap_graph",
    "normalize_weights",
    "random_integer_weights",
    "read_edge_list",
    "reweighted",
    "unit_weights",
    "uniform_weights",
    "validate_graph",
    "write_edge_list",
]
