"""Graph substrate: CSR kernel, builders, generators, weights, and I/O."""

from .csr import CSRGraph
from .build import (
    add_shortcuts,
    connected_components,
    from_adjacency,
    from_arc_arrays,
    from_edge_list,
    induced_subgraph,
    is_connected,
    largest_connected_component,
    reweighted,
)
from .validate import (
    GraphValidationError,
    check_min_weight_normalized,
    normalize_weights,
    validate_graph,
)
from .weights import (
    PAPER_WEIGHT_HIGH,
    PAPER_WEIGHT_LOW,
    euclidean_weights,
    random_integer_weights,
    uniform_weights,
    unit_weights,
)
from .transform import (
    permute_vertices,
    random_permutation,
    reverse_graph,
    scale_weights,
    to_bidirected,
)
from .reorder import (
    available_orderings,
    compute_ordering,
    inverse_permutation,
    mean_neighbor_gap,
    register_ordering,
    reorder_graph,
)
from .partition import (
    Partition,
    available_partitioners,
    compute_partition,
    register_partitioner,
)
from . import generators
from .io import load_snap_graph, read_edge_list, write_edge_list

__all__ = [
    "CSRGraph",
    "Partition",
    "GraphValidationError",
    "PAPER_WEIGHT_HIGH",
    "PAPER_WEIGHT_LOW",
    "add_shortcuts",
    "available_orderings",
    "available_partitioners",
    "check_min_weight_normalized",
    "compute_ordering",
    "compute_partition",
    "connected_components",
    "euclidean_weights",
    "from_adjacency",
    "from_arc_arrays",
    "from_edge_list",
    "generators",
    "induced_subgraph",
    "inverse_permutation",
    "is_connected",
    "largest_connected_component",
    "load_snap_graph",
    "mean_neighbor_gap",
    "normalize_weights",
    "permute_vertices",
    "random_integer_weights",
    "random_permutation",
    "read_edge_list",
    "register_ordering",
    "register_partitioner",
    "reorder_graph",
    "reverse_graph",
    "reweighted",
    "scale_weights",
    "to_bidirected",
    "unit_weights",
    "uniform_weights",
    "validate_graph",
    "write_edge_list",
]
