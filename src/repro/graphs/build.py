"""Graph construction and transformation helpers.

All constructors produce validated, simple, undirected
:class:`~repro.graphs.csr.CSRGraph` objects.  Duplicate edges are collapsed
keeping the minimum weight (the only weight that can ever matter for
shortest paths), which is also exactly what the paper's shortcut insertion
needs: a shortcut ``(u, v, d(u, v))`` never exceeds an existing edge weight
unless the existing edge is already the shortest path.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

import numpy as np

from .csr import CSRGraph

__all__ = [
    "from_edge_list",
    "from_arc_arrays",
    "from_adjacency",
    "add_shortcuts",
    "reweighted",
    "connected_components",
    "largest_connected_component",
    "induced_subgraph",
    "is_connected",
]


def _dedup_min(us: np.ndarray, vs: np.ndarray, ws: np.ndarray):
    """Collapse duplicate (u, v) arcs keeping the minimum weight."""
    if len(us) == 0:
        return us, vs, ws
    order = np.lexsort((ws, vs, us))
    us, vs, ws = us[order], vs[order], ws[order]
    first = np.ones(len(us), dtype=bool)
    first[1:] = (us[1:] != us[:-1]) | (vs[1:] != vs[:-1])
    return us[first], vs[first], ws[first]


def from_arc_arrays(
    n: int,
    us: np.ndarray,
    vs: np.ndarray,
    ws: np.ndarray | None = None,
    *,
    symmetrize: bool = True,
    validate: bool = True,
) -> CSRGraph:
    """Build a graph from parallel arc arrays.

    Parameters
    ----------
    n: number of vertices (ids must be in ``[0, n)``).
    us, vs: arc tail / head arrays.  Self loops are dropped.
    ws: arc weights; defaults to all ones (unweighted).
    symmetrize: also insert the reversed arcs (callers passing an already
        symmetric arc list may set ``False``).
    """
    us = np.asarray(us, dtype=np.int64)
    vs = np.asarray(vs, dtype=np.int64)
    if ws is None:
        ws = np.ones(len(us), dtype=np.float64)
    ws = np.asarray(ws, dtype=np.float64)
    if not (len(us) == len(vs) == len(ws)):
        raise ValueError("us, vs, ws must have equal length")
    keep = us != vs  # drop self loops
    us, vs, ws = us[keep], vs[keep], ws[keep]
    if symmetrize:
        us, vs, ws = (
            np.concatenate([us, vs]),
            np.concatenate([vs, us]),
            np.concatenate([ws, ws]),
        )
    us, vs, ws = _dedup_min(us, vs, ws)
    counts = np.bincount(us, minlength=n).astype(np.int64)
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    # us is sorted, so vs/ws are already grouped by tail in CSR order.
    return CSRGraph(indptr, vs, ws, validate=validate)


def from_edge_list(
    n: int,
    edges: Iterable[tuple] | Sequence[tuple],
    *,
    validate: bool = True,
) -> CSRGraph:
    """Build from an iterable of ``(u, v)`` or ``(u, v, w)`` tuples."""
    edges = list(edges)
    if not edges:
        return CSRGraph(
            np.zeros(n + 1, dtype=np.int64),
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.float64),
            validate=validate,
        )
    us = np.array([e[0] for e in edges], dtype=np.int64)
    vs = np.array([e[1] for e in edges], dtype=np.int64)
    if len(edges[0]) >= 3:
        ws = np.array([e[2] for e in edges], dtype=np.float64)
    else:
        ws = None
    return from_arc_arrays(n, us, vs, ws, validate=validate)


def from_adjacency(adj: Mapping[int, Mapping[int, float] | Iterable[int]]) -> CSRGraph:
    """Build from ``{u: {v: w}}`` or ``{u: [v, ...]}`` adjacency mappings."""
    n = 0
    edges: list[tuple[int, int, float]] = []
    for u, nbrs in adj.items():
        n = max(n, u + 1)
        if isinstance(nbrs, Mapping):
            for v, w in nbrs.items():
                n = max(n, v + 1)
                edges.append((u, v, float(w)))
        else:
            for v in nbrs:
                n = max(n, v + 1)
                edges.append((u, v, 1.0))
    return from_edge_list(n, edges)


def add_shortcuts(
    graph: CSRGraph,
    src: np.ndarray,
    dst: np.ndarray,
    w: np.ndarray,
    *,
    validate: bool = False,
) -> CSRGraph:
    """Return ``graph`` plus the undirected shortcut edges ``(src, dst, w)``.

    Shortcut weights are exact shortest-path distances, so merging with
    min-weight dedup preserves every pairwise distance (a shortcut can never
    shorten a path below the true distance).  Used by the preprocessing
    pipeline of Section 4.
    """
    src = np.asarray(src, dtype=np.int64)
    dst = np.asarray(dst, dtype=np.int64)
    w = np.asarray(w, dtype=np.float64)
    tails = np.repeat(np.arange(graph.n, dtype=np.int64), graph.degrees())
    us = np.concatenate([tails, src, dst])
    vs = np.concatenate([graph.indices, dst, src])
    ws = np.concatenate([graph.weights, w, w])
    return from_arc_arrays(graph.n, us, vs, ws, symmetrize=False, validate=validate)


def reweighted(graph: CSRGraph, weights: np.ndarray) -> CSRGraph:
    """Same topology, new arc weights (must be symmetric per edge)."""
    return CSRGraph(graph.indptr, graph.indices, weights, validate=True)


def connected_components(graph: CSRGraph) -> np.ndarray:
    """Label array: ``labels[v]`` is the component id of ``v`` (0-based,
    in order of discovery).  Iterative frontier BFS — no recursion."""
    n = graph.n
    labels = np.full(n, -1, dtype=np.int64)
    comp = 0
    for seed in range(n):
        if labels[seed] >= 0:
            continue
        labels[seed] = comp
        frontier = np.array([seed], dtype=np.int64)
        while len(frontier):
            starts = graph.indptr[frontier]
            ends = graph.indptr[frontier + 1]
            total = int((ends - starts).sum())
            if total == 0:
                break
            nbrs = np.empty(total, dtype=np.int64)
            pos = 0
            for s, e in zip(starts, ends):
                nbrs[pos : pos + (e - s)] = graph.indices[s:e]
                pos += e - s
            fresh = nbrs[labels[nbrs] < 0]
            if len(fresh) == 0:
                break
            fresh = np.unique(fresh)
            labels[fresh] = comp
            frontier = fresh
        comp += 1
    return labels


def is_connected(graph: CSRGraph) -> bool:
    """True when the graph has exactly one connected component."""
    if graph.n == 0:
        return True
    labels = connected_components(graph)
    return bool(labels.max() == 0)


def induced_subgraph(graph: CSRGraph, vertices: np.ndarray) -> tuple[CSRGraph, np.ndarray]:
    """Subgraph induced by ``vertices``.

    Returns ``(subgraph, original_ids)`` where ``original_ids[i]`` is the
    original label of new vertex ``i``.
    """
    vertices = np.unique(np.asarray(vertices, dtype=np.int64))
    remap = np.full(graph.n, -1, dtype=np.int64)
    remap[vertices] = np.arange(len(vertices), dtype=np.int64)
    tails = np.repeat(np.arange(graph.n, dtype=np.int64), graph.degrees())
    keep = (remap[tails] >= 0) & (remap[graph.indices] >= 0)
    sub = from_arc_arrays(
        len(vertices),
        remap[tails[keep]],
        remap[graph.indices[keep]],
        graph.weights[keep],
        symmetrize=False,
        validate=False,
    )
    return sub, vertices


def largest_connected_component(graph: CSRGraph) -> tuple[CSRGraph, np.ndarray]:
    """Restrict to the largest connected component (paper WLOG: connected).

    Returns ``(subgraph, original_ids)``.
    """
    labels = connected_components(graph)
    if graph.n == 0:
        return graph, np.empty(0, dtype=np.int64)
    big = np.bincount(labels).argmax()
    return induced_subgraph(graph, np.flatnonzero(labels == big))
