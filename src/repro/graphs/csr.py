"""Compressed-sparse-row (CSR) graph kernel.

Every graph in this library is an undirected, simple, weighted graph stored
in CSR form: for each vertex ``u`` the arcs ``(u, v, w)`` occupy the slice
``indptr[u]:indptr[u+1]`` of the ``indices`` / ``weights`` arrays.  An
undirected edge ``{u, v}`` is stored as the two arcs ``(u, v)`` and
``(v, u)`` with identical weight, so ``len(indices) == 2 * m``.

The CSR layout is the cache-friendly, vectorizable representation the
hpc-parallel guides call for: neighbor scans are contiguous reads, and the
solvers gather whole frontier adjacency blocks with NumPy fancy indexing
instead of per-edge Python loops.
"""

from __future__ import annotations

import hashlib
from typing import Iterator, Tuple

import numpy as np

__all__ = ["CSRGraph"]


class CSRGraph:
    """An immutable undirected weighted graph in CSR form.

    Parameters
    ----------
    indptr:
        ``int64`` array of length ``n + 1``; monotone, ``indptr[0] == 0``.
    indices:
        ``int64`` array of arc heads, length ``indptr[-1]``.
    weights:
        ``float64`` array of arc weights, same length as ``indices``.
        Weights must be non-negative (SSSP with non-negative weights).
    validate:
        When true (default) run structural validation.  Construction from
        trusted internal code may pass ``False`` to skip the O(m) checks.

    Notes
    -----
    The arrays are stored read-only; use :mod:`repro.graphs.build` helpers
    to derive modified graphs (e.g. adding shortcut edges).
    """

    __slots__ = (
        "indptr",
        "indices",
        "weights",
        "_min_pos_weight",
        "_max_weight",
        "_is_unweighted",
        "_content_hash",
        "__weakref__",  # id-keyed caches evict via weakref.finalize
    )

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        weights: np.ndarray,
        *,
        validate: bool = True,
    ) -> None:
        indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        indices = np.ascontiguousarray(indices, dtype=np.int64)
        weights = np.ascontiguousarray(weights, dtype=np.float64)
        if validate:
            from .validate import validate_csr_arrays

            validate_csr_arrays(indptr, indices, weights)
        for arr in (indptr, indices, weights):
            arr.setflags(write=False)
        self.indptr = indptr
        self.indices = indices
        self.weights = weights
        self._min_pos_weight: float | None = None
        self._max_weight: float | None = None
        self._is_unweighted: bool | None = None
        self._content_hash: str | None = None

    # ------------------------------------------------------------------ #
    # Size properties
    # ------------------------------------------------------------------ #
    @property
    def n(self) -> int:
        """Number of vertices."""
        return len(self.indptr) - 1

    @property
    def num_arcs(self) -> int:
        """Number of directed arcs stored (``2 m`` for an undirected graph)."""
        return len(self.indices)

    @property
    def m(self) -> int:
        """Number of undirected edges."""
        return self.num_arcs // 2

    # ------------------------------------------------------------------ #
    # Weight summaries (paper conventions: min nonzero weight 1, L = max)
    # ------------------------------------------------------------------ #
    @property
    def min_positive_weight(self) -> float:
        """Smallest strictly positive edge weight (``inf`` if none)."""
        if self._min_pos_weight is None:
            pos = self.weights[self.weights > 0]
            self._min_pos_weight = float(pos.min()) if len(pos) else float("inf")
        return self._min_pos_weight

    @property
    def max_weight(self) -> float:
        """Largest edge weight — the paper's ``L`` (0.0 for an edgeless graph)."""
        if self._max_weight is None:
            self._max_weight = float(self.weights.max()) if len(self.weights) else 0.0
        return self._max_weight

    @property
    def is_unweighted(self) -> bool:
        """True when every edge has weight exactly 1.

        Cached after the first access: the graph is immutable and
        ``solve(engine="auto")`` consults this per query, so the O(m)
        scan must not repeat.
        """
        if self._is_unweighted is None:
            self._is_unweighted = bool(
                len(self.weights) == 0 or np.all(self.weights == 1.0)
            )
        return self._is_unweighted

    # ------------------------------------------------------------------ #
    # Identity
    # ------------------------------------------------------------------ #
    def content_hash(self) -> str:
        """Stable hex digest of the graph's content.

        Two graphs hash equal iff their CSR arrays are byte-identical
        (same vertices, edges, ordering and weights) — the identity key
        the serving layer uses to pair preprocessing artifacts and
        cached query results with the graph they were computed on.
        Cached after the first call: the arrays are immutable and the
        O(n + m) digest must not repeat per query.
        """
        if self._content_hash is None:
            h = hashlib.blake2b(digest_size=16)
            h.update(np.int64(self.n).tobytes())
            h.update(self.indptr.tobytes())
            h.update(self.indices.tobytes())
            h.update(self.weights.tobytes())
            self._content_hash = h.hexdigest()
        return self._content_hash

    # ------------------------------------------------------------------ #
    # Local structure
    # ------------------------------------------------------------------ #
    def degree(self, u: int) -> int:
        """Degree of vertex ``u``."""
        return int(self.indptr[u + 1] - self.indptr[u])

    def degrees(self) -> np.ndarray:
        """Array of all vertex degrees."""
        return np.diff(self.indptr)

    def neighbors(self, u: int) -> np.ndarray:
        """Read-only view of the neighbor ids of ``u``."""
        return self.indices[self.indptr[u] : self.indptr[u + 1]]

    def neighbor_weights(self, u: int) -> np.ndarray:
        """Read-only view of the arc weights out of ``u`` (parallel to
        :meth:`neighbors`)."""
        return self.weights[self.indptr[u] : self.indptr[u + 1]]

    def has_edge(self, u: int, v: int) -> bool:
        """True when the undirected edge ``{u, v}`` exists."""
        return bool(np.any(self.neighbors(u) == v))

    def edge_weight(self, u: int, v: int) -> float:
        """Weight of edge ``{u, v}``; raises ``KeyError`` if absent.

        If parallel arcs exist (they should not on a validated graph) the
        minimum weight is returned.
        """
        nbrs = self.neighbors(u)
        hit = nbrs == v
        if not hit.any():
            raise KeyError(f"no edge ({u}, {v})")
        return float(self.neighbor_weights(u)[hit].min())

    # ------------------------------------------------------------------ #
    # Iteration / export
    # ------------------------------------------------------------------ #
    def iter_edges(self) -> Iterator[Tuple[int, int, float]]:
        """Yield each undirected edge once as ``(u, v, w)`` with ``u < v``."""
        for u in range(self.n):
            lo, hi = self.indptr[u], self.indptr[u + 1]
            for j in range(lo, hi):
                v = int(self.indices[j])
                if u < v:
                    yield u, v, float(self.weights[j])

    def edge_array(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Vectorized export: arrays ``(us, vs, ws)`` with ``us < vs``,
        one entry per undirected edge."""
        tails = np.repeat(np.arange(self.n, dtype=np.int64), self.degrees())
        keep = tails < self.indices
        return tails[keep], self.indices[keep], self.weights[keep]

    def memory_bytes(self) -> int:
        """Approximate memory footprint of the CSR arrays."""
        return self.indptr.nbytes + self.indices.nbytes + self.weights.nbytes

    # ------------------------------------------------------------------ #
    # Dunder
    # ------------------------------------------------------------------ #
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "unweighted" if self.is_unweighted else "weighted"
        return f"CSRGraph(n={self.n}, m={self.m}, {kind})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CSRGraph):
            return NotImplemented
        return (
            np.array_equal(self.indptr, other.indptr)
            and np.array_equal(self.indices, other.indices)
            and np.array_equal(self.weights, other.weights)
        )

    def __hash__(self) -> int:  # CSRGraph is immutable; hash on sizes only
        return hash((self.n, self.num_arcs))
