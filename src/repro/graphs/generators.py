"""Deterministic graph generators.

These provide the paper's synthetic workloads (2D/3D grids) and offline
substitutes for its SNAP datasets (road networks, webgraphs) — see
DESIGN.md §2 for the substitution rationale.  All generators are seeded and
return simple undirected unit-weight :class:`CSRGraph` objects; apply a
model from :mod:`repro.graphs.weights` for the weighted experiments.
"""

from __future__ import annotations

import numpy as np

from .csr import CSRGraph
from .build import from_arc_arrays, from_edge_list

__all__ = [
    "path_graph",
    "cycle_graph",
    "star_graph",
    "complete_graph",
    "binary_tree",
    "grid_2d",
    "grid_3d",
    "erdos_renyi",
    "scale_free",
    "small_world",
    "road_network",
    "random_geometric",
    "figure2_graph",
    "greedy_bad_tree",
]


# --------------------------------------------------------------------- #
# Elementary graphs (tests and pathological cases)
# --------------------------------------------------------------------- #
def path_graph(n: int) -> CSRGraph:
    """Path 0 - 1 - ... - (n-1)."""
    if n < 1:
        raise ValueError("n >= 1 required")
    us = np.arange(n - 1, dtype=np.int64)
    return from_arc_arrays(n, us, us + 1)


def cycle_graph(n: int) -> CSRGraph:
    """Cycle on ``n >= 3`` vertices."""
    if n < 3:
        raise ValueError("cycle needs n >= 3")
    us = np.arange(n, dtype=np.int64)
    return from_arc_arrays(n, us, (us + 1) % n)


def star_graph(leaves: int) -> CSRGraph:
    """Star: vertex 0 joined to ``leaves`` leaves."""
    if leaves < 1:
        raise ValueError("leaves >= 1 required")
    vs = np.arange(1, leaves + 1, dtype=np.int64)
    return from_arc_arrays(leaves + 1, np.zeros(leaves, dtype=np.int64), vs)


def complete_graph(n: int) -> CSRGraph:
    """Complete graph K_n."""
    if n < 2:
        raise ValueError("n >= 2 required")
    us, vs = np.triu_indices(n, k=1)
    return from_arc_arrays(n, us.astype(np.int64), vs.astype(np.int64))


def binary_tree(depth: int) -> CSRGraph:
    """Complete binary tree of the given depth (root = 0)."""
    if depth < 0:
        raise ValueError("depth >= 0 required")
    n = 2 ** (depth + 1) - 1
    kids = np.arange(1, n, dtype=np.int64)
    return from_arc_arrays(n, (kids - 1) // 2, kids)


# --------------------------------------------------------------------- #
# The paper's synthetic grids ("structured and unstructured grids")
# --------------------------------------------------------------------- #
def grid_2d(rows: int, cols: int, *, diagonals: bool = False) -> CSRGraph:
    """``rows x cols`` 2D grid (4-neighbor; 8-neighbor with ``diagonals``).

    The paper's "2D-grid" dataset is 1000x1000; pass smaller sides for the
    scaled-down experiments.
    """
    if rows < 1 or cols < 1:
        raise ValueError("rows, cols >= 1 required")
    ids = np.arange(rows * cols, dtype=np.int64).reshape(rows, cols)
    us = [ids[:, :-1].ravel(), ids[:-1, :].ravel()]
    vs = [ids[:, 1:].ravel(), ids[1:, :].ravel()]
    if diagonals:
        us += [ids[:-1, :-1].ravel(), ids[:-1, 1:].ravel()]
        vs += [ids[1:, 1:].ravel(), ids[1:, :-1].ravel()]
    return from_arc_arrays(rows * cols, np.concatenate(us), np.concatenate(vs))


def grid_3d(nx: int, ny: int, nz: int) -> CSRGraph:
    """``nx x ny x nz`` 3D grid, 6-neighbor connectivity."""
    if min(nx, ny, nz) < 1:
        raise ValueError("all sides >= 1 required")
    ids = np.arange(nx * ny * nz, dtype=np.int64).reshape(nx, ny, nz)
    us = [ids[:-1, :, :].ravel(), ids[:, :-1, :].ravel(), ids[:, :, :-1].ravel()]
    vs = [ids[1:, :, :].ravel(), ids[:, 1:, :].ravel(), ids[:, :, 1:].ravel()]
    return from_arc_arrays(nx * ny * nz, np.concatenate(us), np.concatenate(vs))


# --------------------------------------------------------------------- #
# Random models
# --------------------------------------------------------------------- #
def erdos_renyi(n: int, m: int, *, seed: int = 0, connect: bool = True) -> CSRGraph:
    """G(n, m): ``m`` distinct uniform edges; optionally force connectivity
    by first threading a random spanning path (adds < n edges).

    ``m`` is clamped to the simple-graph maximum C(n, 2): asking for more
    edges than can exist returns the complete graph rather than looping
    in rejection sampling forever.  Near the clamp the rejection loop
    degenerates into coupon collecting, so dense requests switch to an
    explicit sample without replacement over edge ids.
    """
    if n < 2:
        raise ValueError("n >= 2 required")
    max_edges = n * (n - 1) // 2
    rng = np.random.default_rng(seed)
    edges: set[tuple[int, int]] = set()
    if connect:
        perm = rng.permutation(n)
        for a, b in zip(perm[:-1], perm[1:]):
            edges.add((min(a, b), max(a, b)))
    target = min(max(m, len(edges)), max_edges)
    if target > max_edges // 2:
        # Dense regime: enumerate the missing pairs and sample directly.
        missing = [
            (a, b)
            for a in range(n)
            for b in range(a + 1, n)
            if (a, b) not in edges
        ]
        take = target - len(edges)
        idx = rng.choice(len(missing), size=take, replace=False)
        edges.update(missing[int(i)] for i in idx)
    else:
        while len(edges) < target:
            batch = rng.integers(0, n, size=(2 * (target - len(edges)) + 8, 2))
            for a, b in batch:
                if a != b:
                    edges.add((min(int(a), int(b)), max(int(a), int(b))))
                if len(edges) >= target:
                    break
    arr = np.array(sorted(edges), dtype=np.int64)
    return from_arc_arrays(n, arr[:, 0], arr[:, 1])


def scale_free(n: int, attach: int = 2, *, seed: int = 0) -> CSRGraph:
    """Barabási–Albert preferential attachment — the webgraph substitute.

    Every new vertex attaches to ``attach`` existing vertices chosen with
    probability proportional to degree (the repeated-endpoints trick).
    Produces the skewed, hub-dominated degree distribution the paper
    attributes the webgraph behaviour to (their ref [1]).
    """
    if n < attach + 1:
        raise ValueError("n must exceed attach")
    if attach < 1:
        raise ValueError("attach >= 1 required")
    rng = np.random.default_rng(seed)
    # Seed clique of (attach + 1) vertices keeps early degrees positive.
    us_l: list[int] = []
    vs_l: list[int] = []
    repeated: list[int] = []
    for i in range(attach + 1):
        for j in range(i + 1, attach + 1):
            us_l.append(i)
            vs_l.append(j)
            repeated += [i, j]
    for v in range(attach + 1, n):
        chosen: set[int] = set()
        while len(chosen) < attach:
            pick = repeated[int(rng.integers(0, len(repeated)))]
            chosen.add(pick)
        for u in chosen:
            us_l.append(u)
            vs_l.append(v)
            repeated += [u, v]
    return from_arc_arrays(
        n, np.array(us_l, dtype=np.int64), np.array(vs_l, dtype=np.int64)
    )


def small_world(n: int, k: int = 4, *, p: float = 0.1, seed: int = 0) -> CSRGraph:
    """Watts–Strogatz small world: ring lattice plus random rewiring.

    Each vertex starts joined to its ``k`` nearest ring neighbours
    (``k`` even, ``k/2`` per side); every lattice edge of offset ≥ 2 is
    rewired with probability ``p`` to a uniform random endpoint.  The
    offset-1 cycle is kept intact (the Newman–Watts-style variant), so
    the graph is always connected — which the (k,ρ)-preprocessing
    pipeline requires.  Rewired duplicates collapse (simple graph), so
    the realized edge count can dip slightly below ``n·k/2``.
    """
    if k < 2 or k % 2 != 0:
        raise ValueError("k must be even and >= 2")
    if n < k + 2:
        raise ValueError("n must exceed k + 1")
    if not (0.0 <= p <= 1.0):
        raise ValueError("p must be in [0, 1]")
    rng = np.random.default_rng(seed)
    ids = np.arange(n, dtype=np.int64)
    edges: set[tuple[int, int]] = set()
    for u, v in zip(ids, (ids + 1) % n):  # the connectivity backbone
        edges.add((min(u, v), max(u, v)))
    for offset in range(2, k // 2 + 1):
        targets = (ids + offset) % n
        rewire = rng.random(n) < p
        targets[rewire] = rng.integers(0, n, size=int(rewire.sum()))
        for u, v in zip(ids, targets):
            if u != v:
                edges.add((min(int(u), int(v)), max(int(u), int(v))))
    arr = np.array(sorted(edges), dtype=np.int64)
    return from_arc_arrays(n, arr[:, 0], arr[:, 1])


def random_geometric(n: int, radius: float, *, seed: int = 0) -> tuple[CSRGraph, np.ndarray]:
    """Random geometric graph on the unit square; returns (graph, coords)."""
    from scipy.spatial import cKDTree

    rng = np.random.default_rng(seed)
    pts = rng.random((n, 2))
    tree = cKDTree(pts)
    pairs = tree.query_pairs(r=radius, output_type="ndarray")
    if len(pairs) == 0:
        raise ValueError("radius too small: no edges")
    g = from_arc_arrays(n, pairs[:, 0].astype(np.int64), pairs[:, 1].astype(np.int64))
    return g, pts


def road_network(
    n: int, *, avg_degree: float = 2.8, seed: int = 0
) -> tuple[CSRGraph, np.ndarray]:
    """Synthetic road map — substitute for SNAP roadNet-PA / roadNet-TX.

    Delaunay triangulation of ``n`` uniform points (planar, avg degree ~6)
    thinned to ``avg_degree`` by keeping a random spanning tree plus random
    extra edges.  Matches the structural profile of real road networks:
    planar, small constant degree (~2.8 in roadNet-PA), hop diameter
    Θ(sqrt(n)).  Returns ``(graph, coords)`` so callers can use Euclidean
    weights.
    """
    from scipy.spatial import Delaunay

    if n < 4:
        raise ValueError("n >= 4 required")
    if avg_degree < 2.0:
        raise ValueError("avg_degree >= 2 needed for connectivity headroom")
    rng = np.random.default_rng(seed)
    pts = rng.random((n, 2))
    tri = Delaunay(pts)
    sims = tri.simplices
    cand = np.concatenate([sims[:, [0, 1]], sims[:, [1, 2]], sims[:, [0, 2]]])
    lo = np.minimum(cand[:, 0], cand[:, 1])
    hi = np.maximum(cand[:, 0], cand[:, 1])
    uniq = np.unique(lo.astype(np.int64) * n + hi.astype(np.int64))
    eu = (uniq // n).astype(np.int64)
    ev = (uniq % n).astype(np.int64)

    # Random spanning tree via union-find over shuffled Delaunay edges.
    order = rng.permutation(len(eu))
    parent = np.arange(n, dtype=np.int64)

    def find(x: int) -> int:
        root = x
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:  # path compression
            parent[x], x = root, parent[x]
        return root

    in_tree = np.zeros(len(eu), dtype=bool)
    joined = 0
    for idx in order:
        ra, rb = find(int(eu[idx])), find(int(ev[idx]))
        if ra != rb:
            parent[ra] = rb
            in_tree[idx] = True
            joined += 1
            if joined == n - 1:
                break
    target_m = int(round(avg_degree * n / 2))
    extra_needed = max(0, target_m - int(in_tree.sum()))
    rest = np.flatnonzero(~in_tree)
    rng.shuffle(rest)
    chosen = np.concatenate([np.flatnonzero(in_tree), rest[:extra_needed]])
    g = from_arc_arrays(n, eu[chosen], ev[chosen])
    return g, pts


# --------------------------------------------------------------------- #
# Pathological constructions from the paper
# --------------------------------------------------------------------- #
def figure2_graph(d: int, *, groups: int | None = None) -> CSRGraph:
    """The paper's Figure 2: a sparse graph where reaching ~3d vertices
    from any vertex forces Ω(d^2) edge inspections.

    Realized as a cycle of ``groups`` vertex groups of size ``d`` with a
    complete bipartite join between consecutive groups: every vertex's
    2-hop ball spans ~3 groups but the search must scan the ~2 d^2 arcs of
    the adjacent bicliques.  With ``d = floor(ρ/3) - 1`` this exhibits the
    O(ρ^2) ball-search work of Lemma 4.2's worst case.
    """
    if d < 1:
        raise ValueError("d >= 1 required")
    if groups is None:
        groups = max(4, d)
    if groups < 3:
        raise ValueError("groups >= 3 required")
    n = groups * d
    block = np.arange(d, dtype=np.int64)
    us_parts = []
    vs_parts = []
    for gidx in range(groups):
        a = gidx * d + block
        b = ((gidx + 1) % groups) * d + block
        uu = np.repeat(a, d)
        vv = np.tile(b, d)
        us_parts.append(uu)
        vs_parts.append(vv)
    return from_arc_arrays(n, np.concatenate(us_parts), np.concatenate(vs_parts))


def greedy_bad_tree(k: int, leaves: int) -> CSRGraph:
    """The §4.2.1 adversarial tree for the greedy heuristic.

    A chain of length ``k`` hangs from the source (vertex 0), and all
    ``leaves`` remaining vertices attach to the chain's end, landing at
    depth ``k+1``.  Greedy shortcuts every leaf (≈ ``leaves`` edges); the
    optimum (found by DP) shortcuts the single chain end (1 edge).
    """
    if k < 1 or leaves < 1:
        raise ValueError("k >= 1 and leaves >= 1 required")
    edges = [(i, i + 1) for i in range(k)]  # chain 0..k
    n = k + 1 + leaves
    edges += [(k, k + 1 + j) for j in range(leaves)]
    return from_edge_list(n, edges)
