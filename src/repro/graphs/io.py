"""SNAP-style edge-list I/O.

The paper's real datasets come from the SNAP collection, distributed as
plain-text edge lists with ``#`` comments.  We cannot download them in this
offline environment, but we keep the format so that anyone *with* the SNAP
files can feed them straight into this reproduction:

    g = read_edge_list("roadNet-PA.txt")

Weighted files carry a third column.
"""

from __future__ import annotations

import gzip
from pathlib import Path
from typing import IO

import numpy as np

from .csr import CSRGraph
from .build import from_arc_arrays, largest_connected_component

__all__ = ["read_edge_list", "write_edge_list", "load_snap_graph"]


def _open(path: str | Path, mode: str) -> IO:
    path = Path(path)
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t")
    return open(path, mode)


def read_edge_list(
    path: str | Path,
    *,
    n: int | None = None,
    comments: str = "#",
) -> CSRGraph:
    """Read a (possibly gzipped) SNAP edge list into a CSR graph.

    Directed inputs are symmetrized (the paper treats all graphs as
    undirected); self loops and duplicates are dropped; vertex ids may be
    arbitrary non-negative ints and are kept as-is unless ``n`` is given,
    in which case ids must be ``< n``.
    """
    us: list[int] = []
    vs: list[int] = []
    ws: list[float] = []
    weighted = False
    with _open(path, "r") as fh:
        for line in fh:
            line = line.strip()
            if not line or line.startswith(comments):
                continue
            parts = line.split()
            if len(parts) < 2:
                raise ValueError(f"malformed edge line: {line!r}")
            us.append(int(parts[0]))
            vs.append(int(parts[1]))
            if len(parts) >= 3:
                weighted = True
                ws.append(float(parts[2]))
            else:
                ws.append(1.0)
    if not us:
        return from_arc_arrays(n or 0, np.empty(0, np.int64), np.empty(0, np.int64))
    ua = np.array(us, dtype=np.int64)
    va = np.array(vs, dtype=np.int64)
    wa = np.array(ws, dtype=np.float64) if weighted else None
    size = n if n is not None else int(max(ua.max(), va.max())) + 1
    return from_arc_arrays(size, ua, va, wa)


def write_edge_list(graph: CSRGraph, path: str | Path, *, weighted: bool | None = None) -> None:
    """Write one line per undirected edge (``u v [w]``), SNAP-compatible."""
    if weighted is None:
        weighted = not graph.is_unweighted
    us, vs, ws = graph.edge_array()
    with _open(path, "w") as fh:
        fh.write(f"# Undirected graph: n={graph.n} m={graph.m}\n")
        fh.write("# FromNodeId\tToNodeId" + ("\tWeight\n" if weighted else "\n"))
        if weighted:
            for u, v, w in zip(us, vs, ws):
                if w == int(w):
                    fh.write(f"{u}\t{v}\t{int(w)}\n")
                else:
                    fh.write(f"{u}\t{v}\t{float(w)!r}\n")
        else:
            for u, v in zip(us, vs):
                fh.write(f"{u}\t{v}\n")


def load_snap_graph(path: str | Path) -> CSRGraph:
    """Read a SNAP file and restrict to the largest connected component,
    exactly the cleanup the paper's experiments assume (connected WLOG)."""
    g = read_edge_list(path)
    lcc, _ = largest_connected_component(g)
    return lcc
