"""Graph partitioning — the shard layer under multi-box serving.

A graph that exceeds one box is served as *shards*: a vertex partition
where each block gets its own (k,ρ)-preprocessing and its own planner,
and cross-shard queries are stitched at the boundary vertices.  The
(k,ρ)-preprocessing of the source paper is embarrassingly shardable —
ball search and shortcut selection are per-source local — so the only
global decisions are made here: *which* vertices share a shard.

Two partitioners ship, through the same named-registry pattern as the
engine and ordering registries:

``contiguous``
    Equal-size contiguous id ranges over a locality ordering
    (:mod:`repro.graphs.reorder`; RCM by default).  A BFS/RCM numbering
    places neighbors at nearby ids, so cutting the id line into blocks
    cuts few edges — the partition the PR-7 reordering work was built to
    seed.
``ldd``
    Ball-growing low-diameter decomposition: randomly sampled centers
    grow hop-balls in parallel BFS waves (contested vertices go to the
    center with the smallest ``(round, priority, id)`` key), then the
    resulting low-diameter clusters are packed onto shards by greedy
    balancing.  This is the practical core of the low-diameter
    decompositions of Miller–Peng–Xu and Rozhoň et al. (arXiv
    2210.16351): every cluster has small hop radius by construction, so
    intra-shard ball searches stay intra-shard.

Every partitioner is a pure function ``(graph, n_shards, seed) ->
labels`` with ``labels[v]`` the shard id of vertex ``v``; the public
entry point :func:`compute_partition` validates the labeling and wraps
it in a :class:`Partition` carrying the derived quality metrics
(boundary set, edge cut, balance) every consumer wants.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from .csr import CSRGraph
from .reorder import compute_ordering
from .transform import to_bidirected

__all__ = [
    "PARTITIONERS",
    "Partition",
    "available_partitioners",
    "compute_partition",
    "contiguous_partition",
    "ldd_partition",
    "register_partitioner",
]

#: partitioner registry: name -> fn(graph, n_shards, seed) -> labels.
PartitionerFn = Callable[[CSRGraph, int, int], np.ndarray]


@dataclass(frozen=True)
class Partition:
    """A vertex partition plus the quality metrics sharding cares about.

    Attributes
    ----------
    labels: ``labels[v]`` is the shard id of vertex ``v`` (0-based).
    n_shards: number of shards (some may be empty on degenerate inputs).
    method: registry name of the partitioner that produced it.
    boundary_vertices: sorted ids of every vertex with at least one arc
        into a different shard — the stitching points cross-shard
        queries route through.
    edge_cut: number of undirected edges whose endpoints live in
        different shards (each contributes its weight to the overlay).
    balance: ``max shard size × n_shards / n`` — 1.0 is perfectly
        balanced, 2.0 means the largest shard is twice its fair share.
        ``0.0`` for an empty graph.
    """

    labels: np.ndarray = field(repr=False)
    n_shards: int
    method: str
    boundary_vertices: np.ndarray = field(repr=False)
    edge_cut: int
    balance: float

    @property
    def n(self) -> int:
        """Number of vertices partitioned."""
        return len(self.labels)

    def shard_sizes(self) -> np.ndarray:
        """Vertex count per shard (length ``n_shards``)."""
        return np.bincount(self.labels, minlength=self.n_shards)

    def members(self, shard: int) -> np.ndarray:
        """Sorted original vertex ids of ``shard``."""
        if not 0 <= shard < self.n_shards:
            raise ValueError(f"shard {shard} out of range [0, {self.n_shards})")
        return np.flatnonzero(self.labels == shard)

    def boundary_of(self, shard: int) -> np.ndarray:
        """Sorted boundary vertices belonging to ``shard``."""
        b = self.boundary_vertices
        return b[self.labels[b] == shard] if len(b) else b

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Partition(method={self.method!r}, n={self.n}, "
            f"n_shards={self.n_shards}, cut={self.edge_cut}, "
            f"balance={self.balance:.2f}, "
            f"boundary={len(self.boundary_vertices)})"
        )


def _partition_from_labels(
    graph: CSRGraph, labels: np.ndarray, n_shards: int, method: str
) -> Partition:
    """Derive the boundary/cut/balance metrics from a raw labeling."""
    n = graph.n
    tails = np.repeat(np.arange(n, dtype=np.int64), graph.degrees())
    cross = labels[tails] != labels[graph.indices]
    boundary = np.unique(tails[cross])
    # every crossing undirected edge is stored as two arcs
    edge_cut = int(cross.sum()) // 2
    sizes = np.bincount(labels, minlength=n_shards) if n else np.zeros(n_shards)
    balance = float(sizes.max() * n_shards / n) if n else 0.0
    return Partition(
        labels=labels,
        n_shards=n_shards,
        method=method,
        boundary_vertices=boundary,
        edge_cut=edge_cut,
        balance=balance,
    )


# --------------------------------------------------------------------- #
# Partitioner functions
# --------------------------------------------------------------------- #
def contiguous_partition(
    graph: CSRGraph, n_shards: int, seed: int = 0, *, ordering: str = "rcm"
) -> np.ndarray:
    """Equal-size contiguous id ranges over a locality ordering.

    The RCM (default) or BFS numbering places neighbors at nearby new
    ids; shard ``s`` is the new-id range ``[s·n/n_shards, (s+1)·n/n_shards)``,
    so almost every edge stays inside one block and only the edges that
    straddle a range boundary are cut.  ``ordering`` accepts any
    registered name from :mod:`repro.graphs.reorder`.
    """
    perm = compute_ordering(graph, ordering, seed=seed)
    # floor(new_id * n_shards / n) puts exactly the first ceil(n/S) new
    # ids in shard 0, etc. — block sizes differ by at most one.
    return (perm * n_shards) // max(graph.n, 1)


def ldd_partition(
    graph: CSRGraph,
    n_shards: int,
    seed: int = 0,
    *,
    centers_per_shard: int = 8,
) -> np.ndarray:
    """Ball-growing low-diameter decomposition packed onto shards.

    ``n_shards × centers_per_shard`` random centers (every connected
    component is guaranteed at least one) grow hop-balls in simultaneous
    BFS waves; a contested vertex is claimed by the center with the
    smallest ``(arrival round, random priority, center id)`` key, so the
    clusters are Voronoi balls of low hop diameter — the ball-growing
    core of the Miller–Peng–Xu / Rozhoň-et-al. decompositions.  Clusters
    are then assigned to shards largest-first, each to the currently
    lightest shard, which bounds the imbalance by the largest cluster.
    """
    g = to_bidirected(graph)
    n = g.n
    if n == 0:
        return np.empty(0, dtype=np.int64)
    rng = np.random.default_rng(seed)
    n_centers = min(n, max(n_shards, n_shards * centers_per_shard))
    centers = rng.choice(n, size=n_centers, replace=False).astype(np.int64)
    # every component needs a center or its vertices would stay unclaimed
    from .build import connected_components

    comp = connected_components(g)
    have = np.zeros(comp.max() + 1, dtype=bool)
    have[comp[centers]] = True
    orphans = []
    for c in np.flatnonzero(~have):
        orphans.append(int(np.flatnonzero(comp == c)[0]))
    if orphans:
        centers = np.concatenate([centers, np.array(orphans, dtype=np.int64)])
    priority = rng.random(len(centers))
    # claim[v] = cluster index; claimed in BFS waves, ties broken by
    # (priority, center id) via a stable first-wins scatter per round
    claim = np.full(n, -1, dtype=np.int64)
    order = np.lexsort((centers, priority))
    claim[centers[order]] = order  # centers claim themselves round 0
    # a center may appear twice if rng.choice + orphan logic ever
    # overlapped; lexsort first-wins keeps it deterministic either way
    frontier = centers[order]
    while len(frontier):
        starts = g.indptr[frontier]
        ends = g.indptr[frontier + 1]
        total = int((ends - starts).sum())
        if total == 0:
            break
        nbrs = np.empty(total, dtype=np.int64)
        owner = np.empty(total, dtype=np.int64)
        at = 0
        for f, s, e in zip(frontier, starts, ends):
            nbrs[at : at + (e - s)] = g.indices[s:e]
            owner[at : at + (e - s)] = claim[f]
            at += e - s
        fresh = claim[nbrs] < 0
        nbrs, owner = nbrs[fresh], owner[fresh]
        if len(nbrs) == 0:
            break
        # smallest (priority, center id) key wins a contested vertex;
        # cluster indices are already sorted by that key, so a plain
        # min-scatter over cluster index is the tie-break
        win = np.lexsort((owner, nbrs))
        nbrs, owner = nbrs[win], owner[win]
        first = np.ones(len(nbrs), dtype=bool)
        first[1:] = nbrs[1:] != nbrs[:-1]
        nbrs, owner = nbrs[first], owner[first]
        claim[nbrs] = owner
        frontier = nbrs
    # pack clusters onto shards: largest first, lightest shard wins
    sizes = np.bincount(claim, minlength=len(centers))
    shard_of = np.empty(len(centers), dtype=np.int64)
    load = np.zeros(n_shards, dtype=np.int64)
    for c in np.lexsort((np.arange(len(sizes)), -sizes)):
        s = int(np.argmin(load))
        shard_of[c] = s
        load[s] += sizes[c]
    return shard_of[claim]


# --------------------------------------------------------------------- #
# Registry
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class PartitionerSpec:
    """One registered partitioner: the callable plus a description."""

    name: str
    fn: PartitionerFn
    description: str = ""


PARTITIONERS: dict[str, PartitionerSpec] = {}


def register_partitioner(
    name: str,
    fn: PartitionerFn,
    *,
    description: str = "",
    overwrite: bool = False,
) -> PartitionerSpec:
    """Register a partitioner under ``name`` (the engine-registry
    pattern: a plugin partitioner becomes usable by
    ``build_sharded_kr_graph(partition=...)`` with no pipeline changes).
    """
    if not name:
        raise ValueError("partitioner name must be non-empty")
    if name in PARTITIONERS and not overwrite:
        raise ValueError(f"partitioner {name!r} already registered")
    spec = PartitionerSpec(name=name, fn=fn, description=description)
    PARTITIONERS[name] = spec
    return spec


def available_partitioners() -> tuple[str, ...]:
    """Sorted names of every registered partitioner."""
    return tuple(sorted(PARTITIONERS))


def compute_partition(
    graph: CSRGraph, method: str, n_shards: int, *, seed: int = 0
) -> Partition:
    """Partition ``graph`` into ``n_shards`` shards with the named
    partitioner, validated and wrapped in a :class:`Partition`.

    ``n_shards`` must be in ``[1, max(n, 1)]`` — more shards than
    vertices cannot all be non-empty and would only manufacture
    degenerate routers.
    """
    try:
        spec = PARTITIONERS[method]
    except KeyError:
        raise ValueError(
            f"unknown partitioner {method!r}; registered partitioners: "
            f"{', '.join(available_partitioners())}"
        ) from None
    if n_shards < 1:
        raise ValueError("n_shards >= 1 required")
    if graph.n and n_shards > graph.n:
        raise ValueError(
            f"n_shards={n_shards} exceeds the graph's {graph.n} vertices"
        )
    labels = np.asarray(spec.fn(graph, n_shards, seed), dtype=np.int64)
    if labels.shape != (graph.n,):
        raise ValueError(
            f"partitioner {method!r} returned labels of shape "
            f"{labels.shape}, expected ({graph.n},)"
        )
    if graph.n and (labels.min() < 0 or labels.max() >= n_shards):
        raise ValueError(
            f"partitioner {method!r} returned shard ids outside "
            f"[0, {n_shards})"
        )
    return _partition_from_labels(graph, labels, n_shards, method)


register_partitioner(
    "contiguous",
    contiguous_partition,
    description="equal-size contiguous id ranges over an RCM numbering",
)
register_partitioner(
    "ldd",
    ldd_partition,
    description="ball-growing low-diameter decomposition, greedy-balanced",
)
