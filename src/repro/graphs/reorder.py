"""Locality-aware vertex reordering — cache-friendly graph numberings.

The relaxation kernel's gather → scatter-min substep and the batched
ball engine's CSR rounds are memory-bound: each round fancy-indexes
``indices``/``weights`` slices for a whole frontier, so its speed is set
by how well those gathers hit cache — which depends entirely on the
vertex numbering.  A numbering under which neighbors carry nearby ids
turns the gathers into near-sequential streams; a scrambled numbering
turns every one into a random walk over the arrays.

This module is the ordering registry (the ``reorder_graph`` /
``sort_csr_by_tag`` slot of DGL's transform vocabulary):

``natural``   identity — whatever numbering the generator produced.
``random``    seeded scramble — the adversarial baseline benchmarks
              compare against.
``degree``    hubs first (descending degree, ties by id) — clusters the
              high-traffic rows the power-law frontiers hammer.
``bfs``       breadth-first levels from a min-degree root — neighbors
              land within one level-width of each other.
``rcm``       reverse Cuthill–McKee — the classic bandwidth-minimizing
              ordering (BFS with degree-sorted tie-breaking, reversed).

Every ordering is a pure function ``graph -> perm`` with
``perm[old] = new`` (the :func:`~repro.graphs.transform.permute_vertices`
convention), deterministic given ``(graph, seed)``.  Orderings that walk
the adjacency (``bfs``, ``rcm``) symmetrize directed inputs first via
:func:`~repro.graphs.transform.to_bidirected`, so they are usable on raw
crawl graphs too.  :func:`mean_neighbor_gap` is the locality diagnostic
the preprocessing pipeline and ``GET /stats`` surface: the mean ``|u−v|``
index gap over all stored arcs, before and after reordering.

The same orderings double as partition seeds: contiguous id ranges of a
BFS/RCM numbering are exactly the low-cut blocks a future shard router
wants, so this module also hands sharding its partitions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from .csr import CSRGraph
from .transform import permute_vertices, random_permutation, to_bidirected

__all__ = [
    "ORDERINGS",
    "ReorderResult",
    "available_orderings",
    "bfs_order",
    "compute_ordering",
    "degree_order",
    "inverse_permutation",
    "mean_neighbor_gap",
    "natural_order",
    "random_order",
    "rcm_order",
    "register_ordering",
    "reorder_graph",
]

#: ordering registry: name -> fn(graph, seed) -> perm (``perm[old] = new``).
OrderingFn = Callable[[CSRGraph, int], np.ndarray]


def inverse_permutation(perm: np.ndarray) -> np.ndarray:
    """``inv`` with ``inv[perm[v]] == v`` — new id back to old id."""
    perm = np.asarray(perm, dtype=np.int64)
    inv = np.empty_like(perm)
    inv[perm] = np.arange(len(perm), dtype=np.int64)
    return inv


def mean_neighbor_gap(graph: CSRGraph) -> float:
    """Mean ``|u − v|`` over all stored arcs — the locality diagnostic.

    Small gaps mean neighbor gathers touch nearby cache lines; a random
    numbering of an n-vertex graph sits near n/3.  ``0.0`` for an
    edgeless graph.
    """
    if graph.num_arcs == 0:
        return 0.0
    tails = np.repeat(np.arange(graph.n, dtype=np.int64), graph.degrees())
    return float(np.abs(tails - graph.indices).mean())


# --------------------------------------------------------------------- #
# Ordering functions
# --------------------------------------------------------------------- #
def natural_order(graph: CSRGraph, seed: int = 0) -> np.ndarray:
    """Identity: keep the generator's numbering."""
    return np.arange(graph.n, dtype=np.int64)


def random_order(graph: CSRGraph, seed: int = 0) -> np.ndarray:
    """Seeded scramble — the adversarial cache-locality baseline."""
    return random_permutation(graph.n, seed=seed)


def degree_order(graph: CSRGraph, seed: int = 0) -> np.ndarray:
    """Hubs first: descending degree, ties broken by old id.

    The frontier of a power-law graph is dominated by a few hubs whose
    rows are gathered over and over; packing them into one contiguous
    prefix keeps those rows resident.
    """
    n = graph.n
    order = np.lexsort((np.arange(n, dtype=np.int64), -graph.degrees()))
    perm = np.empty(n, dtype=np.int64)
    perm[order] = np.arange(n, dtype=np.int64)
    return perm


def _component_roots(degrees: np.ndarray) -> Callable[[np.ndarray], int]:
    """Root picker: among unvisited vertices, minimum degree, ties by id
    (the standard CM starting heuristic — a low-degree vertex sits near
    the graph's periphery)."""

    def pick(unvisited: np.ndarray) -> int:
        return int(unvisited[np.argmin(degrees[unvisited])])

    return pick


def bfs_order(graph: CSRGraph, seed: int = 0) -> np.ndarray:
    """Breadth-first numbering from a min-degree root per component.

    Levels are emitted in discovery order with each level's vertices
    sorted ascending by old id (``np.unique``), so the ordering is fully
    deterministic.  Neighbors end up at most one level-width apart —
    exactly the property that keeps frontier gathers inside the cache.
    """
    g = to_bidirected(graph)
    n = g.n
    visited = np.zeros(n, dtype=bool)
    degrees = g.degrees()
    pick = _component_roots(degrees)
    visit = np.empty(n, dtype=np.int64)
    pos = 0
    while pos < n:
        root = pick(np.flatnonzero(~visited))
        visited[root] = True
        frontier = np.array([root], dtype=np.int64)
        while len(frontier):
            visit[pos : pos + len(frontier)] = frontier
            pos += len(frontier)
            starts = g.indptr[frontier]
            ends = g.indptr[frontier + 1]
            total = int((ends - starts).sum())
            nbrs = np.empty(total, dtype=np.int64)
            at = 0
            for s, e in zip(starts, ends):
                nbrs[at : at + (e - s)] = g.indices[s:e]
                at += e - s
            fresh = np.unique(nbrs[~visited[nbrs]])
            visited[fresh] = True
            frontier = fresh
    perm = np.empty(n, dtype=np.int64)
    perm[visit] = np.arange(n, dtype=np.int64)
    return perm


def rcm_order(graph: CSRGraph, seed: int = 0) -> np.ndarray:
    """Reverse Cuthill–McKee: BFS with degree-sorted children, reversed.

    The classic bandwidth-minimizing ordering: each dequeued vertex
    appends its unvisited neighbors sorted by (degree, id); the final
    numbering is the reverse of the visit order (George's observation
    that reversing CM reduces fill — here it packs the *dense* end of
    the graph at high ids, which the frontier reaches last).
    """
    g = to_bidirected(graph)
    n = g.n
    degrees = g.degrees()
    visited = np.zeros(n, dtype=bool)
    pick = _component_roots(degrees)
    visit = np.empty(n, dtype=np.int64)
    head = tail = 0
    while tail < n:
        root = pick(np.flatnonzero(~visited))
        visited[root] = True
        visit[tail] = root
        tail += 1
        while head < tail:
            u = visit[head]
            head += 1
            nbrs = g.indices[g.indptr[u] : g.indptr[u + 1]]
            fresh = nbrs[~visited[nbrs]]
            if len(fresh):
                fresh = fresh[np.lexsort((fresh, degrees[fresh]))]
                visited[fresh] = True
                visit[tail : tail + len(fresh)] = fresh
                tail += len(fresh)
    perm = np.empty(n, dtype=np.int64)
    perm[visit] = np.arange(n - 1, -1, -1, dtype=np.int64)
    return perm


# --------------------------------------------------------------------- #
# Registry
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class OrderingSpec:
    """One registered ordering: the callable plus a one-line description."""

    name: str
    fn: OrderingFn
    description: str = ""


ORDERINGS: dict[str, OrderingSpec] = {}


def register_ordering(
    name: str,
    fn: OrderingFn,
    *,
    description: str = "",
    overwrite: bool = False,
) -> OrderingSpec:
    """Register an ordering under ``name`` (the engine-registry pattern:
    a plugin ordering becomes usable by ``build_kr_graph(reorder=...)``
    and the benchmarks with no pipeline changes)."""
    if not name:
        raise ValueError("ordering name must be non-empty")
    if name in ORDERINGS and not overwrite:
        raise ValueError(f"ordering {name!r} already registered")
    spec = OrderingSpec(name=name, fn=fn, description=description)
    ORDERINGS[name] = spec
    return spec


def available_orderings() -> tuple[str, ...]:
    """Sorted names of every registered ordering."""
    return tuple(sorted(ORDERINGS))


def compute_ordering(
    graph: CSRGraph, method: str, *, seed: int = 0
) -> np.ndarray:
    """Permutation for ``method`` (``perm[old] = new``), validated."""
    try:
        spec = ORDERINGS[method]
    except KeyError:
        raise ValueError(
            f"unknown ordering {method!r}; registered orderings: "
            f"{', '.join(available_orderings())}"
        ) from None
    perm = np.asarray(spec.fn(graph, seed), dtype=np.int64)
    if perm.shape != (graph.n,) or not np.array_equal(
        np.sort(perm), np.arange(graph.n)
    ):
        raise ValueError(
            f"ordering {method!r} returned an invalid permutation"
        )
    return perm


@dataclass(frozen=True)
class ReorderResult:
    """A reordered graph plus the maps between the two id spaces.

    ``perm[old] = new`` and ``inv_perm[new] = old``; ``graph`` is the
    relabeled graph (canonical row order — see
    :func:`~repro.graphs.transform.permute_vertices`).
    """

    graph: CSRGraph
    perm: np.ndarray
    inv_perm: np.ndarray
    method: str

    @property
    def identity(self) -> bool:
        """True when the ordering left every id in place."""
        return bool(np.array_equal(self.perm, np.arange(len(self.perm))))


def reorder_graph(
    graph: CSRGraph, method: str, *, seed: int = 0
) -> ReorderResult:
    """Relabel ``graph`` with the named ordering.

    The metric is untouched (``d_new(perm[u], perm[v]) == d_old(u, v)``
    — relabeling is applied via
    :func:`~repro.graphs.transform.permute_vertices`); only the memory
    layout changes.  Compare :func:`mean_neighbor_gap` before and after
    to see what the ordering bought.
    """
    perm = compute_ordering(graph, method, seed=seed)
    return ReorderResult(
        graph=permute_vertices(graph, perm),
        perm=perm,
        inv_perm=inverse_permutation(perm),
        method=method,
    )


register_ordering(
    "natural", natural_order, description="identity — the generator's numbering"
)
register_ordering(
    "random", random_order, description="seeded scramble (adversarial baseline)"
)
register_ordering(
    "degree",
    degree_order,
    description="hubs first: descending degree, ties by id",
)
register_ordering(
    "bfs",
    bfs_order,
    description="breadth-first levels from a min-degree root",
)
register_ordering(
    "rcm",
    rcm_order,
    description="reverse Cuthill-McKee (bandwidth-minimizing)",
)
