"""Structure-preserving graph transformations.

Utilities for relabeling and perturbing graphs without touching their
metric structure.  Their main consumer is the test suite: every solver in
the library must be *equivariant* under vertex relabeling (distances
permute with the vertices) and *invariant* under uniform weight scaling
(distances scale by the same factor) — two properties that catch a large
class of indexing bugs that value-level unit tests miss.
"""

from __future__ import annotations

import numpy as np

from .csr import CSRGraph

__all__ = ["permute_vertices", "random_permutation", "scale_weights"]


def random_permutation(n: int, *, seed: int = 0) -> np.ndarray:
    """Seeded permutation of ``range(n)`` (``perm[old] = new``)."""
    rng = np.random.default_rng(seed)
    return rng.permutation(n).astype(np.int64)


def permute_vertices(graph: CSRGraph, perm: np.ndarray) -> CSRGraph:
    """Relabel vertices: new id of ``v`` is ``perm[v]``.

    The result is the same metric graph under new names: for all u, v,
    ``d_new(perm[u], perm[v]) == d_old(u, v)``.  Adjacency is rebuilt in
    one vectorized pass (argsort on the permuted tails).
    """
    perm = np.asarray(perm, dtype=np.int64)
    n = graph.n
    if perm.shape != (n,) or not np.array_equal(np.sort(perm), np.arange(n)):
        raise ValueError("perm must be a permutation of range(n)")
    tails = np.repeat(np.arange(n, dtype=np.int64), graph.degrees())
    new_tails = perm[tails]
    new_heads = perm[graph.indices]
    order = np.argsort(new_tails, kind="stable")
    counts = np.bincount(new_tails, minlength=n)
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    return CSRGraph(
        indptr, new_heads[order], graph.weights[order], validate=False
    )


def scale_weights(graph: CSRGraph, factor: float) -> CSRGraph:
    """Multiply every edge weight by ``factor`` (> 0).

    Shortest paths are scale-invariant: the tree is unchanged and all
    distances multiply by ``factor``.  Note the paper's normalization
    (min nonzero weight = 1) is deliberately *not* re-applied — callers
    exploring L-sensitivity (the log ρL terms) handle that explicitly.
    """
    if not (factor > 0) or not np.isfinite(factor):
        raise ValueError("factor must be positive and finite")
    return CSRGraph(
        graph.indptr, graph.indices, graph.weights * factor, validate=False
    )
