"""Structure-preserving graph transformations.

Utilities for relabeling, symmetrizing and perturbing graphs without
touching their metric structure.  Two consumers:

* the test suite — every solver in the library must be *equivariant*
  under vertex relabeling (distances permute with the vertices) and
  *invariant* under uniform weight scaling (distances scale by the same
  factor), two properties that catch a large class of indexing bugs
  that value-level unit tests miss;
* :mod:`repro.graphs.reorder` — the locality-aware vertex orderings are
  "compute a permutation, then :func:`permute_vertices`", and their BFS
  walks need a symmetric arc structure, which :func:`to_bidirected`
  guarantees for directed inputs (DGL's ``transform`` module catalogs
  the same operator vocabulary: ``reverse``, ``to_bidirected``,
  ``reorder_graph``).
"""

from __future__ import annotations

import numpy as np

from .csr import CSRGraph

__all__ = [
    "permute_vertices",
    "random_permutation",
    "reverse_graph",
    "scale_weights",
    "to_bidirected",
]


def random_permutation(n: int, *, seed: int = 0) -> np.ndarray:
    """Seeded permutation of ``range(n)`` (``perm[old] = new``)."""
    rng = np.random.default_rng(seed)
    return rng.permutation(n).astype(np.int64)


def permute_vertices(graph: CSRGraph, perm: np.ndarray) -> CSRGraph:
    """Relabel vertices: new id of ``v`` is ``perm[v]``.

    The result is the same metric graph under new names: for all u, v,
    ``d_new(perm[u], perm[v]) == d_old(u, v)``.  Adjacency is rebuilt in
    one vectorized pass, and each row's neighbors are sorted by their
    *new* ids — the canonical CSR layout the builders produce — so the
    output depends only on the (graph, perm) pair, never on the input's
    internal row order.  That determinism is what makes reordered
    preprocessing artifacts hash reproducibly.
    """
    perm = np.asarray(perm, dtype=np.int64)
    n = graph.n
    if perm.shape != (n,) or not np.array_equal(np.sort(perm), np.arange(n)):
        raise ValueError("perm must be a permutation of range(n)")
    tails = np.repeat(np.arange(n, dtype=np.int64), graph.degrees())
    new_tails = perm[tails]
    new_heads = perm[graph.indices]
    order = np.lexsort((new_heads, new_tails))
    counts = np.bincount(new_tails, minlength=n)
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    return CSRGraph(
        indptr, new_heads[order], graph.weights[order], validate=False
    )


def reverse_graph(graph: CSRGraph, *, validate: bool = False) -> CSRGraph:
    """Transpose the arc set: every arc ``(u, v, w)`` becomes ``(v, u, w)``.

    For the library's symmetric (undirected) graphs this is a no-op up
    to row-internal arc order; its purpose is *directed* inputs built
    with ``validate=False`` (e.g. a crawl graph before symmetrization),
    where the transpose is the in-neighbor view the pull-style
    traversals need.  Vectorized: one lexsort over the arc list, no
    Python loop, and ``validate=False`` by default since transposition
    cannot break CSR structure.
    """
    n = graph.n
    tails = np.repeat(np.arange(n, dtype=np.int64), graph.degrees())
    order = np.lexsort((tails, graph.indices))
    counts = np.bincount(graph.indices, minlength=n).astype(np.int64)
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    return CSRGraph(
        indptr, tails[order], graph.weights[order], validate=validate
    )


def to_bidirected(graph: CSRGraph, *, validate: bool = False) -> CSRGraph:
    """Symmetrize the arc set: keep every arc plus its reverse.

    Duplicate ``(u, v)`` arcs collapse keeping the minimum weight (the
    library-wide dedup rule — the only weight that can matter for
    shortest paths), so a graph that is already symmetric and simple
    comes back equal to itself.  This is the operator the vertex
    orderings in :mod:`repro.graphs.reorder` apply first: BFS and
    Cuthill–McKee walks assume ``v ∈ N(u) ⇔ u ∈ N(v)``, which a
    directed input does not grant.  Vectorized (one lexsort over the
    doubled arc list); ``validate=False`` fast path by default since
    the construction is symmetric and self-loop-free by design.
    """
    from .build import from_arc_arrays

    tails = np.repeat(np.arange(graph.n, dtype=np.int64), graph.degrees())
    return from_arc_arrays(
        graph.n,
        tails,
        graph.indices,
        graph.weights,
        symmetrize=True,
        validate=validate,
    )


def scale_weights(graph: CSRGraph, factor: float) -> CSRGraph:
    """Multiply every edge weight by ``factor`` (> 0).

    Shortest paths are scale-invariant: the tree is unchanged and all
    distances multiply by ``factor``.  Note the paper's normalization
    (min nonzero weight = 1) is deliberately *not* re-applied — callers
    exploring L-sensitivity (the log ρL terms) handle that explicitly.

    ``factor`` must be a positive finite real scalar: negatives would
    flip the metric, NaN/inf would poison every weight, ``bool`` would
    silently scale by 0 or 1, and an array factor would build a CSR
    whose weights no longer match its arc list.
    """
    if isinstance(factor, (bool, np.bool_)):
        raise TypeError("factor must be a real scalar, not a bool")
    try:
        factor = float(factor)  # rejects arrays/sequences (TypeError)
    except (TypeError, ValueError) as exc:
        raise TypeError(f"factor must be a real scalar, got {factor!r}") from exc
    if not (factor > 0) or not np.isfinite(factor):
        raise ValueError("factor must be positive and finite")
    return CSRGraph(
        graph.indptr, graph.indices, graph.weights * factor, validate=False
    )
