"""Structural validation for CSR graphs.

The paper assumes a connected, simple, undirected graph whose lightest
non-zero edge weight is 1 (Section 1).  These helpers enforce (and can
restore, via :func:`normalize_weights`) those preconditions.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "GraphValidationError",
    "validate_csr_arrays",
    "validate_graph",
    "check_min_weight_normalized",
    "normalize_weights",
]


class GraphValidationError(ValueError):
    """Raised when graph arrays violate a structural invariant."""


def validate_csr_arrays(indptr: np.ndarray, indices: np.ndarray, weights: np.ndarray) -> None:
    """Validate raw CSR arrays; raise :class:`GraphValidationError` on issues.

    Checks: dtype shapes, monotone ``indptr``, index bounds, no self loops,
    non-negative finite weights, and arc symmetry (each arc ``(u, v, w)``
    must have a matching ``(v, u, w)``).
    """
    if indptr.ndim != 1 or len(indptr) < 1:
        raise GraphValidationError("indptr must be a 1-D array of length n+1 >= 1")
    if indptr[0] != 0:
        raise GraphValidationError("indptr[0] must be 0")
    if np.any(np.diff(indptr) < 0):
        raise GraphValidationError("indptr must be non-decreasing")
    if indptr[-1] != len(indices):
        raise GraphValidationError(
            f"indptr[-1]={indptr[-1]} does not match len(indices)={len(indices)}"
        )
    if len(indices) != len(weights):
        raise GraphValidationError("indices and weights must have equal length")
    n = len(indptr) - 1
    if len(indices):
        if indices.min() < 0 or indices.max() >= n:
            raise GraphValidationError("arc head out of range")
    if np.any(~np.isfinite(weights)):
        raise GraphValidationError("weights must be finite")
    if np.any(weights < 0):
        raise GraphValidationError("weights must be non-negative (SSSP precondition)")

    tails = np.repeat(np.arange(n, dtype=np.int64), np.diff(indptr))
    if np.any(tails == indices):
        raise GraphValidationError("self loops are not allowed (simple graph)")

    # Symmetry: the multiset of (tail, head, weight) must equal the multiset
    # of (head, tail, weight).  Sort both and compare.
    fwd = np.lexsort((weights, indices, tails))
    rev = np.lexsort((weights, tails, indices))
    if not (
        np.array_equal(tails[fwd], indices[rev])
        and np.array_equal(indices[fwd], tails[rev])
        and np.array_equal(weights[fwd], weights[rev])
    ):
        raise GraphValidationError("arc list is not symmetric: graph must be undirected")

    # Simplicity: no duplicate (tail, head) pairs.
    order = np.lexsort((indices, tails))
    st, si = tails[order], indices[order]
    dup = (st[1:] == st[:-1]) & (si[1:] == si[:-1])
    if np.any(dup):
        raise GraphValidationError("parallel edges are not allowed (simple graph)")


def validate_graph(graph) -> None:
    """Validate an already-constructed :class:`~repro.graphs.csr.CSRGraph`."""
    validate_csr_arrays(graph.indptr, graph.indices, graph.weights)


def check_min_weight_normalized(graph, *, tol: float = 1e-12) -> bool:
    """True when the lightest non-zero edge weight equals 1 (paper WLOG)."""
    w = graph.min_positive_weight
    return w == float("inf") or abs(w - 1.0) <= tol


def normalize_weights(graph):
    """Rescale weights so the lightest non-zero weight is exactly 1.

    Returns a new graph; shortest-path structure is unchanged (uniform
    scaling), and the paper's ``L`` becomes ``max_weight / min_weight``.
    Zero-weight edges (allowed by the algorithm) are preserved.
    """
    from .csr import CSRGraph

    scale = graph.min_positive_weight
    if scale == float("inf") or scale == 1.0:
        return graph
    return CSRGraph(
        graph.indptr, graph.indices, graph.weights / scale, validate=False
    )
