"""Edge-weight models.

The paper's weighted experiments assign "a random integer between 1 and
10,000" to every edge of an otherwise unweighted graph (Section 5.1).
Weights must be symmetric per undirected edge, so every generator here keys
the random draw on the canonical ``(min(u,v), max(u,v))`` edge id.
"""

from __future__ import annotations

import numpy as np

from .csr import CSRGraph
from .build import reweighted

__all__ = [
    "unit_weights",
    "random_integer_weights",
    "uniform_weights",
    "euclidean_weights",
    "PAPER_WEIGHT_LOW",
    "PAPER_WEIGHT_HIGH",
]

#: The paper's weighted-experiment range (Section 5.1): U{1, ..., 10^4}.
PAPER_WEIGHT_LOW = 1
PAPER_WEIGHT_HIGH = 10_000


def _canonical_edge_ids(graph: CSRGraph) -> tuple[np.ndarray, np.ndarray]:
    """Map each arc to a dense id shared with its reverse arc.

    Returns ``(arc_to_edge, num_edges)`` where ``arc_to_edge[j]`` indexes
    the undirected edge of arc ``j``.
    """
    tails = np.repeat(np.arange(graph.n, dtype=np.int64), graph.degrees())
    heads = graph.indices
    lo = np.minimum(tails, heads)
    hi = np.maximum(tails, heads)
    key = lo * graph.n + hi
    uniq, arc_to_edge = np.unique(key, return_inverse=True)
    return arc_to_edge, len(uniq)


def unit_weights(graph: CSRGraph) -> CSRGraph:
    """All edge weights set to 1 (the unweighted / BFS setting)."""
    return reweighted(graph, np.ones(graph.num_arcs, dtype=np.float64))


def random_integer_weights(
    graph: CSRGraph,
    *,
    low: int = PAPER_WEIGHT_LOW,
    high: int = PAPER_WEIGHT_HIGH,
    seed: int = 0,
) -> CSRGraph:
    """Independent uniform integer weights in ``[low, high]`` per edge.

    This is the paper's weighted workload; with the defaults the longest
    edge ``L`` is (almost surely) ``10^4`` and the lightest is 1, matching
    the normalization assumed by Theorem 3.3's ``log(ρ L)`` term.
    """
    if not (0 < low <= high):
        raise ValueError("need 0 < low <= high")
    arc_to_edge, num_edges = _canonical_edge_ids(graph)
    rng = np.random.default_rng(seed)
    per_edge = rng.integers(low, high + 1, size=num_edges).astype(np.float64)
    return reweighted(graph, per_edge[arc_to_edge])


def uniform_weights(
    graph: CSRGraph, *, low: float = 1.0, high: float = 2.0, seed: int = 0
) -> CSRGraph:
    """Continuous uniform weights in ``[low, high]`` per edge."""
    if not (0 <= low <= high):
        raise ValueError("need 0 <= low <= high")
    arc_to_edge, num_edges = _canonical_edge_ids(graph)
    rng = np.random.default_rng(seed)
    per_edge = rng.uniform(low, high, size=num_edges)
    return reweighted(graph, per_edge[arc_to_edge])


def euclidean_weights(
    graph: CSRGraph, coords: np.ndarray, *, normalize: bool = True
) -> CSRGraph:
    """Weights equal to Euclidean distance between embedded endpoints.

    Used with :func:`repro.graphs.generators.road_network`, whose vertices
    carry planar coordinates — road-map distances are near-Euclidean.  With
    ``normalize`` the weights are scaled so the minimum is 1 (paper WLOG).
    """
    coords = np.asarray(coords, dtype=np.float64)
    if coords.shape[0] != graph.n:
        raise ValueError("coords must have one row per vertex")
    tails = np.repeat(np.arange(graph.n, dtype=np.int64), graph.degrees())
    diffs = coords[tails] - coords[graph.indices]
    w = np.sqrt((diffs * diffs).sum(axis=1))
    if normalize and len(w):
        pos = w[w > 0]
        if len(pos):
            w = w / pos.min()
        w = np.maximum(w, 1.0)  # collapse zero-length edges up to the floor
    return reweighted(graph, w)
