"""Observability: metrics registry, text exposition, request tracing.

Dependency-free (stdlib only).  Three pieces:

- :mod:`repro.obs.metrics` — thread-safe counters/gauges/histograms in
  injectable registries, plus :class:`EngineTelemetry`, the ``obs`` hook
  the SSSP engines fold step/relaxation counts into.
- :mod:`repro.obs.expo` — Prometheus text exposition (``GET /metrics``)
  and a minimal parser used as the test oracle.
- :mod:`repro.obs.trace` — contextvars-propagated span trees with a
  slow-query ring buffer (``GET /debug/slow``).
"""

from .metrics import (
    COUNT_BUCKETS,
    DEFAULT_REGISTRY,
    LATENCY_BUCKETS,
    BoundEngineTelemetry,
    Counter,
    EngineTelemetry,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
    Sample,
    exponential_buckets,
    get_default_registry,
)
from .expo import CONTENT_TYPE, Exposition, parse, render
from .trace import (
    SlowQueryLog,
    Span,
    Trace,
    annotate,
    current_span,
    current_trace,
    new_request_id,
    span,
    trace_request,
)

__all__ = [
    "BoundEngineTelemetry",
    "CONTENT_TYPE",
    "COUNT_BUCKETS",
    "Counter",
    "DEFAULT_REGISTRY",
    "EngineTelemetry",
    "Exposition",
    "Gauge",
    "Histogram",
    "LATENCY_BUCKETS",
    "MetricFamily",
    "MetricsRegistry",
    "Sample",
    "SlowQueryLog",
    "Span",
    "Trace",
    "annotate",
    "current_span",
    "current_trace",
    "exponential_buckets",
    "get_default_registry",
    "new_request_id",
    "parse",
    "render",
    "span",
    "trace_request",
]
