"""Prometheus text exposition — render a registry, parse it back.

:func:`render` produces the standard text format (version 0.0.4: one
``# HELP``/``# TYPE`` pair per family, then its samples) from a
:class:`~repro.obs.metrics.MetricsRegistry`, and is what
``GET /metrics`` serves.  :func:`parse` is the deliberately minimal
inverse — enough structure to *validate* an exposition in tests and
small tools (sample lookup by name + labels, per-family types,
histogram invariants) without pretending to be a scrape client.

Both halves are kept in one module so the escaping rules live in
exactly one place: label values escape backslash, double-quote and
newline; HELP text escapes backslash and newline.
"""

from __future__ import annotations

import math
import re

from .metrics import MetricFamily, MetricsRegistry

__all__ = ["CONTENT_TYPE", "Exposition", "parse", "render"]

#: the content type ``GET /metrics`` answers with.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _escape_help(text: str) -> str:
    return text.replace("\\", r"\\").replace("\n", r"\n")


def _escape_label(text: str) -> str:
    return (
        text.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")
    )


def _fmt_value(value: float) -> str:
    value = float(value)
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    if value.is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def render(registry: MetricsRegistry) -> str:
    """The registry as Prometheus text format (trailing newline included)."""
    lines: list[str] = []
    for fam in registry.collect():
        lines.append(f"# HELP {fam.name} {_escape_help(fam.help)}")
        lines.append(f"# TYPE {fam.name} {fam.kind}")
        for sample in fam.samples:
            name = fam.name + sample.suffix
            if sample.labels:
                body = ",".join(
                    f'{k}="{_escape_label(str(v))}"' for k, v in sample.labels
                )
                lines.append(f"{name}{{{body}}} {_fmt_value(sample.value)}")
            else:
                lines.append(f"{name} {_fmt_value(sample.value)}")
    return "\n".join(lines) + "\n"


# --------------------------------------------------------------------- #
# Minimal parser — the test-side contract for /metrics output
# --------------------------------------------------------------------- #
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>\S+)\s*$"
)
_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def _unescape_label(text: str) -> str:
    return (
        text.replace(r"\n", "\n").replace(r"\"", '"').replace(r"\\", "\\")
    )


def _parse_value(text: str) -> float:
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    return float(text)  # 'NaN' is handled by float()


class Exposition:
    """A parsed exposition: typed families and labeled sample lookup."""

    def __init__(self) -> None:
        #: family name -> kind ("counter" / "gauge" / "histogram" / "untyped")
        self.types: dict[str, str] = {}
        #: family name -> HELP text
        self.help: dict[str, str] = {}
        #: (sample name, frozenset of (label, value)) -> value
        self.samples: dict[tuple[str, frozenset], float] = {}

    def value(self, name: str, **labels) -> float:
        """The sample's value; ``KeyError`` when absent."""
        return self.samples[(name, frozenset((k, str(v)) for k, v in labels.items()))]

    def series(self, name: str) -> dict[frozenset, float]:
        """Every labeled sample of one sample name."""
        return {
            labels: v for (n, labels), v in self.samples.items() if n == name
        }

    def histogram_counts(self, name: str, **labels) -> dict[str, float]:
        """``le`` → cumulative count for one histogram series."""
        want = {(k, str(v)) for k, v in labels.items()}
        out: dict[str, float] = {}
        for (n, lbls), v in self.samples.items():
            if n != name + "_bucket":
                continue
            d = dict(lbls)
            le = d.pop("le", None)
            if le is not None and set(d.items()) == want:
                out[le] = v
        return out


def parse(text: str) -> Exposition:
    """Parse a text exposition; raises ``ValueError`` on malformed lines,
    duplicate series, or samples under an undeclared family.

    Minimal by design — it understands exactly what :func:`render`
    emits (plus untyped samples), and is the oracle the HTTP tests
    validate ``GET /metrics`` against.
    """
    expo = Exposition()
    declared: set[str] = set()
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            rest = line[len("# HELP ") :]
            name, _, help_text = rest.partition(" ")
            expo.help[name] = help_text
            declared.add(name)
            continue
        if line.startswith("# TYPE "):
            rest = line[len("# TYPE ") :]
            name, _, kind = rest.partition(" ")
            kind = kind.strip()
            if kind not in ("counter", "gauge", "histogram", "summary", "untyped"):
                raise ValueError(f"line {lineno}: unknown metric type {kind!r}")
            if name in expo.types:
                raise ValueError(f"line {lineno}: duplicate TYPE for {name}")
            expo.types[name] = kind
            declared.add(name)
            continue
        if line.startswith("#"):
            continue  # arbitrary comment
        m = _SAMPLE_RE.match(line)
        if m is None:
            raise ValueError(f"line {lineno}: malformed sample {line!r}")
        name = m.group("name")
        base = re.sub(r"_(bucket|sum|count)$", "", name)
        if name not in declared and base not in declared:
            raise ValueError(f"line {lineno}: sample {name!r} has no TYPE/HELP")
        raw = m.group("labels")
        labels: list[tuple[str, str]] = []
        if raw:
            consumed = 0
            for lm in _LABEL_RE.finditer(raw):
                labels.append((lm.group(1), _unescape_label(lm.group(2))))
                consumed = lm.end()
            leftover = raw[consumed:].strip().strip(",")
            if leftover:
                raise ValueError(f"line {lineno}: malformed labels {raw!r}")
        key = (name, frozenset(labels))
        if key in expo.samples:
            raise ValueError(f"line {lineno}: duplicate series {line!r}")
        expo.samples[key] = _parse_value(m.group("value"))
    return expo
