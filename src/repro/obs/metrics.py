"""Metrics registry — thread-safe counters, gauges, and histograms.

The paper's claims are about *counts* — steps, substeps, relaxations —
and the serving stack's claims are about *latency*; this module is the
dependency-free substrate both are measured on in a running process.
Design constraints, in order:

1. **O(1), lock-striped hot path.**  Every metric site sits on the
   serving hot path (a request handler, a planner probe, an engine
   step), so an observation must cost one dict-free child access plus
   one short critical section.  Locking is striped the same way the
   planner's LRU counters are: each *child* (one label combination of
   one family) owns its own mutex, so two endpoints, two engines or two
   shards never contend — only two threads updating the very same
   series do, and then only for a float add.
2. **Exact totals.**  Counters are never approximate: a lost update
   under preemption is a bug the concurrency tests hammer for
   (``hits + misses == lookups`` style invariants must hold at
   quiescence), so updates take the child lock rather than trusting the
   GIL across the read-modify-write.
3. **Prometheus-compatible semantics.**  Families are typed
   (``counter`` / ``gauge`` / ``histogram``), histograms are
   fixed-bucket with cumulative exposition, and
   :mod:`repro.obs.expo` renders the standard text format for
   ``GET /metrics``.

Registries are injectable: library code takes a ``registry`` argument
(or an instrumentation object built from one), and the process-global
:data:`DEFAULT_REGISTRY` exists so one running server exposes one
coherent scrape without plumbing a registry through every constructor.
Tests inject a fresh :class:`MetricsRegistry` and assert on it in
isolation.

Scrape-time **collectors** bridge subsystems that already keep exact
counters of their own (the planner's striped stripes, the shard
router's stitched-row LRU): a collector is a zero-argument callable
returning metric families built from a ``stats()`` snapshot, so the hot
path pays *nothing* and the scrape is always consistent with
``GET /stats``.  Collectors are held by weak reference — a dead service
silently drops out of the scrape instead of being pinned alive by the
process-global registry.
"""

from __future__ import annotations

import math
import threading
import weakref
from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

__all__ = [
    "Counter",
    "DEFAULT_REGISTRY",
    "EngineTelemetry",
    "Gauge",
    "Histogram",
    "LATENCY_BUCKETS",
    "COUNT_BUCKETS",
    "MetricFamily",
    "MetricsRegistry",
    "Sample",
    "exponential_buckets",
    "get_default_registry",
]

_KINDS = ("counter", "gauge", "histogram")

_NAME_OK = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_:")


def _check_name(name: str, what: str) -> str:
    if not name or name[0].isdigit() or not set(name) <= _NAME_OK:
        raise ValueError(f"invalid {what} {name!r}")
    return name


def exponential_buckets(start: float, factor: float, count: int) -> tuple[float, ...]:
    """``count`` log-spaced bucket upper bounds: start, start·f, start·f², …

    The standard shape for latency and count distributions, whose
    interesting structure spans orders of magnitude.  The implicit
    ``+Inf`` bucket is added by :class:`Histogram` itself.
    """
    if start <= 0:
        raise ValueError("start > 0 required")
    if factor <= 1:
        raise ValueError("factor > 1 required")
    if count < 1:
        raise ValueError("count >= 1 required")
    return tuple(start * factor**i for i in range(count))


#: request-latency buckets: 100 µs … ~13 s, doubling.  Cache hits sit in
#: the first few buckets, cold stitched solves in the last few.
LATENCY_BUCKETS = exponential_buckets(1e-4, 2.0, 18)

#: count buckets (steps, substeps, relaxations, frontier sizes):
#: 1 … ~2 M, quadrupling — step counts are the paper's bounded quantity,
#: relaxation counts the work proxy.
COUNT_BUCKETS = exponential_buckets(1.0, 4.0, 12)


# --------------------------------------------------------------------- #
# Children — one labeled series each, own lock (the striping unit)
# --------------------------------------------------------------------- #
class Counter:
    """Monotone counter child.  ``inc`` only accepts non-negative steps."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a gauge")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge:
    """Point-in-time value child (cache sizes, in-flight requests)."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """Fixed-bucket histogram child.

    ``observe`` is a bisect over ≤ ~20 precomputed bounds plus three
    adds under the child lock — O(log B) with B fixed at construction,
    i.e. O(1) for the serving hot path.  Exposition is cumulative
    (Prometheus ``le`` semantics) and the reader-visible invariant
    ``sum(bucket_counts) == count`` (non-cumulative counts, ``+Inf``
    included) holds at quiescence — the concurrency tests pin it.
    """

    __slots__ = ("_lock", "bounds", "_counts", "_sum", "_count")

    def __init__(self, bounds: Sequence[float]) -> None:
        self._lock = threading.Lock()
        self.bounds = tuple(float(b) for b in bounds)
        self._counts = [0] * (len(self.bounds) + 1)  # last = +Inf
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        value = float(value)
        idx = bisect_left(self.bounds, value)
        with self._lock:
            self._counts[idx] += 1
            self._sum += value
            self._count += 1

    def snapshot(self) -> tuple[list[int], float, int]:
        """(non-cumulative bucket counts incl. +Inf, sum, count) — one
        consistent view under the child lock."""
        with self._lock:
            return list(self._counts), self._sum, self._count

    def quantile(self, q: float) -> float | None:
        """Bucket-resolution quantile estimate (upper bucket bound).

        The standard log-bucket estimate: the smallest bound whose
        cumulative count reaches ``q * count``.  Observations above the
        last finite bound report that bound (a conservative floor).
        ``None`` while the histogram is empty.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        counts, _total, count = self.snapshot()
        if count == 0:
            return None
        rank = max(1, math.ceil(q * count))
        acc = 0
        for bound, c in zip(self.bounds, counts):
            acc += c
            if acc >= rank:
                return bound
        return self.bounds[-1] if self.bounds else None

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum


# --------------------------------------------------------------------- #
# Families — a named metric plus its children by label values
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class Sample:
    """One exposition sample: suffixed name, labels, value."""

    suffix: str
    labels: tuple[tuple[str, str], ...]
    value: float


@dataclass
class MetricFamily:
    """A scrape-ready family: what :func:`repro.obs.expo.render` consumes.

    Collectors return these directly; registered families produce them
    via :meth:`_Family.collect`.
    """

    name: str
    kind: str
    help: str
    samples: list[Sample] = field(default_factory=list)


class _Family:
    """One registered metric family: typed, labeled, children on demand.

    The child dict is guarded by a family lock taken only on first use
    of a new label combination; steady-state callers go through
    :meth:`labels`, whose hit path is a single dict read (safe under the
    GIL for a dict that only ever grows) — and hot call sites cache the
    child once and never come back here at all.
    """

    __slots__ = ("name", "kind", "help", "labelnames", "_buckets", "_lock", "_children")

    def __init__(
        self,
        name: str,
        kind: str,
        help: str,
        labelnames: tuple[str, ...],
        buckets: tuple[float, ...] | None = None,
    ) -> None:
        self.name = name
        self.kind = kind
        self.help = help
        self.labelnames = labelnames
        self._buckets = buckets
        self._lock = threading.Lock()
        self._children: dict[tuple[str, ...], Counter | Gauge | Histogram] = {}

    def _make_child(self):
        if self.kind == "counter":
            return Counter()
        if self.kind == "gauge":
            return Gauge()
        return Histogram(self._buckets)

    def labels(self, *values) -> Counter | Gauge | Histogram:
        """The child for one label-value combination (created on first
        use).  Values are stringified — labels are text in exposition."""
        if len(values) != len(self.labelnames):
            raise ValueError(
                f"{self.name} takes {len(self.labelnames)} label value(s) "
                f"{self.labelnames}, got {len(values)}"
            )
        key = tuple(str(v) for v in values)
        child = self._children.get(key)
        if child is None:
            with self._lock:
                child = self._children.get(key)
                if child is None:
                    child = self._make_child()
                    self._children[key] = child
        return child

    # unlabeled convenience: family-as-child
    def _solo(self):
        if self.labelnames:
            raise ValueError(f"{self.name} is labeled {self.labelnames}; use .labels()")
        return self.labels()

    def inc(self, amount: float = 1.0) -> None:
        self._solo().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._solo().dec(amount)

    def set(self, value: float) -> None:
        self._solo().set(value)

    def observe(self, value: float) -> None:
        self._solo().observe(value)

    def collect(self) -> MetricFamily:
        fam = MetricFamily(self.name, self.kind, self.help)
        with self._lock:
            items = sorted(self._children.items())
        for key, child in items:
            base = tuple(zip(self.labelnames, key))
            if self.kind == "histogram":
                counts, total, count = child.snapshot()
                acc = 0
                for bound, c in zip(child.bounds, counts):
                    acc += c
                    fam.samples.append(
                        Sample("_bucket", base + (("le", _fmt_bound(bound)),), acc)
                    )
                acc += counts[-1]
                fam.samples.append(Sample("_bucket", base + (("le", "+Inf"),), acc))
                fam.samples.append(Sample("_sum", base, total))
                fam.samples.append(Sample("_count", base, count))
            else:
                fam.samples.append(Sample("", base, child.value))
        return fam


def _fmt_bound(bound: float) -> str:
    """``le`` label text: integers without a trailing .0, floats as repr."""
    if bound == math.inf:
        return "+Inf"
    if float(bound).is_integer() and abs(bound) < 1e15:
        return str(int(bound))
    return repr(float(bound))


# --------------------------------------------------------------------- #
# Registry
# --------------------------------------------------------------------- #
class MetricsRegistry:
    """A namespace of metric families plus scrape-time collectors.

    ``counter``/``gauge``/``histogram`` are get-or-create: asking twice
    for the same name returns the same family (so two servers over one
    process-global registry share series instead of colliding), and
    asking with a conflicting type, label set, or bucket layout raises —
    a silent mismatch would corrupt the scrape.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: dict[str, _Family] = {}
        self._collectors: list[weakref.ref] = []

    # -- family constructors ------------------------------------------- #
    def _family(
        self,
        name: str,
        kind: str,
        help: str,
        labelnames: Sequence[str],
        buckets: tuple[float, ...] | None = None,
    ) -> _Family:
        _check_name(name, "metric name")
        labelnames = tuple(labelnames)
        for ln in labelnames:
            _check_name(ln, "label name")
        with self._lock:
            fam = self._families.get(name)
            if fam is not None:
                if fam.kind != kind or fam.labelnames != labelnames:
                    raise ValueError(
                        f"metric {name!r} already registered as {fam.kind} "
                        f"with labels {fam.labelnames}"
                    )
                if kind == "histogram" and fam._buckets != buckets:
                    raise ValueError(
                        f"histogram {name!r} already registered with "
                        "different buckets"
                    )
                return fam
            fam = _Family(name, kind, help, labelnames, buckets)
            self._families[name] = fam
            return fam

    def counter(self, name: str, help: str = "", labelnames: Sequence[str] = ()) -> _Family:
        """A monotone counter family."""
        return self._family(name, "counter", help, labelnames)

    def gauge(self, name: str, help: str = "", labelnames: Sequence[str] = ()) -> _Family:
        """A point-in-time gauge family."""
        return self._family(name, "gauge", help, labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        *,
        buckets: Sequence[float] = LATENCY_BUCKETS,
    ) -> _Family:
        """A fixed-bucket histogram family (log-spaced latency buckets
        by default; pass :data:`COUNT_BUCKETS` for count distributions)."""
        bounds = tuple(float(b) for b in buckets)
        if not bounds or any(b <= a for a, b in zip(bounds, bounds[1:])):
            raise ValueError("buckets must be non-empty and strictly increasing")
        return self._family(name, "histogram", help, labelnames, bounds)

    # -- collectors ---------------------------------------------------- #
    def register_collector(
        self, fn: Callable[[], Iterable[MetricFamily]]
    ) -> None:
        """Add a scrape-time collector (weakly referenced).

        ``fn`` is called at every :meth:`collect` and returns
        :class:`MetricFamily` records built from some subsystem's own
        counters — the bridge that puts the planner's striped LRU
        counters on ``GET /metrics`` with zero hot-path cost.  Bound
        methods are held via :class:`weakref.WeakMethod`, so a garbage-
        collected service drops out of the scrape on its own.
        """
        ref = (
            weakref.WeakMethod(fn)
            if hasattr(fn, "__self__")
            else weakref.ref(fn)
        )
        with self._lock:
            self._collectors.append(ref)

    def collect(self) -> list[MetricFamily]:
        """Every family — registered and collected — sorted by name.

        Families sharing a name across collectors are merged (their
        kinds must agree); registered families win name conflicts
        against collector output.
        """
        with self._lock:
            families = list(self._families.values())
            refs = list(self._collectors)
        out: dict[str, MetricFamily] = {}
        for fam in families:
            out[fam.name] = fam.collect()
        dead = []
        for ref in refs:
            fn = ref()
            if fn is None:
                dead.append(ref)
                continue
            for fam in fn():
                have = out.get(fam.name)
                if have is None:
                    out[fam.name] = MetricFamily(
                        fam.name, fam.kind, fam.help, list(fam.samples)
                    )
                    continue
                if have.kind != fam.kind:
                    raise ValueError(
                        f"collector redeclares {fam.name!r} as {fam.kind} "
                        f"(registered: {have.kind})"
                    )
                have.samples.extend(fam.samples)
        if dead:
            with self._lock:
                self._collectors = [r for r in self._collectors if r not in dead]
        return [out[name] for name in sorted(out)]


#: the process-global registry a running server exposes by default.
DEFAULT_REGISTRY = MetricsRegistry()


def get_default_registry() -> MetricsRegistry:
    """The process-global default registry (``GET /metrics`` source when
    no registry is injected)."""
    return DEFAULT_REGISTRY


# --------------------------------------------------------------------- #
# Engine telemetry — the opt-in `obs` hook's registry-facing half
# --------------------------------------------------------------------- #
class EngineTelemetry:
    """Folds engine runs and steps into per-engine histograms.

    The paper's whole pitch is bounding *step counts* (Theorems 3.2 and
    3.3), so the serving stack records them as first-class metrics: one
    :class:`EngineTelemetry` wraps a registry and
    :meth:`bind` pre-resolves the ``engine`` label into cached child
    handles, making the per-step hot path a couple of histogram
    observations with zero dict lookups.

    ``bind(name)`` is what :func:`repro.engine.registry.solve_with_engine`
    calls once per query; the bound handle is the ``obs`` object
    :func:`repro.engine.driver.run_engine` sees.
    """

    def __init__(self, registry: MetricsRegistry) -> None:
        self.registry = registry
        self._solves = registry.counter(
            "engine_solves_total", "completed SSSP engine runs", ("engine",)
        )
        self._steps = registry.histogram(
            "engine_solve_steps",
            "outer steps per run (Thm 3.3's bounded quantity)",
            ("engine",),
            buckets=COUNT_BUCKETS,
        )
        self._substeps = registry.histogram(
            "engine_solve_substeps",
            "total inner substeps per run",
            ("engine",),
            buckets=COUNT_BUCKETS,
        )
        self._relaxations = registry.histogram(
            "engine_solve_relaxations",
            "arcs relaxed per run (work proxy)",
            ("engine",),
            buckets=COUNT_BUCKETS,
        )
        self._step_settled = registry.histogram(
            "engine_step_settled",
            "vertices settled per outer step (frontier size)",
            ("engine",),
            buckets=COUNT_BUCKETS,
        )
        self._step_substeps = registry.histogram(
            "engine_step_substeps",
            "substeps per outer step (Thm 3.2 bounds this by k+2)",
            ("engine",),
            buckets=COUNT_BUCKETS,
        )
        self._bound_lock = threading.Lock()
        self._bound: dict[str, BoundEngineTelemetry] = {}

    def bind(self, engine: str) -> "BoundEngineTelemetry":
        """Label-resolved handle for one engine name (cached)."""
        handle = self._bound.get(engine)
        if handle is None:
            with self._bound_lock:
                handle = self._bound.get(engine)
                if handle is None:
                    handle = BoundEngineTelemetry(self, engine)
                    self._bound[engine] = handle
        return handle


class BoundEngineTelemetry:
    """The ``obs`` hook handle: one engine's cached histogram children.

    ``record_step`` is called live from inside
    :func:`~repro.engine.driver.run_engine`'s outer loop (per step, not
    per substep — an O(1) pair of observations on a path that just did
    O(frontier) work); ``record_run`` once per completed solve, from
    the dispatch layer, with the :class:`~repro.core.result.SsspResult`
    — which also makes telemetry work for results that crossed a
    process boundary (the fork-pool batch path), where live in-worker
    observations would mutate the wrong process's registry.
    """

    __slots__ = (
        "engine",
        "_solves",
        "_steps",
        "_substeps",
        "_relaxations",
        "_step_settled",
        "_step_substeps",
    )

    def __init__(self, telemetry: EngineTelemetry, engine: str) -> None:
        self.engine = engine
        self._solves = telemetry._solves.labels(engine)
        self._steps = telemetry._steps.labels(engine)
        self._substeps = telemetry._substeps.labels(engine)
        self._relaxations = telemetry._relaxations.labels(engine)
        self._step_settled = telemetry._step_settled.labels(engine)
        self._step_substeps = telemetry._step_substeps.labels(engine)

    def record_step(self, settled: int, substeps: int) -> None:
        """One outer engine step: frontier size + substep count."""
        self._step_settled.observe(settled)
        self._step_substeps.observe(substeps)

    def record_run(self, result) -> None:
        """One completed solve: fold the run-level counts."""
        self._solves.inc()
        self._steps.observe(result.steps)
        self._substeps.observe(result.substeps)
        self._relaxations.observe(result.relaxations)
