"""Request tracing — span trees, ambient propagation, slow-query log.

A tail-latency outlier in the serving stack can be a planner cache
miss, an overlay stitch, or an engine solve — three different layers.
This module makes one request's walk through those layers a first-class
record: a :class:`Trace` is a tree of :class:`Span`\\ s with monotonic
timings, rooted at the HTTP handler and grown by whatever instrumented
code runs underneath.

Propagation is **ambient** via :mod:`contextvars`: the HTTP front end
opens the root with :func:`trace_request`, and every lower layer calls
:func:`span` with no signature changes anywhere in between — the
planner, the shard router and the solver facade do exactly that.  Each
handler thread carries its own context, so concurrent requests never
see each other's spans.

When **no trace is active**, :func:`span` returns a shared no-op
context manager after a single context-variable read — the instrumented
hot paths cost nanoseconds for un-traced callers (the observability
benchmark gates this).  There is deliberately no sampling knob yet:
tracing is per-request opt-in by whoever opens the root.

The :class:`SlowQueryLog` is a lock-protected ring buffer of finished
traces over a duration threshold, dumped as JSON by
``GET /debug/slow`` — the place to look when p99 moves.
"""

from __future__ import annotations

import contextvars
import itertools
import threading
import time
import uuid
from collections import deque
from contextlib import contextmanager

__all__ = [
    "SlowQueryLog",
    "Span",
    "Trace",
    "annotate",
    "current_span",
    "current_trace",
    "new_request_id",
    "span",
    "trace_request",
]

_ACTIVE: contextvars.ContextVar["Span | None"] = contextvars.ContextVar(
    "repro_obs_span", default=None
)

_REQ_SEQ = itertools.count()


def new_request_id() -> str:
    """A fresh request id: 12 hex chars of uuid4 plus a process-unique
    sequence number — short enough for logs, unique enough for grep."""
    return f"{uuid.uuid4().hex[:12]}-{next(_REQ_SEQ)}"


class Span:
    """One timed operation: name, annotations, children.

    ``duration`` is monotonic (``time.perf_counter``) and ``None`` until
    the span closes.  Annotations are small JSON-able values (counts,
    names, outcomes) — not payloads.
    """

    __slots__ = ("name", "annotations", "children", "_t0", "duration")

    def __init__(self, name: str, annotations: dict | None = None) -> None:
        self.name = name
        self.annotations = annotations or {}
        self.children: list[Span] = []
        self._t0 = time.perf_counter()
        self.duration: float | None = None

    def close(self) -> None:
        if self.duration is None:
            self.duration = time.perf_counter() - self._t0

    def to_dict(self) -> dict:
        """JSON-able span tree (durations in milliseconds)."""
        return {
            "name": self.name,
            "duration_ms": (
                None if self.duration is None else round(self.duration * 1e3, 3)
            ),
            "annotations": dict(self.annotations),
            "children": [c.to_dict() for c in self.children],
        }

    def walk(self):
        """Depth-first iteration over this span and its descendants."""
        yield self
        for child in self.children:
            yield from child.walk()


class Trace:
    """One request's span tree plus its identity."""

    __slots__ = ("request_id", "root", "started_at")

    def __init__(self, name: str, request_id: str | None = None) -> None:
        self.request_id = request_id or new_request_id()
        self.root = Span(name)
        self.started_at = time.time()

    @property
    def duration(self) -> float | None:
        return self.root.duration

    def to_dict(self) -> dict:
        return {
            "request_id": self.request_id,
            "started_at": self.started_at,
            "duration_ms": (
                None if self.duration is None else round(self.duration * 1e3, 3)
            ),
            "trace": self.root.to_dict(),
        }


class _Null:
    """The shared no-op context manager un-traced spans get."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc) -> bool:
        return False


_NULL = _Null()


def current_span() -> Span | None:
    """The active span of this context, or ``None`` outside a trace."""
    return _ACTIVE.get()


def current_trace() -> Trace | None:
    """The active trace (root holder), or ``None``.

    Only the root span knows its trace; :func:`trace_request` parks the
    trace on the context alongside the span.
    """
    return _TRACE.get()


_TRACE: contextvars.ContextVar[Trace | None] = contextvars.ContextVar(
    "repro_obs_trace", default=None
)


@contextmanager
def trace_request(name: str, request_id: str | None = None):
    """Open a trace: the root span becomes the context's active span.

    The HTTP handler wraps each request in this; anything it calls may
    :func:`span`/:func:`annotate` with zero plumbing.  Always closes the
    root (exceptions included) so the slow-log sees a real duration.
    """
    trace = Trace(name, request_id)
    tok_span = _ACTIVE.set(trace.root)
    tok_trace = _TRACE.set(trace)
    try:
        yield trace
    finally:
        trace.root.close()
        _ACTIVE.reset(tok_span)
        _TRACE.reset(tok_trace)


def span(name: str, **annotations):
    """A child span of the active one — or a shared no-op when no trace
    is active (one context-variable read, no allocation).

    Usage::

        with span("planner.solve", sources=len(missing)):
            ...
    """
    parent = _ACTIVE.get()
    if parent is None:
        return _NULL
    return _child(parent, name, annotations)


@contextmanager
def _child(parent: Span, name: str, annotations: dict):
    child = Span(name, annotations)
    parent.children.append(child)
    token = _ACTIVE.set(child)
    try:
        yield child
    finally:
        child.close()
        _ACTIVE.reset(token)


def annotate(**kv) -> None:
    """Attach key/values to the active span; no-op outside a trace."""
    active = _ACTIVE.get()
    if active is not None:
        active.annotations.update(kv)


class SlowQueryLog:
    """Threshold-triggered ring buffer of finished traces.

    ``record`` keeps a trace only when its root duration meets
    ``threshold_ms``; the buffer holds the most recent ``capacity``
    offenders (oldest evicted first) and :meth:`dump` returns them
    newest-first as JSON-able dicts — the payload of
    ``GET /debug/slow``.  All methods are lock-protected; ``record`` on
    the fast (under-threshold) path is one comparison.
    """

    def __init__(self, threshold_ms: float = 250.0, capacity: int = 128) -> None:
        if capacity < 1:
            raise ValueError("capacity >= 1 required")
        self.threshold_ms = float(threshold_ms)
        self.capacity = int(capacity)
        self._lock = threading.Lock()
        self._entries: deque[dict] = deque(maxlen=self.capacity)
        self._seen = 0
        self._recorded = 0

    def record(self, trace: Trace, **extra) -> bool:
        """Consider one finished trace; returns True when kept.

        ``extra`` (endpoint, status, …) is merged into the stored
        record so a dump is self-describing.
        """
        duration = trace.duration
        with self._lock:
            self._seen += 1
            if duration is None or duration * 1e3 < self.threshold_ms:
                return False
            entry = trace.to_dict()
            entry.update(extra)
            self._entries.append(entry)
            self._recorded += 1
            return True

    def dump(self) -> dict:
        """Snapshot: configuration, totals, and entries newest-first."""
        with self._lock:
            return {
                "threshold_ms": self.threshold_ms,
                "capacity": self.capacity,
                "seen": self._seen,
                "recorded": self._recorded,
                "entries": list(reversed(self._entries)),
            }

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
