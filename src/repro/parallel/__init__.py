"""Process-based parallel substrate (fork pool + deterministic chunking)."""

from .chunking import resolve_jobs, split_blocks, split_evenly
from .pool import parallel_map, parallel_map_shared

__all__ = [
    "parallel_map",
    "parallel_map_shared",
    "resolve_jobs",
    "split_blocks",
    "split_evenly",
]
