"""Process-based parallel substrate (fork pool + deterministic chunking)."""

from .chunking import resolve_jobs, split_evenly
from .pool import parallel_map

__all__ = ["parallel_map", "resolve_jobs", "split_evenly"]
