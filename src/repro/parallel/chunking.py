"""Deterministic work partitioning for the process pool."""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["split_evenly", "split_blocks", "resolve_jobs"]


def split_evenly(items: Sequence | np.ndarray, parts: int) -> list[np.ndarray]:
    """Split ``items`` into ``parts`` nearly equal contiguous chunks.

    Deterministic (no interleaving), never returns empty chunks, and the
    concatenation of the chunks equals the input order — so results are
    reproducible regardless of worker count.
    """
    if parts < 1:
        raise ValueError("parts >= 1 required")
    arr = np.asarray(items)
    if len(arr) == 0:
        return []
    parts = min(parts, len(arr))
    return [chunk for chunk in np.array_split(arr, parts) if len(chunk)]


def split_blocks(items: Sequence | np.ndarray, block_size: int) -> list[np.ndarray]:
    """Split ``items`` into contiguous chunks of at most ``block_size``.

    The complement of :func:`split_evenly`: callers that need a *size cap*
    per chunk (the batched ball-search engine's slot blocks, whose dense
    per-block state scales with chunk size × n) rather than a *count* of
    chunks.  Deterministic; concatenation of the chunks equals the input.
    """
    if block_size < 1:
        raise ValueError("block_size >= 1 required")
    arr = np.asarray(items)
    return [arr[i : i + block_size] for i in range(0, len(arr), block_size)]


def resolve_jobs(n_jobs: int) -> int:
    """Normalize an ``n_jobs`` request: 0 / negative → all cores."""
    import os

    if n_jobs >= 1:
        return n_jobs
    return max(1, os.cpu_count() or 1)
