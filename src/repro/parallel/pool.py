"""Process-pool parallel map — the real-parallelism substrate.

CPython's GIL serializes shared-memory threads, so the library's actual
parallelism (as opposed to the simulated-PRAM accounting) uses processes.
The one embarrassingly parallel phase of the paper is preprocessing:
n independent truncated Dijkstras (Lemma 4.2).  ``parallel_map`` fans
item chunks out to a fork-based pool; on Linux the read-only CSR graph is
shared copy-on-write with the children, which is the mpi4py-style
"communicate buffers, not objects" discipline adapted to one box.

Results come back in chunk order, so output is bit-identical for any
``n_jobs`` — a property the test-suite pins.

Two entry points share that contract:

* :func:`parallel_map` pickles its ``fn_args`` with every task — fine
  for small arguments.
* :func:`parallel_map_shared` stages one large read-only payload (a
  CSR graph, a radii array) in module state *before* the fork, so
  children inherit it copy-on-write instead of deserializing a private
  copy per task — the substrate under batched multi-source queries
  (:meth:`repro.core.solver.PreprocessedSSSP.solve_many`).

Thread/fork safety (the contract the threaded serving front end —
``repro.serve.http`` worker threads driving planner solves — relies
on):

* Both entry points may be called concurrently from multiple threads.
  Staged payloads are keyed by a per-call token, so concurrent maps
  never see each other's payloads, and the staging lock is released
  before the pool forks — batches overlap instead of serializing.
* Forking from a multi-threaded parent is safe *here* because the
  child only ever runs the worker function: it reads the inherited
  payload dict directly and never acquires ``_SHARED_LOCK`` (a lock
  another parent thread might have held at fork time, which would be
  permanently stuck in the child).  Keep it that way — any new code
  that runs in workers must not touch the staging lock.
* Worker functions receive read-only shared state; anything they
  mutate must be chunk-local (results travel back through the pipe or
  a ``multiprocessing.shared_memory`` segment, cf.
  :mod:`repro.serve.shm`).
"""

from __future__ import annotations

import itertools
import multiprocessing as mp
import threading
from functools import partial
from typing import Any, Callable, Sequence

import numpy as np

from .chunking import resolve_jobs, split_evenly

__all__ = ["parallel_map", "parallel_map_shared"]


def _invoke(fn: Callable, fn_args: tuple, fn_kwargs: dict, chunk: np.ndarray) -> Any:
    return fn(*fn_args, chunk, **fn_kwargs)


#: fork-inherited payloads for :func:`parallel_map_shared`, keyed by a
#: per-call token.  A payload is staged before the pool forks and
#: removed once its map completes; tokens keep concurrent callers (a
#: threaded serving process) and *worker respawns* correct — a pool that
#: replaces a crashed worker mid-map forks it from the parent at that
#: moment, and the token still resolves to the right payload even if
#: another thread staged its own in between.  The lock only guards the
#: dict mutations, never a fork or a map.
_SHARED_MAP: dict[int, Any] = {}
_SHARED_LOCK = threading.Lock()
_SHARED_TOKENS = itertools.count()


def _invoke_shared(
    fn: Callable, fn_kwargs: dict, token: int, chunk: np.ndarray
) -> Any:
    return fn(_SHARED_MAP[token], chunk, **fn_kwargs)


def parallel_map(
    fn: Callable,
    items: Sequence | np.ndarray,
    *,
    n_jobs: int = 1,
    fn_args: tuple = (),
    fn_kwargs: dict | None = None,
    chunks_per_job: int = 4,
) -> list[Any]:
    """Apply ``fn(*fn_args, chunk, **fn_kwargs)`` over chunks of ``items``.

    Parameters
    ----------
    fn: top-level (picklable) callable taking a chunk of items.
    n_jobs: worker processes; 1 (default) runs inline with zero overhead,
        0 or negative means one per CPU core.
    chunks_per_job: over-partitioning factor for load balance — ball
        searches on skewed graphs (webgraph hubs) have very uneven costs.

    Returns
    -------
    One result per chunk, in deterministic input order.
    """
    fn_kwargs = fn_kwargs or {}
    jobs = resolve_jobs(n_jobs)
    if len(items) == 0:
        return []
    if jobs == 1:
        return [_invoke(fn, fn_args, fn_kwargs, c) for c in split_evenly(items, 1)]
    chunks = split_evenly(items, jobs * max(1, chunks_per_job))
    call = partial(_invoke, fn, fn_args, fn_kwargs)
    try:
        ctx = mp.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX fallback
        ctx = mp.get_context("spawn")
    with ctx.Pool(processes=jobs) as pool:
        return pool.map(call, chunks)


def parallel_map_shared(
    fn: Callable,
    shared: Any,
    items: Sequence | np.ndarray,
    *,
    n_jobs: int = 1,
    fn_kwargs: dict | None = None,
    chunks_per_job: int = 4,
) -> list[Any]:
    """Apply ``fn(shared, chunk, **fn_kwargs)`` over chunks of ``items``.

    ``shared`` is handed to fork-based workers through inherited module
    state: the parent stages it in a module global, forks the pool, and
    the children read it zero-copy (Linux copy-on-write pages).  Only
    chunk indices travel through the task pipe, so a multi-gigabyte CSR
    graph costs nothing per task.  When fork is unavailable (non-POSIX)
    the payload falls back to per-task pickling, preserving semantics.

    Returns one result per chunk, in deterministic input order, exactly
    like :func:`parallel_map`.
    """
    fn_kwargs = fn_kwargs or {}
    jobs = resolve_jobs(n_jobs)
    if len(items) == 0:
        return []
    if jobs == 1:
        return [fn(shared, c, **fn_kwargs) for c in split_evenly(items, 1)]
    chunks = split_evenly(items, jobs * max(1, chunks_per_job))
    try:
        ctx = mp.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX fallback
        ctx = mp.get_context("spawn")
    if ctx.get_start_method() != "fork":  # pragma: no cover - non-POSIX
        call = partial(_invoke, fn, (shared,), fn_kwargs)
        with ctx.Pool(processes=jobs) as pool:
            return pool.map(call, chunks)
    # Children snapshot the payload map copy-on-write whenever they fork
    # (pool start *or* mid-map worker respawn), so the payload stays
    # staged under its token for the whole map; the lock protects only
    # the dict itself, so a threaded serving process keeps several batch
    # queries in flight without serializing on staging.
    with _SHARED_LOCK:
        token = next(_SHARED_TOKENS)
        _SHARED_MAP[token] = shared
    try:
        with ctx.Pool(processes=jobs) as pool:
            return pool.map(partial(_invoke_shared, fn, fn_kwargs, token), chunks)
    finally:
        with _SHARED_LOCK:
            del _SHARED_MAP[token]
