"""Process-pool parallel map — the real-parallelism substrate.

CPython's GIL serializes shared-memory threads, so the library's actual
parallelism (as opposed to the simulated-PRAM accounting) uses processes.
The one embarrassingly parallel phase of the paper is preprocessing:
n independent truncated Dijkstras (Lemma 4.2).  ``parallel_map`` fans
item chunks out to a fork-based pool; on Linux the read-only CSR graph is
shared copy-on-write with the children, which is the mpi4py-style
"communicate buffers, not objects" discipline adapted to one box.

Results come back in chunk order, so output is bit-identical for any
``n_jobs`` — a property the test-suite pins.
"""

from __future__ import annotations

import multiprocessing as mp
from functools import partial
from typing import Any, Callable, Sequence

import numpy as np

from .chunking import resolve_jobs, split_evenly

__all__ = ["parallel_map"]


def _invoke(fn: Callable, fn_args: tuple, fn_kwargs: dict, chunk: np.ndarray) -> Any:
    return fn(*fn_args, chunk, **fn_kwargs)


def parallel_map(
    fn: Callable,
    items: Sequence | np.ndarray,
    *,
    n_jobs: int = 1,
    fn_args: tuple = (),
    fn_kwargs: dict | None = None,
    chunks_per_job: int = 4,
) -> list[Any]:
    """Apply ``fn(*fn_args, chunk, **fn_kwargs)`` over chunks of ``items``.

    Parameters
    ----------
    fn: top-level (picklable) callable taking a chunk of items.
    n_jobs: worker processes; 1 (default) runs inline with zero overhead,
        0 or negative means one per CPU core.
    chunks_per_job: over-partitioning factor for load balance — ball
        searches on skewed graphs (webgraph hubs) have very uneven costs.

    Returns
    -------
    One result per chunk, in deterministic input order.
    """
    fn_kwargs = fn_kwargs or {}
    jobs = resolve_jobs(n_jobs)
    if len(items) == 0:
        return []
    if jobs == 1:
        return [_invoke(fn, fn_args, fn_kwargs, c) for c in split_evenly(items, 1)]
    chunks = split_evenly(items, jobs * max(1, chunks_per_job))
    call = partial(_invoke, fn, fn_args, fn_kwargs)
    try:
        ctx = mp.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX fallback
        ctx = mp.get_context("spawn")
    with ctx.Pool(processes=jobs) as pool:
        return pool.map(call, chunks)
