"""Simulated-PRAM substrate: cost ledger, primitives, and parallel BSTs."""

from .brent import (
    BrentBounds,
    MachinePoint,
    brent_bounds,
    simulated_time,
    speedup_curve,
)
from .ledger import Ledger, ParallelBlock
from .ordered_set import VertexKeyedSet
from .primitives import pack, parallel_for_cost, prefix_sum, write_min
from . import treap

__all__ = [
    "BrentBounds",
    "Ledger",
    "MachinePoint",
    "ParallelBlock",
    "VertexKeyedSet",
    "brent_bounds",
    "pack",
    "parallel_for_cost",
    "prefix_sum",
    "simulated_time",
    "speedup_curve",
    "treap",
    "write_min",
]
