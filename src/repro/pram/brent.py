"""Simulated p-processor execution of a ledgered algorithm (Brent).

The paper argues its value through the parallelism factor P = W/D: "the
parallelism factor P indicates how well the algorithm will scale with
processors" (§1).  This module turns a :class:`~repro.pram.ledger.Ledger`
into concrete scale-up predictions via Brent's scheduling theorem: a
computation of ``W`` work and ``D`` depth runs on ``p`` processors in

    max(W/p, D)  <=  T_p  <=  W/p + D.

When the ledger recorded per-phase charges (``Ledger(record_phases=True)``)
a sharper point estimate is available: every phase this library charges is
one bulk-synchronous data-parallel operation (a substep relaxation, a tree
split, ...), whose p-processor time is ``max(W_i/p, D_i)`` — it can finish
no faster than its span and no faster than its share of work, and its work
is evenly divisible across processors by construction.  The sum of these
per-phase times always lies between Brent's two bounds.

CPython cannot run the PRAM — the GIL serializes shared-memory threads —
so these predictions are the honest substitute: they are *measured* from
the operation stream of the real implementation, not asserted from the
paper's formulas, and the benchmark suite checks that the two agree.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from .ledger import Ledger

__all__ = [
    "BrentBounds",
    "MachinePoint",
    "brent_bounds",
    "simulated_time",
    "speedup_curve",
]


@dataclass(frozen=True)
class BrentBounds:
    """Brent's-theorem bounds on the p-processor execution time.

    Attributes
    ----------
    processors: the simulated machine size p.
    lower: ``max(W/p, D)`` — no schedule beats both limits.
    upper: ``W/p + D`` — greedy scheduling guarantees it.
    """

    processors: int
    lower: float
    upper: float

    @property
    def midpoint(self) -> float:
        """Geometric midpoint — a scale-free point estimate of T_p."""
        return (self.lower * self.upper) ** 0.5


@dataclass(frozen=True)
class MachinePoint:
    """One point on a speedup curve (times from :func:`simulated_time`)."""

    processors: int
    time: float
    speedup: float
    efficiency: float


def brent_bounds(ledger: Ledger, processors: int) -> BrentBounds:
    """Brent's-theorem time bounds for running ``ledger`` on ``p`` procs."""
    if processors < 1:
        raise ValueError("processors >= 1 required")
    w, d = ledger.work, ledger.depth
    return BrentBounds(
        processors=processors, lower=max(w / processors, d), upper=w / processors + d
    )


def simulated_time(ledger: Ledger, processors: int) -> float:
    """Simulated bulk-synchronous execution time on ``p`` processors.

    Phase-accurate ledgers give ``sum_i max(W_i/p, D_i)`` (each charged
    phase is one data-parallel superstep); totals-only ledgers fall back
    to the conservative Brent upper bound ``W/p + D``.  Either way the
    result satisfies ``brent_bounds(ledger, p).lower <= t <=
    brent_bounds(ledger, p).upper``.
    """
    if processors < 1:
        raise ValueError("processors >= 1 required")
    if ledger.phases is not None:
        return sum(max(w / processors, d) for w, d in ledger.phases)
    return ledger.work / processors + ledger.depth


def speedup_curve(
    ledger: Ledger, processor_counts: Sequence[int]
) -> list[MachinePoint]:
    """Predicted speedup/efficiency across machine sizes.

    Speedup is measured against the 1-processor simulated time, so the
    curve starts at ~1.0 and saturates near the parallelism factor W/D —
    the quantity Table 1 trades off against work.
    """
    t1 = simulated_time(ledger, 1)
    points: list[MachinePoint] = []
    for p in processor_counts:
        tp = simulated_time(ledger, p)
        points.append(
            MachinePoint(
                processors=p,
                time=tp,
                speedup=t1 / tp if tp > 0 else float("inf"),
                efficiency=t1 / (tp * p) if tp > 0 else float("inf"),
            )
        )
    return points
