"""PRAM work/depth cost ledger.

The paper analyzes algorithms on the PRAM in terms of *work* (total
operations) and *depth* (longest chain of dependent operations) [JáJá 92].
CPython cannot run a PRAM, but the costs are perfectly measurable: every
bulk operation in the library charges the work/depth the paper's analysis
assigns to it, and the ledger accumulates them compositionally.

Sequential composition adds both work and depth; parallel composition adds
work but takes the maximum depth (``parallel()`` context).  This makes the
asymptotic claims of Theorem 1.1 *testable*: benchmarks fit the measured
ledger totals against O(m log n) work and O((n/ρ) log n log ρL) depth.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Ledger", "ParallelBlock"]


@dataclass
class _Charge:
    work: float = 0.0
    depth: float = 0.0


class ParallelBlock:
    """Collects charges from logically concurrent tasks.

    Work adds across tasks, depth is the maximum over tasks.  Obtained via
    :meth:`Ledger.parallel`; on exit the combined charge posts to the
    owning ledger as one sequential phase.
    """

    def __init__(self, ledger: "Ledger", label: str = "") -> None:
        self._ledger = ledger
        self._label = label
        self._work = 0.0
        self._max_depth = 0.0

    def task(self, work: float, depth: float) -> None:
        """Charge one parallel task (e.g. one vertex's local computation)."""
        if work < 0 or depth < 0:
            raise ValueError("work/depth must be non-negative")
        self._work += work
        self._max_depth = max(self._max_depth, depth)

    def __enter__(self) -> "ParallelBlock":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self._ledger.charge(
                work=self._work, depth=self._max_depth, label=self._label
            )


@dataclass
class Ledger:
    """Accumulates PRAM work and depth with per-label breakdowns.

    Attributes
    ----------
    work: total operations charged so far.
    depth: total span charged so far (sequential phases add).
    by_label: per-label ``[work, depth]`` totals for profiling which part
        of an algorithm dominates (the guides' "no optimization without
        measuring" applied to the cost model).
    phases: per-charge ``(work, depth)`` history, kept only when the
        ledger was built with ``record_phases=True`` — the granularity a
        Brent-style machine simulation needs (see
        :mod:`repro.pram.brent`).
    """

    work: float = 0.0
    depth: float = 0.0
    by_label: dict[str, list[float]] = field(default_factory=dict)
    record_phases: bool = False
    phases: list[tuple[float, float]] | None = None

    def __post_init__(self) -> None:
        if self.record_phases and self.phases is None:
            self.phases = []

    def charge(self, *, work: float, depth: float, label: str = "") -> None:
        """Post one sequential phase of ``work`` operations spanning
        ``depth`` dependent steps."""
        if work < 0 or depth < 0:
            raise ValueError("work/depth must be non-negative")
        self.work += work
        self.depth += depth
        if self.phases is not None:
            self.phases.append((work, depth))
        if label:
            acc = self.by_label.setdefault(label, [0.0, 0.0])
            acc[0] += work
            acc[1] += depth

    def parallel(self, label: str = "") -> ParallelBlock:
        """Open a parallel composition block (see :class:`ParallelBlock`)."""
        return ParallelBlock(self, label)

    def merge_parallel(self, other: "Ledger") -> None:
        """Fold another ledger in as if it ran concurrently with everything
        charged so far: work adds, depth takes the max.

        Used by the preprocessing pipeline, whose n ball searches are
        independent PRAM tasks (Lemma 4.2's O(ρ²) depth comes from each
        search, not their number).
        """
        self.work += other.work
        self.depth = max(self.depth, other.depth)
        for label, (w, d) in other.by_label.items():
            acc = self.by_label.setdefault(label, [0.0, 0.0])
            acc[0] += w
            acc[1] = max(acc[1], d)

    @property
    def parallelism(self) -> float:
        """The paper's P = W / D (∞ when depth is zero)."""
        return self.work / self.depth if self.depth > 0 else float("inf")

    def snapshot(self) -> dict[str, float]:
        """Plain-dict summary for reports."""
        return {"work": self.work, "depth": self.depth, "parallelism": self.parallelism}

    def reset(self) -> None:
        """Zero all counters."""
        self.work = 0.0
        self.depth = 0.0
        self.by_label.clear()
        if self.phases is not None:
            self.phases.clear()
