"""Vertex-keyed ordered sets on treaps — Algorithm 2's Q and R.

A :class:`VertexKeyedSet` stores at most one entry per vertex, ordered by a
``(value, vertex)`` key (the paper's lexicographic ordering: "the current
tentative distance of u as the first key, and the vertex label of u as the
second key").  It supports the exact operation set Algorithm 2 uses —
``min``, ``split_leq`` (Line 7), ``remove`` (Lines 12–13), ``decrease_key``
(Lines 17–18), and bulk ``union_values`` / ``difference_vertices`` for the
parallel batch maintenance of Section 3.3 — charging each operation's PRAM
cost to an optional ledger.
"""

from __future__ import annotations

import math
from typing import Iterable

from . import treap
from .ledger import Ledger

__all__ = ["VertexKeyedSet"]


def _log2(n: int) -> float:
    return math.log2(n) if n >= 2 else 1.0


class VertexKeyedSet:
    """Ordered set of ``(value, vertex)`` with vertex-indexed lookup."""

    def __init__(self, *, ledger: Ledger | None = None, label: str = "set") -> None:
        self._root: treap.Treap = None
        self._value: dict[int, float] = {}
        self._ledger = ledger
        self._label = label

    # ------------------------------------------------------------------ #
    def _charge(self, work: float, depth: float) -> None:
        if self._ledger is not None:
            self._ledger.charge(work=work, depth=depth, label=self._label)

    def __len__(self) -> int:
        return len(self._value)

    def __contains__(self, vertex: int) -> bool:
        return vertex in self._value

    def value_of(self, vertex: int) -> float:
        """Current key value of ``vertex`` (KeyError if absent)."""
        return self._value[vertex]

    # ------------------------------------------------------------------ #
    def insert(self, vertex: int, value: float) -> None:
        """Insert or overwrite the entry for ``vertex``."""
        logn = _log2(len(self._value) + 1)
        if vertex in self._value:
            self._root = treap.delete(self._root, (self._value[vertex], vertex))
            self._charge(logn, logn)
        self._root = treap.insert(self._root, (value, vertex))
        self._value[vertex] = value
        self._charge(logn, logn)

    def remove(self, vertex: int) -> None:
        """Remove ``vertex`` (no-op when absent)."""
        if vertex not in self._value:
            return
        logn = _log2(len(self._value))
        self._root = treap.delete(self._root, (self._value.pop(vertex), vertex))
        self._charge(logn, logn)

    def decrease_key(self, vertex: int, value: float) -> None:
        """Lower the key of ``vertex`` to ``value`` (must not increase)."""
        old = self._value.get(vertex)
        if old is not None and value > old:
            raise ValueError(f"decrease_key would increase key of {vertex}")
        self.insert(vertex, value)

    # ------------------------------------------------------------------ #
    def min(self) -> tuple[float, int]:
        """Smallest ``(value, vertex)`` — Algorithm 2's R.extract-min peek."""
        key = treap.find_min(self._root)
        self._charge(_log2(max(1, len(self._value))), _log2(max(1, len(self._value))))
        return key

    def split_leq(self, value: float) -> list[tuple[float, int]]:
        """Remove and return all entries with key value ≤ ``value``
        (ties in value are all taken, any vertex id) — Q.split(d_i)."""
        bound = (value, float("inf"))  # above every vertex id at this value
        low, high = treap.split_leq(self._root, bound)
        self._root = high
        taken = treap.to_list(low)
        for _, v in taken:
            del self._value[v]
        n = max(1, len(self._value) + len(taken))
        self._charge(max(1.0, len(taken)) * _log2(n), _log2(n))
        return taken

    # ------------------------------------------------------------------ #
    # Bulk parallel maintenance (Section 3.3): the substep builds a BST of
    # successful relaxations, then difference removes out-of-date keys and
    # union inserts the new ones.
    # ------------------------------------------------------------------ #
    def difference_vertices(self, vertices: Iterable[int]) -> None:
        """Bulk-remove the current entries of ``vertices``."""
        keys = sorted(
            (self._value[v], v) for v in set(vertices) if v in self._value
        )
        if not keys:
            return
        b = treap.from_sorted(keys)
        self._root = treap.difference(self._root, b)
        for _, v in keys:
            del self._value[v]
        n = max(2, len(self._value) + len(keys))
        self._charge(len(keys) * _log2(n), _log2(n))

    def union_values(self, entries: Iterable[tuple[int, float]]) -> None:
        """Bulk-insert ``(vertex, value)`` entries; overwrites stale keys
        via a difference pass first (the paper's out-of-date-key removal).
        Duplicate vertices within one batch collapse last-wins (the same
        semantics as ``dict(entries)``), keeping the one-entry-per-vertex
        invariant even for adversarial inputs.
        """
        merged: dict[int, float] = {}
        for v, value in entries:
            merged[v] = value
        if not merged:
            return
        self.difference_vertices(merged)
        keys = sorted((value, v) for v, value in merged.items())
        b = treap.from_sorted(keys)
        self._root = treap.union(self._root, b)
        for value, v in keys:
            self._value[v] = value
        n = max(2, len(self._value))
        self._charge(len(keys) * _log2(n), _log2(n))

    # ------------------------------------------------------------------ #
    def items_sorted(self) -> list[tuple[float, int]]:
        """All entries in key order (for tests)."""
        return treap.to_list(self._root)
