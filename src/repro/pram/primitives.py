"""Data-parallel primitives with PRAM cost accounting.

These are the building blocks the paper's implementation assumes:
priority-write / WriteMin (concurrent min-scatter), pack (filter by flag),
and prefix sums.  Each executes vectorized in NumPy (one "parallel
instruction" per call on the host) and charges the textbook PRAM costs to
an optional :class:`~repro.pram.ledger.Ledger`:

========== ============== ================
primitive   work            depth
========== ============== ================
write_min   O(n)            O(1)  (CRCW)
pack        O(n)            O(log n)
prefix_sum  O(n)            O(log n)
========== ============== ================
"""

from __future__ import annotations

import math

import numpy as np

from .ledger import Ledger

__all__ = ["write_min", "pack", "prefix_sum", "parallel_for_cost"]


def _log2(n: int) -> float:
    return math.log2(n) if n >= 2 else 1.0


def write_min(
    values: np.ndarray,
    positions: np.ndarray,
    updates: np.ndarray,
    *,
    ledger: Ledger | None = None,
) -> np.ndarray:
    """CRCW priority-write: ``values[positions[i]] = min(..., updates[i])``.

    Returns the (unique, sorted) positions whose value strictly decreased —
    exactly the "successful relaxations" the paper's substep needs.
    Duplicate positions combine by minimum, matching the arbitrary-winner
    CRCW semantics with priority resolution.
    """
    if len(positions) != len(updates):
        raise ValueError("positions and updates must have equal length")
    if len(positions) == 0:
        return np.empty(0, dtype=np.int64)
    uniq = np.unique(positions)
    before = values[uniq].copy()
    np.minimum.at(values, positions, updates)
    if ledger is not None:
        ledger.charge(work=float(len(positions)), depth=1.0, label="write_min")
    return uniq[values[uniq] < before]


def pack(
    items: np.ndarray, flags: np.ndarray, *, ledger: Ledger | None = None
) -> np.ndarray:
    """Parallel pack: keep ``items[i]`` where ``flags[i]``.

    O(n) work, O(log n) depth (prefix-sum based compaction on a PRAM).
    """
    if len(items) != len(flags):
        raise ValueError("items and flags must have equal length")
    out = items[flags.astype(bool)]
    if ledger is not None:
        n = max(1, len(items))
        ledger.charge(work=float(n), depth=_log2(n), label="pack")
    return out


def prefix_sum(
    values: np.ndarray, *, inclusive: bool = True, ledger: Ledger | None = None
) -> np.ndarray:
    """Parallel scan (+), inclusive by default.

    O(n) work, O(log n) depth (Blelloch scan).
    """
    cs = np.cumsum(values)
    if not inclusive:
        cs = np.concatenate([[values.dtype.type(0)], cs[:-1]])
    if ledger is not None:
        n = max(1, len(values))
        ledger.charge(work=float(n), depth=_log2(n), label="prefix_sum")
    return cs


def parallel_for_cost(
    n_tasks: int, per_task_work: float, per_task_depth: float
) -> tuple[float, float]:
    """Cost of a flat parallel-for: ``(n * w, d)``.

    A convenience for charging loops that the host executes vectorized.
    """
    if n_tasks < 0:
        raise ValueError("n_tasks must be non-negative")
    return n_tasks * per_task_work, per_task_depth
