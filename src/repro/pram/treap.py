"""Join-based balanced treaps — the paper's ordered-set substrate.

Algorithm 2 stores the tentative-distance sets Q and R in balanced BSTs
supporting *split*, *union*, and *difference* in O(|A| log |B|) work and
O(log |B|) depth (their refs [3, 21, 22, 23]; "Parallel ordered sets using
join" [2]).  This module implements the join-based formulation on treaps:
every operation is expressed through ``split`` and ``join``, which is the
decomposition that parallelizes (the two recursive calls of union/
difference are independent).

Nodes are immutable (persistent): operations return new roots and share
subtrees, exactly like the parallel versions in the literature.  Priorities
are a deterministic hash of the key, so structures are reproducible.

Keys may be any totally ordered Python values (the solvers use
``(distance, vertex)`` pairs).
"""

from __future__ import annotations

import hashlib
from typing import Any, Iterator, Optional

__all__ = [
    "TreapNode",
    "size",
    "insert",
    "delete",
    "split",
    "split_leq",
    "join",
    "join2",
    "union",
    "difference",
    "find",
    "find_min",
    "find_max",
    "iter_keys",
    "to_list",
    "from_sorted",
    "height",
]


class TreapNode:
    """One immutable treap node (max-heap on ``prio``, BST on ``key``)."""

    __slots__ = ("key", "prio", "left", "right", "count")

    def __init__(
        self,
        key: Any,
        prio: int,
        left: Optional["TreapNode"],
        right: Optional["TreapNode"],
    ) -> None:
        self.key = key
        self.prio = prio
        self.left = left
        self.right = right
        self.count = 1 + size(left) + size(right)


Treap = Optional[TreapNode]


def _priority(key: Any) -> int:
    """Deterministic pseudo-random priority derived from the key."""
    digest = hashlib.blake2b(repr(key).encode(), digest_size=8).digest()
    return int.from_bytes(digest, "little")


def _node(key: Any, prio: int, left: Treap, right: Treap) -> TreapNode:
    return TreapNode(key, prio, left, right)


def size(t: Treap) -> int:
    """Number of keys in the treap (O(1) via size augmentation)."""
    return t.count if t is not None else 0


def height(t: Treap) -> int:
    """Tree height (O(n); for tests of the O(log n) expectation)."""
    if t is None:
        return 0
    return 1 + max(height(t.left), height(t.right))


def split(t: Treap, key: Any) -> tuple[Treap, bool, Treap]:
    """Split into ``(keys < key, key present?, keys > key)``."""
    if t is None:
        return None, False, None
    if key < t.key:
        l, found, r = split(t.left, key)
        return l, found, _node(t.key, t.prio, r, t.right)
    if t.key < key:
        l, found, r = split(t.right, key)
        return _node(t.key, t.prio, t.left, l), found, r
    return t.left, True, t.right


def split_leq(t: Treap, key: Any) -> tuple[Treap, Treap]:
    """Split into ``(keys <= key, keys > key)`` — Algorithm 2's Q.split(d_i)."""
    l, found, r = split(t, key)
    if found:
        l = join2(l, _node(key, _priority(key), None, None))
    return l, r


def join2(l: Treap, r: Treap) -> Treap:
    """Join two treaps with all keys of ``l`` below all keys of ``r``."""
    if l is None:
        return r
    if r is None:
        return l
    if l.prio >= r.prio:
        return _node(l.key, l.prio, l.left, join2(l.right, r))
    return _node(r.key, r.prio, join2(l, r.left), r.right)


def join(l: Treap, key: Any, r: Treap) -> Treap:
    """Three-way join: ``l < key < r``."""
    return join2(l, join2(_node(key, _priority(key), None, None), r))


def insert(t: Treap, key: Any) -> Treap:
    """Insert ``key`` (idempotent on duplicates)."""
    l, _, r = split(t, key)
    return join(l, key, r)


def delete(t: Treap, key: Any) -> Treap:
    """Delete ``key`` if present."""
    l, _, r = split(t, key)
    return join2(l, r)


def find(t: Treap, key: Any) -> bool:
    """Membership test."""
    while t is not None:
        if key < t.key:
            t = t.left
        elif t.key < key:
            t = t.right
        else:
            return True
    return False


def find_min(t: Treap) -> Any:
    """Smallest key; raises ``KeyError`` on an empty treap."""
    if t is None:
        raise KeyError("empty treap")
    while t.left is not None:
        t = t.left
    return t.key


def find_max(t: Treap) -> Any:
    """Largest key; raises ``KeyError`` on an empty treap."""
    if t is None:
        raise KeyError("empty treap")
    while t.right is not None:
        t = t.right
    return t.key


def union(a: Treap, b: Treap) -> Treap:
    """Set union; O(|A| log |B|) work, O(log |B|) depth in parallel form.

    The recursion on (a.left ∪ l) and (a.right ∪ r) is independent — the
    parallel version forks them; here they run sequentially and the caller
    charges the parallel cost to a ledger.
    """
    if a is None:
        return b
    if b is None:
        return a
    if a.prio < b.prio:
        a, b = b, a
    l, _, r = split(b, a.key)
    return _node(a.key, a.prio, union(a.left, l), union(a.right, r))


def difference(a: Treap, b: Treap) -> Treap:
    """Keys of ``a`` not in ``b`` (same parallel cost story as union)."""
    if a is None or b is None:
        return a
    l, _, r = split(a, b.key)
    return join2(difference(l, b.left), difference(r, b.right))


def to_list(t: Treap) -> list:
    """In-order key list (sorted)."""
    out: list = []
    stack: list[TreapNode] = []
    while t is not None or stack:
        while t is not None:
            stack.append(t)
            t = t.left
        t = stack.pop()
        out.append(t.key)
        t = t.right
    return out


def iter_keys(t: Treap) -> Iterator:
    """Lazy in-order iteration."""
    stack: list[TreapNode] = []
    while t is not None or stack:
        while t is not None:
            stack.append(t)
            t = t.left
        t = stack.pop()
        yield t.key
        t = t.right


def from_sorted(keys: list) -> Treap:
    """Build from a sorted, duplicate-free key list (O(n log n) expected)."""
    t: Treap = None
    for key in keys:  # priorities randomize structure; repeated join2 is fine
        t = join2(t, _node(key, _priority(key), None, None))
    return t
