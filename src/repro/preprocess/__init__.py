"""Preprocessing (Section 4): balls, radii, and (k,ρ)-shortcutting.

Ball searches — the n truncated Dijkstras of Lemma 4.2 that everything
here is built on — run through a named **backend registry**
(:mod:`repro.preprocess.backends`), selected per call with
``backend="scalar" | "batched"``:

* ``"scalar"`` — the reference: one heap Dijkstra per source
  (:func:`ball_search`).
* ``"batched"`` (default for :func:`compute_radii`,
  :func:`compute_radii_sweep` and :func:`build_kr_graph`) — the
  slot-based vectorized engine (:mod:`repro.preprocess.batched`) that
  grows whole blocks of balls with one flat CSR gather + scatter-min per
  round.

Shortcut *selection* (§4.2's greedy/DP/full heuristics) has the same
two-speed structure: the per-tree reference walkers
(:mod:`~repro.preprocess.dp`, :mod:`~repro.preprocess.greedy`,
:mod:`~repro.preprocess.shortcut_one`) and the forest-level engine
(:mod:`~repro.preprocess.select_batched`) that runs them over whole
:class:`TreeBlock` slot blocks per NumPy pass — registered as the
batched backend's ``select_fn`` so ``build_kr_graph`` and
``count_shortcuts_sweep`` are vectorized end to end.

Backends are bit-identical on every output (settle orders, distances,
min-hop trees, ``r_ρ`` arrays, shortcut selections); the batched engine
is simply much faster, and ``n_jobs`` composes with either to fan source
chunks over the fork pool.
"""

from .backends import (
    BallBackendSpec,
    available_ball_backends,
    get_ball_backend,
    register_ball_backend,
)
from .ball import BallSearchResult, ball_search, sort_adjacency_by_weight
from .batched import (
    batched_ball_search,
    batched_ball_trees,
    batched_radii,
    batched_tree_block,
    default_slot_block,
    iter_tree_blocks,
)
from .count import ShortcutCounts, count_shortcuts_sweep, sample_sources
from .dp import dp_count, dp_select, dp_table
from .exact import (
    KrReport,
    k_radii,
    k_radius,
    rho_nearest_distance,
    verify_kr_graph,
)
from .greedy import greedy_count, greedy_depth_mask, greedy_select
from .pipeline import (
    HEURISTICS,
    PreprocessResult,
    ShardedPreprocessResult,
    build_kr_graph,
    build_sharded_kr_graph,
)
from .radii import compute_radii, compute_radii_sweep
from .select_batched import (
    batched_select,
    forest_counts,
    forest_dp_counts,
    forest_dp_select,
    forest_dp_tables,
    forest_select,
    forest_select_positions,
    forest_shortcuts,
)
from .shortcut_one import full_count, full_depth_mask, full_select
from .tree import BallTree, TreeBlock, block_from_trees, build_ball_tree

__all__ = [
    "BallBackendSpec",
    "BallSearchResult",
    "BallTree",
    "HEURISTICS",
    "KrReport",
    "PreprocessResult",
    "ShardedPreprocessResult",
    "ShortcutCounts",
    "TreeBlock",
    "available_ball_backends",
    "ball_search",
    "batched_ball_search",
    "batched_ball_trees",
    "batched_radii",
    "batched_select",
    "batched_tree_block",
    "block_from_trees",
    "build_ball_tree",
    "build_kr_graph",
    "build_sharded_kr_graph",
    "compute_radii",
    "compute_radii_sweep",
    "count_shortcuts_sweep",
    "default_slot_block",
    "dp_count",
    "dp_select",
    "dp_table",
    "forest_counts",
    "forest_dp_counts",
    "forest_dp_select",
    "forest_dp_tables",
    "forest_select",
    "forest_select_positions",
    "forest_shortcuts",
    "full_count",
    "full_depth_mask",
    "full_select",
    "get_ball_backend",
    "greedy_count",
    "greedy_depth_mask",
    "greedy_select",
    "iter_tree_blocks",
    "k_radii",
    "k_radius",
    "register_ball_backend",
    "rho_nearest_distance",
    "sample_sources",
    "sort_adjacency_by_weight",
    "verify_kr_graph",
]
