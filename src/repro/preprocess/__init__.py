"""Preprocessing (Section 4): balls, radii, and (k,ρ)-shortcutting."""

from .ball import BallSearchResult, ball_search, sort_adjacency_by_weight
from .count import ShortcutCounts, count_shortcuts_sweep, sample_sources
from .dp import dp_count, dp_select, dp_table
from .exact import (
    KrReport,
    k_radii,
    k_radius,
    rho_nearest_distance,
    verify_kr_graph,
)
from .greedy import greedy_count, greedy_select
from .pipeline import HEURISTICS, PreprocessResult, build_kr_graph
from .radii import compute_radii, compute_radii_sweep
from .shortcut_one import full_select
from .tree import BallTree, build_ball_tree

__all__ = [
    "BallSearchResult",
    "BallTree",
    "HEURISTICS",
    "KrReport",
    "PreprocessResult",
    "ShortcutCounts",
    "ball_search",
    "build_ball_tree",
    "build_kr_graph",
    "compute_radii",
    "compute_radii_sweep",
    "count_shortcuts_sweep",
    "dp_count",
    "dp_select",
    "dp_table",
    "full_select",
    "greedy_count",
    "greedy_select",
    "k_radii",
    "k_radius",
    "rho_nearest_distance",
    "sample_sources",
    "sort_adjacency_by_weight",
    "verify_kr_graph",
]
