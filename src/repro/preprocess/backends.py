"""Named ball-search backend registry — how preprocessing picks a kernel.

The same pattern as :mod:`repro.engine.registry`, one layer down the
stack: every consumer of ball searches (radii sweeps, (k,ρ)-graph
construction, shortcut counting) dispatches by backend *name*, so a new
kernel — today the batched slot engine, tomorrow an accelerator port —
is one :func:`register_ball_backend` call away from serving every
preprocessing entry point, benchmarkable and parity-testable against the
scalar reference with no pipeline changes.

Every backend shares one calling convention::

    fn(graph, sources, rho, *,
       include_ties=True, lightest_edges=False, weight_sorted=False)
        -> list[BallSearchResult]

and may optionally provide a *radii fast path* (``radii_fn``) computing
``r_ρ(v)`` order statistics without materializing full ball results;
:meth:`BallBackendSpec.compute_radii` falls back to full searches when a
backend has none.

Built-in backends
-----------------
``scalar``   one truncated heap Dijkstra per source (the reference).
``batched``  the slot-based frontier kernel (:mod:`repro.preprocess.batched`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..graphs.csr import CSRGraph
from .ball import BallSearchResult, ball_search
from .batched import batched_ball_search, batched_ball_trees, batched_radii
from .tree import BallTree, build_ball_tree

__all__ = [
    "BallBackendSpec",
    "available_ball_backends",
    "get_ball_backend",
    "register_ball_backend",
]

BallBackendFn = Callable[..., "list[BallSearchResult]"]


@dataclass(frozen=True)
class BallBackendSpec:
    """One registered ball-search backend.

    Attributes
    ----------
    name: registry key (what ``backend=...`` takes).
    fn: the batch searcher (see module docstring for the convention).
    radii_fn: optional ``(graph, sources, rhos) -> (|sources|, |ρs|)``
        array fast path; ``None`` falls back to full ball searches.
    trees_fn: optional ``(graph, sources, rho, *, include_ties) ->
        (radii, [BallTree])`` fast path for the (k,ρ)-pipeline;
        ``None`` falls back to per-ball tree construction.
    description: one-liner for ``available_ball_backends`` listings.
    """

    name: str
    fn: BallBackendFn
    radii_fn: Callable[..., np.ndarray] | None = None
    trees_fn: Callable[..., "tuple[np.ndarray, list[BallTree]]"] | None = None
    description: str = ""

    def search(
        self,
        graph: CSRGraph,
        sources: np.ndarray,
        rho: int,
        *,
        include_ties: bool = True,
        lightest_edges: bool = False,
        weight_sorted: bool = False,
    ) -> list[BallSearchResult]:
        """Run the backend over ``sources``."""
        return self.fn(
            graph,
            sources,
            rho,
            include_ties=include_ties,
            lightest_edges=lightest_edges,
            weight_sorted=weight_sorted,
        )

    def compute_radii(
        self, graph: CSRGraph, sources: np.ndarray, rhos: Sequence[int]
    ) -> np.ndarray:
        """``r_ρ`` per (source, ρ) — fast path when the backend has one."""
        if self.radii_fn is not None:
            return self.radii_fn(graph, sources, tuple(rhos))
        # Stream one source at a time so at most one BallSearchResult is
        # live — O(ρ) extra memory instead of O(n·ρ) for the fallback.
        rho_max = max(rhos)
        out = np.empty((len(sources), len(rhos)), dtype=np.float64)
        for i, s in enumerate(sources):
            (ball,) = self.search(
                graph,
                np.asarray([s], dtype=np.int64),
                rho_max,
                include_ties=False,
            )
            for j, rho in enumerate(rhos):
                out[i, j] = ball.r_rho(rho)
        return out

    def compute_trees(
        self,
        graph: CSRGraph,
        sources: np.ndarray,
        rho: int,
        *,
        include_ties: bool = True,
    ) -> tuple[np.ndarray, list[BallTree]]:
        """``(r_ρ, ball trees)`` per source — the (k,ρ)-pipeline input."""
        if self.trees_fn is not None:
            return self.trees_fn(
                graph, sources, rho, include_ties=include_ties
            )
        # Stream one source at a time so at most one BallSearchResult is
        # live — O(ρ) extra memory instead of O(n·ρ) for the fallback.
        radii = np.empty(len(sources), dtype=np.float64)
        trees = []
        for i, s in enumerate(sources):
            (ball,) = self.search(
                graph,
                np.asarray([s], dtype=np.int64),
                rho,
                include_ties=include_ties,
            )
            radii[i] = ball.r_rho(rho)
            trees.append(build_ball_tree(ball))
        return radii, trees


_REGISTRY: dict[str, BallBackendSpec] = {}


def register_ball_backend(
    name: str,
    fn: BallBackendFn,
    *,
    radii_fn: Callable[..., np.ndarray] | None = None,
    trees_fn: Callable[..., tuple] | None = None,
    description: str = "",
    overwrite: bool = False,
) -> BallBackendSpec:
    """Register ``fn`` under ``name``; returns the spec.

    Re-registering an existing name raises unless ``overwrite=True``.
    """
    if not name or name == "auto":
        raise ValueError(f"invalid ball backend name {name!r}")
    if name in _REGISTRY and not overwrite:
        raise ValueError(f"ball backend {name!r} already registered")
    spec = BallBackendSpec(
        name=name,
        fn=fn,
        radii_fn=radii_fn,
        trees_fn=trees_fn,
        description=description,
    )
    _REGISTRY[name] = spec
    return spec


def get_ball_backend(name: str) -> BallBackendSpec:
    """Look up a backend; ``ValueError`` lists the registered names."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown ball backend {name!r}; registered backends: "
            f"{', '.join(sorted(_REGISTRY))}"
        ) from None


def available_ball_backends() -> tuple[str, ...]:
    """Sorted names of every registered backend."""
    return tuple(sorted(_REGISTRY))


def _scalar_search(
    graph: CSRGraph,
    sources: np.ndarray,
    rho: int,
    *,
    include_ties: bool = True,
    lightest_edges: bool = False,
    weight_sorted: bool = False,
) -> list[BallSearchResult]:
    return [
        ball_search(
            graph,
            int(s),
            rho,
            include_ties=include_ties,
            lightest_edges=lightest_edges,
            weight_sorted=weight_sorted,
        )
        for s in sources
    ]


register_ball_backend(
    "scalar",
    _scalar_search,
    description="one truncated heap Dijkstra per source (reference)",
)
register_ball_backend(
    "batched",
    batched_ball_search,
    radii_fn=batched_radii,
    trees_fn=batched_ball_trees,
    description="slot-based vectorized frontier kernel, many balls per round",
)
