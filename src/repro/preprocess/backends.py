"""Named ball-search backend registry — how preprocessing picks a kernel.

The same pattern as :mod:`repro.engine.registry`, one layer down the
stack: every consumer of ball searches (radii sweeps, (k,ρ)-graph
construction, shortcut counting) dispatches by backend *name*, so a new
kernel — today the batched slot engine, tomorrow an accelerator port —
is one :func:`register_ball_backend` call away from serving every
preprocessing entry point, benchmarkable and parity-testable against the
scalar reference with no pipeline changes.

Every backend shares one calling convention::

    fn(graph, sources, rho, *,
       include_ties=True, lightest_edges=False, weight_sorted=False)
        -> list[BallSearchResult]

and may optionally provide *fast paths* that skip intermediate
materialization; the :class:`BallBackendSpec` methods fall back to full
searches (or per-tree walks) when a backend has none:

``radii_fn``
    ``(graph, sources, rhos) -> (|sources|, |ρs|)`` — ``r_ρ(v)`` order
    statistics without full ball results
    (:meth:`BallBackendSpec.compute_radii`).
``trees_fn``
    ``(graph, sources, rho, *, include_ties) -> (radii, [BallTree])`` —
    per-tree objects without ``BallSearchResult`` intermediaries
    (:meth:`BallBackendSpec.compute_trees`).
``block_fn``
    ``(graph, sources, rho, *, include_ties) -> (radii, TreeBlock)`` —
    the flat (slot, local-node) forest layout, skipping even the
    per-tree objects (:meth:`BallBackendSpec.compute_tree_block`); the
    shortcut-count sweep runs its prefix trims and forest counts off
    this.
``select_fn``
    ``(graph, sources, rho, k, heuristic, *, include_ties) ->
    (radii, src, dst, weight)`` — the *selection fast path*: ball
    construction **and** §4.2 shortcut selection fused end to end
    (:meth:`BallBackendSpec.compute_shortcuts`).  The batched backend
    routes this through the forest-level engine
    (:mod:`repro.preprocess.select_batched`), which runs the DP/greedy/
    full heuristics over whole slot blocks of trees per NumPy pass; the
    scalar fallback walks each tree with the reference per-tree
    selectors (:data:`HEURISTICS`).  Outputs are bit-identical either
    way — selections, ordering, dtypes.

Built-in backends
-----------------
``scalar``   one truncated heap Dijkstra per source (the reference).
``batched``  the slot-based frontier kernel (:mod:`repro.preprocess.batched`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..graphs.csr import CSRGraph
from .ball import BallSearchResult, ball_search
from .batched import (
    batched_ball_search,
    batched_ball_trees,
    batched_radii,
    batched_tree_block,
)
from .dp import dp_select
from .greedy import greedy_select
from .select_batched import batched_select
from .shortcut_one import full_select
from .tree import (
    BallTree,
    TreeBlock,
    _concat_or_empty,
    block_from_trees,
    build_ball_tree,
)

__all__ = [
    "BallBackendSpec",
    "HEURISTICS",
    "available_ball_backends",
    "get_ball_backend",
    "register_ball_backend",
]

#: heuristic name -> (tree, k) -> selected local node ids — the per-tree
#: reference selectors (§4.1–4.2), used directly by backends without a
#: ``select_fn`` and re-exported by :mod:`repro.preprocess.pipeline`.
HEURISTICS: dict[str, Callable] = {
    "full": full_select,
    "greedy": greedy_select,
    "dp": dp_select,
}

BallBackendFn = Callable[..., "list[BallSearchResult]"]


@dataclass(frozen=True)
class BallBackendSpec:
    """One registered ball-search backend.

    Attributes
    ----------
    name: registry key (what ``backend=...`` takes).
    fn: the batch searcher (see module docstring for the convention).
    radii_fn: optional ``(graph, sources, rhos) -> (|sources|, |ρs|)``
        array fast path; ``None`` falls back to full ball searches.
    trees_fn: optional ``(graph, sources, rho, *, include_ties) ->
        (radii, [BallTree])`` fast path for the (k,ρ)-pipeline;
        ``None`` falls back to per-ball tree construction.
    block_fn: optional ``(graph, sources, rho, *, include_ties) ->
        (radii, TreeBlock)`` forest-layout fast path; ``None`` falls
        back to ``compute_trees`` + ``block_from_trees``.
    select_fn: optional ``(graph, sources, rho, k, heuristic, *,
        include_ties) -> (radii, src, dst, weight)`` selection fast
        path (balls + §4.2 selection fused); ``None`` falls back to the
        per-tree :data:`HEURISTICS` walkers over ``compute_trees``.
    description: one-liner for ``available_ball_backends`` listings.
    """

    name: str
    fn: BallBackendFn
    radii_fn: Callable[..., np.ndarray] | None = None
    trees_fn: Callable[..., "tuple[np.ndarray, list[BallTree]]"] | None = None
    block_fn: Callable[..., "tuple[np.ndarray, TreeBlock]"] | None = None
    select_fn: Callable[..., tuple] | None = None
    description: str = ""

    def search(
        self,
        graph: CSRGraph,
        sources: np.ndarray,
        rho: int,
        *,
        include_ties: bool = True,
        lightest_edges: bool = False,
        weight_sorted: bool = False,
    ) -> list[BallSearchResult]:
        """Run the backend over ``sources``."""
        return self.fn(
            graph,
            sources,
            rho,
            include_ties=include_ties,
            lightest_edges=lightest_edges,
            weight_sorted=weight_sorted,
        )

    def compute_radii(
        self, graph: CSRGraph, sources: np.ndarray, rhos: Sequence[int]
    ) -> np.ndarray:
        """``r_ρ`` per (source, ρ) — fast path when the backend has one."""
        if self.radii_fn is not None:
            return self.radii_fn(graph, sources, tuple(rhos))
        # Stream one source at a time so at most one BallSearchResult is
        # live — O(ρ) extra memory instead of O(n·ρ) for the fallback.
        rho_max = max(rhos)
        out = np.empty((len(sources), len(rhos)), dtype=np.float64)
        for i, s in enumerate(sources):
            (ball,) = self.search(
                graph,
                np.asarray([s], dtype=np.int64),
                rho_max,
                include_ties=False,
            )
            for j, rho in enumerate(rhos):
                out[i, j] = ball.r_rho(rho)
        return out

    def compute_trees(
        self,
        graph: CSRGraph,
        sources: np.ndarray,
        rho: int,
        *,
        include_ties: bool = True,
    ) -> tuple[np.ndarray, list[BallTree]]:
        """``(r_ρ, ball trees)`` per source — the (k,ρ)-pipeline input."""
        if self.trees_fn is not None:
            return self.trees_fn(
                graph, sources, rho, include_ties=include_ties
            )
        # Stream one source at a time so at most one BallSearchResult is
        # live — O(ρ) extra memory instead of O(n·ρ) for the fallback.
        radii = np.empty(len(sources), dtype=np.float64)
        trees = []
        for i, s in enumerate(sources):
            (ball,) = self.search(
                graph,
                np.asarray([s], dtype=np.int64),
                rho,
                include_ties=include_ties,
            )
            radii[i] = ball.r_rho(rho)
            trees.append(build_ball_tree(ball))
        return radii, trees

    def compute_tree_block(
        self,
        graph: CSRGraph,
        sources: np.ndarray,
        rho: int,
        *,
        include_ties: bool = True,
    ) -> tuple[np.ndarray, TreeBlock]:
        """``(r_ρ, forest TreeBlock)`` per source chunk — the flat layout
        the forest selection/count engine consumes."""
        if self.block_fn is not None:
            return self.block_fn(graph, sources, rho, include_ties=include_ties)
        radii, trees = self.compute_trees(
            graph, sources, rho, include_ties=include_ties
        )
        return radii, block_from_trees(trees)

    def compute_shortcuts(
        self,
        graph: CSRGraph,
        sources: np.ndarray,
        rho: int,
        k: int,
        heuristic: str,
        *,
        include_ties: bool = True,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """``(r_ρ, src, dst, weight)`` — radii plus selected shortcut
        triples per source chunk, the (k,ρ)-pipeline's whole worker step.

        Dispatches to ``select_fn`` when the backend has one (the batched
        backend's forest-level engine); the fallback walks each tree with
        the per-tree reference selectors.  Outputs are bit-identical
        across the two routes.
        """
        if heuristic not in HEURISTICS:
            raise ValueError(
                f"unknown heuristic {heuristic!r}; try {sorted(HEURISTICS)}"
            )
        if self.select_fn is not None:
            return self.select_fn(
                graph, sources, rho, k, heuristic, include_ties=include_ties
            )
        select = HEURISTICS[heuristic]
        radii, trees = self.compute_trees(
            graph, sources, rho, include_ties=include_ties
        )
        src_l: list[np.ndarray] = []
        dst_l: list[np.ndarray] = []
        w_l: list[np.ndarray] = []
        for s, tree in zip(sources, trees):
            chosen = select(tree, k)
            if len(chosen):
                src_l.append(np.full(len(chosen), int(s), dtype=np.int64))
                dst_l.append(tree.vertices[chosen])
                w_l.append(tree.dist[chosen])
        return (
            radii,
            _concat_or_empty(src_l, np.int64),
            _concat_or_empty(dst_l, np.int64),
            _concat_or_empty(w_l, np.float64),
        )


_REGISTRY: dict[str, BallBackendSpec] = {}


def register_ball_backend(
    name: str,
    fn: BallBackendFn,
    *,
    radii_fn: Callable[..., np.ndarray] | None = None,
    trees_fn: Callable[..., tuple] | None = None,
    block_fn: Callable[..., tuple] | None = None,
    select_fn: Callable[..., tuple] | None = None,
    description: str = "",
    overwrite: bool = False,
) -> BallBackendSpec:
    """Register ``fn`` under ``name``; returns the spec.

    The optional fast paths (``radii_fn``, ``trees_fn``, ``block_fn``,
    ``select_fn`` — see the module docstring for each convention) default
    to ``None``, in which case the spec's ``compute_*`` methods fall back
    to reference routes built on ``fn``.  Re-registering an existing name
    raises unless ``overwrite=True``.
    """
    if not name or name == "auto":
        raise ValueError(f"invalid ball backend name {name!r}")
    if name in _REGISTRY and not overwrite:
        raise ValueError(f"ball backend {name!r} already registered")
    spec = BallBackendSpec(
        name=name,
        fn=fn,
        radii_fn=radii_fn,
        trees_fn=trees_fn,
        block_fn=block_fn,
        select_fn=select_fn,
        description=description,
    )
    _REGISTRY[name] = spec
    return spec


def get_ball_backend(name: str) -> BallBackendSpec:
    """Look up a backend; ``ValueError`` lists the registered names."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown ball backend {name!r}; registered backends: "
            f"{', '.join(sorted(_REGISTRY))}"
        ) from None


def available_ball_backends() -> tuple[str, ...]:
    """Sorted names of every registered backend."""
    return tuple(sorted(_REGISTRY))


def _scalar_search(
    graph: CSRGraph,
    sources: np.ndarray,
    rho: int,
    *,
    include_ties: bool = True,
    lightest_edges: bool = False,
    weight_sorted: bool = False,
) -> list[BallSearchResult]:
    return [
        ball_search(
            graph,
            int(s),
            rho,
            include_ties=include_ties,
            lightest_edges=lightest_edges,
            weight_sorted=weight_sorted,
        )
        for s in sources
    ]


register_ball_backend(
    "scalar",
    _scalar_search,
    description="one truncated heap Dijkstra per source (reference)",
)
register_ball_backend(
    "batched",
    batched_ball_search,
    radii_fn=batched_radii,
    trees_fn=batched_ball_trees,
    block_fn=batched_tree_block,
    select_fn=batched_select,
    description="slot-based vectorized frontier kernel, many balls per round",
)
