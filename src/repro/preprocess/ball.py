"""Truncated Dijkstra ball search (Lemma 4.2).

For every source the preprocessing phase needs its ρ-nearest ball: the ρ
closest vertices (counting the source itself — the paper's r_ρ convention,
pinned by the ρ=1 rows of Tables 4–7), their distances, and a *min-hop*
shortest-path tree over them (the tree §4.2.2's DP heuristic optimizes).

Two fidelity knobs from the paper:

* ``include_ties`` — §5.1's modification: "instead of breaking ties
  arbitrarily and taking exactly ρ neighbors, we continue until all
  vertices with distance r_ρ(·) are visited".
* ``lightest_edges`` — Lemma 4.2's work bound comes from considering only
  the lightest ρ edges out of each vertex; this is exact for the ρ-ball
  interior but can miss boundary ties, so it is off by default and the
  ties caveat is documented here rather than hidden.
"""

from __future__ import annotations

import heapq
import weakref
from dataclasses import dataclass

import numpy as np

from ..graphs.csr import CSRGraph

__all__ = ["BallSearchResult", "ball_search", "sort_adjacency_by_weight"]

#: memo of id(graph) -> weight-sorted graph.  Keyed by identity (graphs
#: are immutable) and evicted by a weakref.finalize on the key graph, so
#: a repeated ρ-sweep never re-lexsorts the same adjacency and a dead
#: graph never pins its sorted copy (nor lets a recycled id alias it).
_SORTED_CACHE: dict[int, CSRGraph] = {}


def sort_adjacency_by_weight(graph: CSRGraph) -> CSRGraph:
    """Return an equal graph whose per-vertex arcs are sorted by weight.

    The paper pre-sorts all adjacency lists once (O(m log n) work,
    O(log n) depth) so each ball search can cap at the lightest ρ arcs.
    Sorting is a stable per-row argsort — vectorized with one global
    lexsort keyed (vertex, weight) — and memoized per graph object, so
    repeated sweeps over the same graph pay for it once.
    """
    key = id(graph)
    hit = _SORTED_CACHE.get(key)
    if hit is not None:
        return hit
    tails = np.repeat(np.arange(graph.n, dtype=np.int64), graph.degrees())
    order = np.lexsort((graph.weights, tails))
    result = CSRGraph(
        graph.indptr, graph.indices[order], graph.weights[order], validate=False
    )
    _SORTED_CACHE[key] = result
    weakref.finalize(graph, _SORTED_CACHE.pop, key, None)
    return result


@dataclass
class BallSearchResult:
    """Result of one truncated Dijkstra run.

    Attributes
    ----------
    source: the ball center.
    order: settle order (vertex ids); ``order[0] == source``.
    dist: distance per settled vertex, parallel to ``order`` (sorted
        non-decreasing; equal distances are contiguous).
    hops: min-hop depth in the shortest-path tree, parallel to ``order``.
    parent: tree parent *vertex id* per settled vertex (-1 for source).
    edges_scanned: arcs inspected — the Lemma 4.2 work proxy used by the
        Figure 2 pathological-graph check.
    complete: True when the whole connected component was settled before
        reaching ρ vertices (then r_ρ degrades to the component radius).
    """

    source: int
    order: np.ndarray
    dist: np.ndarray
    hops: np.ndarray
    parent: np.ndarray
    edges_scanned: int
    complete: bool

    def __len__(self) -> int:
        return len(self.order)

    def r_rho(self, rho: int) -> float:
        """The ρ-nearest distance r_ρ(source) (Definition 3, self-counting).

        For ρ larger than the reachable set, returns the component radius
        (the distance that makes the ball cover everything reachable).
        """
        if rho < 1:
            raise ValueError("rho >= 1 required")
        if rho > len(self.order):
            return float(self.dist[-1])
        return float(self.dist[rho - 1])

    def prefix_size(self, rho: int) -> int:
        """Number of settled vertices in the ρ-ball *with ties included*:
        all vertices at distance ≤ r_ρ(source) (§5.1's modification)."""
        r = self.r_rho(rho)
        return int(np.searchsorted(self.dist, r, side="right"))


def ball_search(
    graph: CSRGraph,
    source: int,
    rho: int,
    *,
    include_ties: bool = True,
    lightest_edges: bool = False,
    weight_sorted: bool = False,
) -> BallSearchResult:
    """Settle the ρ-nearest vertices around ``source``.

    Runs Dijkstra under the lexicographic ``(distance, hops)`` key so the
    resulting tree is a min-hop shortest-path tree, stopping after ρ
    settles (`include_ties` extends through the final distance class).

    Parameters
    ----------
    lightest_edges: restrict each vertex's scan to its lightest ``rho``
        arcs (Lemma 4.2's O(ρ²) work bound).  Requires ``weight_sorted``
        (see :func:`sort_adjacency_by_weight`) on weighted graphs.
    """
    n = graph.n
    if not (0 <= source < n):
        raise ValueError(f"source {source} out of range [0, {n})")
    if rho < 1:
        raise ValueError("rho >= 1 required")
    if lightest_edges and not weight_sorted and not graph.is_unweighted:
        raise ValueError(
            "lightest_edges requires weight-sorted adjacency "
            "(see sort_adjacency_by_weight)"
        )
    indptr, indices, weights = graph.indptr, graph.indices, graph.weights

    dist: dict[int, float] = {source: 0.0}
    hops: dict[int, int] = {source: 0}
    parent: dict[int, int] = {source: -1}
    settled: set[int] = set()
    order: list[int] = []
    out_dist: list[float] = []
    out_hops: list[int] = []
    edges_scanned = 0
    heap: list[tuple[float, int, int]] = [(0.0, 0, source)]
    stop_dist = np.inf  # once set, only ties at this distance may settle

    while heap:
        d, h, u = heapq.heappop(heap)
        if u in settled or d > dist[u] or (d == dist[u] and h > hops[u]):
            continue  # stale entry
        if len(order) >= rho:
            if not include_ties or d > stop_dist:
                break
        settled.add(u)
        order.append(u)
        out_dist.append(d)
        out_hops.append(h)
        if len(order) == rho:
            stop_dist = d
        lo, hi = int(indptr[u]), int(indptr[u + 1])
        if lightest_edges:
            hi = min(hi, lo + rho)
        for j in range(lo, hi):
            v = int(indices[j])
            edges_scanned += 1
            if v in settled:
                continue
            nd = d + float(weights[j])
            nh = h + 1
            old = dist.get(v)
            if old is None or nd < old or (nd == old and nh < hops[v]):
                dist[v] = nd
                hops[v] = nh
                parent[v] = u
                heapq.heappush(heap, (nd, nh, v))

    order_arr = np.array(order, dtype=np.int64)
    return BallSearchResult(
        source=source,
        order=order_arr,
        dist=np.array(out_dist, dtype=np.float64),
        hops=np.array(out_hops, dtype=np.int64),
        parent=np.array([parent[u] for u in order], dtype=np.int64),
        edges_scanned=edges_scanned,
        complete=len(order) < rho,
    )
