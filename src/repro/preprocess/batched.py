"""Batched vectorized ball search — many ρ-balls per NumPy round.

:func:`repro.preprocess.ball.ball_search` is a faithful but scalar
truncated Dijkstra: one heap, one Python dict, one source at a time.  The
preprocessing phase needs *n* of them (Lemma 4.2), which made it the
end-to-end bottleneck once PR 1 vectorized the query-time relaxation
engine.  This module applies the same lesson to preprocessing: process
whole blocks of sources with flat array kernels, so the per-round Python
overhead is amortized over hundreds of concurrent ball searches.

Slot-based frontier kernel
--------------------------
Sources are packed into *slots*: a block of ``S`` sources shares one dense
``(S, n)`` tentative-distance matrix, addressed flat as
``key = slot · n + vertex``.  Each round performs

1. one flat CSR gather of every arc out of every active ``(slot, vertex)``
   pair (the engine subsystem's multi-arange primitive, with a slot
   column riding along), and
2. one ``np.minimum.at`` scatter-min of ``δ(slot, tail) + w`` into the
   flat distance array — a CRCW priority-write across *all* balls at once.

Truncation is a per-slot **pruning bound** ``B_s``: the ρ-th smallest
tentative distance seen so far in slot ``s`` (``∞`` until ρ vertices are
reached).  Candidates with ``δ + w > B_s`` are dropped.  ``B_s`` only
tightens and never drops below the final ``r_ρ(s)``, and every prefix of a
shortest path to a ball member stays ≤ ``r_ρ(s) ≤ B_s``, so all ball
members converge to their exact distances — the same values, bit for bit,
as the scalar heap search (both compute min-plus closures with identical
left-to-right float additions along paths).

Min-hop tree semantics
----------------------
The scalar search orders by the lexicographic ``(distance, hops, vertex)``
heap key.  Rather than scatter-minning a composite key, the batched engine
recovers the identical outputs in a post-pass over the settled region:

* ``hops``: a scatter-min fixpoint of ``hops(u) + 1`` over *tight* arcs
  (``δ(u) + w == δ(v)``) within each ball — the min-hop depth over
  shortest paths.
* ``parent``: among tight arcs that also realize the min-hop depth, the
  scalar search keeps the first writer in settle order, which is exactly
  ``argmin (δ(u), u)`` — two scatter-min passes here.
* ``order``: the heap's settle order is the sort by ``(dist, hops, id)``.

``include_ties`` (§5.1) and ``lightest_edges`` (Lemma 4.2's ρ-lightest-arc
restriction; requires weight-sorted adjacency) are honoured exactly:
ties select all members with ``dist ≤ r_ρ``, and the arc cap is applied in
the gather of both phases, so results match :func:`ball_search` on every
field, including ``edges_scanned`` (each settled vertex scans its capped
arc range exactly once in the scalar loop).

Lemma 4.2 work/depth accounting
-------------------------------
Lemma 4.2 bounds one ρ-ball search by ``O(ρ² log ρ)`` work and its
parallelization across sources gives ``O(n ρ² log ρ)`` work total with
``O(log n)``-ish depth per relaxation wave.  The batched rounds realize
that schedule directly: round ``t`` relaxes, for every slot at once, the
wave of vertices whose tentative key improved in round ``t-1`` — the
per-slot work stays the lemma's ``O(ρ · min(deg, ρ))`` arc scans (the
pruning bound plays the truncated heap's role), while the *depth* of the
computation is the number of rounds: the maximum hop-length of a shortest
path inside any ball (≤ ball size, typically far less), matching the
lemma's parallel-Dijkstra-wave accounting.  Python/NumPy overhead is paid
once per round instead of once per heap operation, which is where the
measured speedup over the scalar backend comes from
(``benchmarks/bench_preprocessing.py``).
"""

from __future__ import annotations

import numpy as np

from ..graphs.csr import CSRGraph
from ..parallel.chunking import split_blocks
from .ball import BallSearchResult
from .tree import BallTree, TreeBlock

__all__ = [
    "batched_ball_search",
    "batched_ball_trees",
    "batched_radii",
    "batched_tree_block",
    "default_slot_block",
    "iter_tree_blocks",
]

#: target bytes of dense per-block scratch (all arrays; see
#: default_slot_block for the per-(slot, vertex) breakdown).  The
#: scratch is retained between calls (that is the point — it amortizes
#: the first-touch page-fault cost); call ``_SCRATCH.clear()`` to
#: release it explicitly.
_SLOT_BYTES_BUDGET = 256 * 1024 * 1024
#: re-tighten the pruning bounds every (mask + 1) relaxation rounds.
_RETIGHTEN_MASK = 15
_EMPTY = np.empty(0, dtype=np.int64)


def default_slot_block(
    n: int, num_sources: int, *, dense_bytes: int = 41, max_block: int = 512
) -> int:
    """Sources per slot block: bounded dense ``(slot, vertex)`` state.

    ``dense_bytes`` is the per-(slot, vertex) scratch cost — 41 bytes
    for a full ball search (dist f8 + hops i8 + parent i8 + pdist f8 +
    claim i4 + mindex i4 + member b1), 12 for the distance-only radii
    path (dist + claim).  The block size keeps the dense scratch under
    the module budget, capped at ``max_block`` slots: beyond a few
    hundred slots the per-round NumPy overhead is fully amortized, while
    the region the scatter/gather kernels actually touch (slots × ball
    size) outgrows the cache and every random access starts missing —
    512 measures as the sweet spot on road/grid/web workloads.
    """
    per_slot = dense_bytes * max(1, n)
    block = max(1, _SLOT_BYTES_BUDGET // per_slot)
    return int(min(block, max_block, max(1, num_sources)))


def _gather_arcs(
    indptr: np.ndarray,
    caps: np.ndarray,
    verts: np.ndarray,
    slots: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Flat CSR gather of the (capped) arcs out of each (slot, vertex).

    Returns ``(arc_positions, tail_vertices, tail_slots)`` with one entry
    per arc — the engine kernel's multi-arange, extended with a slot
    column so one call serves every active ball.
    """
    counts = caps[verts]
    total = int(counts.sum())
    if total == 0:
        return _EMPTY, _EMPTY, _EMPTY
    starts = np.repeat(indptr[verts], counts)
    cum = np.cumsum(counts)
    within = np.arange(total, dtype=np.int64) - np.repeat(cum - counts, counts)
    return starts + within, np.repeat(verts, counts), np.repeat(slots, counts)


#: reusable flat (slot, vertex) state, grown on demand and kept filled
#: with its neutral value outside the touched region (callers restore
#: touched entries before returning).  Saves a large first-touch page
#: fault cost per block; fork-pool workers inherit/copy-on-write theirs.
_SCRATCH: dict[str, np.ndarray] = {}


def _scratch(name: str, size: int, fill, dtype) -> np.ndarray:
    arr = _SCRATCH.get(name)
    if arr is None or len(arr) < size:
        arr = np.full(size, fill, dtype=dtype)
        _SCRATCH[name] = arr
    return arr


def _relax_block(
    graph: CSRGraph, sources: np.ndarray, rho: int, caps: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Phase A: pruned multi-source label correcting over one slot block.

    Returns ``(dist, keys_pad, reach_counts)``: the flat ``S·n``
    tentative-distance scratch array (exact for every vertex within its
    slot's ρ-ball, ties included) and the reached pairs as a per-slot
    padded ledger — row ``s`` of ``keys_pad`` holds the flat keys of
    slot ``s``'s reached pairs in first-reach order, valid up to
    ``reach_counts[s]``.  The caller owns restoring
    ``dist[reached] = inf`` when done with the block (see
    :func:`_reached_keys`).

    The pruning bound ``B_s`` is the ρ-th smallest *current* tentative
    distance of slot ``s``'s reached pairs, taken sort-free off the
    padded key ledger: gather the rows' distances, mask the padding,
    one linear ``np.partition`` per row batch.  Tentative distances
    dominate finals, so the statistic is always ≥ the final r_ρ — a
    valid, ever-tightening bound.  Each slot gets its bound the instant
    it crosses ρ reached pairs; a periodic pass re-tightens the rows
    that still have a live frontier.  No O(R log R) sorting happens
    inside the round loop; exact order statistics are taken once, at
    extraction time.
    """
    n = graph.n
    num_slots = len(sources)
    indptr, indices, weights = graph.indptr, graph.indices, graph.weights

    dist = _scratch("dist", num_slots * n, np.inf, np.float64)
    claim = _scratch("claim", num_slots * n, 0, np.int32)
    src_keys = np.arange(num_slots, dtype=np.int64) * n + sources
    dist[src_keys] = 0.0
    bound = np.full(num_slots, np.inf)
    if rho <= 1:
        bound[:] = 0.0  # r_1 = 0: only the zero-weight closure survives
    any_bound = rho <= 1
    reach_counts = np.ones(num_slots, dtype=np.int64)
    # Per-slot reached-key ledger, appended in first-reach order.
    cap = max(2 * rho, 16)
    keys_pad = np.zeros((num_slots, cap), dtype=np.int64)
    keys_pad[:, 0] = src_keys
    frontier = src_keys
    f_slots = np.arange(num_slots, dtype=np.int64)
    round_idx = 0

    def row_stat(rows: np.ndarray) -> np.ndarray:
        """Exact ρ-th smallest current distance for the given slot rows.

        The live-loop sibling of :func:`_ledger_rho_stat`: it works on a
        row subset mid-growth and needs no component-radius fallback
        (callers only pass rows with ≥ ρ reached pairs)."""
        cur = dist[keys_pad[rows]]
        pad = np.arange(cap, dtype=np.int64)[None, :] >= reach_counts[rows][
            :, None
        ]
        cur[pad] = np.inf
        return np.partition(cur, rho - 1, axis=1)[:, rho - 1]

    while len(frontier):
        round_idx += 1
        if any_bound and (round_idx & _RETIGHTEN_MASK) == 0:
            # Periodic re-tighten of slots that still have a live
            # frontier (finished slots' bounds no longer matter).
            active = np.zeros(num_slots, dtype=bool)
            active[f_slots] = True
            rows = np.flatnonzero(active & (reach_counts >= rho))
            if len(rows):
                bound[rows] = row_stat(rows)
            keep = dist[frontier] <= bound[f_slots]
            if not keep.all():
                frontier, f_slots = frontier[keep], f_slots[keep]
                if not len(frontier):
                    break

        # The _gather_arcs multi-arange, inlined: the hot loop fuses the
        # gather with repeat-based tail-distance/slot-base/bound columns
        # (cheap frontier-sized bases repeated once) instead of paying
        # for the helper's per-arc tail/slot arrays it would not use.
        f_verts = frontier - f_slots * n
        counts_f = caps[f_verts]
        total = int(counts_f.sum())
        if total == 0:
            break
        starts = np.repeat(indptr[f_verts], counts_f)
        cum = np.cumsum(counts_f)
        within = np.arange(total, dtype=np.int64) - np.repeat(
            cum - counts_f, counts_f
        )
        arcpos = starts + within
        cand = np.repeat(dist[frontier], counts_f) + weights[arcpos]
        slot_base = np.repeat(frontier - f_verts, counts_f)
        if any_bound:
            # Cheap bound filter first, so the expensive random-access
            # gather of current target distances runs on fewer arcs.
            okb = cand <= np.repeat(bound[f_slots], counts_f)
            arcpos, cand = arcpos[okb], cand[okb]
            slot_base = slot_base[okb]
        keys = slot_base + indices[arcpos]
        pre = dist[keys]
        imp = cand < pre
        keys, cand, pre = keys[imp], cand[imp], pre[imp]
        if not len(keys):
            break
        # Sort-free dedupe: every target key claims its arc's position;
        # exactly one position per distinct key reads its own value back
        # (duplicate fancy assignment keeps the last write).  The claim
        # scratch never needs clearing — only positions written this
        # round are read back.
        ticket = np.arange(len(keys), dtype=np.int32)
        claim[keys] = ticket
        first = claim[keys] == ticket
        uniq = keys[first]  # distinct improved targets, unsorted
        fresh = np.isinf(pre[first])
        np.minimum.at(dist, keys, cand)  # WriteMin across all balls at once
        # Every distinct target strictly improved (candidates were
        # pre-filtered on cand < dist), so uniq is the next frontier.
        frontier = uniq
        f_slots = frontier // n
        if fresh.any():
            fresh_keys = uniq[fresh]
            # Append first-reached keys to the per-slot ledger rows
            # (grouped by slot for the run-position arithmetic).
            fs = f_slots[fresh]
            order = np.argsort(fs, kind="stable")
            fs = fs[order]
            fresh_keys = fresh_keys[order]
            added = np.bincount(fs, minlength=num_slots)
            run_start = np.zeros(num_slots, dtype=np.int64)
            np.cumsum(added[:-1], out=run_start[1:])
            pos = reach_counts[fs] + np.arange(len(fs), dtype=np.int64)
            pos -= run_start[fs]
            need = int(pos.max()) + 1
            if need > cap:
                new_cap = max(2 * cap, need)
                keys_pad = np.concatenate(
                    (
                        keys_pad,
                        np.zeros((num_slots, new_cap - cap), dtype=np.int64),
                    ),
                    axis=1,
                )
                cap = new_cap
            keys_pad[fs, pos] = fresh_keys
            grown = reach_counts + added
            crossing = (reach_counts < rho) & (grown >= rho)
            reach_counts = grown
            if crossing.any():
                # Instant bound for slots that just crossed ρ reached.
                bound[crossing] = row_stat(np.flatnonzero(crossing))
                any_bound = True
    return dist, keys_pad, reach_counts


def _reached_keys(keys_pad: np.ndarray, reach_counts: np.ndarray) -> np.ndarray:
    """Flatten the padded first-touch ledger into the reached-key set."""
    cap = keys_pad.shape[1]
    valid = np.arange(cap, dtype=np.int64)[None, :] < reach_counts[:, None]
    return keys_pad[valid]


def _ledger_view(
    dist: np.ndarray, keys_pad: np.ndarray, reach_counts: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Current distances per ledger row, ready for order statistics.

    Trims the ledger to its used width (outlier slots may have grown
    the padding well past the typical row), gathers the rows' current
    distances, masks the padding to ``inf``, and computes the
    component-radius fallback (row max over the valid entries).
    Returns ``(keys_pad_trimmed, cur, valid, comp_radius)``.
    """
    keys_pad = keys_pad[:, : int(reach_counts.max())]
    cap = keys_pad.shape[1]
    cur = dist[keys_pad]
    valid = np.arange(cap, dtype=np.int64)[None, :] < reach_counts[:, None]
    cur[~valid] = np.inf
    comp_radius = np.where(valid, cur, -np.inf).max(axis=1)
    return keys_pad, cur, valid, comp_radius


def _ledger_rho_stat(
    cur: np.ndarray,
    reach_counts: np.ndarray,
    comp_radius: np.ndarray,
    rho: int,
) -> np.ndarray:
    """ρ-th smallest current distance per row (one linear partition),
    degrading to the component radius for rows with < ρ reached — the
    scalar ``BallSearchResult.r_rho`` semantics, vectorized."""
    if rho <= cur.shape[1]:
        stat = np.partition(cur, rho - 1, axis=1)[:, rho - 1]
        return np.where(reach_counts >= rho, stat, comp_radius)
    return comp_radius.copy()


_BIG_HOPS = np.iinfo(np.int64).max // 2
#: graph-independent "no parent written" sentinel (beyond any vertex id).
_NO_PARENT = np.iinfo(np.int64).max


def _settle_block(
    graph: CSRGraph,
    sources: np.ndarray,
    rho: int,
    caps: np.ndarray,
    dist: np.ndarray,
    keys_pad: np.ndarray,
    reach_counts: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Phase B core: min-hop trees + settle order for one block.

    Returns ``(m_keys, m_dist, m_hops, m_parent, m_offsets)``: the
    ties-included ball members of every slot concatenated in *settle
    order* — the scalar heap's pop order, i.e. sorted by the
    lexicographic ``(dist, hops, vertex)`` within each slot — with the
    parent *vertex id* per member (-1 for sources) and per-slot offsets
    into the concatenation.  Restores all scratch invariants before
    returning (the ``dist`` scratch stays live, owned by the caller).
    """
    n = graph.n
    num_slots = len(sources)
    indptr, indices, weights = graph.indptr, graph.indices, graph.weights

    # r_ρ per slot off the padded ledger (one linear partition, no
    # sort); degrades to the component radius when the component is
    # smaller than ρ (the scalar `complete` case).
    keys_pad, cur, valid, comp_radius = _ledger_view(
        dist, keys_pad, reach_counts
    )
    radius = _ledger_rho_stat(cur, reach_counts, comp_radius, rho)
    reached = keys_pad[valid]

    member_mask = dist[reached] <= radius[reached // n]
    m_keys = reached[member_mask]
    m_slots = m_keys // n
    m_verts = m_keys - m_slots * n
    member = _scratch("member", num_slots * n, False, bool)
    member[m_keys] = True

    # Min-hop depths: scatter-min relaxation of hops(u)+1 over tight
    # arcs (δ(u) + w == δ(v)) between ball members, level-synchronous
    # from each source so every tight arc is processed roughly once
    # (O(tight arcs) total instead of O(tight arcs × tree depth)).
    hops = _scratch("hops", num_slots * n, _BIG_HOPS, np.int64)
    claim = _scratch("claim", num_slots * n, 0, np.int32)
    src_keys = np.arange(num_slots, dtype=np.int64) * n + sources
    hops[src_keys] = 0
    arcpos, a_verts, a_slots = _gather_arcs(indptr, caps, m_verts, m_slots)
    tail_keys = a_slots * n + a_verts
    head_keys = a_slots * n + indices[arcpos]
    tight = member[head_keys] & (
        dist[tail_keys] + weights[arcpos] == dist[head_keys]
    )
    t_tail, t_head = tail_keys[tight], head_keys[tight]
    # Group tight arcs by tail member (the gather above emits them in
    # member order, so the grouping is a bincount + prefix sum away).
    t_mi = np.repeat(
        np.arange(len(m_keys), dtype=np.int64), caps[m_verts]
    )[tight]
    t_counts = np.bincount(t_mi, minlength=len(m_keys))
    t_start = np.zeros(len(m_keys) + 1, dtype=np.int64)
    np.cumsum(t_counts, out=t_start[1:])
    mindex = _scratch("mindex", num_slots * n, 0, np.int32)
    mindex[m_keys] = np.arange(len(m_keys), dtype=np.int32)
    frontier_mi = np.flatnonzero(m_keys == src_keys[m_slots])
    while len(frontier_mi):
        fc = t_counts[frontier_mi]
        total = int(fc.sum())
        if total == 0:
            break
        arc = np.repeat(t_start[frontier_mi], fc)
        cum = np.cumsum(fc)
        arc += np.arange(total, dtype=np.int64) - np.repeat(cum - fc, fc)
        heads = t_head[arc]
        cand = np.repeat(hops[m_keys[frontier_mi]] + 1, fc)
        imp = cand < hops[heads]
        heads, cand = heads[imp], cand[imp]
        if not len(heads):
            break
        np.minimum.at(hops, heads, cand)
        ticket = np.arange(len(heads), dtype=np.int32)
        claim[heads] = ticket
        frontier_mi = mindex[heads[claim[heads] == ticket]].astype(np.int64)

    # Parents: the scalar search keeps the first settle-order writer of
    # the final (dist, hops) key — argmin (δ(u), u) over arcs that
    # realize both the distance and the min-hop depth.  Two scatter-min
    # passes (first on the tail distance, then on the tail id among the
    # distance winners) replace a three-key lexsort.
    realizes = hops[t_tail] + 1 == hops[t_head]
    p_tail, p_head = t_tail[realizes], t_head[realizes]
    p_dist = dist[p_tail]
    pdist = _scratch("pdist", num_slots * n, np.inf, np.float64)
    np.minimum.at(pdist, p_head, p_dist)
    best = p_dist == pdist[p_head]
    p_tail, p_head = p_tail[best], p_head[best]
    parent = _scratch("parent", num_slots * n, _NO_PARENT, np.int64)
    np.minimum.at(parent, p_head, p_tail % n)

    # Settle order: the heap pops by the lexicographic (dist, hops, id);
    # hops and vertex id pack into one integer key, so three stable
    # sorts suffice.
    m_dist, m_hops = dist[m_keys], hops[m_keys]
    order = np.lexsort((m_hops * n + m_verts, m_dist, m_slots))
    m_keys, m_dist, m_hops = m_keys[order], m_dist[order], m_hops[order]
    m_parent = parent[m_keys]
    m_parent[m_parent == _NO_PARENT] = -1  # untouched entries: the sources
    m_counts = np.bincount(m_slots, minlength=num_slots)
    m_offsets = np.zeros(num_slots + 1, dtype=np.int64)
    np.cumsum(m_counts, out=m_offsets[1:])

    # Restore the scratch invariants (only member keys were touched).
    member[m_keys] = False
    hops[m_keys] = _BIG_HOPS
    parent[m_keys] = _NO_PARENT
    pdist[m_keys] = np.inf
    return m_keys, m_dist, m_hops, m_parent, m_offsets


def _ball_results_block(
    graph: CSRGraph,
    sources: np.ndarray,
    rho: int,
    caps: np.ndarray,
    dist: np.ndarray,
    keys_pad: np.ndarray,
    reach_counts: np.ndarray,
    include_ties: bool,
) -> list[BallSearchResult]:
    """Phase B: assemble one :class:`BallSearchResult` per slot."""
    n = graph.n
    m_keys, m_dist, m_hops, m_parent, m_offsets = _settle_block(
        graph, sources, rho, caps, dist, keys_pad, reach_counts
    )
    m_verts = m_keys % n
    results: list[BallSearchResult] = []
    for s in range(len(sources)):
        lo, hi = int(m_offsets[s]), int(m_offsets[s + 1])
        size = hi - lo
        take = size if include_ties else min(rho, size)
        sl = slice(lo, lo + take)
        overts = m_verts[sl].copy()
        results.append(
            BallSearchResult(
                source=int(sources[s]),
                order=overts,
                dist=m_dist[sl].copy(),
                hops=m_hops[sl].copy(),
                parent=m_parent[sl].copy(),
                edges_scanned=int(caps[overts].sum()),
                complete=size < rho,
            )
        )
    return results


def _arc_caps(graph: CSRGraph, rho: int, lightest_edges: bool) -> np.ndarray:
    """Per-vertex scanned-arc counts (Lemma 4.2's lightest-ρ cap)."""
    degrees = graph.degrees()
    return np.minimum(degrees, rho) if lightest_edges else degrees


def _check_sources(graph: CSRGraph, sources, rho: int) -> np.ndarray:
    """Shared argument validation for the public batched entry points."""
    sources = np.ascontiguousarray(sources, dtype=np.int64)
    n = graph.n
    if len(sources) and not (
        0 <= int(sources.min()) and int(sources.max()) < n
    ):
        bad = sources[(sources < 0) | (sources >= n)][0]
        raise ValueError(f"source {bad} out of range [0, {n})")
    if rho < 1:
        raise ValueError("rho >= 1 required")
    return sources


def batched_ball_search(
    graph: CSRGraph,
    sources: np.ndarray,
    rho: int,
    *,
    include_ties: bool = True,
    lightest_edges: bool = False,
    weight_sorted: bool = False,
    slot_block: int | None = None,
) -> list[BallSearchResult]:
    """Run :func:`ball_search` for every source, batched over slots.

    Bit-identical to the scalar search on every result field; see the
    module docstring for how.  ``slot_block`` caps the number of
    concurrent balls per dense block (default: auto-sized from n).
    """
    n = graph.n
    sources = _check_sources(graph, sources, rho)
    if lightest_edges and not weight_sorted and not graph.is_unweighted:
        raise ValueError(
            "lightest_edges requires weight-sorted adjacency "
            "(see sort_adjacency_by_weight)"
        )
    caps = _arc_caps(graph, rho, lightest_edges)
    block = slot_block or default_slot_block(n, len(sources))
    results: list[BallSearchResult] = []
    try:
        for chunk in split_blocks(sources, block):
            dist, keys_pad, reach_counts = _relax_block(graph, chunk, rho, caps)
            results.extend(
                _ball_results_block(
                    graph, chunk, rho, caps, dist, keys_pad, reach_counts,
                    include_ties,
                )
            )
            # restore the scratch invariant
            dist[_reached_keys(keys_pad, reach_counts)] = np.inf
    except BaseException:
        _SCRATCH.clear()  # scratch may be mid-block dirty; rebuild next call
        raise
    return results


def _chunk_tree_block(
    graph: CSRGraph,
    chunk: np.ndarray,
    rho: int,
    caps: np.ndarray,
    include_ties: bool,
) -> tuple[np.ndarray, TreeBlock]:
    """``(r_ρ per slot, TreeBlock)`` for one slot block — phases A and B
    plus the flat local-parent remap, no per-tree materialization.

    Scratch invariants are fully restored before returning (success
    path); callers own the mid-block failure cleanup.
    """
    n = graph.n
    dist, keys_pad, reach_counts = _relax_block(graph, chunk, rho, caps)
    m_keys, m_dist, m_hops, m_parent, m_offsets = _settle_block(
        graph, chunk, rho, caps, dist, keys_pad, reach_counts
    )
    m_verts = m_keys % n
    # Dense global→local remap: every member key learns its settle
    # position within its slot.  Like the claim scratch, stale entries
    # are harmless — lookups only hit keys written this block (tree
    # parents are always ball members).  (reuses the mindex scratch —
    # _settle_block is done with it, and every key read below is
    # rewritten here first)
    local = _scratch("mindex", len(chunk) * n, 0, np.int32)
    starts = np.repeat(m_offsets[:-1], np.diff(m_offsets))
    local[m_keys] = (
        np.arange(len(m_keys), dtype=np.int64) - starts
    ).astype(np.int32)
    plocal = local[m_keys - m_verts + m_parent].astype(np.int64)
    plocal[m_parent < 0] = -1  # sources
    sizes = np.diff(m_offsets)
    minsz = np.minimum(rho, sizes)
    radii = m_dist[m_offsets[:-1] + minsz - 1]
    block = TreeBlock(
        sources=np.ascontiguousarray(chunk, dtype=np.int64),
        offsets=m_offsets,
        vertices=m_verts,
        dist=m_dist,
        depth=m_hops,
        parent=plocal,
    )
    if not include_ties:
        block = block.trim(minsz)
    # restore the scratch invariant
    dist[_reached_keys(keys_pad, reach_counts)] = np.inf
    return radii, block


def iter_tree_blocks(
    graph: CSRGraph,
    sources: np.ndarray,
    rho: int,
    *,
    include_ties: bool = True,
    slot_block: int | None = None,
):
    """Yield ``(r_ρ chunk, TreeBlock)`` per slot block, in source order.

    The streaming form of :func:`batched_tree_block`: at most one block
    of dense state is live, which is how the forest selection engine
    (:func:`repro.preprocess.select_batched.batched_select`) keeps the
    end-to-end pipeline O(block · ρ) in memory.
    """
    sources = _check_sources(graph, sources, rho)
    caps = _arc_caps(graph, rho, lightest_edges=False)
    block = slot_block or default_slot_block(graph.n, len(sources))
    try:
        for chunk in split_blocks(sources, block):
            yield _chunk_tree_block(graph, chunk, rho, caps, include_ties)
    except BaseException:
        _SCRATCH.clear()  # scratch may be mid-block dirty; rebuild next call
        raise


def batched_tree_block(
    graph: CSRGraph,
    sources: np.ndarray,
    rho: int,
    *,
    include_ties: bool = True,
    slot_block: int | None = None,
) -> tuple[np.ndarray, TreeBlock]:
    """``(r_ρ array, one TreeBlock over all sources)`` — the flat
    (slot, local-node) forest layout, emitted directly by the slot engine
    with no per-tree objects in between (bit-identical to
    :func:`batched_ball_trees` + :func:`~repro.preprocess.tree.block_from_trees`).
    """
    parts = list(
        iter_tree_blocks(
            graph, sources, rho, include_ties=include_ties,
            slot_block=slot_block,
        )
    )
    if len(parts) == 1:
        return parts[0]
    if not parts:
        return np.empty(0, dtype=np.float64), TreeBlock(
            sources=np.empty(0, dtype=np.int64),
            offsets=np.zeros(1, dtype=np.int64),
            vertices=np.empty(0, dtype=np.int64),
            dist=np.empty(0, dtype=np.float64),
            depth=np.empty(0, dtype=np.int64),
            parent=np.empty(0, dtype=np.int64),
        )
    radii = np.concatenate([r for r, _ in parts])
    blocks = [b for _, b in parts]
    sizes = np.concatenate([b.sizes() for b in blocks])
    offsets = np.zeros(len(sizes) + 1, dtype=np.int64)
    np.cumsum(sizes, out=offsets[1:])
    cat = lambda field: np.concatenate([getattr(b, field) for b in blocks])
    return radii, TreeBlock(
        sources=cat("sources"),
        offsets=offsets,
        vertices=cat("vertices"),
        dist=cat("dist"),
        depth=cat("depth"),
        parent=cat("parent"),
    )


def batched_ball_trees(
    graph: CSRGraph,
    sources: np.ndarray,
    rho: int,
    *,
    include_ties: bool = True,
    slot_block: int | None = None,
) -> tuple[np.ndarray, list[BallTree]]:
    """``(r_ρ array, one BallTree per source)`` — the pipeline fast path.

    Equivalent to running :func:`ball_search` +
    :func:`~repro.preprocess.tree.build_ball_tree` per source (bit-
    identical trees and radii), but the global→local id remap happens
    once per block through a dense position scratch instead of once per
    ball through a searchsorted, and no intermediate
    :class:`BallSearchResult` is materialized.  Consumers that can stay
    in the flat forest layout should prefer :func:`batched_tree_block` /
    :func:`iter_tree_blocks` and skip these per-tree objects too.
    """
    radii = np.empty(len(np.asarray(sources)), dtype=np.float64)
    trees: list[BallTree] = []
    row = 0
    for radii_chunk, block in iter_tree_blocks(
        graph, sources, rho, include_ties=include_ties, slot_block=slot_block
    ):
        radii[row : row + block.num_trees] = radii_chunk
        trees.extend(block.tree(i) for i in range(block.num_trees))
        row += block.num_trees
    return radii, trees


def batched_radii(
    graph: CSRGraph,
    sources: np.ndarray,
    rhos: tuple[int, ...],
    *,
    slot_block: int | None = None,
) -> np.ndarray:
    """``r_ρ`` for each source and each ρ — shape ``(|sources|, |ρs|)``.

    The radii fast path: one phase-A pass per block at ``ρ_max`` yields
    every smaller ρ's radius as an order statistic of the reached
    distances, with no hop/parent/tree reconstruction at all.  Matches
    the scalar backend (one :func:`ball_search` at ``ρ_max`` per source)
    bit for bit.
    """
    n = graph.n
    if any(r < 1 for r in rhos):
        raise ValueError("all rho must be >= 1")
    rho_max = max(rhos)
    sources = _check_sources(graph, sources, rho_max)
    caps = _arc_caps(graph, rho_max, lightest_edges=False)
    block = slot_block or default_slot_block(n, len(sources), dense_bytes=12)
    out = np.empty((len(sources), len(rhos)), dtype=np.float64)
    row = 0
    try:
        for chunk in split_blocks(sources, block):
            dist, keys_pad, reach_counts = _relax_block(
                graph, chunk, rho_max, caps
            )
            # Final per-slot order statistics, straight off the padded
            # ledger: one linear np.partition per ρ (no O(R log R) sort).
            keys_pad, cur, valid, comp_radius = _ledger_view(
                dist, keys_pad, reach_counts
            )
            for j, rho in enumerate(rhos):
                out[row : row + len(chunk), j] = _ledger_rho_stat(
                    cur, reach_counts, comp_radius, rho
                )
            row += len(chunk)
            dist[keys_pad[valid]] = np.inf  # restore the scratch invariant
    except BaseException:
        _SCRATCH.clear()  # scratch may be mid-block dirty; rebuild next call
        raise
    return out
