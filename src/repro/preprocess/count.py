"""Shortcut-count accounting for the Tables 2/3 and Figure 3 sweeps.

The paper reports, per (k, ρ) and heuristic, the *factor of additional
edges*: total shortcuts selected across all n sources divided by m.  At
paper scale that is n·|ρ-sweep|·|k-sweep| tree computations; this module
makes the sweep tractable by

* computing **one** ball per source at ρ_max and slicing prefixes for every
  smaller ρ (settle orders are prefix-closed — see
  :mod:`repro.preprocess.tree`), and
* optionally **sampling** sources: the metric is a mean over sources, so a
  seeded sample estimates it with the scale factor n/|sample| (recorded in
  the result for transparency).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..graphs.csr import CSRGraph
from ..parallel.chunking import split_blocks
from ..parallel.pool import parallel_map
from .backends import get_ball_backend
from .batched import default_slot_block
from .dp import dp_count
from .greedy import greedy_count
from .tree import build_ball_tree

__all__ = ["ShortcutCounts", "count_shortcuts_sweep", "sample_sources"]


@dataclass
class ShortcutCounts:
    """Results of one sweep on one graph.

    ``totals[heuristic][(k, rho)]`` is the estimated total shortcut count
    over all n sources; ``factors`` divides by m (the paper's metric).
    """

    n: int
    m: int
    num_sources: int
    totals: dict[str, dict[tuple[int, int], float]]

    def factor(self, heuristic: str, k: int, rho: int) -> float:
        """Factor of additional edges for one configuration."""
        return self.totals[heuristic][(k, rho)] / self.m


def sample_sources(n: int, num: int | None, *, seed: int = 0) -> np.ndarray:
    """Seeded source sample (all vertices when ``num`` is None or ≥ n)."""
    if num is None or num >= n:
        return np.arange(n, dtype=np.int64)
    if num < 1:
        raise ValueError("num >= 1 required")
    rng = np.random.default_rng(seed)
    return np.sort(rng.choice(n, size=num, replace=False)).astype(np.int64)


def _count_chunk(
    graph: CSRGraph,
    sources: np.ndarray,
    *,
    ks: tuple[int, ...],
    rhos: tuple[int, ...],
    heuristics: tuple[str, ...],
    include_ties: bool,
    backend: str = "scalar",
) -> dict[str, dict[tuple[int, int], int]]:
    """Worker kernel: exact shortcut totals over one source chunk.

    Balls come from the named backend in slot-block-sized groups, so the
    batched engine amortizes its rounds while at most one group of
    results is live (O(block · ρ) memory, not O(|chunk| · ρ)).
    """
    spec = get_ball_backend(backend)
    rho_max = max(rhos)
    counters = {h: {(k, r): 0 for k in ks for r in rhos} for h in heuristics}
    block = default_slot_block(graph.n, len(sources))
    for group in split_blocks(sources, block):
        for ball in spec.search(
            graph, group, rho_max, include_ties=include_ties
        ):
            for rho in rhos:
                t = (
                    ball.prefix_size(rho)
                    if include_ties
                    else min(rho, len(ball))
                )
                tree = build_ball_tree(ball, t)
                for k in ks:
                    if "greedy" in counters:
                        counters["greedy"][(k, rho)] += greedy_count(tree, k)
                    if "dp" in counters:
                        counters["dp"][(k, rho)] += dp_count(tree, k)
                    if "full" in counters:
                        counters["full"][(k, rho)] += int(
                            np.sum(tree.depth >= 2)
                        )
    return counters


def count_shortcuts_sweep(
    graph: CSRGraph,
    *,
    ks: Sequence[int],
    rhos: Sequence[int],
    heuristics: Sequence[str] = ("greedy", "dp"),
    num_sources: int | None = None,
    seed: int = 0,
    include_ties: bool = True,
    n_jobs: int = 1,
    backend: str = "batched",
) -> ShortcutCounts:
    """Estimate shortcut totals for every (heuristic, k, ρ) combination.

    With ``num_sources`` set, totals are scaled by n/|sample| — the
    exact-mode answer is recovered with ``num_sources=None``.
    ``backend`` selects the ball-search kernel through
    :mod:`repro.preprocess.backends`; counts are identical across
    backends (the balls are bit-identical).
    """
    if not ks or not rhos:
        raise ValueError("ks and rhos must be non-empty")
    bad = set(heuristics) - {"greedy", "dp", "full"}
    if bad:
        raise ValueError(f"unknown heuristics: {sorted(bad)}")
    get_ball_backend(backend)  # validate the name before forking workers
    sources = sample_sources(graph.n, num_sources, seed=seed)
    blocks = parallel_map(
        _count_chunk,
        sources,
        n_jobs=n_jobs,
        fn_args=(graph,),
        fn_kwargs={
            "ks": tuple(ks),
            "rhos": tuple(rhos),
            "heuristics": tuple(heuristics),
            "include_ties": include_ties,
            "backend": backend,
        },
    )
    scale = graph.n / len(sources)
    totals: dict[str, dict[tuple[int, int], float]] = {
        h: {(k, r): 0.0 for k in ks for r in rhos} for h in heuristics
    }
    for block in blocks:
        for h, table in block.items():
            for key, val in table.items():
                totals[h][key] += val * scale
    return ShortcutCounts(
        n=graph.n, m=graph.m, num_sources=len(sources), totals=totals
    )
