"""Shortcut-count accounting for the Tables 2/3 and Figure 3 sweeps.

The paper reports, per (k, ρ) and heuristic, the *factor of additional
edges*: total shortcuts selected across all n sources divided by m.  At
paper scale that is n·|ρ-sweep|·|k-sweep| tree computations; this module
makes the sweep tractable by

* computing **one** ball per source at ρ_max and slicing prefixes for every
  smaller ρ (settle orders are prefix-closed — see
  :mod:`repro.preprocess.tree`), and
* optionally **sampling** sources: the metric is a mean over sources, so a
  seeded sample estimates it with the scale factor n/|sample| (recorded in
  the result for transparency).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..graphs.csr import CSRGraph
from ..parallel.chunking import split_blocks
from ..parallel.pool import parallel_map
from .backends import get_ball_backend
from .batched import default_slot_block
from .greedy import greedy_depth_mask
from .select_batched import forest_dp_counts
from .shortcut_one import full_depth_mask

__all__ = ["ShortcutCounts", "count_shortcuts_sweep", "sample_sources"]


@dataclass
class ShortcutCounts:
    """Results of one sweep on one graph.

    ``totals[heuristic][(k, rho)]`` is the estimated total shortcut count
    over all n sources; ``factors`` divides by m (the paper's metric).
    """

    n: int
    m: int
    num_sources: int
    totals: dict[str, dict[tuple[int, int], float]]

    def factor(self, heuristic: str, k: int, rho: int) -> float:
        """Factor of additional edges for one configuration."""
        return self.totals[heuristic][(k, rho)] / self.m


def sample_sources(n: int, num: int | None, *, seed: int = 0) -> np.ndarray:
    """Seeded source sample (all vertices when ``num`` is None or ≥ n)."""
    if num is None or num >= n:
        return np.arange(n, dtype=np.int64)
    if num < 1:
        raise ValueError("num >= 1 required")
    rng = np.random.default_rng(seed)
    return np.sort(rng.choice(n, size=num, replace=False)).astype(np.int64)


def _count_chunk(
    graph: CSRGraph,
    sources: np.ndarray,
    *,
    ks: tuple[int, ...],
    rhos: tuple[int, ...],
    heuristics: tuple[str, ...],
    include_ties: bool,
    backend: str,
) -> dict[str, dict[tuple[int, int], int]]:
    """Worker kernel: exact shortcut totals over one source chunk.

    One forest :class:`~repro.preprocess.tree.TreeBlock` per slot-block
    group at ρ_max (the named backend's block path), so at most one
    group of trees is live (O(block · ρ) memory, not O(|chunk| · ρ));
    every smaller ρ is a vectorized prefix trim of that block (settle
    orders are prefix-closed) and all selection math runs through the
    forest engine instead of per-tree Python walks.  ``backend`` is a
    required keyword on purpose: every public entry point defaults to
    ``"batched"``, and a silent default here once let private callers
    drop onto the slow path unnoticed.
    """
    spec = get_ball_backend(backend)
    rho_max = max(rhos)
    counters = {h: {(k, r): 0 for k in ks for r in rhos} for h in heuristics}
    block = default_slot_block(graph.n, len(sources))
    for group in split_blocks(sources, block):
        _, blk = spec.compute_tree_block(
            graph, group, rho_max, include_ties=include_ties
        )
        sizes = blk.sizes()
        slot_ids = blk.slot_ids()
        for rho in rhos:
            if include_ties:
                # §5.1 prefix: every node at distance <= r_rho.  Per-slot
                # dist runs are sorted, so the ties-included prefix size
                # is a mask count per slot (BallSearchResult.prefix_size,
                # vectorized over the block).
                r = blk.dist[blk.offsets[:-1] + np.minimum(rho, sizes) - 1]
                prefix = np.bincount(
                    slot_ids[blk.dist <= r[slot_ids]],
                    minlength=blk.num_trees,
                )
            else:
                prefix = np.minimum(rho, sizes)
            sub = blk.trim(prefix)
            if "full" in counters:
                # The (1,ρ) count is k-independent — shared depth rule
                # (shortcut_one.full_depth_mask), computed once per ρ
                # outside the k loop.
                full_total = int(np.count_nonzero(full_depth_mask(sub.depth)))
            for k in ks:
                if "greedy" in counters:
                    counters["greedy"][(k, rho)] += int(
                        np.count_nonzero(greedy_depth_mask(sub.depth, k))
                    )
                if "dp" in counters:
                    counters["dp"][(k, rho)] += int(
                        forest_dp_counts(sub, k).sum()
                    )
                if "full" in counters:
                    counters["full"][(k, rho)] += full_total
    return counters


def count_shortcuts_sweep(
    graph: CSRGraph,
    *,
    ks: Sequence[int],
    rhos: Sequence[int],
    heuristics: Sequence[str] = ("greedy", "dp"),
    num_sources: int | None = None,
    seed: int = 0,
    include_ties: bool = True,
    n_jobs: int = 1,
    backend: str = "batched",
) -> ShortcutCounts:
    """Estimate shortcut totals for every (heuristic, k, ρ) combination.

    With ``num_sources`` set, totals are scaled by n/|sample| — the
    exact-mode answer is recovered with ``num_sources=None``.
    ``backend`` selects the ball-search kernel through
    :mod:`repro.preprocess.backends`; counts are identical across
    backends (the balls are bit-identical).
    """
    if not ks or not rhos:
        raise ValueError("ks and rhos must be non-empty")
    bad = set(heuristics) - {"greedy", "dp", "full"}
    if bad:
        raise ValueError(f"unknown heuristics: {sorted(bad)}")
    get_ball_backend(backend)  # validate the name before forking workers
    sources = sample_sources(graph.n, num_sources, seed=seed)
    blocks = parallel_map(
        _count_chunk,
        sources,
        n_jobs=n_jobs,
        fn_args=(graph,),
        fn_kwargs={
            "ks": tuple(ks),
            "rhos": tuple(rhos),
            "heuristics": tuple(heuristics),
            "include_ties": include_ties,
            "backend": backend,
        },
    )
    scale = graph.n / len(sources)
    totals: dict[str, dict[tuple[int, int], float]] = {
        h: {(k, r): 0.0 for k in ks for r in rhos} for h in heuristics
    }
    for block in blocks:
        for h, table in block.items():
            for key, val in table.items():
                totals[h][key] += val * scale
    return ShortcutCounts(
        n=graph.n, m=graph.m, num_sources=len(sources), totals=totals
    )
