"""The dynamic-programming (k,ρ)-shortcut heuristic (§4.2.2).

Per shortest-path tree, DP computes the minimum number of root shortcuts
that brings every tree node within k hops of the source.  ``F(u, t)`` is
the optimal edge count for the subtree of ``u`` given that ``parent(u)``
sits ``t`` hops from the source:

    F(u, k) = 1 + Σ_w F(w, 1)                          (must shortcut u)
    F(u, t) = min(1 + Σ_w F(w, 1), Σ_w F(w, t+1))      for t < k

with ``w`` ranging over the children of ``u``; the answer is
``Σ_{u ∈ children(s)} F(u, 0)``.  Solved bottom-up over the settle order
(children before parents in reverse), O(ρ k) per tree.  The traceback
walks top-down re-evaluating the same min.

Optimal per tree, but — as the paper notes — not globally optimal across
sources; finding the globally smallest shortcut set is left open by the
paper (Section 7).
"""

from __future__ import annotations

import numpy as np

from .tree import BallTree

__all__ = ["dp_count", "dp_select", "dp_table"]


def dp_table(tree: BallTree, k: int) -> np.ndarray:
    """The full F table, shape ``(len(tree), k+1)``; ``F[u, t]`` as above.

    Row 0 (the source) is unused and kept zero; it exists so local ids
    index directly.
    """
    if k < 1:
        raise ValueError("k >= 1 required")
    t = len(tree)
    F = np.zeros((t, k + 1), dtype=np.int64)
    child_sum = np.zeros((t, k + 2), dtype=np.int64)  # Σ_w F(w, t'), t' ≤ k+1
    parent = tree.parent
    # Reverse local-id order visits every child before its parent.
    for u in range(t - 1, 0, -1):
        cs = child_sum[u]
        shortcut_cost = 1 + cs[1]
        # F(u, t) for t < k: min(shortcut, pass-through at depth t+1)
        for tt in range(k):
            F[u, tt] = min(shortcut_cost, cs[tt + 1])
        F[u, k] = shortcut_cost
        # Accumulate into the parent's child sums.
        p = parent[u]
        child_sum[p, 1 : k + 1] += F[u, 1 : k + 1]
        # child_sum[p, k+1] is never consulted (t+1 ≤ k in the recurrence
        # because F(·, k) forces a shortcut); keep it zero.
        child_sum[p, 0] += F[u, 0]
    return F


def dp_count(tree: BallTree, k: int) -> int:
    """Minimum number of shortcut edges for this tree."""
    F = dp_table(tree, k)
    kids = tree.children(0)
    return int(F[kids, 0].sum()) if len(kids) else 0


def dp_select(tree: BallTree, k: int) -> np.ndarray:
    """Local node ids to shortcut, realizing the optimum of
    :func:`dp_count` (ties broken toward *not* shortcutting, which never
    increases the count)."""
    F = dp_table(tree, k)
    # child_sum at arbitrary t' is needed during the walk; recompute from F
    # lazily via children() — the walk touches each node once.
    selected: list[int] = []
    stack: list[tuple[int, int]] = [(int(u), 0) for u in tree.children(0)]
    while stack:
        u, tt = stack.pop()
        kids = tree.children(u)
        shortcut_cost = 1 + int(F[kids, 1].sum()) if len(kids) else 1
        if tt >= k:
            take = True
        else:
            pass_cost = int(F[kids, tt + 1].sum()) if len(kids) else 0
            take = shortcut_cost < pass_cost
        if take:
            selected.append(u)
            for w in kids:
                stack.append((int(w), 1))
        else:
            for w in kids:
                stack.append((int(w), tt + 1))
    return np.array(sorted(selected), dtype=np.int64)
