"""Exact (brute-force) implementations of the paper's Definitions 2–4.

Computing the k-radius ``r̄_k(v)`` exactly "may require as much as O(nm)
work" (§4), which is why the paper *never* computes it — the heuristics
guarantee ``r_ρ(v) ≤ r̄_k(v)`` by construction instead.  This module pays
that cost deliberately, on small graphs, to *validate* the construction:

* :func:`k_radius` / :func:`k_radii` — Definition 2 via min-hop Dijkstra;
* :func:`rho_nearest_distance` — Definition 3 (self-counting: the closest
  vertex to ``v`` is ``v`` itself, so ``r_1(v) = 0``);
* :func:`verify_kr_graph` — Definition 4 + Lemma 4.1's preconditions,
  reporting every violating vertex.

The test suite runs these against :mod:`repro.preprocess.pipeline` on all
graph families; the bounds-ablation benchmark uses them to certify the
inputs behind the Theorem 3.2/3.3 measurements.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.dijkstra import dijkstra_minhop
from ..graphs.csr import CSRGraph

__all__ = [
    "KrReport",
    "k_radius",
    "k_radii",
    "rho_nearest_distance",
    "verify_kr_graph",
]


def k_radius(graph: CSRGraph, v: int, k: int) -> float:
    """Exact k-radius r̄_k(v): the closest distance to ``v`` strictly more
    than ``k`` hops away (Definition 2), where hops are counted on the
    minimum-hop shortest path (Definition 1).  ``inf`` when every vertex
    is within ``k`` hops."""
    if k < 0:
        raise ValueError("k >= 0 required")
    dist, hops, _ = dijkstra_minhop(graph, v)
    beyond = np.isfinite(dist) & (hops > k)
    return float(dist[beyond].min()) if beyond.any() else float("inf")


def k_radii(graph: CSRGraph, k: int) -> np.ndarray:
    """Exact k-radius for every vertex — O(n m log n); small graphs only."""
    return np.array([k_radius(graph, v, k) for v in range(graph.n)])


def rho_nearest_distance(graph: CSRGraph, v: int, rho: int) -> float:
    """Exact ρ-nearest distance r_ρ(v) (Definition 3, self-counting).

    When fewer than ``rho`` vertices are reachable the component radius is
    returned — the degenerate value under which ``|B(v, r)| >= rho`` is
    unattainable but the ball still covers everything reachable.
    """
    if rho < 1:
        raise ValueError("rho >= 1 required")
    dist, _, _ = dijkstra_minhop(graph, v)
    finite = np.sort(dist[np.isfinite(dist)])
    if rho > len(finite):
        return float(finite[-1])
    return float(finite[rho - 1])


@dataclass
class KrReport:
    """Outcome of :func:`verify_kr_graph`.

    Attributes
    ----------
    k, rho: the configuration checked.
    radius_violations: vertices with ``r(v) > r̄_k(v)`` — these break the
        Theorem 3.2 substep bound.
    ball_violations: vertices with ``|B(v, r(v))| < rho`` — these break
        the Theorem 3.3 step bound.
    """

    k: int
    rho: int
    radius_violations: list[int]
    ball_violations: list[int]

    @property
    def ok(self) -> bool:
        """True when the graph + radii satisfy both preconditions."""
        return not self.radius_violations and not self.ball_violations


def verify_kr_graph(
    graph: CSRGraph, radii: np.ndarray, k: int, rho: int
) -> KrReport:
    """Exhaustively check Lemma 4.1's preconditions on ``(graph, radii)``.

    For every vertex ``v`` this verifies (a) ``r(v) ≤ r̄_k(v)`` and
    (b) ``|B(v, r(v))| ≥ min(rho, reachable(v))`` — the ball condition is
    capped at the component size so that disconnected graphs, where the
    paper's precondition is vacuously unattainable, do not report false
    violations.
    """
    if radii.shape != (graph.n,):
        raise ValueError(f"radii must have shape ({graph.n},)")
    radius_bad: list[int] = []
    ball_bad: list[int] = []
    for v in range(graph.n):
        dist, hops, _ = dijkstra_minhop(graph, v)
        finite = np.isfinite(dist)
        beyond = finite & (hops > k)
        rbar = float(dist[beyond].min()) if beyond.any() else float("inf")
        if radii[v] > rbar + 1e-12:
            radius_bad.append(v)
        ball = int(np.sum(finite & (dist <= radii[v] + 1e-12)))
        if ball < min(rho, int(finite.sum())):
            ball_bad.append(v)
    return KrReport(
        k=k, rho=rho, radius_violations=radius_bad, ball_violations=ball_bad
    )
