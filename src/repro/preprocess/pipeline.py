"""End-to-end (k,ρ)-graph construction (Section 4).

``build_kr_graph`` turns any connected graph into a (k,ρ)-graph plus the
matching radii ``r(v) = r_ρ(v)``:

1. a truncated Dijkstra ball per vertex (Lemma 4.2),
2. shortcut selection per ball tree — ``full`` for (1,ρ), ``greedy`` or
   ``dp`` for (k,ρ) (§4.1–4.2),
3. shortcut edges ``(s, v, d(s, v))`` merged into the graph.

After this, Radius-Stepping with the returned radii enjoys both bounds:
≤ k+2 substeps per step (Thm 3.2, because every ball member is within k
hops via tree + shortcut edges, so r_ρ(v) ≤ r̄_k(v)) and
≤ ⌈n/ρ⌉(1+⌈log₂ ρL⌉) steps (Thm 3.3, because |B(v, r_ρ(v))| ≥ ρ).
Distances are unchanged: every shortcut carries its exact shortest-path
weight.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field

import numpy as np

from ..graphs.build import add_shortcuts, induced_subgraph
from ..graphs.csr import CSRGraph
from ..parallel.pool import parallel_map, parallel_map_shared
from .backends import HEURISTICS, get_ball_backend

__all__ = [
    "PreprocessResult",
    "ShardedPreprocessResult",
    "build_kr_graph",
    "build_sharded_kr_graph",
    "HEURISTICS",
]


class _StageClock:
    """Wall-clock accounting for the preprocessing pipeline's stages.

    Each ``with clock.stage("..."):`` block accumulates its elapsed
    seconds into :attr:`stages` (what the result records as
    ``stage_seconds``) and, when a metrics registry was handed to the
    builder, observes the same duration into the
    ``preprocess_stage_seconds{stage}`` histogram.  The registry is
    duck-typed (anything with ``.histogram()``) so preprocessing keeps
    zero hard dependency on :mod:`repro.obs`.
    """

    def __init__(self, registry=None) -> None:
        self.stages: dict[str, float] = {}
        self._hist = None
        if registry is not None:
            self._hist = registry.histogram(
                "preprocess_stage_seconds",
                "wall-clock seconds per (k,rho)-preprocessing stage",
                ("stage",),
            )

    @contextmanager
    def stage(self, name: str):
        t0 = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - t0
            self.stages[name] = self.stages.get(name, 0.0) + elapsed
            if self._hist is not None:
                self._hist.labels(name).observe(elapsed)


@dataclass
class PreprocessResult:
    """Output of :func:`build_kr_graph`.

    Attributes
    ----------
    graph: the augmented (k,ρ)-graph — in *internal* (possibly
        reordered) vertex numbering.
    radii: ``r_ρ(v)`` per internal vertex — feed straight into
        :func:`repro.core.radius_stepping`.
    added_edges: shortcut count *before* merging (the paper's Tables 2/3
        metric: one per selected tree node per source).
    new_edges: undirected edges genuinely new to the graph after merge
        (duplicates across sources / existing edges collapse).
    k, rho, heuristic: the configuration.
    source_hash: :meth:`~repro.graphs.csr.CSRGraph.content_hash` of the
        *input* graph (pre-reordering — the graph the user hands to a
        serving process), so a persisted artifact can later be verified
        against the graph that process intends to query.
    preferred_engine: the query engine measured fastest on the
        augmented graph (``build_kr_graph(..., calibrate_engine=True)``
        or :func:`repro.engine.autoselect.pick_engine`); ``""`` means
        "never calibrated" and lets ``engine="auto"`` fall back to the
        static default.  Persisted by version-2 serving artifacts.
    reorder: name of the locality ordering preprocessing ran under
        (:mod:`repro.graphs.reorder`); ``"natural"`` = input numbering.
    perm: external → internal id map (``perm[input_id] = internal_id``),
        or ``None`` for the identity (no reordering).  Persisted by
        version-3 serving artifacts so the query facade can keep the
        reordering invisible: every answer is translated back to input
        ids at the boundary.
    inv_perm: the inverse map (``inv_perm[internal_id] = input_id``);
        ``None`` iff ``perm`` is.
    locality_before / locality_after: the
        :func:`~repro.graphs.reorder.mean_neighbor_gap` diagnostic of
        the input graph and of the (reordered) graph preprocessing ran
        on; ``nan`` when never measured (hand-built records, pre-v3
        artifacts).
    stage_seconds: wall-clock seconds per pipeline stage of this build
        (``reorder`` / ``ball_shortcuts`` / ``merge`` / ``calibrate``) —
        the telemetry a capacity planner reads; empty for hand-built
        records and artifact rehydrations (loading is not building).
    """

    graph: CSRGraph
    radii: np.ndarray
    added_edges: int
    new_edges: int
    k: int
    rho: int
    heuristic: str
    source_hash: str = ""
    preferred_engine: str = ""
    reorder: str = "natural"
    perm: np.ndarray | None = field(default=None, repr=False)
    inv_perm: np.ndarray | None = field(default=None, repr=False)
    locality_before: float = float("nan")
    locality_after: float = float("nan")
    stage_seconds: dict = field(default_factory=dict, repr=False)

    @property
    def edge_factor(self) -> float:
        """added_edges / m of the input graph — Figure 3's y-axis."""
        base_m = self.graph.m - self.new_edges
        return self.added_edges / base_m if base_m else float("inf")

    def save(self, path) -> None:
        """Persist this result as a serving artifact (``.npz`` bundle).

        The export hook into :mod:`repro.serve.artifacts` (imported
        lazily — preprocessing must not depend on the serving layer):
        ``load_artifact(path)`` restores an equal record in milliseconds,
        skipping the whole (k,ρ)-construction.
        """
        from ..serve.artifacts import save_artifact

        save_artifact(path, self)


def _shortcuts_for_chunk(
    graph: CSRGraph,
    sources: np.ndarray,
    *,
    k: int,
    rho: int,
    heuristic: str,
    include_ties: bool,
    backend: str,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Worker kernel: radii and shortcut triples for a source chunk.

    ``backend`` is a required keyword on purpose: every public entry
    point defaults to ``"batched"``, and a silent default here once let
    private callers drop onto the slow path unnoticed.  The whole step —
    ball construction plus §4.2 selection — is the backend's
    ``compute_shortcuts``: the batched backend fuses both through the
    forest-level selection engine, the scalar backend walks each tree
    with the reference selectors.
    """
    return get_ball_backend(backend).compute_shortcuts(
        graph, sources, rho, k, heuristic, include_ties=include_ties
    )


def build_kr_graph(
    graph: CSRGraph,
    k: int,
    rho: int,
    *,
    heuristic: str = "dp",
    include_ties: bool = True,
    n_jobs: int = 1,
    backend: str = "batched",
    calibrate_engine: bool = False,
    calibration_budget: float = 1.0,
    reorder: str = "natural",
    reorder_seed: int = 0,
    registry=None,
) -> PreprocessResult:
    """Preprocess ``graph`` into a (k,ρ)-graph; see module docstring.

    ``heuristic='full'`` ignores ``k`` for selection (every ball member is
    brought to hop 1) and therefore produces a (1,ρ)-graph — pass ``k=1``
    for clarity.  ``include_ties`` is §5.1's deterministic tie handling
    (recommended: it is what makes r_ρ(v) ≤ r̄_k(v) hold with equality at
    the ball boundary).  ``backend`` picks both kernels through
    :mod:`repro.preprocess.backends` (``"batched"`` by default: the slot
    ball engine plus the forest-level selection engine of
    :mod:`repro.preprocess.select_batched`; ``"scalar"``: heap searches
    and per-tree selection walks); radii and shortcut selections are
    bit-identical across backends.

    ``calibrate_engine=True`` additionally races the registered query
    engines on the augmented graph (a few sampled sources, about
    ``calibration_budget`` seconds of wall clock per engine — see
    :func:`repro.engine.autoselect.pick_engine`) and stamps the winner
    into ``PreprocessResult.preferred_engine``, where version-2 serving
    artifacts persist it and ``engine="auto"`` queries pick it up.
    Preprocessing is run once per graph; this folds the one-time tuning
    cost into the same amortized budget.

    ``reorder`` renumbers the vertices with a locality ordering from
    :mod:`repro.graphs.reorder` (``"bfs"``, ``"rcm"``, ``"degree"``,
    ``"random"``; ``"natural"`` = keep the input numbering) *before* any
    preprocessing runs, so the augmented graph, the radii and every
    later query enjoy the cache-friendly layout.  The permutation and
    its inverse are recorded in the result (and in version-3 serving
    artifacts); :class:`repro.core.solver.PreprocessedSSSP` translates
    ids at the query boundary, so callers never see internal numbering
    — the reordering is invisible except for speed.  ``source_hash``
    stays the hash of the *input* graph for the same reason.

    Every build times its stages into ``PreprocessResult.stage_seconds``
    (``reorder``, ``ball_shortcuts``, ``merge``, ``calibrate`` — the
    fused batched backend runs ball construction and §4.2 selection as
    one stage, so they are timed as one).  ``registry`` optionally
    mirrors the same durations into a
    :class:`repro.obs.metrics.MetricsRegistry` as the
    ``preprocess_stage_seconds{stage}`` histogram.
    """
    if heuristic not in HEURISTICS:
        raise ValueError(f"unknown heuristic {heuristic!r}; try {sorted(HEURISTICS)}")
    if k < 1:
        raise ValueError("k >= 1 required")
    if rho < 1:
        raise ValueError("rho >= 1 required")
    get_ball_backend(backend)  # validate the name before forking workers
    # Lazy import: the graphs layer must stay importable without the
    # preprocessing layer, not vice versa — but keep module load light.
    from ..graphs.reorder import compute_ordering, inverse_permutation, mean_neighbor_gap
    from ..graphs.transform import permute_vertices

    clock = _StageClock(registry)
    input_graph = graph
    with clock.stage("reorder"):
        locality_before = mean_neighbor_gap(graph)
        perm = inv_perm = None
        if reorder != "natural":
            perm = compute_ordering(graph, reorder, seed=reorder_seed)
            inv_perm = inverse_permutation(perm)
            graph = permute_vertices(graph, perm)
        locality_after = (
            mean_neighbor_gap(graph) if perm is not None else locality_before
        )
    sources = np.arange(graph.n, dtype=np.int64)
    with clock.stage("ball_shortcuts"):
        if graph.n == 0:
            # degenerate but legal (an empty shard of a partitioned graph):
            # there is nothing to search and nothing to shortcut
            blocks = []
            radii = np.empty(0, dtype=np.float64)
            src = dst = np.empty(0, dtype=np.int64)
            w = np.empty(0, dtype=np.float64)
        else:
            blocks = parallel_map(
                _shortcuts_for_chunk,
                sources,
                n_jobs=n_jobs,
                fn_args=(graph,),
                fn_kwargs={
                    "k": k,
                    "rho": rho,
                    "heuristic": heuristic,
                    "include_ties": include_ties,
                    "backend": backend,
                },
            )
            radii = np.concatenate([b[0] for b in blocks])
            src = np.concatenate([b[1] for b in blocks])
            dst = np.concatenate([b[2] for b in blocks])
            w = np.concatenate([b[3] for b in blocks])
    with clock.stage("merge"):
        aug = add_shortcuts(graph, src, dst, w)
    preferred = ""
    if calibrate_engine and aug.n:
        # lazy import: preprocessing must not depend on the engine layer
        # unless calibration is requested.
        from ..engine.autoselect import pick_engine

        with clock.stage("calibrate"):
            preferred = pick_engine(aug, radii, budget=calibration_budget)
    return PreprocessResult(
        graph=aug,
        radii=radii,
        added_edges=len(src),
        new_edges=aug.m - graph.m,
        k=k,
        rho=rho,
        heuristic=heuristic,
        source_hash=input_graph.content_hash(),
        preferred_engine=preferred,
        reorder=reorder,
        perm=perm,
        inv_perm=inv_perm,
        locality_before=locality_before,
        locality_after=locality_after,
        stage_seconds=clock.stages,
    )


# --------------------------------------------------------------------- #
# Sharded preprocessing — partition → per-shard (k,ρ) → boundary overlay
# --------------------------------------------------------------------- #
@dataclass
class ShardedPreprocessResult:
    """Output of :func:`build_sharded_kr_graph`.

    One record holds everything a shard router needs to answer exact
    queries: the partition, one complete :class:`PreprocessResult` per
    shard (over *shard-local* vertex numbering), and the boundary
    overlay.

    Attributes
    ----------
    shards: per-shard preprocessing — ``shards[s].graph`` is the
        augmented (k,ρ)-graph of shard ``s`` in shard-local ids.
    shard_vertices: ``shard_vertices[s][i]`` is the original id of
        shard ``s``'s local vertex ``i`` (sorted ascending, the
        :func:`~repro.graphs.build.induced_subgraph` convention).
    labels: ``labels[v]`` is the shard owning original vertex ``v``.
    overlay_graph: the boundary overlay — vertices are the boundary
        vertices of every shard (overlay-local ids), arcs are (a) every
        original inter-shard edge at its original weight and (b) for
        each shard, an arc per boundary pair carrying the exact
        within-shard shortest-path distance.  Shortest paths *in the
        overlay* between boundary vertices therefore equal shortest
        paths in the full graph: any full-graph shortest path
        decomposes into maximal intra-shard segments (each replaced by
        a type-(b) arc) joined by cut edges (type (a)).
    overlay_vertices: original ids of the overlay vertices (sorted).
    partition_method / partition_seed: how the shards were cut.
    edge_cut / balance: the partition quality metrics
        (:class:`~repro.graphs.partition.Partition`).
    k, rho, heuristic: the per-shard preprocessing configuration.
    source_hash: content hash of the *input* graph, as for
        :class:`PreprocessResult`.
    stage_seconds: wall-clock seconds per pipeline stage of this build
        (``partition`` / ``shard_preprocess`` / ``overlay``); empty for
        hand-built records and artifact rehydrations.
    """

    shards: list[PreprocessResult]
    shard_vertices: list[np.ndarray]
    labels: np.ndarray = field(repr=False)
    overlay_graph: CSRGraph = field(repr=False)
    overlay_vertices: np.ndarray = field(repr=False)
    partition_method: str
    partition_seed: int
    edge_cut: int
    balance: float
    k: int
    rho: int
    heuristic: str
    source_hash: str = ""
    stage_seconds: dict = field(default_factory=dict, repr=False)

    @property
    def n_shards(self) -> int:
        """Number of shards."""
        return len(self.shards)

    @property
    def n(self) -> int:
        """Number of vertices of the partitioned input graph."""
        return len(self.labels)

    def boundary_counts(self) -> list[int]:
        """Boundary-vertex count per shard."""
        counts = [0] * self.n_shards
        for v in self.overlay_vertices:
            counts[int(self.labels[v])] += 1
        return counts

    def save(self, path) -> None:
        """Persist as a sharded serving bundle (directory of artifacts).

        Export hook into :mod:`repro.serve.artifacts` (imported lazily —
        preprocessing must not depend on the serving layer):
        ``load_sharded_artifact(path)`` restores an equal record.
        """
        from ..serve.artifacts import save_sharded_artifact

        save_sharded_artifact(path, self)


def _preprocess_shard_chunk(payload: tuple, shard_ids: np.ndarray):
    """Pool worker: per-shard induced subgraph + (k,ρ)-preprocessing.

    The full graph and shard labels arrive fork-inherited copy-on-write
    (:func:`repro.parallel.parallel_map_shared`); each worker carves out
    its shards' induced subgraphs locally, so no subgraph is ever
    pickled through the task pipe.
    """
    graph, labels, kwargs = payload
    out = []
    for s in shard_ids:
        sub, _ids = induced_subgraph(graph, np.flatnonzero(labels == s))
        out.append(build_kr_graph(sub, n_jobs=1, **kwargs))
    return out


def build_sharded_kr_graph(
    graph: CSRGraph,
    k: int,
    rho: int,
    *,
    n_shards: int,
    partition: str = "contiguous",
    partition_seed: int = 0,
    heuristic: str = "dp",
    include_ties: bool = True,
    n_jobs: int = 1,
    backend: str = "batched",
    calibrate_engine: bool = False,
    calibration_budget: float = 1.0,
    registry=None,
) -> ShardedPreprocessResult:
    """Partition → per-shard (k,ρ)-preprocessing → boundary overlay.

    The sharded counterpart of :func:`build_kr_graph`:

    1. cut the graph into ``n_shards`` shards with the named
       partitioner (:mod:`repro.graphs.partition`);
    2. run :func:`build_kr_graph` independently on every shard's
       induced subgraph — ball search and shortcut selection are
       per-source local, so shards never need each other — fanned over
       the fork pool when ``n_jobs > 1``;
    3. build the **boundary overlay**: a graph on the boundary vertices
       whose arcs are the original inter-shard edges plus, per shard,
       the exact within-shard shortest-path distance between each pair
       of its boundary vertices (solved on the shard's own augmented
       graph, so step 2's speedup compounds here).

    Exactness: every overlay arc weight is either an original edge
    weight or an exact within-shard distance, and any full-graph
    shortest path between boundary vertices decomposes into exactly
    such pieces — so the overlay preserves the boundary-to-boundary
    metric, and a router stitching ``source shard → overlay → target
    shard`` answers with true full-graph distances
    (:class:`repro.serve.router.ShardRouter` is that router).

    Cost note: the overlay holds up to ``Σ_s |∂s|²`` distance arcs; the
    partitioners are built to keep boundary sets small, but a partition
    of a dense graph into many tiny shards can make the overlay the
    dominant artifact — ``edge_cut`` and ``balance`` on the result are
    the metrics to watch.

    Stages are timed into ``stage_seconds`` (``partition`` /
    ``shard_preprocess`` / ``overlay``) and, when ``registry`` is given,
    into its ``preprocess_stage_seconds{stage}`` histogram, exactly as
    in :func:`build_kr_graph`.
    """
    from ..graphs.partition import compute_partition

    clock = _StageClock(registry)
    with clock.stage("partition"):
        part = compute_partition(graph, partition, n_shards, seed=partition_seed)
    kwargs = {
        "k": k,
        "rho": rho,
        "heuristic": heuristic,
        "include_ties": include_ties,
        "backend": backend,
        "calibrate_engine": calibrate_engine,
        "calibration_budget": calibration_budget,
    }
    with clock.stage("shard_preprocess"):
        blocks = parallel_map_shared(
            _preprocess_shard_chunk,
            (graph, part.labels, kwargs),
            np.arange(n_shards, dtype=np.int64),
            n_jobs=n_jobs,
        )
        shards = [pre for block in blocks for pre in block]
    shard_vertices = [part.members(s) for s in range(n_shards)]
    with clock.stage("overlay"):
        overlay_graph, overlay_vertices = _build_overlay(
            graph, part.labels, shards, shard_vertices, n_jobs=n_jobs
        )
    return ShardedPreprocessResult(
        shards=shards,
        shard_vertices=shard_vertices,
        labels=part.labels,
        overlay_graph=overlay_graph,
        overlay_vertices=overlay_vertices,
        partition_method=partition,
        partition_seed=partition_seed,
        edge_cut=part.edge_cut,
        balance=part.balance,
        k=k,
        rho=rho,
        heuristic=heuristic,
        source_hash=graph.content_hash(),
        stage_seconds=clock.stages,
    )


def _build_overlay(
    graph: CSRGraph,
    labels: np.ndarray,
    shards: list[PreprocessResult],
    shard_vertices: list[np.ndarray],
    *,
    n_jobs: int = 1,
) -> tuple[CSRGraph, np.ndarray]:
    """The inter-shard stitching graph; see
    :class:`ShardedPreprocessResult.overlay_graph` for the contract."""
    from ..core.solver import PreprocessedSSSP
    from ..graphs.build import from_arc_arrays

    n = graph.n
    tails = np.repeat(np.arange(n, dtype=np.int64), graph.degrees())
    cross = labels[tails] != labels[graph.indices]
    overlay_vertices = np.unique(tails[cross])
    ov_index = np.full(n, -1, dtype=np.int64)
    ov_index[overlay_vertices] = np.arange(len(overlay_vertices), dtype=np.int64)
    us = [ov_index[tails[cross]]]
    vs = [ov_index[graph.indices[cross]]]
    ws = [graph.weights[cross]]
    for s, pre in enumerate(shards):
        verts = shard_vertices[s]
        if len(verts) == 0:
            continue
        # shard-local ids of this shard's boundary vertices
        local_of = np.full(n, -1, dtype=np.int64)
        local_of[verts] = np.arange(len(verts), dtype=np.int64)
        boundary = overlay_vertices[labels[overlay_vertices] == s]
        if len(boundary) < 2:
            continue
        b_local = local_of[boundary]
        solver = PreprocessedSSSP.from_preprocessed(pre)
        rows = solver.solve_many(b_local, n_jobs=n_jobs)
        b_ov = ov_index[boundary]
        for i, res in enumerate(rows):
            d = res.dist[b_local]
            ok = np.isfinite(d)
            ok[i] = False  # no self loops
            us.append(np.full(int(ok.sum()), b_ov[i], dtype=np.int64))
            vs.append(b_ov[ok])
            ws.append(d[ok])
    overlay = from_arc_arrays(
        len(overlay_vertices),
        np.concatenate(us) if us else np.empty(0, dtype=np.int64),
        np.concatenate(vs) if vs else np.empty(0, dtype=np.int64),
        np.concatenate(ws) if ws else np.empty(0, dtype=np.float64),
        symmetrize=True,
        validate=False,
    )
    return overlay, overlay_vertices
