"""Vertex radii r_ρ(·) — the inputs Radius-Stepping needs.

Lemma 4.1: running Radius-Stepping with ``r(v) = r_ρ(v)`` on a
(k,ρ)-graph satisfies both preconditions of the step/substep bounds.
The step-count experiments (Figures 4/5, Tables 4–7) need *only* these
radii — adding shortcuts changes neither distances nor the ``d_i``
sequence, so "the number of steps is independent of k and is only
affected by ρ" (§5.3).  We exploit that: steps experiments compute radii
on the original graph and skip shortcut materialization entirely.

One ball search per vertex yields the radii for *every* ρ at once (the
settle distances are exactly r_1, r_2, ...), so a ρ-sweep costs one pass
at ρ_max.  Two axes of parallelism compose here:

* ``backend=`` picks the ball-search kernel through the registry of
  :mod:`repro.preprocess.backends` — ``"batched"`` (default) grows whole
  slot blocks of balls per NumPy round, ``"scalar"`` is the heap
  reference; outputs are bit-identical.
* ``n_jobs`` fans source chunks (and therefore slot blocks) out over a
  fork-based process pool (:mod:`repro.parallel`).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..graphs.csr import CSRGraph
from ..parallel.pool import parallel_map
from .backends import get_ball_backend

__all__ = ["compute_radii", "compute_radii_sweep"]


def _radii_for_chunk(
    graph: CSRGraph,
    sources: np.ndarray,
    *,
    rhos: Sequence[int],
    backend: str,
) -> np.ndarray:
    """Worker kernel: r_ρ for each source and each ρ (shape |chunk| × |ρ|).

    ``backend`` is a required keyword on purpose: every public entry
    point defaults to ``"batched"``, and a silent default here once let
    private callers drop onto the slow path unnoticed.
    """
    return get_ball_backend(backend).compute_radii(graph, sources, rhos)


def compute_radii_sweep(
    graph: CSRGraph,
    rhos: Sequence[int],
    *,
    n_jobs: int = 1,
    backend: str = "batched",
) -> dict[int, np.ndarray]:
    """r_ρ(v) for every vertex and every ρ in ``rhos`` in one pass.

    Returns ``{rho: radii_array}``.  Work is O(n ρ_max²) in the worst
    case (Lemma 4.2; see :func:`repro.graphs.generators.figure2_graph`),
    typically far less on real-world-like graphs (§4.1).  ``backend``
    selects the ball-search kernel (see module docstring); every backend
    returns bit-identical radii.
    """
    if not rhos:
        raise ValueError("need at least one rho")
    if any(r < 1 for r in rhos):
        raise ValueError("all rho must be >= 1")
    get_ball_backend(backend)  # validate the name before forking workers
    sources = np.arange(graph.n, dtype=np.int64)
    blocks = parallel_map(
        _radii_for_chunk,
        sources,
        n_jobs=n_jobs,
        fn_args=(graph,),
        fn_kwargs={"rhos": tuple(rhos), "backend": backend},
    )
    stacked = np.concatenate(blocks, axis=0)
    return {rho: stacked[:, j].copy() for j, rho in enumerate(rhos)}


def compute_radii(
    graph: CSRGraph,
    rho: int,
    *,
    n_jobs: int = 1,
    backend: str = "batched",
) -> np.ndarray:
    """r_ρ(v) for every vertex (one ρ)."""
    return compute_radii_sweep(graph, [rho], n_jobs=n_jobs, backend=backend)[
        rho
    ]
