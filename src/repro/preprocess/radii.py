"""Vertex radii r_ρ(·) — the inputs Radius-Stepping needs.

Lemma 4.1: running Radius-Stepping with ``r(v) = r_ρ(v)`` on a
(k,ρ)-graph satisfies both preconditions of the step/substep bounds.
The step-count experiments (Figures 4/5, Tables 4–7) need *only* these
radii — adding shortcuts changes neither distances nor the ``d_i``
sequence, so "the number of steps is independent of k and is only
affected by ρ" (§5.3).  We exploit that: steps experiments compute radii
on the original graph and skip shortcut materialization entirely.

One ball search per vertex yields the radii for *every* ρ at once (the
settle distances are exactly r_1, r_2, ...), so a ρ-sweep costs one pass
at ρ_max.  The n searches are independent; ``n_jobs`` fans them out over
a fork-based process pool (:mod:`repro.parallel`).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..graphs.csr import CSRGraph
from ..parallel.pool import parallel_map
from .ball import ball_search

__all__ = ["compute_radii", "compute_radii_sweep"]


def _radii_for_chunk(
    graph: CSRGraph, sources: np.ndarray, rhos: Sequence[int]
) -> np.ndarray:
    """Worker kernel: r_ρ for each source and each ρ (shape |chunk| × |ρ|)."""
    rho_max = max(rhos)
    out = np.empty((len(sources), len(rhos)), dtype=np.float64)
    for i, s in enumerate(sources):
        ball = ball_search(graph, int(s), rho_max, include_ties=False)
        for j, rho in enumerate(rhos):
            out[i, j] = ball.r_rho(rho)
    return out


def compute_radii_sweep(
    graph: CSRGraph,
    rhos: Sequence[int],
    *,
    n_jobs: int = 1,
) -> dict[int, np.ndarray]:
    """r_ρ(v) for every vertex and every ρ in ``rhos`` in one pass.

    Returns ``{rho: radii_array}``.  Work is O(n ρ_max²) in the worst
    case (Lemma 4.2; see :func:`repro.graphs.generators.figure2_graph`),
    typically far less on real-world-like graphs (§4.1).
    """
    if not rhos:
        raise ValueError("need at least one rho")
    if any(r < 1 for r in rhos):
        raise ValueError("all rho must be >= 1")
    sources = np.arange(graph.n, dtype=np.int64)
    blocks = parallel_map(
        _radii_for_chunk,
        sources,
        n_jobs=n_jobs,
        fn_args=(graph,),
        fn_kwargs={"rhos": tuple(rhos)},
    )
    stacked = np.concatenate(blocks, axis=0)
    return {rho: stacked[:, j].copy() for j, rho in enumerate(rhos)}


def compute_radii(graph: CSRGraph, rho: int, *, n_jobs: int = 1) -> np.ndarray:
    """r_ρ(v) for every vertex (one ρ)."""
    return compute_radii_sweep(graph, [rho], n_jobs=n_jobs)[rho]
