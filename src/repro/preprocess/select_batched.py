"""Forest-level shortcut selection — all trees of a slot block at once.

The §4.2 heuristics (`dp_select`, `greedy_select`, `full_select`) are
per-tree walkers: pure-Python loops over every ball-tree node.  After the
batched slot engine (:mod:`repro.preprocess.batched`) vectorized the ball
searches themselves, that per-node Python became the Amdahl bound on
``build_kr_graph``'s end-to-end speedup.  This module removes it by
running each heuristic over an entire :class:`~repro.preprocess.tree.TreeBlock`
— hundreds of trees in one flat (slot, local-node) layout — in a handful
of NumPy passes.

How the DP vectorizes
---------------------
The §4.2.2 recurrence is bottom-up over the settle order, children before
parents.  Within one *depth level* the nodes are independent (a node's
children all sit one level deeper), so the forest sweep processes whole
levels instead of single nodes:

* **bottom-up** (``forest_dp_tables``): for each level, deepest first,
  evaluate ``F(u, ·)`` for every node of the level across *all* trees with
  two array ops, then scatter-add the rows into the parents' child sums
  with one ``np.add.at`` — exactly the per-node ``child_sum[p] += F[u]``
  of the scalar table, batched per level.
* **top-down** (``forest_dp_select``): the traceback state ``t`` (hops of
  the parent from the source after the selections made above it) is a
  pure gather from the parent's state, so each level needs one
  ``np.where`` over its nodes; selections fall out as flat positions.

Work is the scalar O(ρk) per tree unchanged; the number of Python-level
iterations drops from Σ tree sizes to the maximum tree *depth* of the
block.  Selections are bit-identical to the per-tree walkers — same
costs, same strict-inequality tie-breaking toward not shortcutting —
which the parity suite (tests/preprocess/test_select_batched.py) pins
across every generator family.

Greedy and full are static depth rules and vectorize to one mask over the
block's flat depth array (the rules themselves are shared with the
per-tree walkers: :func:`~repro.preprocess.greedy.greedy_depth_mask`,
:func:`~repro.preprocess.shortcut_one.full_depth_mask`).

Entry points
------------
``forest_select`` / ``forest_counts`` / ``forest_shortcuts`` run a
heuristic over a prepared block; :func:`batched_select` is the end-to-end
fast path — slot blocks straight from the batched ball engine, selections
and shortcut triples out — registered as the batched backend's
``select_fn`` (see :mod:`repro.preprocess.backends`), with the per-tree
walkers as the scalar backend's fallback.
"""

from __future__ import annotations

import numpy as np

from ..graphs.csr import CSRGraph
from .batched import iter_tree_blocks
from .greedy import greedy_depth_mask
from .shortcut_one import full_depth_mask
from .tree import TreeBlock, _concat_or_empty

__all__ = [
    "batched_select",
    "forest_counts",
    "forest_dp_counts",
    "forest_dp_select",
    "forest_dp_tables",
    "forest_select",
    "forest_select_positions",
    "forest_shortcuts",
]

_EMPTY = np.empty(0, dtype=np.int64)

#: heuristic -> shared static depth rule (DP dispatches separately).
_DEPTH_MASKS = {"greedy": greedy_depth_mask, "full": full_depth_mask}


def _check_heuristic(heuristic: str) -> None:
    if heuristic != "dp" and heuristic not in _DEPTH_MASKS:
        raise ValueError(
            f"unknown heuristic {heuristic!r}; "
            f"try {sorted(('dp', *_DEPTH_MASKS))}"
        )


def _levels(depth: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Group flat node positions by tree depth.

    Returns ``(order, ptr)``: ``order[ptr[d]:ptr[d+1]]`` are the flat
    positions of every depth-``d`` node in the block, each level's
    positions ascending (stable sort over an already slot-grouped
    layout), for ``d`` in ``0..max_depth``.
    """
    order = np.argsort(depth, kind="stable")
    counts = np.bincount(depth, minlength=1)
    ptr = np.zeros(len(counts) + 1, dtype=np.int64)
    np.cumsum(counts, out=ptr[1:])
    return order, ptr


def forest_dp_tables(
    block: TreeBlock, k: int
) -> tuple[np.ndarray, np.ndarray]:
    """``(F, child_sum)`` for every tree of the block, stacked flat.

    ``F[block.offsets[i]:block.offsets[i+1]]`` equals
    ``dp_table(block.tree(i), k)`` row for row (root rows zero);
    ``child_sum[u, t]`` is ``Σ_w F(w, t)`` over the children of ``u`` for
    ``t ≤ k`` (the scalar table's working array, which the traceback and
    the count read directly).
    """
    if k < 1:
        raise ValueError("k >= 1 required")
    t = len(block)
    F = np.zeros((t, k + 1), dtype=np.int64)
    child_sum = np.zeros((t, k + 1), dtype=np.int64)
    if t == 0:
        return F, child_sum
    fp = block.flat_parent()
    order, ptr = _levels(block.depth)
    # Deepest level first: every child is fully evaluated (and scattered
    # into its parent's child_sum) before its parent's level runs.
    for d in range(len(ptr) - 2, 0, -1):
        level = order[ptr[d] : ptr[d + 1]]
        if not len(level):
            continue
        cs = child_sum[level]
        shortcut_cost = 1 + cs[:, 1]
        # F(u, t) = min(shortcut, pass-through at depth t+1) for t < k;
        # F(u, k) forces the shortcut.
        FL = np.empty((len(level), k + 1), dtype=np.int64)
        np.minimum(shortcut_cost[:, None], cs[:, 1:], out=FL[:, :k])
        FL[:, k] = shortcut_cost
        F[level] = FL
        np.add.at(child_sum, fp[level], FL)
    return F, child_sum


def forest_dp_counts(block: TreeBlock, k: int) -> np.ndarray:
    """Per-tree DP optimum — ``dp_count(block.tree(i), k)`` for every i.

    The optimum is ``Σ_{u ∈ children(root)} F(u, 0)``, i.e. the root's
    child sum at t=0, read straight off the bottom-up sweep.
    """
    _, child_sum = forest_dp_tables(block, k)
    return child_sum[block.offsets[:-1], 0]


def forest_dp_select(block: TreeBlock, k: int) -> np.ndarray:
    """DP-selected flat positions (sorted) across the whole block.

    The top-down traceback of ``dp_select``, one level at a time: node
    ``u`` whose parent sits ``t`` hops from the source is shortcut iff
    ``t ≥ k`` or ``1 + child_sum[u, 1] < child_sum[u, t+1]`` (strict —
    ties keep the pass-through, matching the scalar walker), and its
    children's ``t`` becomes 1 if taken else ``t+1`` — a gather from the
    parent, no scatter needed.
    """
    _, child_sum = forest_dp_tables(block, k)
    t = len(block)
    if t == 0:
        return _EMPTY
    fp = block.flat_parent()
    order, ptr = _levels(block.depth)
    tt = np.zeros(t, dtype=np.int64)  # parent's hop count per node
    take = np.zeros(t, dtype=bool)
    parts: list[np.ndarray] = []
    for d in range(1, len(ptr) - 1):
        level = order[ptr[d] : ptr[d + 1]]
        if not len(level):
            continue
        if d > 1:
            p = fp[level]
            tt[level] = np.where(take[p], 1, tt[p] + 1)
        tl = tt[level]
        shortcut_cost = 1 + child_sum[level, 1]
        # tt+1 ≤ k whenever the pass cost is consulted (tt ≥ k forces a
        # shortcut); the clamp only feeds rows the mask overrides.
        pass_cost = child_sum[level, np.minimum(tl + 1, k)]
        take[level] = (tl >= k) | (shortcut_cost < pass_cost)
        parts.append(level[take[level]])
    if not parts:
        return _EMPTY
    return np.sort(np.concatenate(parts))


def forest_select_positions(
    block: TreeBlock, heuristic: str, k: int
) -> np.ndarray:
    """Selected flat positions (sorted ascending) for one heuristic.

    Sorted flat positions are simultaneously grouped by slot and
    ascending in local id within each slot — the exact concatenation
    order of the per-tree walkers.
    """
    _check_heuristic(heuristic)
    if heuristic == "dp":
        return forest_dp_select(block, k)
    return np.flatnonzero(_DEPTH_MASKS[heuristic](block.depth, k))


def forest_select(
    block: TreeBlock, heuristic: str, k: int
) -> list[np.ndarray]:
    """Per-tree selected local ids — ``HEURISTICS[heuristic](tree, k)``
    for every tree of the block, bit-identical, in one engine pass."""
    if block.num_trees == 0:
        _check_heuristic(heuristic)
        return []
    pos = forest_select_positions(block, heuristic, k)
    cuts = np.searchsorted(pos, block.offsets[1:-1])
    slot = np.searchsorted(block.offsets, pos, side="right") - 1
    local = pos - block.offsets[slot]
    return np.split(local, cuts)


def forest_counts(block: TreeBlock, heuristic: str, k: int) -> np.ndarray:
    """Per-tree selection sizes without materializing the selections
    (greedy/full) or the traceback (dp) — the Tables 2/3 fast path."""
    _check_heuristic(heuristic)
    if heuristic == "dp":
        return forest_dp_counts(block, k)
    mask = _DEPTH_MASKS[heuristic](block.depth, k)
    return np.bincount(block.slot_ids()[mask], minlength=block.num_trees)


def forest_shortcuts(
    block: TreeBlock, heuristic: str, k: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Shortcut triples ``(src, dst, weight)`` for the whole block —
    what :func:`~repro.preprocess.pipeline.build_kr_graph` merges, in the
    same order as the scalar per-tree walk + concatenation."""
    pos = forest_select_positions(block, heuristic, k)
    slot = np.searchsorted(block.offsets, pos, side="right") - 1
    return (
        block.sources[slot],
        block.vertices[pos],
        block.dist[pos],
    )


def batched_select(
    graph: CSRGraph,
    sources: np.ndarray,
    rho: int,
    k: int,
    heuristic: str,
    *,
    include_ties: bool = True,
    slot_block: int | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """End-to-end selection fast path: ``(r_ρ, src, dst, weight)``.

    Slot blocks of ball trees come straight from the batched engine
    (:func:`~repro.preprocess.batched.batched_tree_block`'s per-chunk
    kernel — no ``BallSearchResult`` or per-tree ``BallTree`` is ever
    materialized) and each block flows through the forest engine above.
    Registered as the batched backend's ``select_fn``; output equals the
    scalar fallback (per-tree walkers over ``compute_trees``) bit for
    bit.
    """
    _check_heuristic(heuristic)  # before any ball search runs
    if k < 1:
        raise ValueError("k >= 1 required")
    radii_parts: list[np.ndarray] = []
    src_parts: list[np.ndarray] = []
    dst_parts: list[np.ndarray] = []
    w_parts: list[np.ndarray] = []
    for radii_chunk, block in iter_tree_blocks(
        graph, sources, rho, include_ties=include_ties, slot_block=slot_block
    ):
        s, d, w = forest_shortcuts(block, heuristic, k)
        radii_parts.append(radii_chunk)
        src_parts.append(s)
        dst_parts.append(d)
        w_parts.append(w)
    return (
        _concat_or_empty(radii_parts, np.float64),
        _concat_or_empty(src_parts, np.int64),
        _concat_or_empty(dst_parts, np.int64),
        _concat_or_empty(w_parts, np.float64),
    )
