"""(1,ρ)-ball construction (§4.1).

"All the ρ-closest vertices from a vertex u are directly added to u's
neighbor list with edge weight d(u, ·)."  This needs no heuristic: every
ball member beyond hop 1 gets a direct shortcut, for up to n(ρ-1) added
arcs — the baseline the (k,ρ) heuristics of §4.2 improve on.
"""

from __future__ import annotations

import numpy as np

from .tree import BallTree

__all__ = ["full_select"]


def full_select(tree: BallTree, k: int = 1) -> np.ndarray:
    """Local node ids to shortcut for a (1,ρ)-ball: everything at depth
    ≥ 2.

    Depth-1 nodes are already reached by a direct shortest edge (the
    min-hop tree puts a vertex at depth 1 exactly when its direct edge is
    a shortest path), so no edge is added for them.  ``k`` is accepted for
    interface uniformity; values > 1 still shortcut to depth ≥ 2 (a valid,
    if wasteful, (k,ρ)-ball).
    """
    if k < 1:
        raise ValueError("k >= 1 required")
    return np.flatnonzero(tree.depth >= 2)
