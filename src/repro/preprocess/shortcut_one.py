"""(1,ρ)-ball construction (§4.1).

"All the ρ-closest vertices from a vertex u are directly added to u's
neighbor list with edge weight d(u, ·)."  This needs no heuristic: every
ball member beyond hop 1 gets a direct shortcut, for up to n(ρ-1) added
arcs — the baseline the (k,ρ) heuristics of §4.2 improve on.
"""

from __future__ import annotations

import numpy as np

from .tree import BallTree

__all__ = ["full_select", "full_count", "full_depth_mask"]


def full_depth_mask(depth: np.ndarray, k: int = 1) -> np.ndarray:
    """The one definition of the (1,ρ) rule — shortcut everything at depth
    ≥ 2 — shared by :func:`full_select`, the forest engine
    (:mod:`repro.preprocess.select_batched`), and the count sweep
    (:mod:`repro.preprocess.count`).  ``depth`` may be one tree's depths
    or a whole block's flat depth array; the rule is k-independent (``k``
    is validated for interface uniformity only)."""
    if k < 1:
        raise ValueError("k >= 1 required")
    return depth >= 2


def full_select(tree: BallTree, k: int = 1) -> np.ndarray:
    """Local node ids to shortcut for a (1,ρ)-ball: everything at depth
    ≥ 2.

    Depth-1 nodes are already reached by a direct shortest edge (the
    min-hop tree puts a vertex at depth 1 exactly when its direct edge is
    a shortest path), so no edge is added for them.  ``k`` is accepted for
    interface uniformity; values > 1 still shortcut to depth ≥ 2 (a valid,
    if wasteful, (k,ρ)-ball).
    """
    return np.flatnonzero(full_depth_mask(tree.depth, k))


def full_count(tree: BallTree, k: int = 1) -> int:
    """Number of edges the (1,ρ) strategy adds for this tree — the
    k-independent Tables 2 fast path (no selection materialization)."""
    return int(np.count_nonzero(full_depth_mask(tree.depth, k)))
