"""Ball-local shortest-path trees.

The shortcut heuristics of §4.2 operate on the min-hop shortest-path tree
spanning one source's ρ-ball.  :class:`BallTree` re-indexes a
:class:`~repro.preprocess.ball.BallSearchResult` prefix into dense local
ids (0 = source, children arrays in CSR-like form) so greedy/DP run in
O(ρ k) with no hashing in the inner loop.

A key reuse property: the settle order of a ball search is prefix-closed —
the ρ'-ball for any ρ' ≤ ρ is a prefix of the ρ-ball, and every parent
settles before its child.  One ball search at ρ_max therefore serves a
whole ρ-sweep (Tables 2/3 iterate ρ over 10..1000 on the same trees).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .ball import BallSearchResult

__all__ = ["BallTree", "TreeBlock", "block_from_trees", "build_ball_tree"]


@dataclass
class BallTree:
    """Dense-index view of the SP tree over a ball prefix.

    Attributes
    ----------
    source: ball center (original vertex id).
    vertices: original vertex id per local node (``vertices[0] == source``).
    dist: distance from the source per local node.
    depth: tree hop depth per local node (0 for the source).
    parent: local parent index per node (-1 for the source).
    child_ptr / child_idx: children adjacency in CSR form, ordered so that
        every parent precedes its children in local-id order.
    """

    source: int
    vertices: np.ndarray
    dist: np.ndarray
    depth: np.ndarray
    parent: np.ndarray
    child_ptr: np.ndarray
    child_idx: np.ndarray

    def __len__(self) -> int:
        return len(self.vertices)

    def children(self, i: int) -> np.ndarray:
        """Local ids of the children of local node ``i``."""
        return self.child_idx[self.child_ptr[i] : self.child_ptr[i + 1]]

    @property
    def max_depth(self) -> int:
        """Deepest node's hop depth."""
        return int(self.depth.max()) if len(self.depth) else 0


@dataclass
class TreeBlock:
    """A whole slot block of ball trees in one flat (slot, local-node) layout.

    The forest-level selection engine (:mod:`repro.preprocess.select_batched`)
    runs the §4.2 heuristics over *all* trees of a block at once; this is
    its input format — the per-node fields of every tree concatenated in
    slot order, each tree's nodes in settle (local-id) order, padded-free
    with a CSR-style ``offsets`` array delimiting the slots.

    Attributes
    ----------
    sources: ball center (original vertex id) per slot, shape ``(S,)``.
    offsets: slot boundaries into the flat node arrays, shape ``(S+1,)`` —
        slot ``s`` owns flat positions ``offsets[s]:offsets[s+1]``, with
        position ``offsets[s]`` its root.
    vertices: original vertex id per flat node.
    dist: distance from the slot's source per flat node.
    depth: tree hop depth per flat node (0 for roots).
    parent: *local* parent id per flat node (-1 for roots), exactly as in
        the corresponding :class:`BallTree`.
    """

    sources: np.ndarray
    offsets: np.ndarray
    vertices: np.ndarray
    dist: np.ndarray
    depth: np.ndarray
    parent: np.ndarray

    def __len__(self) -> int:
        """Total node count across all trees."""
        return len(self.vertices)

    @property
    def num_trees(self) -> int:
        return len(self.sources)

    def sizes(self) -> np.ndarray:
        """Node count per slot."""
        return np.diff(self.offsets)

    def slot_ids(self) -> np.ndarray:
        """Owning slot per flat node."""
        return np.repeat(
            np.arange(self.num_trees, dtype=np.int64), self.sizes()
        )

    def flat_parent(self) -> np.ndarray:
        """Parent as a flat position (-1 for roots) — the forest's single
        cross-tree pointer array, what the per-level DP scatters follow."""
        fp = self.parent + np.repeat(self.offsets[:-1], self.sizes())
        fp[self.parent < 0] = -1
        return fp

    def tree(self, i: int) -> BallTree:
        """Materialize slot ``i`` as a standalone :class:`BallTree`."""
        lo, hi = int(self.offsets[i]), int(self.offsets[i + 1])
        parent = self.parent[lo:hi].copy()
        child_ptr, child_idx = _children_csr(parent, hi - lo)
        return BallTree(
            source=int(self.sources[i]),
            vertices=self.vertices[lo:hi].copy(),
            dist=self.dist[lo:hi].copy(),
            depth=self.depth[lo:hi].copy(),
            parent=parent,
            child_ptr=child_ptr,
            child_idx=child_idx,
        )

    def trim(self, sizes: np.ndarray) -> "TreeBlock":
        """Per-slot prefix trim: keep the first ``sizes[s]`` nodes of each
        slot.  Valid for any ``1 <= sizes[s] <= len(slot s)`` because
        settle orders are prefix-closed (parents precede children), the
        same property :func:`build_ball_tree` relies on — so a ρ-sweep
        reuses one block at ρ_max for every smaller ρ."""
        sizes = np.asarray(sizes, dtype=np.int64)
        cur = self.sizes()
        if len(sizes) != self.num_trees or (
            len(sizes) and not ((1 <= sizes) & (sizes <= cur)).all()
        ):
            raise ValueError("sizes must be in [1, len(slot)] per slot")
        within = np.arange(len(self), dtype=np.int64) - np.repeat(
            self.offsets[:-1], cur
        )
        keep = within < np.repeat(sizes, cur)
        offsets = np.zeros(self.num_trees + 1, dtype=np.int64)
        np.cumsum(sizes, out=offsets[1:])
        return TreeBlock(
            sources=self.sources,
            offsets=offsets,
            vertices=self.vertices[keep],
            dist=self.dist[keep],
            depth=self.depth[keep],
            parent=self.parent[keep],
        )


def _concat_or_empty(parts, dtype) -> np.ndarray:
    """Concatenate, or produce a typed empty array for an empty list.

    Shared by every route that assembles per-tree results (scalar walk,
    forest engine, block construction) so the empty-case dtype stays
    identical across backends — part of the bit-identity contract.
    """
    return np.concatenate(parts) if len(parts) else np.empty(0, dtype=dtype)


def block_from_trees(trees: Sequence[BallTree]) -> TreeBlock:
    """Concatenate standalone :class:`BallTree` objects into a
    :class:`TreeBlock` (the scalar-backend route into the forest engine;
    the batched engine emits blocks directly, see
    :func:`repro.preprocess.batched.batched_tree_block`)."""
    sizes = np.array([len(t) for t in trees], dtype=np.int64)
    offsets = np.zeros(len(trees) + 1, dtype=np.int64)
    np.cumsum(sizes, out=offsets[1:])
    cat = lambda field, dt: _concat_or_empty(
        [getattr(t, field) for t in trees], dt
    )
    return TreeBlock(
        sources=np.array([t.source for t in trees], dtype=np.int64),
        offsets=offsets,
        vertices=cat("vertices", np.int64),
        dist=cat("dist", np.float64),
        depth=cat("depth", np.int64),
        parent=cat("parent", np.int64),
    )


def _children_csr(parent: np.ndarray, t: int) -> tuple[np.ndarray, np.ndarray]:
    """Children adjacency of a local parent array, in CSR form.

    ``child_idx`` lists each parent's children in increasing local id —
    a stable argsort of ``parent[1:]`` (local ids 1..t-1 are already in
    id order, so stability gives the per-parent ordering for free).
    """
    counts = np.bincount(parent[1:], minlength=t)
    child_ptr = np.zeros(t + 1, dtype=np.int64)
    np.cumsum(counts, out=child_ptr[1:])
    child_idx = np.argsort(parent[1:], kind="stable").astype(np.int64) + 1
    return child_ptr, child_idx


def build_ball_tree(ball: BallSearchResult, size: int | None = None) -> BallTree:
    """Build the local tree over the first ``size`` settled vertices.

    ``size`` defaults to the full ball.  Any prefix is valid because
    parents always settle before children (Dijkstra order).  Fully
    vectorized: the global→local id remap is a searchsorted over the
    prefix vertices, the children CSR a stable argsort — no per-node
    Python loop (this runs once per source in ``build_kr_graph``).
    """
    t = len(ball.order) if size is None else size
    if not (1 <= t <= len(ball.order)):
        raise ValueError(f"size must be in [1, {len(ball.order)}]")
    verts = ball.order[:t]
    parent = np.empty(t, dtype=np.int64)
    parent[0] = -1
    if t > 1:
        by_id = np.argsort(verts, kind="stable")
        pos = np.searchsorted(verts[by_id], ball.parent[1:t])
        ok = pos < t
        local = by_id[np.minimum(pos, t - 1)]
        ok &= verts[local] == ball.parent[1:t]
        if not ok.all():  # cannot happen for a true Dijkstra prefix
            i = 1 + int(np.flatnonzero(~ok)[0])
            raise ValueError(
                f"parent {int(ball.parent[i])} of {int(verts[i])} outside "
                "prefix; ball order is not prefix-closed"
            )
        parent[1:] = local
    child_ptr, child_idx = _children_csr(parent, t)
    return BallTree(
        source=ball.source,
        vertices=verts.copy(),
        dist=ball.dist[:t].copy(),
        depth=ball.hops[:t].copy(),
        parent=parent,
        child_ptr=child_ptr,
        child_idx=child_idx,
    )
