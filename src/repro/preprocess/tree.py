"""Ball-local shortest-path trees.

The shortcut heuristics of §4.2 operate on the min-hop shortest-path tree
spanning one source's ρ-ball.  :class:`BallTree` re-indexes a
:class:`~repro.preprocess.ball.BallSearchResult` prefix into dense local
ids (0 = source, children arrays in CSR-like form) so greedy/DP run in
O(ρ k) with no hashing in the inner loop.

A key reuse property: the settle order of a ball search is prefix-closed —
the ρ'-ball for any ρ' ≤ ρ is a prefix of the ρ-ball, and every parent
settles before its child.  One ball search at ρ_max therefore serves a
whole ρ-sweep (Tables 2/3 iterate ρ over 10..1000 on the same trees).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .ball import BallSearchResult

__all__ = ["BallTree", "build_ball_tree"]


@dataclass
class BallTree:
    """Dense-index view of the SP tree over a ball prefix.

    Attributes
    ----------
    source: ball center (original vertex id).
    vertices: original vertex id per local node (``vertices[0] == source``).
    dist: distance from the source per local node.
    depth: tree hop depth per local node (0 for the source).
    parent: local parent index per node (-1 for the source).
    child_ptr / child_idx: children adjacency in CSR form, ordered so that
        every parent precedes its children in local-id order.
    """

    source: int
    vertices: np.ndarray
    dist: np.ndarray
    depth: np.ndarray
    parent: np.ndarray
    child_ptr: np.ndarray
    child_idx: np.ndarray

    def __len__(self) -> int:
        return len(self.vertices)

    def children(self, i: int) -> np.ndarray:
        """Local ids of the children of local node ``i``."""
        return self.child_idx[self.child_ptr[i] : self.child_ptr[i + 1]]

    @property
    def max_depth(self) -> int:
        """Deepest node's hop depth."""
        return int(self.depth.max()) if len(self.depth) else 0


def _children_csr(parent: np.ndarray, t: int) -> tuple[np.ndarray, np.ndarray]:
    """Children adjacency of a local parent array, in CSR form.

    ``child_idx`` lists each parent's children in increasing local id —
    a stable argsort of ``parent[1:]`` (local ids 1..t-1 are already in
    id order, so stability gives the per-parent ordering for free).
    """
    counts = np.bincount(parent[1:], minlength=t)
    child_ptr = np.zeros(t + 1, dtype=np.int64)
    np.cumsum(counts, out=child_ptr[1:])
    child_idx = np.argsort(parent[1:], kind="stable").astype(np.int64) + 1
    return child_ptr, child_idx


def build_ball_tree(ball: BallSearchResult, size: int | None = None) -> BallTree:
    """Build the local tree over the first ``size`` settled vertices.

    ``size`` defaults to the full ball.  Any prefix is valid because
    parents always settle before children (Dijkstra order).  Fully
    vectorized: the global→local id remap is a searchsorted over the
    prefix vertices, the children CSR a stable argsort — no per-node
    Python loop (this runs once per source in ``build_kr_graph``).
    """
    t = len(ball.order) if size is None else size
    if not (1 <= t <= len(ball.order)):
        raise ValueError(f"size must be in [1, {len(ball.order)}]")
    verts = ball.order[:t]
    parent = np.empty(t, dtype=np.int64)
    parent[0] = -1
    if t > 1:
        by_id = np.argsort(verts, kind="stable")
        pos = np.searchsorted(verts[by_id], ball.parent[1:t])
        ok = pos < t
        local = by_id[np.minimum(pos, t - 1)]
        ok &= verts[local] == ball.parent[1:t]
        if not ok.all():  # cannot happen for a true Dijkstra prefix
            i = 1 + int(np.flatnonzero(~ok)[0])
            raise ValueError(
                f"parent {int(ball.parent[i])} of {int(verts[i])} outside "
                "prefix; ball order is not prefix-closed"
            )
        parent[1:] = local
    child_ptr, child_idx = _children_csr(parent, t)
    return BallTree(
        source=ball.source,
        vertices=verts.copy(),
        dist=ball.dist[:t].copy(),
        depth=ball.hops[:t].copy(),
        parent=parent,
        child_ptr=child_ptr,
        child_idx=child_idx,
    )
