"""Query-serving subsystem: persist, share, cache, serve — sharded or not.

The paper's operating model — preprocess once, query many (§5.4) —
becomes a production serving story in cooperating parts:

* :mod:`~repro.serve.artifacts` — the (k,ρ)-preprocessing persisted as
  a versioned, checksummed ``.npz`` bundle; a server warm-starts in
  milliseconds instead of re-running ``build_kr_graph``.  Sharded
  preprocessing persists as a manifest-checksummed bundle *directory*
  of per-shard artifacts plus the boundary overlay.
* :mod:`~repro.serve.shm` — batch results written straight into a
  ``multiprocessing.shared_memory`` distance matrix
  (:class:`DistanceMatrix`), bit-identical to the pickled
  ``solve_many`` path without the per-row serialization.
* :mod:`~repro.serve.planner` — :class:`QueryPlanner`: an LRU
  source-row cache keyed by (graph hash, engine, source), request
  deduplication, and coalescing of mixed single-source /
  point-to-point / k-nearest batches onto one fan-out — thread-safe
  via striped locks and single-flight in-flight solve tracking, so a
  threaded front end drives one planner from every worker thread.
* :mod:`~repro.serve.surface` — :class:`QuerySurface`, the protocol
  every front end is constructed against.
* :mod:`~repro.serve.service` — :class:`RoutingService`, the
  synchronous single-graph facade (see
  ``examples/routing_service.py``).
* :mod:`~repro.serve.router` — :class:`ShardRouter`, the sharded
  implementation of the same surface: one planner per shard, exact
  cross-shard stitching through the boundary overlay, bit-identical
  answers (see ``examples/sharded_service.py``).
* :mod:`~repro.serve.backends` — :class:`ShardBackend`, the
  transport seam under the router: :class:`LocalBackend` wraps an
  in-process planner, :class:`RemoteBackend` speaks HTTP to a shard
  server on another box (pooled connections, deadlines, bounded
  retries), both bit-identical to the stitch layer above.
* :mod:`~repro.serve.cluster` — :class:`ShardCluster`, a one-call
  bootstrap of N shard servers plus a remote-stitching front end
  (see ``examples/remote_shard_cluster.py``).
* :mod:`~repro.serve.http` — :class:`RoutingHTTPServer`, a
  stdlib-only threaded JSON front end over any query surface (see
  ``examples/http_routing_service.py``), with ``GET /metrics``
  (Prometheus text over :mod:`repro.obs`), per-request ``X-Request-Id``
  tracing, and a ``GET /debug/slow`` slow-query log.
* :mod:`~repro.serve.obs_bridge` — scrape-time collectors that put the
  planner/router counters on ``/metrics`` with zero hot-path cost.
"""

from .artifacts import (
    ARTIFACT_FORMAT,
    ARTIFACT_VERSION,
    SHARDED_ARTIFACT_FORMAT,
    SHARDED_ARTIFACT_VERSION,
    ArtifactCorruptError,
    ArtifactError,
    ArtifactGraphMismatchError,
    ArtifactVersionError,
    ShardTopology,
    load_artifact,
    load_shard_topology,
    load_sharded_artifact,
    load_solver,
    save_artifact,
    save_sharded_artifact,
    stamp_endpoints,
)
from .backends import (
    LocalBackend,
    RemoteBackend,
    ShardBackend,
    ShardUnavailableError,
)
from .cluster import ShardCluster
from .http import RoutingHTTPServer, serve
from .planner import (
    KNearest,
    Nearest,
    PointToPoint,
    QueryPlanner,
    Route,
    SingleSource,
    nearest_from_row,
    normalize_query,
)
from .router import ShardRouter
from .service import RoutingService
from .shm import DistanceMatrix, solve_many_shm
from .surface import QuerySurface, json_finite

__all__ = [
    "ARTIFACT_FORMAT",
    "ARTIFACT_VERSION",
    "SHARDED_ARTIFACT_FORMAT",
    "SHARDED_ARTIFACT_VERSION",
    "ArtifactCorruptError",
    "ArtifactError",
    "ArtifactGraphMismatchError",
    "ArtifactVersionError",
    "DistanceMatrix",
    "KNearest",
    "LocalBackend",
    "Nearest",
    "PointToPoint",
    "QueryPlanner",
    "QuerySurface",
    "RemoteBackend",
    "Route",
    "RoutingHTTPServer",
    "RoutingService",
    "ShardBackend",
    "ShardCluster",
    "ShardRouter",
    "ShardTopology",
    "ShardUnavailableError",
    "SingleSource",
    "json_finite",
    "load_artifact",
    "load_shard_topology",
    "load_sharded_artifact",
    "load_solver",
    "nearest_from_row",
    "normalize_query",
    "save_artifact",
    "save_sharded_artifact",
    "serve",
    "stamp_endpoints",
    "solve_many_shm",
]
