"""Persistent preprocessing artifacts — preprocess once, serve forever.

The paper's amortization argument (§5.4) assumes the (k,ρ)-construction
cost is paid *once* per graph; a serving process that re-runs
:func:`repro.preprocess.build_kr_graph` on every start pays it once per
restart instead.  This module closes that gap: a complete
:class:`~repro.preprocess.pipeline.PreprocessResult` — the augmented
CSR arrays, the radii, and the (k, ρ, heuristic) configuration — is
persisted as one versioned ``.npz`` bundle and restored in milliseconds,
round-tripping through
:meth:`repro.core.solver.PreprocessedSSSP.from_preprocessed` into a
query-ready facade.

Integrity is never assumed:

* every bundle carries a **payload checksum** over all arrays and
  metadata — bit rot, truncation and hand-editing raise
  :class:`ArtifactCorruptError` instead of silently serving wrong routes;
* a **format version** field gates schema evolution
  (:class:`ArtifactVersionError` on mismatch);
* the **source-graph content hash** recorded at build time is compared
  against the graph the caller intends to serve
  (:class:`ArtifactGraphMismatchError`), so an artifact can never be
  paired with a graph it was not built from.

Graphs near RAM size can warm-start without materializing the CSR
arrays at all: ``load_artifact(..., mmap=True)`` maps each array member
of the bundle read-only straight off disk (``np.savez`` stores members
uncompressed, so every ``.npy`` payload is a contiguous byte range of
the file — exactly what ``np.memmap`` wants; the same trick
``np.load(mmap_mode="r")`` applies to bare ``.npy`` files, which it
cannot do inside an ``.npz``).  The checksum is still verified — it
streams through the mapping once via the buffer protocol, so pages are
touched but never copied into a second in-RAM array — and the returned
graph's arrays are read-only memmap views the solvers use in place.
"""

from __future__ import annotations

import hashlib
import json
import zipfile
from dataclasses import dataclass
from pathlib import Path
from typing import Sequence

import numpy as np

from ..core.solver import PreprocessedSSSP
from ..graphs.csr import CSRGraph
from ..preprocess.pipeline import PreprocessResult, ShardedPreprocessResult

__all__ = [
    "ARTIFACT_FORMAT",
    "ARTIFACT_VERSION",
    "SHARDED_ARTIFACT_FORMAT",
    "SHARDED_ARTIFACT_VERSION",
    "ArtifactError",
    "ArtifactCorruptError",
    "ArtifactVersionError",
    "ArtifactGraphMismatchError",
    "ShardTopology",
    "save_artifact",
    "load_artifact",
    "load_solver",
    "save_sharded_artifact",
    "load_sharded_artifact",
    "load_shard_topology",
    "stamp_endpoints",
]

#: magic string identifying a bundle as ours (first field checked on load).
ARTIFACT_FORMAT = "repro-kr-artifact"

#: the version this build writes; loaders also read every entry of
#: ``_READABLE_VERSIONS`` (older-but-compatible schemas).
ARTIFACT_VERSION = 3

#: array fields every bundle version must contain.  Version 3 adds the
#: external→internal vertex permutation (``perm``) so a bundle built
#: with a locality reordering can be served id-transparently.
_ARRAY_FIELDS = ("indptr", "indices", "weights", "radii")
_ARRAY_FIELDS_V3 = _ARRAY_FIELDS + ("perm",)
_ARRAY_FIELDS_BY_VERSION = {1: _ARRAY_FIELDS, 2: _ARRAY_FIELDS, 3: _ARRAY_FIELDS_V3}
#: metadata fields per readable version; the tuple order is the hash
#: preimage order, so version-1 bundles (no ``preferred_engine``)
#: still verify against the checksum they were written with.
_META_FIELDS_V1 = ("k", "rho", "heuristic", "added_edges", "new_edges", "source_hash")
_META_FIELDS_V2 = _META_FIELDS_V1 + ("preferred_engine",)
_META_FIELDS_V3 = _META_FIELDS_V2 + ("reorder", "locality_before", "locality_after")
_META_FIELDS_BY_VERSION = {1: _META_FIELDS_V1, 2: _META_FIELDS_V2, 3: _META_FIELDS_V3}
_READABLE_VERSIONS = frozenset(_META_FIELDS_BY_VERSION)
_META_FIELDS = _META_FIELDS_BY_VERSION[ARTIFACT_VERSION]


class ArtifactError(RuntimeError):
    """Base class for every artifact load/save failure."""


class ArtifactCorruptError(ArtifactError):
    """The bundle is unreadable, truncated, incomplete, or fails its
    payload checksum — its contents cannot be trusted."""


class ArtifactVersionError(ArtifactError):
    """The bundle's format version is not the one this code reads."""


class ArtifactGraphMismatchError(ArtifactError):
    """The bundle was preprocessed from a different graph than the one
    the caller wants to serve."""


def _payload_hash(
    arrays: dict[str, np.ndarray], meta: tuple, fields: tuple = _ARRAY_FIELDS
) -> str:
    """Checksum over every array byte plus the metadata tuple.

    Contiguous arrays are fed to the digest through the buffer protocol
    — no ``tobytes()`` copy — so verifying a memory-mapped bundle
    streams pages through the hash instead of materializing a second
    in-RAM array per field (byte-identical digest either way).
    ``fields`` is the writing version's array-field tuple (the preimage
    order); it defaults to the fields every version shares, which keeps
    pre-v3 digests reproducible with a two-argument call.
    """
    h = hashlib.blake2b(digest_size=16)
    for name in fields:
        arr = arrays[name]
        h.update(name.encode())
        h.update(str(arr.dtype).encode())
        if arr.flags.c_contiguous:
            h.update(arr.data)
        else:  # pragma: no cover - save path always writes contiguous
            h.update(arr.tobytes())
    h.update(repr(meta).encode())
    return h.hexdigest()


def save_artifact(path: str | Path, pre: PreprocessResult) -> Path:
    """Write ``pre`` to ``path`` as a versioned ``.npz`` bundle.

    The file is written exactly at ``path`` (no ``.npz`` suffix is
    appended).  Returns the path written.
    """
    path = Path(path)
    n = pre.graph.n
    perm = getattr(pre, "perm", None)
    if perm is None:
        # v3 bundles always carry a perm array — the identity when
        # preprocessing ran in the input numbering — so loaders never
        # branch on its presence, only on its content.
        perm = np.arange(n, dtype=np.int64)
    arrays = {
        "indptr": pre.graph.indptr,
        "indices": pre.graph.indices,
        "weights": pre.graph.weights,
        "radii": np.ascontiguousarray(pre.radii, dtype=np.float64),
        "perm": np.ascontiguousarray(perm, dtype=np.int64),
    }
    meta = (
        int(pre.k),
        int(pre.rho),
        str(pre.heuristic),
        int(pre.added_edges),
        int(pre.new_edges),
        str(pre.source_hash),
        str(getattr(pre, "preferred_engine", "") or ""),
        str(getattr(pre, "reorder", "natural") or "natural"),
        float(getattr(pre, "locality_before", float("nan"))),
        float(getattr(pre, "locality_after", float("nan"))),
    )
    with open(path, "wb") as fh:
        np.savez(
            fh,
            format=ARTIFACT_FORMAT,
            version=np.int64(ARTIFACT_VERSION),
            k=np.int64(pre.k),
            rho=np.int64(pre.rho),
            heuristic=str(pre.heuristic),
            added_edges=np.int64(pre.added_edges),
            new_edges=np.int64(pre.new_edges),
            source_hash=str(pre.source_hash),
            preferred_engine=meta[6],
            reorder=meta[7],
            locality_before=np.float64(meta[8]),
            locality_after=np.float64(meta[9]),
            payload_hash=_payload_hash(arrays, meta, _ARRAY_FIELDS_V3),
            **arrays,
        )
    return path


#: zip local-file-header layout: 30 fixed bytes, then name, then extra.
_ZIP_LOCAL_MAGIC = b"PK\x03\x04"
_ZIP_LOCAL_FIXED = 30


def _mmap_member(
    fh, path: Path, info: zipfile.ZipInfo
) -> np.ndarray | None:
    """Map one stored ``.npy`` zip member read-only, or return ``None``
    when mapping is impossible (compressed member, exotic npy version)
    and the caller should fall back to an eager read.

    ``np.savez`` writes members with ``ZIP_STORED``, so the member's
    array payload is a contiguous range of the bundle file; we locate it
    by walking the member's local header (whose name/extra lengths may
    legitimately differ from the central directory's) and then the npy
    header, and hand the resulting offset to :class:`numpy.memmap`.
    """
    if info.compress_type != zipfile.ZIP_STORED:
        return None
    fh.seek(info.header_offset)
    local = fh.read(_ZIP_LOCAL_FIXED)
    if len(local) != _ZIP_LOCAL_FIXED or local[:4] != _ZIP_LOCAL_MAGIC:
        raise ArtifactCorruptError(
            f"{path}: member {info.filename!r} has a corrupt local zip header"
        )
    name_len = int.from_bytes(local[26:28], "little")
    extra_len = int.from_bytes(local[28:30], "little")
    fh.seek(info.header_offset + _ZIP_LOCAL_FIXED + name_len + extra_len)
    try:
        version = np.lib.format.read_magic(fh)
        if version == (1, 0):
            shape, fortran, dtype = np.lib.format.read_array_header_1_0(fh)
        elif version == (2, 0):
            shape, fortran, dtype = np.lib.format.read_array_header_2_0(fh)
        else:
            return None
    except ValueError as exc:
        raise ArtifactCorruptError(
            f"{path}: member {info.filename!r} has a corrupt npy header: {exc}"
        ) from exc
    if dtype.hasobject:  # pragma: no cover - we never save object arrays
        return None
    return np.memmap(
        path,
        dtype=dtype,
        mode="r",
        offset=fh.tell(),
        shape=shape,
        order="F" if fortran else "C",
    )


def _read_bundle(path: Path, *, mmap: bool = False) -> dict[str, np.ndarray]:
    """Load every member of the ``.npz``, mapping low-level failures
    (missing file aside) to :class:`ArtifactCorruptError`.

    With ``mmap=True`` the bulk array fields come back as read-only
    :class:`numpy.memmap` views over the bundle file instead of heap
    copies; tiny metadata fields are always read eagerly.
    """
    if not path.exists():
        raise FileNotFoundError(f"no artifact at {path}")
    try:
        with np.load(path, allow_pickle=False) as npz:
            names = list(npz.files)
            skip = set(_ARRAY_FIELDS_V3) if mmap else set()
            bundle = {n: npz[n] for n in names if n not in skip}
        if mmap:
            with open(path, "rb") as fh, zipfile.ZipFile(fh) as zf:
                for name in _ARRAY_FIELDS_V3:
                    if name not in names:
                        continue  # caller reports the missing field
                    arr = _mmap_member(fh, path, zf.getinfo(name + ".npy"))
                    if arr is None:  # pragma: no cover - non-savez bundle
                        with np.load(path, allow_pickle=False) as npz:
                            arr = npz[name]
                    bundle[name] = arr
        return bundle
    except (zipfile.BadZipFile, ValueError, KeyError, OSError, EOFError) as exc:
        raise ArtifactCorruptError(
            f"artifact {path} is unreadable (corrupt or truncated): {exc}"
        ) from exc


def load_artifact(
    path: str | Path,
    *,
    expect_graph: CSRGraph | None = None,
    mmap: bool = False,
) -> PreprocessResult:
    """Restore a :class:`PreprocessResult` saved by :func:`save_artifact`.

    Parameters
    ----------
    path: the ``.npz`` bundle.
    expect_graph: when given, the bundle's recorded source-graph hash
        must equal ``expect_graph.content_hash()`` —
        :class:`ArtifactGraphMismatchError` otherwise.  Pass the graph a
        serving process is about to answer queries on; this is what
        stops a stale or misplaced artifact from silently serving routes
        for some other graph.
    mmap: map the CSR/radii arrays read-only off the bundle file
        (:class:`numpy.memmap`) instead of materializing heap copies —
        the warm-start knob for graphs near RAM size.  Checksum and
        structural verification run either way (the checksum streams
        through the mapping without a second copy); the returned
        graph's arrays stay memory-mapped, paged in on demand, and the
        bundle file must outlive the returned object.

    Raises
    ------
    ArtifactCorruptError: unreadable/truncated file, missing fields, or
        payload checksum mismatch.
    ArtifactVersionError: bundle written by an incompatible version.
    ArtifactGraphMismatchError: ``expect_graph`` hash mismatch.
    """
    path = Path(path)
    bundle = _read_bundle(path, mmap=mmap)
    fmt = bundle.get("format")
    if fmt is None or str(fmt) != ARTIFACT_FORMAT:
        raise ArtifactCorruptError(
            f"{path} is not a {ARTIFACT_FORMAT} bundle (format field "
            f"{str(fmt) if fmt is not None else '<missing>'!r})"
        )
    if "version" not in bundle:
        raise ArtifactCorruptError(f"{path} is missing its version field")
    version = int(bundle["version"])
    if version not in _READABLE_VERSIONS:
        raise ArtifactVersionError(
            f"{path} has artifact version {version}; this build reads "
            f"versions {sorted(_READABLE_VERSIONS)} — re-run preprocessing "
            "to regenerate"
        )
    meta_fields = _META_FIELDS_BY_VERSION[version]
    array_fields = _ARRAY_FIELDS_BY_VERSION[version]
    missing = [
        f
        for f in (*array_fields, *meta_fields, "payload_hash")
        if f not in bundle
    ]
    if missing:
        raise ArtifactCorruptError(
            f"{path} is missing required fields: {', '.join(missing)}"
        )
    arrays = {name: bundle[name] for name in array_fields}
    # The checksum preimage is the version's own meta tuple and array
    # field list, so a version-1 bundle (six fields, no
    # preferred_engine, no perm) verifies byte-for-byte against the
    # digest it was written with.
    meta = (
        int(bundle["k"]),
        int(bundle["rho"]),
        str(bundle["heuristic"]),
        int(bundle["added_edges"]),
        int(bundle["new_edges"]),
        str(bundle["source_hash"]),
    )
    if version >= 2:
        meta = meta + (str(bundle["preferred_engine"]),)
    if version >= 3:
        meta = meta + (
            str(bundle["reorder"]),
            float(bundle["locality_before"]),
            float(bundle["locality_after"]),
        )
    if _payload_hash(arrays, meta, array_fields) != str(bundle["payload_hash"]):
        raise ArtifactCorruptError(
            f"{path} failed its payload checksum — the stored arrays or "
            "metadata were altered after the artifact was written"
        )
    if expect_graph is not None:
        expected = expect_graph.content_hash()
        if meta[5] != expected:
            raise ArtifactGraphMismatchError(
                f"{path} was preprocessed from a different graph "
                f"(artifact source hash {meta[5] or '<unrecorded>'}, "
                f"serving graph hash {expected})"
            )
    # The checksum certified the arrays byte-identical to what the save
    # path wrote, but the checksum is keyless — any writer can produce a
    # self-consistent bundle — so the invariants that would make queries
    # *silently wrong* are still enforced: shape consistency, monotone
    # indptr, in-range arc heads (a negative index would gather a
    # wrong-but-valid neighbor via numpy wraparound), and finite
    # non-negative weights.  Only the O(m log m) symmetry/simplicity
    # sorts are skipped — a violation there makes the graph *different*,
    # not the solvers incorrect — which is most of the warm-start win.
    indptr, indices, weights = (
        arrays["indptr"],
        arrays["indices"],
        arrays["weights"],
    )
    radii = np.ascontiguousarray(arrays["radii"], dtype=np.float64)
    if (
        indptr.ndim != 1
        or len(indptr) < 1
        or indptr[0] != 0
        or indptr[-1] != len(indices)
        or len(indices) != len(weights)
        or len(radii) != len(indptr) - 1
        or np.any(np.diff(indptr) < 0)
    ):
        raise ArtifactCorruptError(
            f"{path} holds inconsistent CSR/radii array shapes"
        )
    n = len(indptr) - 1
    if len(indices) and (indices.min() < 0 or indices.max() >= n):
        raise ArtifactCorruptError(f"{path} holds out-of-range arc heads")
    if np.any(~np.isfinite(weights)) or np.any(weights < 0):
        raise ArtifactCorruptError(
            f"{path} holds negative or non-finite edge weights"
        )
    # Pre-v3 bundles predate reordering: identity mapping, no locality
    # measurement.  A v3 perm must be a genuine permutation of
    # range(n) — a corrupted one would silently answer for wrong ids.
    perm = None
    reorder = "natural"
    locality_before = locality_after = float("nan")
    if version >= 3:
        perm = np.ascontiguousarray(arrays["perm"], dtype=np.int64)
        if (
            perm.ndim != 1
            or len(perm) != n
            or (n and (perm.min() < 0 or perm.max() >= n))
            or (n and np.any(np.bincount(perm, minlength=n) != 1))
        ):
            raise ArtifactCorruptError(
                f"{path} holds a perm field that is not a permutation of "
                f"range({n})"
            )
        if np.array_equal(perm, np.arange(n, dtype=np.int64)):
            perm = None  # identity: skip the translation layer entirely
        reorder = meta[7]
        locality_before, locality_after = meta[8], meta[9]
    graph = CSRGraph(indptr, indices, weights, validate=False)
    return PreprocessResult(
        graph=graph,
        radii=radii,
        added_edges=meta[3],
        new_edges=meta[4],
        k=meta[0],
        rho=meta[1],
        heuristic=meta[2],
        source_hash=meta[5],
        # version-1 bundles predate engine calibration: leave unset so
        # ``engine="auto"`` falls back to the static default.
        preferred_engine=meta[6] if version >= 2 else "",
        reorder=reorder,
        perm=perm,
        inv_perm=None,  # recomputed lazily by PreprocessedSSSP
        locality_before=locality_before,
        locality_after=locality_after,
    )


def load_solver(
    path: str | Path,
    *,
    expect_graph: CSRGraph | None = None,
    mmap: bool = False,
) -> PreprocessedSSSP:
    """One-call warm start: artifact → query-ready facade.

    Equivalent to ``PreprocessedSSSP.from_preprocessed(load_artifact(...))``
    — what a server runs at boot instead of ``build_kr_graph``.
    ``mmap=True`` keeps the augmented CSR arrays memory-mapped (see
    :func:`load_artifact`).
    """
    pre = load_artifact(path, expect_graph=expect_graph, mmap=mmap)
    return PreprocessedSSSP.from_preprocessed(pre, input_graph=expect_graph)


# --------------------------------------------------------------------- #
# Sharded bundles — a directory of per-shard artifacts plus the overlay
# --------------------------------------------------------------------- #
#: magic string in a sharded bundle's manifest.
SHARDED_ARTIFACT_FORMAT = "repro-kr-sharded"

#: sharded bundle schema version written by this build.
SHARDED_ARTIFACT_VERSION = 1

#: filename of the checksummed manifest at the bundle root.
_MANIFEST_NAME = "manifest.json"


def _file_hash(path: Path) -> str:
    """Streaming blake2b over a member file's bytes."""
    h = hashlib.blake2b(digest_size=16)
    with open(path, "rb") as fh:
        for chunk in iter(lambda: fh.read(1 << 20), b""):
            h.update(chunk)
    return h.hexdigest()


def _manifest_hash(manifest: dict) -> str:
    """Digest over the manifest's canonical JSON (sans the hash field),
    so a hand-edited member list or metadata field is detected even
    though every *member* also carries its own file hash."""
    doc = {k: v for k, v in manifest.items() if k != "manifest_hash"}
    payload = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    return hashlib.blake2b(payload.encode(), digest_size=16).hexdigest()


def save_sharded_artifact(
    path: str | Path,
    sharded: ShardedPreprocessResult,
    *,
    endpoints: Sequence[str | None] | None = None,
) -> Path:
    """Persist a :class:`ShardedPreprocessResult` as a bundle directory.

    Layout::

        path/
          manifest.json    format, version, partition + (k,ρ) metadata,
                           and a blake2b file hash for every member
                           (the manifest itself carries its own digest)
          shard_0000.npz   one complete v3 artifact per shard
          ...              (:func:`save_artifact` — internal checksums
                           and mmap support come along for free)
          overlay.npz      the boundary-overlay CSR
          topology.npz     shard labels + overlay vertex ids

    ``shard_vertices`` is not stored: the labels array reproduces it
    exactly (``np.flatnonzero(labels == s)`` is the sorted-ascending
    :func:`~repro.graphs.build.induced_subgraph` convention the shards
    were built with).  ``endpoints`` (optional, one ``"http://host:port"``
    per shard, ``None`` for empty shards) is stamped into the manifest
    as deployment hints, so :meth:`ShardRouter.remote
    <repro.serve.router.ShardRouter.remote>` can find the shard servers
    from the bundle alone; a bundle without hints loads everywhere
    (:func:`stamp_endpoints` adds them to an existing bundle in place).
    Returns the bundle directory path.
    """
    path = Path(path)
    endpoints = _check_endpoints(endpoints, sharded.n_shards)
    path.mkdir(parents=True, exist_ok=True)
    members: dict[str, str] = {}
    for s, pre in enumerate(sharded.shards):
        name = f"shard_{s:04d}.npz"
        save_artifact(path / name, pre)
        members[name] = _file_hash(path / name)
    overlay = sharded.overlay_graph
    with open(path / "overlay.npz", "wb") as fh:
        np.savez(
            fh,
            indptr=overlay.indptr,
            indices=overlay.indices,
            weights=overlay.weights,
        )
    members["overlay.npz"] = _file_hash(path / "overlay.npz")
    with open(path / "topology.npz", "wb") as fh:
        np.savez(
            fh,
            labels=np.ascontiguousarray(sharded.labels, dtype=np.int64),
            overlay_vertices=np.ascontiguousarray(
                sharded.overlay_vertices, dtype=np.int64
            ),
        )
    members["topology.npz"] = _file_hash(path / "topology.npz")
    manifest = {
        "format": SHARDED_ARTIFACT_FORMAT,
        "version": SHARDED_ARTIFACT_VERSION,
        "n": int(sharded.n),
        "n_shards": int(sharded.n_shards),
        "partition_method": str(sharded.partition_method),
        "partition_seed": int(sharded.partition_seed),
        "edge_cut": int(sharded.edge_cut),
        "balance": float(sharded.balance),
        "k": int(sharded.k),
        "rho": int(sharded.rho),
        "heuristic": str(sharded.heuristic),
        "source_hash": str(sharded.source_hash),
        "members": members,
    }
    if endpoints is not None:
        manifest["endpoints"] = list(endpoints)
    manifest["manifest_hash"] = _manifest_hash(manifest)
    (path / _MANIFEST_NAME).write_text(json.dumps(manifest, indent=2) + "\n")
    return path


def _check_endpoints(
    endpoints: Sequence[str | None] | None, n_shards: int
) -> list[str | None] | None:
    """Validate per-shard endpoint hints (one entry per shard)."""
    if endpoints is None:
        return None
    endpoints = list(endpoints)
    if len(endpoints) != n_shards:
        raise ValueError(
            f"expected {n_shards} endpoint hints (one per shard, None for "
            f"empty shards), got {len(endpoints)}"
        )
    for ep in endpoints:
        if ep is not None and not isinstance(ep, str):
            raise TypeError(f"endpoint hints must be str or None, got {ep!r}")
    return endpoints


def stamp_endpoints(
    path: str | Path, endpoints: Sequence[str | None] | None
) -> Path:
    """Rewrite an existing bundle's manifest with new endpoint hints.

    The deployment step of a multi-box rollout: the bundle is built
    (and rsynced) once, then each environment stamps where *its* shard
    servers listen.  Only the manifest changes — member files and their
    hashes are untouched — and the manifest's own digest is recomputed
    so the bundle still verifies.  ``endpoints=None`` removes the hints.
    """
    path = Path(path)
    manifest = _read_sharded_manifest(path)
    endpoints = _check_endpoints(endpoints, int(manifest["n_shards"]))
    manifest.pop("endpoints", None)
    manifest.pop("manifest_hash", None)
    if endpoints is not None:
        manifest["endpoints"] = endpoints
    manifest["manifest_hash"] = _manifest_hash(manifest)
    (path / _MANIFEST_NAME).write_text(json.dumps(manifest, indent=2) + "\n")
    return path


def _load_npz_member(path: Path, fields: tuple[str, ...]) -> dict[str, np.ndarray]:
    """Eagerly read the named arrays of a small bundle member."""
    try:
        with np.load(path, allow_pickle=False) as npz:
            missing = [f for f in fields if f not in npz.files]
            if missing:
                raise ArtifactCorruptError(
                    f"{path} is missing required fields: {', '.join(missing)}"
                )
            return {f: npz[f] for f in fields}
    except (zipfile.BadZipFile, ValueError, OSError, EOFError) as exc:
        raise ArtifactCorruptError(
            f"bundle member {path} is unreadable (corrupt or truncated): {exc}"
        ) from exc


def _read_sharded_manifest(path: Path) -> dict:
    """Read and structurally verify a bundle's manifest (format,
    version, required fields, member listing, its own digest, and the
    optional endpoint hints) — member *files* are not touched here."""
    manifest_path = path / _MANIFEST_NAME
    if not manifest_path.exists():
        raise FileNotFoundError(f"no sharded artifact manifest at {manifest_path}")
    try:
        manifest = json.loads(manifest_path.read_text())
    except (json.JSONDecodeError, UnicodeDecodeError, OSError) as exc:
        raise ArtifactCorruptError(
            f"{manifest_path} is not readable JSON: {exc}"
        ) from exc
    if not isinstance(manifest, dict) or manifest.get("format") != SHARDED_ARTIFACT_FORMAT:
        raise ArtifactCorruptError(
            f"{manifest_path} is not a {SHARDED_ARTIFACT_FORMAT} manifest"
        )
    version = manifest.get("version")
    if version != SHARDED_ARTIFACT_VERSION:
        raise ArtifactVersionError(
            f"{path} has sharded-bundle version {version!r}; this build "
            f"reads version {SHARDED_ARTIFACT_VERSION} — re-run "
            "preprocessing to regenerate"
        )
    required = (
        "n",
        "n_shards",
        "partition_method",
        "partition_seed",
        "edge_cut",
        "balance",
        "k",
        "rho",
        "heuristic",
        "source_hash",
        "members",
        "manifest_hash",
    )
    missing = [f for f in required if f not in manifest]
    if missing:
        raise ArtifactCorruptError(
            f"{manifest_path} is missing required fields: {', '.join(missing)}"
        )
    if _manifest_hash(manifest) != manifest["manifest_hash"]:
        raise ArtifactCorruptError(
            f"{manifest_path} failed its manifest checksum — the member "
            "list or metadata was altered after the bundle was written"
        )
    n_shards = int(manifest["n_shards"])
    expected_members = {f"shard_{s:04d}.npz" for s in range(n_shards)} | {
        "overlay.npz",
        "topology.npz",
    }
    if set(manifest["members"]) != expected_members:
        raise ArtifactCorruptError(
            f"{manifest_path} lists members {sorted(manifest['members'])}, "
            f"expected {sorted(expected_members)}"
        )
    endpoints = manifest.get("endpoints")
    if endpoints is not None and (
        not isinstance(endpoints, list)
        or len(endpoints) != n_shards
        or any(ep is not None and not isinstance(ep, str) for ep in endpoints)
    ):
        raise ArtifactCorruptError(
            f"{manifest_path} holds endpoint hints inconsistent with its "
            f"{n_shards} shards"
        )
    return manifest


def _check_source_graph(
    path: Path, manifest: dict, expect_graph: CSRGraph | None
) -> None:
    if expect_graph is None:
        return
    expected = expect_graph.content_hash()
    if manifest["source_hash"] != expected:
        raise ArtifactGraphMismatchError(
            f"{path} was preprocessed from a different graph "
            f"(bundle source hash {manifest['source_hash'] or '<unrecorded>'}, "
            f"serving graph hash {expected})"
        )


def _verify_members(path: Path, manifest: dict, names) -> None:
    """Existence + blake2b check of the named member files."""
    members = manifest["members"]
    for name in names:
        member = path / name
        if not member.exists():
            raise ArtifactCorruptError(f"{path} is missing member {name}")
        if _file_hash(member) != members[name]:
            raise ArtifactCorruptError(
                f"bundle member {member} failed its checksum — the file "
                "was altered after the bundle was written"
            )


def _load_overlay_topology(
    path: Path, manifest: dict
) -> tuple[np.ndarray, np.ndarray, CSRGraph]:
    """Load + validate the labels / overlay members of a bundle."""
    n = int(manifest["n"])
    n_shards = int(manifest["n_shards"])
    topo = _load_npz_member(path / "topology.npz", ("labels", "overlay_vertices"))
    labels = np.ascontiguousarray(topo["labels"], dtype=np.int64)
    overlay_vertices = np.ascontiguousarray(
        topo["overlay_vertices"], dtype=np.int64
    )
    if labels.shape != (n,) or (n and (labels.min() < 0 or labels.max() >= n_shards)):
        raise ArtifactCorruptError(
            f"{path} holds shard labels inconsistent with its manifest"
        )
    if len(overlay_vertices) and (
        overlay_vertices.min() < 0
        or overlay_vertices.max() >= n
        or np.any(np.diff(overlay_vertices) <= 0)
    ):
        raise ArtifactCorruptError(
            f"{path} holds an invalid overlay vertex list"
        )
    ov = _load_npz_member(path / "overlay.npz", ("indptr", "indices", "weights"))
    indptr, indices, weights = ov["indptr"], ov["indices"], ov["weights"]
    if (
        indptr.ndim != 1
        or len(indptr) != len(overlay_vertices) + 1
        or indptr[0] != 0
        or indptr[-1] != len(indices)
        or len(indices) != len(weights)
        or np.any(np.diff(indptr) < 0)
    ):
        raise ArtifactCorruptError(
            f"{path} holds inconsistent overlay CSR arrays"
        )
    overlay_graph = CSRGraph(indptr, indices, weights, validate=False)
    return labels, overlay_vertices, overlay_graph


def load_sharded_artifact(
    path: str | Path,
    *,
    expect_graph: CSRGraph | None = None,
    mmap: bool = False,
) -> ShardedPreprocessResult:
    """Restore a bundle written by :func:`save_sharded_artifact`.

    Integrity is verified end to end before anything is trusted: the
    manifest's own digest, then every member file's blake2b hash against
    the manifest (so corruption of *any* member — a shard, the overlay,
    the topology — raises :class:`ArtifactCorruptError`), then each
    shard artifact's internal payload checksum via :func:`load_artifact`.
    ``expect_graph`` pins the bundle to the *input* graph's content hash
    (:class:`ArtifactGraphMismatchError` on mismatch); ``mmap=True``
    keeps every shard's augmented CSR memory-mapped off its member file.
    """
    path = Path(path)
    manifest = _read_sharded_manifest(path)
    _check_source_graph(path, manifest, expect_graph)
    n_shards = int(manifest["n_shards"])
    shard_names = [f"shard_{s:04d}.npz" for s in range(n_shards)]
    _verify_members(path, manifest, manifest["members"])
    labels, overlay_vertices, overlay_graph = _load_overlay_topology(
        path, manifest
    )
    shards = []
    shard_vertices = []
    for s, name in enumerate(shard_names):
        pre = load_artifact(path / name, mmap=mmap)
        verts = np.flatnonzero(labels == s)
        if pre.graph.n != len(verts):
            raise ArtifactCorruptError(
                f"bundle member {name} holds {pre.graph.n} vertices but the "
                f"labels assign {len(verts)} to shard {s}"
            )
        shards.append(pre)
        shard_vertices.append(verts)
    return ShardedPreprocessResult(
        shards=shards,
        shard_vertices=shard_vertices,
        labels=labels,
        overlay_graph=overlay_graph,
        overlay_vertices=overlay_vertices,
        partition_method=str(manifest["partition_method"]),
        partition_seed=int(manifest["partition_seed"]),
        edge_cut=int(manifest["edge_cut"]),
        balance=float(manifest["balance"]),
        k=int(manifest["k"]),
        rho=int(manifest["rho"]),
        heuristic=str(manifest["heuristic"]),
        source_hash=str(manifest["source_hash"]),
    )


# --------------------------------------------------------------------- #
# Shard topology — the router-side view of a bundle, no shard payloads
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class ShardTopology:
    """Everything a *front-end* box needs from a sharded bundle.

    The stitch layer routes on labels and the boundary overlay; the
    per-shard (k,ρ)-payloads live on the shard boxes.  This is the
    bundle minus those payloads — what :func:`load_shard_topology`
    reads (shard ``.npz`` members need not even exist locally) and what
    :meth:`ShardRouter.remote <repro.serve.router.ShardRouter.remote>`
    is constructed from.
    """

    n: int
    n_shards: int
    labels: np.ndarray
    overlay_graph: CSRGraph
    overlay_vertices: np.ndarray
    partition_method: str
    partition_seed: int
    edge_cut: int
    balance: float
    k: int
    rho: int
    heuristic: str
    source_hash: str
    #: per-shard ``"http://host:port"`` hints from the manifest
    #: (``None`` entries for empty shards; ``None`` when unstamped).
    endpoints: tuple[str | None, ...] | None = None

    def shard_vertices(self) -> list[np.ndarray]:
        """Per-shard sorted original-vertex ids (from the labels)."""
        return [
            np.flatnonzero(self.labels == s) for s in range(self.n_shards)
        ]

    @classmethod
    def from_sharded(cls, sharded: ShardedPreprocessResult) -> "ShardTopology":
        """The topology view of an in-memory sharded preprocessing."""
        return cls(
            n=int(sharded.n),
            n_shards=int(sharded.n_shards),
            labels=sharded.labels,
            overlay_graph=sharded.overlay_graph,
            overlay_vertices=sharded.overlay_vertices,
            partition_method=str(sharded.partition_method),
            partition_seed=int(sharded.partition_seed),
            edge_cut=int(sharded.edge_cut),
            balance=float(sharded.balance),
            k=int(sharded.k),
            rho=int(sharded.rho),
            heuristic=str(sharded.heuristic),
            source_hash=str(sharded.source_hash),
        )


def load_shard_topology(
    path: str | Path, *, expect_graph: CSRGraph | None = None
) -> ShardTopology:
    """Load only the routing view of a sharded bundle.

    Verifies the manifest digest and the overlay/topology member hashes
    — but does **not** require the per-shard ``.npz`` payloads to exist
    locally, because on a multi-box deployment they don't: the front
    end holds the manifest + overlay, the shard boxes hold their own
    payload members.  Endpoint hints stamped into the manifest
    (:func:`stamp_endpoints`) come along.
    """
    path = Path(path)
    manifest = _read_sharded_manifest(path)
    _check_source_graph(path, manifest, expect_graph)
    _verify_members(path, manifest, ("overlay.npz", "topology.npz"))
    labels, overlay_vertices, overlay_graph = _load_overlay_topology(
        path, manifest
    )
    endpoints = manifest.get("endpoints")
    return ShardTopology(
        n=int(manifest["n"]),
        n_shards=int(manifest["n_shards"]),
        labels=labels,
        overlay_graph=overlay_graph,
        overlay_vertices=overlay_vertices,
        partition_method=str(manifest["partition_method"]),
        partition_seed=int(manifest["partition_seed"]),
        edge_cut=int(manifest["edge_cut"]),
        balance=float(manifest["balance"]),
        k=int(manifest["k"]),
        rho=int(manifest["rho"]),
        heuristic=str(manifest["heuristic"]),
        source_hash=str(manifest["source_hash"]),
        endpoints=None if endpoints is None else tuple(endpoints),
    )
