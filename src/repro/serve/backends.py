"""Shard backends — the transport seam under the stitch layer.

The :class:`~repro.serve.router.ShardRouter` answers a query by folding
per-shard distance rows over the boundary overlay (the stitching core).
What it folds *over* is this module's :class:`ShardBackend` protocol —
``source_row`` / batched ``rows`` / ``route`` / ``stats`` / ``healthz``
— with two implementations:

* :class:`LocalBackend` wraps a per-shard
  :class:`~repro.serve.planner.QueryPlanner` in process, exactly what
  the router held inline before this seam existed.  Zero transport
  cost, always healthy, bit-identical to the pre-seam router (the
  parity suite pins it).
* :class:`RemoteBackend` speaks to a shard's
  :class:`~repro.serve.http.RoutingHTTPServer` over a pool of stdlib
  :class:`http.client.HTTPConnection` objects: per-request deadline,
  bounded retry-with-backoff on idempotent GETs, and ``X-Request-Id``
  propagation from the ambient trace so one request id threads the
  front end's span tree *and* every shard's slow log.  Distance rows
  travel as a compact binary frame (:func:`encode_rows` /
  :func:`decode_rows` — raw little-endian float64, no JSON float
  round-trip, bit-identical by construction), routes over the existing
  JSON contract.

Degraded mode is typed: a shard that stays down past its retry budget
raises :class:`ShardUnavailableError` naming the shard and endpoint,
which the HTTP front end maps to a ``503`` — a dead shard degrades the
cluster loudly instead of hanging it.  ``close()`` is safe to call from
another thread while a request is sleeping between retries: the backoff
waits on an event, so shutdown interrupts it immediately instead of
blocking for the remaining budget.

Every backend tracks its own health (consecutive failures, failure
total) and a row-fetch latency histogram; ``backend_stats()`` is the
``backends`` table of ``ShardRouter.stats()`` and the source of the
``shard_backend_*`` metric families.
"""

from __future__ import annotations

import http.client
import json
import socket
import struct
import threading
import time
from typing import Protocol, Sequence, runtime_checkable
from urllib.parse import urlparse

import numpy as np

from ..obs.metrics import LATENCY_BUCKETS, Histogram
from ..obs.trace import current_trace
from .planner import QueryPlanner, Route, SingleSource

__all__ = [
    "MAX_ROWS_PER_FETCH",
    "ROWS_CONTENT_TYPE",
    "LocalBackend",
    "RemoteBackend",
    "ShardBackend",
    "ShardUnavailableError",
    "decode_rows",
    "encode_rows",
]

#: upper bound on sources per ``GET /internal/rows/...`` fetch — bounds
#: both the URL length and the response size; clients chunk above it.
MAX_ROWS_PER_FETCH = 64

#: content type of the binary row frame.
ROWS_CONTENT_TYPE = "application/x-repro-rows"

#: binary row frame header: magic, version, 3 pad bytes, row count
#: (u32), row length (u64) — then ``n_rows * row_len`` little-endian
#: float64 payload.
_ROWS_MAGIC = b"RROW"
_ROWS_VERSION = 1
_ROWS_HEADER = struct.Struct("<4sB3xIQ")


class ShardUnavailableError(RuntimeError):
    """A shard backend is down past its retry budget (or closed).

    Carries the failing shard id and endpoint so the degraded-mode
    contract can *name* what is broken: the HTTP front end maps this to
    a ``503`` with ``{"error": "ShardUnavailable", "shard": ...}``.
    """

    def __init__(self, shard: int, endpoint: str | None, reason: str) -> None:
        where = f" at {endpoint}" if endpoint else ""
        super().__init__(f"shard {shard}{where} is unavailable: {reason}")
        self.shard = int(shard)
        self.endpoint = endpoint
        self.reason = reason


# --------------------------------------------------------------------- #
# Binary row frame
# --------------------------------------------------------------------- #
def encode_rows(rows: Sequence[np.ndarray]) -> bytes:
    """Frame distance rows as bytes: header + raw float64 payload.

    All rows must share one length.  The payload is the rows' exact
    float64 bit patterns — a decoded row compares bit-identical to the
    planner row it came from, which is what keeps remote stitching on
    the same exactness contract as local stitching.
    """
    if not rows:
        raise ValueError("encode_rows requires at least one row")
    mat = np.ascontiguousarray(np.stack([np.asarray(r) for r in rows]))
    mat = mat.astype("<f8", copy=False)
    header = _ROWS_HEADER.pack(
        _ROWS_MAGIC, _ROWS_VERSION, mat.shape[0], mat.shape[1]
    )
    return header + mat.tobytes()


def decode_rows(data: bytes, *, expect_len: int | None = None) -> np.ndarray:
    """Decode a frame into a read-only ``(n_rows, row_len)`` array.

    ``expect_len`` pins the row length the caller's topology implies —
    a mismatch means the endpoint serves a *different* shard (or graph)
    than the manifest claims, which must fail loudly, not stitch
    garbage.
    """
    if len(data) < _ROWS_HEADER.size:
        raise ValueError("row frame truncated before its header")
    magic, version, n_rows, row_len = _ROWS_HEADER.unpack_from(data)
    if magic != _ROWS_MAGIC:
        raise ValueError(f"bad row-frame magic {magic!r}")
    if version != _ROWS_VERSION:
        raise ValueError(f"unsupported row-frame version {version}")
    expected = _ROWS_HEADER.size + 8 * n_rows * row_len
    if len(data) != expected:
        raise ValueError(
            f"row frame holds {len(data)} bytes, header implies {expected}"
        )
    if expect_len is not None and row_len != expect_len:
        raise ValueError(
            f"row length {row_len} does not match the shard's vertex "
            f"count {expect_len} — endpoint serves a different shard?"
        )
    mat = np.frombuffer(data, dtype="<f8", offset=_ROWS_HEADER.size)
    mat = mat.reshape(n_rows, row_len)
    mat.setflags(write=False)
    return mat


# --------------------------------------------------------------------- #
# The protocol
# --------------------------------------------------------------------- #
@runtime_checkable
class ShardBackend(Protocol):
    """What the stitching core needs from one shard, transport-agnostic.

    ``source_row`` / ``rows`` speak *shard-local* vertex ids and return
    float64 distance rows over the shard's vertices; ``route`` answers
    an intra-shard route in shard-local ids.  ``backend_stats`` is the
    health/latency snapshot the router's ``backends`` table and the
    ``shard_backend_*`` metric families are built from.
    """

    kind: str
    shard: int
    endpoint: str | None

    def source_row(self, local_source: int) -> np.ndarray: ...

    def rows(self, local_sources: Sequence[int]) -> list[np.ndarray]: ...

    def route(self, local_source: int, local_target: int) -> Route: ...

    def stats(self) -> dict: ...

    def healthz(self) -> dict: ...

    def backend_stats(self) -> dict: ...

    def close(self) -> None: ...


class _BaseBackend:
    """Shared health + row-fetch latency bookkeeping."""

    kind = "abstract"

    def __init__(self, shard: int, endpoint: str | None) -> None:
        self.shard = int(shard)
        self.endpoint = endpoint
        self._health_lock = threading.Lock()
        self._consecutive_failures = 0
        self._failures_total = 0
        self._fetch_hist = Histogram(LATENCY_BUCKETS)

    # -- health ------------------------------------------------------- #
    @property
    def healthy(self) -> bool:
        """True while the last request cycle succeeded."""
        with self._health_lock:
            return self._consecutive_failures == 0

    @property
    def consecutive_failures(self) -> int:
        with self._health_lock:
            return self._consecutive_failures

    def _mark_attempt_failure(self) -> None:
        with self._health_lock:
            self._failures_total += 1

    def _mark_request_failure(self) -> None:
        with self._health_lock:
            self._consecutive_failures += 1

    def _mark_success(self) -> None:
        with self._health_lock:
            self._consecutive_failures = 0

    def _record_fetch(self, seconds: float) -> None:
        self._fetch_hist.observe(seconds)

    def fetch_snapshot(self) -> tuple[tuple[float, ...], list[int], float, int]:
        """(bounds, non-cumulative counts incl. +Inf, sum, count) of the
        row-fetch latency histogram — what the obs bridge renders."""
        counts, total, count = self._fetch_hist.snapshot()
        return self._fetch_hist.bounds, counts, total, count

    def backend_stats(self) -> dict:
        """One row of the router's ``backends`` table."""
        p50 = self._fetch_hist.quantile(0.5)
        with self._health_lock:
            consecutive = self._consecutive_failures
            failures = self._failures_total
        return {
            "shard": self.shard,
            "kind": self.kind,
            "endpoint": self.endpoint,
            "healthy": consecutive == 0,
            "consecutive_failures": consecutive,
            "failures_total": failures,
            "row_fetches": self._fetch_hist.count,
            "row_fetch_p50_ms": None if p50 is None else round(p50 * 1e3, 4),
        }

    def close(self) -> None:  # pragma: no cover - overridden where real
        pass


# --------------------------------------------------------------------- #
# In-process backend
# --------------------------------------------------------------------- #
class LocalBackend(_BaseBackend):
    """One shard served in process by its own planner + solver.

    Exactly the objects the router held inline before the backend seam:
    ``rows`` goes through :meth:`QueryPlanner.execute`, so a batch of
    boundary sources coalesces onto one ``solve_many`` fan-out and
    lands in the planner's striped LRU — the same caching behavior
    (and the same bits) as the pre-seam router.
    """

    kind = "local"

    def __init__(self, shard: int, planner: QueryPlanner, solver) -> None:
        super().__init__(shard, endpoint=None)
        self.planner = planner
        self.solver = solver

    def source_row(self, local_source: int) -> np.ndarray:
        t0 = time.perf_counter()
        row = self.planner.distances(int(local_source))
        self._record_fetch(time.perf_counter() - t0)
        return row

    def rows(self, local_sources: Sequence[int]) -> list[np.ndarray]:
        if not len(local_sources):
            return []
        t0 = time.perf_counter()
        out = self.planner.execute(
            [SingleSource(int(s)) for s in local_sources]
        )
        self._record_fetch(time.perf_counter() - t0)
        return out

    def route(self, local_source: int, local_target: int) -> Route:
        return self.planner.route(int(local_source), int(local_target))

    def stats(self) -> dict:
        return self.planner.stats()

    def healthz(self) -> dict:
        return {"status": "ok", "shard": self.shard}


# --------------------------------------------------------------------- #
# Remote backend — the network seam
# --------------------------------------------------------------------- #
class RemoteBackend(_BaseBackend):
    """One shard served by a :class:`RoutingHTTPServer` across the wire.

    Parameters
    ----------
    endpoint: ``"http://host:port"`` (or bare ``"host:port"``) of the
        shard's server.
    shard: the shard id this endpoint must serve (error attribution).
    timeout: per-request deadline in seconds — connect and every socket
        read are bounded by it, so a hung shard surfaces as a typed
        error within the deadline instead of pinning a thread.
    retries: extra attempts after the first, on connection errors and
        5xx responses of idempotent GETs (every request this backend
        makes is an idempotent read — rows, routes, stats).
    backoff: initial sleep between attempts, doubling per retry.  The
        sleep waits on the close event, so :meth:`close` from another
        thread interrupts it immediately.
    pool_size: connections kept alive for reuse (per backend).
    expect_n: the shard's vertex count per the bundle topology; row
        responses of any other length raise — a miswired endpoint must
        not stitch another shard's distances.
    """

    kind = "remote"

    def __init__(
        self,
        endpoint: str,
        *,
        shard: int,
        timeout: float = 5.0,
        retries: int = 2,
        backoff: float = 0.05,
        backoff_cap: float = 2.0,
        pool_size: int = 4,
        expect_n: int | None = None,
    ) -> None:
        if "//" not in endpoint:
            endpoint = "http://" + endpoint
        parsed = urlparse(endpoint)
        if parsed.scheme != "http" or not parsed.hostname or not parsed.port:
            raise ValueError(
                f"endpoint must look like http://host:port, got {endpoint!r}"
            )
        super().__init__(shard, f"http://{parsed.hostname}:{parsed.port}")
        self._host = parsed.hostname
        self._port = int(parsed.port)
        self._timeout = float(timeout)
        self._retries = int(retries)
        self._backoff = float(backoff)
        self._backoff_cap = float(backoff_cap)
        self._expect_n = expect_n
        self._pool: list[http.client.HTTPConnection] = []
        self._pool_size = int(pool_size)
        self._pool_lock = threading.Lock()
        self._closed = threading.Event()

    # -- connection pool ---------------------------------------------- #
    def _acquire(self) -> http.client.HTTPConnection:
        with self._pool_lock:
            if self._pool:
                return self._pool.pop()
        conn = http.client.HTTPConnection(
            self._host, self._port, timeout=self._timeout
        )
        conn.connect()
        # request headers go out in one small write per GET; without
        # TCP_NODELAY each exchange can stall on Nagle + delayed-ACK
        conn.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return conn

    def _release(self, conn: http.client.HTTPConnection) -> None:
        with self._pool_lock:
            if not self._closed.is_set() and len(self._pool) < self._pool_size:
                self._pool.append(conn)
                return
        conn.close()

    # -- request cycle ------------------------------------------------ #
    def _request(self, path: str) -> bytes:
        """One idempotent GET with deadline, retry and backoff.

        Returns the 200 response body.  Connection errors and 5xx
        responses are retried up to the budget with doubling,
        close-interruptible sleeps; exhaustion (or a close) raises
        :class:`ShardUnavailableError`.  A 4xx is the shard rejecting
        the request itself — not a liveness problem — and re-raises as
        the error type the JSON body names.
        """
        if self._closed.is_set():
            raise ShardUnavailableError(self.shard, self.endpoint, "backend closed")
        headers = {}
        trace = current_trace()
        if trace is not None:
            headers["X-Request-Id"] = trace.request_id
        delay = self._backoff
        reason = "no attempt made"
        for attempt in range(self._retries + 1):
            if attempt:
                if self._closed.wait(delay):
                    raise ShardUnavailableError(
                        self.shard, self.endpoint, "closed during retry backoff"
                    )
                delay = min(delay * 2.0, self._backoff_cap)
            try:
                conn = self._acquire()
            except OSError as exc:
                reason = f"{type(exc).__name__}: {exc}"
                self._mark_attempt_failure()
                continue
            reusable = False
            try:
                conn.request("GET", path, headers=headers)
                resp = conn.getresponse()
                body = resp.read()
                reusable = True
                if resp.status == 200:
                    self._mark_success()
                    return body
                if resp.status >= 500:
                    reason = f"HTTP {resp.status} on {path}"
                    self._mark_attempt_failure()
                    continue
                # 4xx: the shard is alive and rejecting this request —
                # surface the typed error, do not burn the retry budget
                self._mark_success()
                raise _client_error(resp.status, body, path)
            except (OSError, http.client.HTTPException) as exc:
                reason = f"{type(exc).__name__}: {exc}"
                self._mark_attempt_failure()
            finally:
                if reusable:
                    self._release(conn)
                else:
                    conn.close()
        self._mark_request_failure()
        raise ShardUnavailableError(self.shard, self.endpoint, reason)

    # -- backend surface ---------------------------------------------- #
    def source_row(self, local_source: int) -> np.ndarray:
        t0 = time.perf_counter()
        body = self._request(f"/internal/row/{int(local_source)}")
        rows = self._decode(body, 1)
        self._record_fetch(time.perf_counter() - t0)
        return rows[0]

    def rows(self, local_sources: Sequence[int]) -> list[np.ndarray]:
        sources = [int(s) for s in local_sources]
        if not sources:
            return []
        out: list[np.ndarray] = []
        t0 = time.perf_counter()
        for lo in range(0, len(sources), MAX_ROWS_PER_FETCH):
            chunk = sources[lo : lo + MAX_ROWS_PER_FETCH]
            body = self._request(
                "/internal/rows/" + ",".join(map(str, chunk))
            )
            mat = self._decode(body, len(chunk))
            out.extend(mat[i] for i in range(len(chunk)))
        self._record_fetch(time.perf_counter() - t0)
        return out

    def _decode(self, body: bytes, expect_rows: int) -> np.ndarray:
        try:
            mat = decode_rows(body, expect_len=self._expect_n)
        except ValueError as exc:
            # a malformed or wrong-shard frame is a misconfiguration,
            # not a transient: fail the backend loudly, no retry
            self._mark_attempt_failure()
            self._mark_request_failure()
            raise ShardUnavailableError(self.shard, self.endpoint, str(exc))
        if mat.shape[0] != expect_rows:
            self._mark_attempt_failure()
            self._mark_request_failure()
            raise ShardUnavailableError(
                self.shard,
                self.endpoint,
                f"asked for {expect_rows} rows, frame holds {mat.shape[0]}",
            )
        return mat

    def route(self, local_source: int, local_target: int) -> Route:
        body = self._request(f"/route/{int(local_source)}/{int(local_target)}")
        doc = json.loads(body)
        distance = doc.get("distance")
        path = doc.get("path")
        return Route(
            source=int(doc["source"]),
            target=int(doc["target"]),
            distance=float("inf") if distance is None else float(distance),
            path=None if path is None else tuple(int(v) for v in path),
        )

    def stats(self) -> dict:
        return json.loads(self._request("/stats"))

    def healthz(self) -> dict:
        """Best-effort readiness probe — unreachable is a *status*, not
        an exception (health checks must not throw)."""
        try:
            return json.loads(self._request("/internal/ready"))
        except ShardUnavailableError as exc:
            return {"status": "unreachable", "shard": self.shard, "error": str(exc)}

    def close(self) -> None:
        """Release the pool and interrupt any in-flight retry sleep.

        Idempotent and safe from any thread: a request sleeping between
        retries wakes immediately and raises
        :class:`ShardUnavailableError` instead of finishing its backoff
        budget — so cluster shutdown never blocks on a dead shard.
        """
        self._closed.set()
        with self._pool_lock:
            pool, self._pool = self._pool, []
        for conn in pool:
            conn.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RemoteBackend(shard={self.shard}, endpoint={self.endpoint!r}, "
            f"healthy={self.healthy})"
        )


def _client_error(status: int, body: bytes, path: str) -> Exception:
    """Re-raise a shard's 4xx as the error type its JSON body names."""
    try:
        doc = json.loads(body)
        name = str(doc.get("error", ""))
        message = str(doc.get("message", body[:200]))
    except (json.JSONDecodeError, UnicodeDecodeError):
        name, message = "", body[:200].decode("utf-8", "replace")
    detail = f"shard rejected {path}: {message}"
    if name == "TypeError":
        return TypeError(detail)
    if status == 400:
        return ValueError(detail)
    return RuntimeError(f"HTTP {status} — {detail}")
