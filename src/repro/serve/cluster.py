"""One-call bootstrap of a multi-process-shaped shard cluster.

:class:`ShardCluster` turns a sharded bundle into the full serving
topology the README's multi-box quickstart describes — N shard servers
plus one stitching front end — inside a single process.  Each shard
gets its own :class:`~repro.serve.service.RoutingService` behind its
own :class:`~repro.serve.http.RoutingHTTPServer` (bound to an
ephemeral port), and the front end is a
:meth:`ShardRouter.remote <repro.serve.router.ShardRouter.remote>`
router whose :class:`~repro.serve.backends.RemoteBackend` transports
speak real HTTP to those servers.  Every byte crosses a socket exactly
as it would between boxes, so the cluster is both the integration
harness for the remote stitch path and a faithful local stand-in for a
deployment: what passes here passes across machines.

Shutdown ordering is the subtle part.  ``close()`` interrupts the
router's backends *first* — :meth:`RemoteBackend.close` sets the
closed event, waking any handler thread sleeping in retry backoff —
then drains the front-end server, then the shard servers.  Closing the
front end first would deadlock-by-timeout: its handler threads can be
blocked inside a backend's backoff sleep, and ``close()`` joins them.

>>> with ShardCluster("bundle_dir") as cluster:
...     requests_get(cluster.url + "/distances/0")   # stitched remotely
"""

from __future__ import annotations

from pathlib import Path
from typing import Sequence

from ..core.solver import PreprocessedSSSP
from ..graphs.csr import CSRGraph
from ..preprocess.pipeline import ShardedPreprocessResult
from .artifacts import ShardTopology, load_sharded_artifact
from .http import RoutingHTTPServer
from .router import ShardRouter
from .service import RoutingService

__all__ = ["ShardCluster"]


class ShardCluster:
    """N in-process shard servers + one remote-stitching front end.

    Parameters
    ----------
    bundle: a sharded bundle directory (as written by
        :func:`~repro.serve.artifacts.save_sharded_artifact`) or an
        in-memory
        :class:`~repro.preprocess.pipeline.ShardedPreprocessResult`.
    host: interface every server binds (loopback by default).
    router_port: front-end port (0 = ephemeral; shard servers are
        always ephemeral).
    engine / cache_capacity / track_parents: per-shard serving knobs,
        forwarded to each shard's :class:`RoutingService`;
        ``cache_capacity`` also sizes the front end's stitched-row LRU.
    timeout / retries / backoff: the front end's per-shard
        :class:`~repro.serve.backends.RemoteBackend` deadline and
        bounded-retry budget.
    request_timeout: per-socket-read timeout of every HTTP server.
    registry: metrics registry shared by the front end and every shard
        server (``None`` = the process-global default).  Each surface
        mints its own ``service`` label, so series never collide.
    mmap: memory-map shard payloads when ``bundle`` is a path.
    verbose: per-request logging on every server.
    """

    def __init__(
        self,
        bundle: str | Path | ShardedPreprocessResult,
        *,
        host: str = "127.0.0.1",
        router_port: int = 0,
        engine: str = "auto",
        cache_capacity: int = 256,
        track_parents: bool = True,
        timeout: float = 5.0,
        retries: int = 2,
        backoff: float = 0.05,
        request_timeout: float = 10.0,
        registry=None,
        expect_graph: CSRGraph | None = None,
        mmap: bool = False,
        verbose: bool = False,
    ) -> None:
        if isinstance(bundle, ShardedPreprocessResult):
            sharded = bundle
        else:
            sharded = load_sharded_artifact(
                bundle, expect_graph=expect_graph, mmap=mmap
            )
        self._shard_servers: list[RoutingHTTPServer | None] = []
        self._front: RoutingHTTPServer | None = None
        self._router: ShardRouter | None = None
        try:
            for s, pre in enumerate(sharded.shards):
                if len(sharded.shard_vertices[s]) == 0:
                    self._shard_servers.append(None)
                    continue
                service = RoutingService(
                    solver=PreprocessedSSSP.from_preprocessed(pre),
                    engine=engine,
                    cache_capacity=cache_capacity,
                    track_parents=track_parents,
                )
                server = RoutingHTTPServer(
                    service,
                    host=host,
                    port=0,
                    registry=registry,
                    request_timeout=request_timeout,
                    verbose=verbose,
                )
                self._shard_servers.append(server.start())
            endpoints = [
                server.url if server is not None else None
                for server in self._shard_servers
            ]
            self._router = ShardRouter.remote(
                ShardTopology.from_sharded(sharded),
                endpoints,
                timeout=timeout,
                retries=retries,
                backoff=backoff,
                cache_capacity=cache_capacity,
                track_parents=track_parents,
            )
            # fail at construction, not first query, if a shard server
            # came up wrong — ready-probe every backend once
            for s, backend in enumerate(self._router.backends):
                if backend is None:
                    continue
                health = backend.healthz()
                if health.get("status") == "unreachable":
                    raise RuntimeError(
                        f"shard {s} server at {backend.endpoint} failed "
                        f"its readiness probe: {health}"
                    )
            self._front = RoutingHTTPServer(
                self._router,
                host=host,
                port=router_port,
                registry=registry,
                request_timeout=request_timeout,
                verbose=verbose,
            ).start()
        except BaseException:
            self.close()
            raise

    # ------------------------------------------------------------------ #
    @property
    def url(self) -> str:
        """Base URL of the stitching front end."""
        return self._front.url

    @property
    def shard_urls(self) -> list[str | None]:
        """Per-shard server base URLs (``None`` for empty shards)."""
        return [s.url if s is not None else None for s in self._shard_servers]

    @property
    def router(self) -> ShardRouter:
        """The front end's remote :class:`ShardRouter` (in-process
        queries against it take the same wire path as HTTP ones)."""
        return self._router

    @property
    def shard_servers(self) -> Sequence[RoutingHTTPServer | None]:
        """The shard servers themselves — tests kill one to exercise
        the degraded-mode contract."""
        return tuple(self._shard_servers)

    def close(self) -> None:
        """Tear down in deadlock-free order (idempotent).

        Backends first (wakes handler threads sleeping in retry
        backoff), then the front end (its handlers now fail fast and
        drain), then the shard servers.
        """
        if self._router is not None:
            self._router.close()
        if self._front is not None:
            self._front.close()
            self._front = None
        for server in self._shard_servers:
            if server is not None:
                server.close()
        self._shard_servers = []

    def __enter__(self) -> "ShardCluster":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
