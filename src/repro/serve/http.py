"""HTTP front end — the network face of any query surface.

A stdlib-only JSON API over the serving stack.  The server is
constructed against the :class:`~repro.serve.surface.QuerySurface`
protocol, not a concrete class, so the single-graph
:class:`~repro.serve.service.RoutingService` and the sharded
:class:`~repro.serve.router.ShardRouter` are interchangeable behind the
same endpoints — sharded serving is a drop-in.  A
:class:`~http.server.ThreadingHTTPServer` dispatches each request on
its own thread straight into the thread-safe surface (striped caches,
single-flight solves underneath), so concurrent clients share cached
rows and coalesce duplicate misses exactly like in-process callers.  No
framework, no dependencies — the container this repo targets has only
the scientific stack.

Endpoints
---------
===========================  ====================================================
``GET /healthz``             liveness probe → ``{"status": "ok", "shards": N,
                             "artifact_version": V}`` (a single-graph
                             service reports ``shards: 1``)
``GET /stats``               surface counters + topology (JSON): the
                             resolved ``engine``, shard count, per-shard
                             vertex/boundary counts, and (single-graph)
                             the ``engines`` registry with descriptions
``GET /metrics``             Prometheus text exposition of the server's
                             registry (request latency histograms by
                             endpoint, planner cache counters, engine
                             step/relaxation histograms, shard-stitch
                             counters — :mod:`repro.obs`)
``GET /debug/slow``          the slow-query log: span trees of recent
                             requests over the ``slow_ms`` threshold
``GET /distances/{s}``       full distance row from ``s`` (``null`` = unreachable)
``GET /route/{s}/{t}``       distance and (when tracked) path ``s → t``
``GET /nearest/{s}/{k}``     the ``k`` closest reachable vertices to ``s``
``POST /batch``              mixed query list, answered as one coalesced batch
``GET /internal/ready``      cheap readiness probe for cluster bootstrap
``GET /internal/row/{s}``    one distance row as a compact binary frame
``GET /internal/rows/{csv}`` up to ``MAX_ROWS_PER_FETCH`` rows, one frame
===========================  ====================================================

The ``/internal/*`` surface is the shard-to-router wire: rows travel as
raw little-endian float64 frames (:func:`repro.serve.backends.encode_rows`
— no JSON float round-trip, so a front-end
:class:`~repro.serve.backends.RemoteBackend` stitches bit-identical
answers), and ``/internal/rows`` funnels a whole boundary batch into one
coalesced ``service.batch`` call.

Error contract: request problems (malformed paths, non-integer ids,
out-of-range vertices, negative ``k``, bad JSON) map to **4xx** with a
JSON body ``{"error": <type>, "message": <detail>}``; unexpected
server-side failures (a typed :class:`~repro.serve.artifacts.ArtifactError`,
an engine blow-up) map to **5xx** with the same shape.  ``Infinity`` is
not valid JSON, so unreachable distances serialize as ``null``.  A
front-end router whose shard backend is down past its retry budget
raises :class:`~repro.serve.backends.ShardUnavailableError`, which maps
to **503** with the failing shard named —
``{"error": "ShardUnavailable", "shard": 2, ...}`` — the typed
degraded-mode contract (the request fails within the backend's
deadline/retry budget; it never hangs).

Observability: every response — error paths included — carries an
``X-Request-Id`` header (the client's, sanitized, when it sent one;
minted otherwise), which is also the id of the request's span tree in
``GET /debug/slow``.  Each request is counted into
``http_requests_total{endpoint,status}`` and timed into
``http_request_seconds{endpoint}`` on the server's registry, and the
surface is instrumented at construction when it supports it
(``RoutingService.instrument`` / ``ShardRouter.instrument``), so one
scrape shows the whole stack.

Usage::

    service = RoutingService.from_artifact("road.kr.npz", expect_graph=g)
    with RoutingHTTPServer(service, port=8080) as server:   # starts serving
        print("listening on", server.url)
        ...
    # context exit = graceful shutdown: stop accepting, finish in-flight
    # requests, close the socket

``examples/http_routing_service.py`` drives a live server end to end
(including a concurrent client burst); ``POST /batch`` bodies look like::

    {"queries": [
        {"type": "distances", "source": 3},
        {"type": "route", "source": 3, "target": 94},
        {"type": "nearest", "source": 3, "k": 5}
    ]}
"""

from __future__ import annotations

import json
import re
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import urlparse

import numpy as np

from ..obs.expo import CONTENT_TYPE as METRICS_CONTENT_TYPE
from ..obs.expo import render as render_metrics
from ..obs.metrics import get_default_registry
from ..obs.trace import SlowQueryLog, new_request_id, trace_request
from .backends import (
    MAX_ROWS_PER_FETCH,
    ROWS_CONTENT_TYPE,
    ShardUnavailableError,
    encode_rows,
)
from .planner import KNearest, Nearest, PointToPoint, Route, SingleSource
from .surface import QuerySurface

__all__ = ["RoutingHTTPServer", "serve"]

#: request bodies larger than this are refused with 413 (a batch of
#: thousands of queries fits in a few KiB; anything bigger is abuse).
MAX_BODY_BYTES = 8 * 1024 * 1024

_INT_RE = re.compile(r"[+-]?\d+\Z")

#: the endpoint label values request metrics may carry.  Labels must be
#: bounded — a scanner probing random paths must not mint one time
#: series per path — so anything unrecognized becomes ``"unknown"``.
_ENDPOINTS = frozenset(
    {"root", "healthz", "stats", "metrics", "debug", "distances",
     "route", "nearest", "batch", "internal"}
)

#: characters allowed in an echoed request id (visible ASCII only — a
#: client-supplied header is echoed back verbatim, and CR/LF would be a
#: response-splitting hole).
_REQUEST_ID_STRIP = re.compile(r"[^\x21-\x7e]")


def _endpoint_label(method: str, path: str) -> str:
    """The bounded ``endpoint`` label of a request path.

    Derived from the first path segment *before* routing, so error
    responses (404s, planner rejections) are attributed to the endpoint
    the client was aiming at.
    """
    parts = [p for p in urlparse(path).path.split("/") if p]
    if not parts:
        return "root"
    head = parts[0]
    return head if head in _ENDPOINTS else "unknown"


def _request_id(raw: str | None) -> str:
    """Accept a client's ``X-Request-Id`` (sanitized) or mint one."""
    if raw:
        cleaned = _REQUEST_ID_STRIP.sub("", raw)[:128]
        if cleaned:
            return cleaned
    return new_request_id()


class _RawResponse:
    """A pre-encoded response body (bypasses the JSON layer) — how
    ``GET /metrics`` returns Prometheus text from a JSON server."""

    __slots__ = ("body", "content_type")

    def __init__(self, body: bytes, content_type: str) -> None:
        self.body = body
        self.content_type = content_type


class _HTTPError(Exception):
    """Internal: carries an HTTP status for the error-mapping layer."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


def _parse_int(text: str, what: str) -> int:
    if not _INT_RE.match(text):
        raise _HTTPError(400, f"{what} must be an integer, got {text!r}")
    return int(text)


def _finite(value: float) -> float | None:
    """JSON has no Infinity: unreachable distances become ``null``."""
    value = float(value)
    return value if np.isfinite(value) else None


def _distances_payload(source: int, dist: np.ndarray) -> dict:
    finite = np.isfinite(dist)
    return {
        "type": "distances",
        "source": int(source),
        "n": int(len(dist)),
        "reachable": int(finite.sum()),
        "distances": [
            float(d) if ok else None for d, ok in zip(dist.tolist(), finite.tolist())
        ],
    }


def _route_payload(route: Route) -> dict:
    return {
        "type": "route",
        "source": int(route.source),
        "target": int(route.target),
        "distance": _finite(route.distance),
        "reachable": bool(np.isfinite(route.distance)),
        "path": None if route.path is None else [int(v) for v in route.path],
    }


def _nearest_payload(near: Nearest, k: int) -> dict:
    return {
        "type": "nearest",
        "source": int(near.source),
        "k": int(k),
        "count": int(len(near.vertices)),
        "vertices": [int(v) for v in near.vertices],
        "distances": [float(d) for d in near.distances],
    }


def _answer_payload(query, answer) -> dict:
    if isinstance(query, SingleSource):
        return _distances_payload(query.source, answer)
    if isinstance(query, PointToPoint):
        return _route_payload(answer)
    return _nearest_payload(answer, query.k)


def _parse_batch_query(item, index: int):
    """One JSON batch entry → a planner query record.

    Values pass through untouched (including JSON ``true``/``false``):
    the planner's own validation is the single source of truth for what
    a vertex id is, and its ``TypeError``/``ValueError`` map to 400.
    """
    if not isinstance(item, dict):
        raise _HTTPError(400, f"query {index}: expected an object, got {item!r}")
    kind = item.get("type")
    try:
        if kind == "distances":
            return SingleSource(item["source"])
        if kind == "route":
            return PointToPoint(item["source"], item["target"])
        if kind == "nearest":
            return KNearest(item["source"], item["k"])
    except KeyError as exc:
        raise _HTTPError(400, f"query {index}: missing field {exc.args[0]!r}")
    raise _HTTPError(
        400,
        f"query {index}: unknown type {kind!r} "
        "(expected 'distances', 'route', or 'nearest')",
    )


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server_version = "repro-routing/1.0"
    # Small responses over keep-alive connections otherwise sit out
    # Nagle + delayed-ACK (~40ms per exchange on loopback) — fatal for
    # the per-row internal fetches the remote stitch path makes.
    disable_nagle_algorithm = True

    def setup(self) -> None:
        # Bound every socket read (idle keep-alive waits included) by
        # the server's request timeout: without it, one idle persistent
        # connection blocks its non-daemon handler thread in readline()
        # forever, and close() — which joins handler threads — hangs
        # until the client goes away.
        self.timeout = self.server.request_timeout
        super().setup()

    # ------------------------------------------------------------------ #
    def do_GET(self) -> None:
        self._respond("GET")

    def do_POST(self) -> None:
        self._respond("POST")

    def log_message(self, fmt: str, *args) -> None:
        if self.server.verbose:  # pragma: no cover - debug aid
            super().log_message(fmt, *args)

    # ------------------------------------------------------------------ #
    def _respond(self, method: str) -> None:
        self._body_read = False
        endpoint = _endpoint_label(method, self.path)
        request_id = _request_id(self.headers.get("X-Request-Id"))
        t0 = time.perf_counter()
        # the root span every instrumented layer underneath (planner,
        # router, solver) attaches its children to
        with trace_request(f"{method} {endpoint}", request_id) as trace:
            try:
                payload = self._route_request(method)
                status = 200
            except _HTTPError as exc:
                names = {
                    404: "NotFound", 411: "LengthRequired", 413: "PayloadTooLarge"
                }
                status, payload = exc.status, {
                    "error": names.get(exc.status, "BadRequest"),
                    "message": str(exc),
                }
            except (ValueError, TypeError) as exc:
                # the planner's validation layer: out-of-range vertices,
                # bools-as-ids, negative k, malformed query records
                status, payload = 400, {
                    "error": type(exc).__name__,
                    "message": str(exc),
                }
            except ShardUnavailableError as exc:
                # the degraded-mode contract: a shard down past its
                # retry budget names itself in a typed 503
                status, payload = 503, {
                    "error": "ShardUnavailable",
                    "shard": exc.shard,
                    "endpoint": exc.endpoint,
                    "message": str(exc),
                }
            except Exception as exc:  # typed server-side failures → 5xx
                status, payload = 500, {
                    "error": type(exc).__name__,
                    "message": str(exc),
                }
        self.server.observe_request(
            endpoint=endpoint,
            status=status,
            seconds=time.perf_counter() - t0,
            trace=trace,
            method=method,
        )
        if isinstance(payload, _RawResponse):
            body, content_type = payload.body, payload.content_type
        else:
            body = json.dumps(payload).encode()
            content_type = "application/json"
        try:
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(body)))
            self.send_header("X-Request-Id", request_id)
            if self._undrained_body():
                # this request carried a body we never (or never
                # correctly) drained — an error path refused it early, a
                # body arrived on a bodiless endpoint, or it used
                # chunked framing we don't decode; under HTTP/1.1
                # keep-alive the leftover bytes would be parsed as the
                # next request line (connection desync) — advertise and
                # perform a close instead.  send_header("Connection",
                # "close") also flips self.close_connection for us.
                self.send_header("Connection", "close")
            self.end_headers()
            self.wfile.write(body)
        except OSError:  # pragma: no cover - client went away mid-write
            self.close_connection = True

    def _undrained_body(self) -> bool:
        """True when request body bytes may remain on the socket.

        Chunked transfer encoding always counts: we never decode it, so
        even a "read" body would leave its framing on the wire."""
        if self.headers.get("Transfer-Encoding"):
            return True
        if self._body_read:
            return False
        raw = (self.headers.get("Content-Length") or "").strip()
        try:
            return int(raw) > 0
        except ValueError:
            return False

    def _route_request(self, method: str):
        service = self.server.service
        parts = [p for p in urlparse(self.path).path.split("/") if p]
        if method == "POST":
            if parts == ["batch"]:
                return self._batch(service)
            raise _HTTPError(404, f"no POST endpoint at {self.path!r}")
        if not parts:
            return {
                "service": "repro-routing",
                "endpoints": [
                    "GET /healthz",
                    "GET /stats",
                    "GET /metrics",
                    "GET /debug/slow",
                    "GET /distances/{s}",
                    "GET /route/{s}/{t}",
                    "GET /nearest/{s}/{k}",
                    "POST /batch",
                    "GET /internal/ready",
                    "GET /internal/row/{s}",
                    "GET /internal/rows/{csv}",
                ],
            }
        if parts == ["healthz"]:
            return service.healthz()
        if parts == ["stats"]:
            return service.stats()
        if parts == ["metrics"]:
            return _RawResponse(
                render_metrics(self.server.registry).encode(),
                METRICS_CONTENT_TYPE,
            )
        if parts == ["debug", "slow"]:
            return self.server.slow_log.dump()
        if parts[0] == "distances" and len(parts) == 2:
            source = _parse_int(parts[1], "source")
            return _distances_payload(source, service.distances(source))
        if parts[0] == "route" and len(parts) == 3:
            source = _parse_int(parts[1], "source")
            target = _parse_int(parts[2], "target")
            return _route_payload(service.route(source, target))
        if parts[0] == "nearest" and len(parts) == 3:
            source = _parse_int(parts[1], "source")
            k = _parse_int(parts[2], "k")
            return _nearest_payload(service.nearest(source, k), k)
        if parts[0] == "internal":
            return self._internal(service, parts)
        raise _HTTPError(404, f"no GET endpoint at {self.path!r}")

    def _internal(self, service: QuerySurface, parts: list[str]):
        """The shard-to-router wire: readiness + binary row frames."""
        if parts == ["internal", "ready"]:
            health = service.healthz()
            return {"ready": health.get("status") == "ok", **health}
        if len(parts) == 3 and parts[1] == "row":
            source = _parse_int(parts[2], "source")
            return _RawResponse(
                encode_rows([service.distances(source)]), ROWS_CONTENT_TYPE
            )
        if len(parts) == 3 and parts[1] == "rows":
            tokens = [t for t in parts[2].split(",") if t]
            if not tokens:
                raise _HTTPError(
                    400, "rows requires a comma-separated source list"
                )
            if len(tokens) > MAX_ROWS_PER_FETCH:
                raise _HTTPError(
                    400,
                    f"at most {MAX_ROWS_PER_FETCH} rows per fetch, "
                    f"got {len(tokens)}",
                )
            sources = [_parse_int(t, "source") for t in tokens]
            # one coalesced batch: duplicate sources share one solve
            answers = service.batch([SingleSource(s) for s in sources])
            return _RawResponse(encode_rows(answers), ROWS_CONTENT_TYPE)
        raise _HTTPError(404, f"no GET endpoint at {self.path!r}")

    def _batch(self, service: QuerySurface):
        length = self.headers.get("Content-Length")
        if length is None or not _INT_RE.match(length):
            raise _HTTPError(411, "POST /batch requires a Content-Length header")
        length = int(length)
        if length < 0:
            # rfile.read(-1) would block reading until EOF/timeout,
            # pinning a handler thread per malicious request
            raise _HTTPError(400, "Content-Length must be non-negative")
        if length > MAX_BODY_BYTES:
            raise _HTTPError(413, f"request body exceeds {MAX_BODY_BYTES} bytes")
        raw = self.rfile.read(length)
        self._body_read = True  # connection stays reusable from here on
        try:
            doc = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise _HTTPError(400, f"request body is not valid JSON: {exc}")
        items = doc.get("queries") if isinstance(doc, dict) else doc
        if not isinstance(items, list):
            raise _HTTPError(
                400, "expected a JSON list or {'queries': [...]} body"
            )
        queries = [_parse_batch_query(item, i) for i, item in enumerate(items)]
        answers = service.batch(queries)
        return {
            "count": len(answers),
            "answers": [
                _answer_payload(q, a) for q, a in zip(queries, answers)
            ],
        }


class RoutingHTTPServer(ThreadingHTTPServer):
    """Threaded JSON front end over one query surface
    (:class:`~repro.serve.service.RoutingService`,
    :class:`~repro.serve.router.ShardRouter`, or anything else
    implementing :class:`~repro.serve.surface.QuerySurface`).

    Each connection is handled on its own thread; all of them funnel
    into the same surface, whose striped caches and single-flight tables
    make that safe (and fast — see ``benchmarks/bench_serving.py``).

    Use as a context manager for the full lifecycle, or call
    :meth:`start` / :meth:`close` explicitly::

        server = RoutingHTTPServer(service)      # port=0 → ephemeral
        server.start()                           # background accept loop
        ...
        server.close()                           # graceful: drain, then close

    ``close`` stops accepting, lets in-flight handlers finish
    (``block_on_close``), and releases the socket.  Idle keep-alive
    connections cannot stall it past ``request_timeout`` seconds: every
    socket read is bounded by that timeout, after which the handler
    closes the connection.
    """

    daemon_threads = False
    block_on_close = True
    allow_reuse_address = True

    def __init__(
        self,
        service: QuerySurface,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        verbose: bool = False,
        request_timeout: float = 10.0,
        registry=None,
        slow_ms: float = 250.0,
        slow_capacity: int = 128,
    ) -> None:
        if not isinstance(service, QuerySurface):
            raise TypeError(
                f"{type(service).__name__} does not implement the "
                "QuerySurface protocol (distances/route/nearest/batch/"
                "warm/stats/healthz)"
            )
        super().__init__((host, port), _Handler)
        self.service = service
        self.verbose = verbose
        #: per-socket-read timeout (seconds).  Bounds how long an idle
        #: keep-alive connection can pin a handler thread — and
        #: therefore how long :meth:`close` can block draining it.
        self.request_timeout = request_timeout
        #: the metrics registry ``GET /metrics`` renders (the
        #: process-global default unless one is injected — tests inject
        #: a fresh one to assert in isolation).
        self.registry = registry if registry is not None else get_default_registry()
        #: threshold-triggered ring buffer behind ``GET /debug/slow``.
        self.slow_log = SlowQueryLog(threshold_ms=slow_ms, capacity=slow_capacity)
        self._requests_total = self.registry.counter(
            "http_requests_total",
            "HTTP requests by endpoint and status",
            ("endpoint", "status"),
        )
        self._request_seconds = self.registry.histogram(
            "http_request_seconds",
            "request latency by endpoint (routing + answer, excl. socket IO)",
            ("endpoint",),
        )
        # Instrumentation is duck-typed, NOT part of QuerySurface: a
        # minimal surface implementation without instrument() must keep
        # passing the isinstance gate above and serve untelemetered.
        instrument = getattr(service, "instrument", None)
        if callable(instrument):
            instrument(self.registry)
        self._thread: threading.Thread | None = None

    def observe_request(
        self, *, endpoint: str, status: int, seconds: float, trace, method: str
    ) -> None:
        """One finished request: fold into metrics and the slow log.

        Label children are resolved per call via the family dict (O(1));
        the slow log's under-threshold path is one comparison.
        """
        self._requests_total.labels(endpoint, status).inc()
        self._request_seconds.labels(endpoint).observe(seconds)
        self.slow_log.record(
            trace, method=method, endpoint=endpoint, status=int(status)
        )

    # ------------------------------------------------------------------ #
    @property
    def url(self) -> str:
        """Base URL of the bound socket (resolves ephemeral ports)."""
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    def start(self) -> "RoutingHTTPServer":
        """Run the accept loop on a background thread; returns self."""
        if self._thread is not None:
            raise RuntimeError("server already started")
        self._thread = threading.Thread(
            target=self.serve_forever, name="routing-http", daemon=True
        )
        self._thread.start()
        return self

    def close(self) -> None:
        """Graceful shutdown: stop the accept loop, drain handler
        threads, release the socket.  Idempotent."""
        if self._thread is not None:
            self.shutdown()
            self._thread.join()
            self._thread = None
        self.server_close()

    def __enter__(self) -> "RoutingHTTPServer":
        # tolerate an already-running server: `with serve(svc) as s:`
        # hands us one that start()ed inside the helper
        if self._thread is None:
            self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def serve(
    service: QuerySurface,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    verbose: bool = False,
    request_timeout: float = 10.0,
    registry=None,
    slow_ms: float = 250.0,
    slow_capacity: int = 128,
) -> RoutingHTTPServer:
    """Convenience: construct a :class:`RoutingHTTPServer` and start it."""
    return RoutingHTTPServer(
        service,
        host=host,
        port=port,
        verbose=verbose,
        request_timeout=request_timeout,
        registry=registry,
        slow_ms=slow_ms,
        slow_capacity=slow_capacity,
    ).start()
