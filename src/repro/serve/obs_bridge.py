"""Scrape-time bridge from serving counters to metric families.

The planner and the shard router already keep exact counters of their
own (striped LRU hits/misses, stitched-row lookups, single-flight
waits) for ``GET /stats``.  Putting those numbers on ``GET /metrics``
must cost the hot path *nothing*, so instead of double-counting at
every probe, ``RoutingService.instrument`` / ``ShardRouter.instrument``
register a weakly-held **collector** with the registry; at scrape time
the collector snapshots ``stats()`` and this module shapes the snapshot
into Prometheus families.  One scrape therefore always agrees with a
simultaneous ``GET /stats`` — they read the same counters.

Series identity: every family carries a ``service`` label (a
process-unique instance tag minted by :func:`next_instance_label`, so
two surfaces sharing the process-global registry never collide) and a
``shard`` label (``"0"`` for the single-graph service — it *is* the
one-shard special case).
"""

from __future__ import annotations

import itertools
import threading

from ..obs.metrics import MetricFamily, Sample

__all__ = [
    "backend_families",
    "next_instance_label",
    "planner_cache_families",
    "stitched_cache_families",
]

_INSTANCE_SEQ = itertools.count()
_INSTANCE_LOCK = threading.Lock()


def next_instance_label(prefix: str) -> str:
    """A process-unique ``service`` label value, e.g. ``"service-0"``,
    ``"router-1"`` — minted once per :meth:`instrument` call."""
    with _INSTANCE_LOCK:
        return f"{prefix}-{next(_INSTANCE_SEQ)}"


def planner_cache_families(
    entries: list[tuple[tuple[tuple[str, str], ...], dict]],
) -> list[MetricFamily]:
    """Planner-counter families from ``(labels, planner.stats())`` pairs.

    ``labels`` is the base label tuple (``service`` + ``shard``); cache
    lookups split into ``outcome="hit"`` / ``"miss"`` series whose sum
    is the lookup total, matching the planner's own
    ``hits + misses == lookups`` invariant.
    """
    lookups = MetricFamily(
        "planner_cache_lookups_total",
        "counter",
        "source-row cache probes by outcome (hit + miss = all lookups)",
    )
    evictions = MetricFamily(
        "planner_cache_evictions_total", "counter", "LRU rows evicted"
    )
    rows = MetricFamily(
        "planner_cached_rows", "gauge", "source rows currently cached"
    )
    solves = MetricFamily(
        "planner_solves_total", "counter", "cache-missing sources solved"
    )
    batches = MetricFamily(
        "planner_batches_total", "counter", "coalesced solve_many fan-outs"
    )
    coalesced = MetricFamily(
        "planner_coalesced_total",
        "counter",
        "batch queries answered from another query's row in the same batch",
    )
    waits = MetricFamily(
        "planner_single_flight_waits_total",
        "counter",
        "concurrent misses that waited on another thread's solve",
    )
    inflight = MetricFamily(
        "planner_inflight_solves", "gauge", "sources being solved right now"
    )
    for base, st in entries:
        lookups.samples.append(
            Sample("", base + (("outcome", "hit"),), float(st["hits"]))
        )
        lookups.samples.append(
            Sample("", base + (("outcome", "miss"),), float(st["misses"]))
        )
        evictions.samples.append(Sample("", base, float(st["evictions"])))
        rows.samples.append(Sample("", base, float(st["cached_rows"])))
        solves.samples.append(Sample("", base, float(st["solves"])))
        batches.samples.append(Sample("", base, float(st["batches"])))
        coalesced.samples.append(Sample("", base, float(st["coalesced"])))
        waits.samples.append(Sample("", base, float(st["single_flight_waits"])))
        inflight.samples.append(Sample("", base, float(st["inflight"])))
    return [lookups, evictions, rows, solves, batches, coalesced, waits, inflight]


def stitched_cache_families(
    base: tuple[tuple[str, str], ...], stitched: dict
) -> list[MetricFamily]:
    """The shard router's stitched full-row LRU as metric families."""
    lookups = MetricFamily(
        "router_stitched_lookups_total",
        "counter",
        "stitched full-row cache probes by outcome",
    )
    lookups.samples.append(
        Sample("", base + (("outcome", "hit"),), float(stitched["hits"]))
    )
    lookups.samples.append(
        Sample("", base + (("outcome", "miss"),), float(stitched["misses"]))
    )
    evictions = MetricFamily(
        "router_stitched_evictions_total",
        "counter",
        "stitched rows evicted from the router LRU",
    )
    evictions.samples.append(Sample("", base, float(stitched["evictions"])))
    rows = MetricFamily(
        "router_stitched_rows", "gauge", "stitched rows currently cached"
    )
    rows.samples.append(Sample("", base, float(stitched["cached_rows"])))
    return [lookups, evictions, rows]


def backend_families(
    entries: list[tuple[tuple[tuple[str, str], ...], object]],
) -> list[MetricFamily]:
    """Per-shard-backend health/latency families.

    ``entries`` pairs a base label tuple (``service`` + ``shard`` +
    ``kind``) with a backend exposing ``backend_stats()`` and
    ``fetch_snapshot()`` (:class:`~repro.serve.backends._BaseBackend`).
    The row-fetch histogram renders with cumulative ``le`` buckets like
    any registered histogram, so the scrape parser treats it
    identically.
    """
    from ..obs.metrics import _fmt_bound

    healthy = MetricFamily(
        "shard_backend_healthy",
        "gauge",
        "1 while the backend's last request cycle succeeded",
    )
    consecutive = MetricFamily(
        "shard_backend_consecutive_failures",
        "gauge",
        "request cycles failed in a row (0 = healthy)",
    )
    failures = MetricFamily(
        "shard_backend_failures_total",
        "counter",
        "failed request attempts (retries counted individually)",
    )
    fetch = MetricFamily(
        "shard_backend_row_fetch_seconds",
        "histogram",
        "row-fetch latency per backend (batched fetches count once)",
    )
    for base, backend in entries:
        st = backend.backend_stats()
        healthy.samples.append(Sample("", base, 1.0 if st["healthy"] else 0.0))
        consecutive.samples.append(
            Sample("", base, float(st["consecutive_failures"]))
        )
        failures.samples.append(Sample("", base, float(st["failures_total"])))
        bounds, counts, total, count = backend.fetch_snapshot()
        acc = 0
        for bound, c in zip(bounds, counts):
            acc += c
            fetch.samples.append(
                Sample("_bucket", base + (("le", _fmt_bound(bound)),), acc)
            )
        acc += counts[-1]
        fetch.samples.append(Sample("_bucket", base + (("le", "+Inf"),), acc))
        fetch.samples.append(Sample("_sum", base, total))
        fetch.samples.append(Sample("_count", base, count))
    return [healthy, consecutive, failures, fetch]
