"""Query planner — the caching, coalescing, thread-safe brain of serving.

The paper amortizes one (k,ρ)-preprocessing pass over many SSSP
queries; real query traffic amortizes further, because it repeats
itself: a routing service sees the same depots, landmarks and hub
vertices as sources over and over, and most requests are not "all n
distances from s" but "distance s→t" or "the 10 closest facilities to
s" — tiny reads against a source row someone else already paid for.

:class:`QueryPlanner` exploits both regularities over any
:class:`~repro.core.solver.PreprocessedSSSP`:

* **LRU source-row cache** keyed by ``(graph hash, engine, source)``:
  a solved distance (and parent) row is kept and every later query
  touching that source — single-source, point-to-point, k-nearest —
  is answered from it without running a solver.
* **Request deduplication**: queries in one batch sharing a source
  collapse onto one solve.
* **Batch coalescing**: all cache-missing sources of a mixed batch go
  to ``solve_many`` as *one* fan-out (one pool, one copy-on-write
  staging), not one solver call per request.

Concurrency model (an HTTP/gRPC front end calls one planner from many
worker threads):

* **Striped locking** — the cache is sharded into N independent
  stripes, each an ``OrderedDict`` LRU with its own mutex and its own
  hit/miss/eviction counters (aggregated by :meth:`stats`).  A source
  is assigned to ``hash(source) % N``, so threads touching different
  sources contend only on the GIL, never on a shared lock, and a
  stripe's lock is held only for the dict probe/insert — never across
  a solve or answer construction.
* **Single-flight solves** — a planner-wide in-flight table dedups
  *concurrent* misses: the first thread to miss a source becomes its
  leader and runs the (coalesced) ``solve_many``; any other thread
  missing the same source in the meantime blocks on the leader's
  event and receives the very same row object.  No duplicated solver
  work, and answers stay bit-identical to the serial path because the
  row is produced by the same ``solve_many`` call either way.
* Eviction is **per stripe** (each stripe owns ``capacity / N`` slots),
  so the global LRU order of the serial planner is only reproduced
  exactly with ``stripes=1``; total cached rows never exceed
  ``capacity`` either way.

Hit/miss/eviction/coalescing/single-flight counters are exposed via
:meth:`stats` for the serving benchmark
(``benchmarks/bench_serving.py``) and the HTTP ``/stats`` endpoint.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from ..core.result import parent_path
from ..core.solver import PreprocessedSSSP
from ..engine.registry import get_engine
from ..obs.trace import annotate, span

__all__ = [
    "SingleSource",
    "PointToPoint",
    "KNearest",
    "Route",
    "Nearest",
    "QueryPlanner",
    "coerce_vertex",
    "nearest_from_row",
    "normalize_query",
]


# --------------------------------------------------------------------- #
# Query and answer records
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class SingleSource:
    """All distances from ``source``; answered with the full row."""

    source: int


@dataclass(frozen=True)
class PointToPoint:
    """One distance (and, when parents are tracked, one path)."""

    source: int
    target: int


@dataclass(frozen=True)
class KNearest:
    """The ``k`` closest *reachable* vertices to ``source`` (excluding
    itself; fewer than ``k`` come back when the component is smaller)."""

    source: int
    k: int


@dataclass(frozen=True)
class Route:
    """Answer to a :class:`PointToPoint` query.

    ``path`` is the vertex sequence source → … → target in the
    *augmented* (k,ρ)-graph — consecutive hops may be shortcut edges,
    whose weights are exact input-graph shortest-path distances, so
    ``distance`` is always the true input-graph metric.  ``None`` when
    the planner does not track parents or the target is unreachable.
    """

    source: int
    target: int
    distance: float
    path: tuple[int, ...] | None = None


@dataclass(frozen=True)
class Nearest:
    """Answer to a :class:`KNearest` query: vertices sorted by
    ``(distance, vertex)``, with their distances."""

    source: int
    vertices: np.ndarray
    distances: np.ndarray


class _Row:
    """One cached source row: read-only distance/parent arrays."""

    __slots__ = ("dist", "parent")

    def __init__(self, dist: np.ndarray, parent: np.ndarray | None) -> None:
        dist = np.asarray(dist)
        dist.setflags(write=False)
        if parent is not None:
            parent = np.asarray(parent)
            parent.setflags(write=False)
        self.dist = dist
        self.parent = parent


class _Stripe:
    """One lock-protected shard of the LRU row cache.

    Counters live here (not on the planner) so the hot path touches a
    single mutex per probe; :meth:`QueryPlanner.stats` aggregates.
    """

    __slots__ = ("lock", "rows", "capacity", "lookups", "hits", "misses", "evictions")

    def __init__(self, capacity: int) -> None:
        self.lock = threading.Lock()
        self.rows: OrderedDict[tuple[str, str, int], _Row] = OrderedDict()
        self.capacity = capacity
        # ``lookups`` is counted independently of hits/misses so the
        # exported ``hits + misses == lookups`` invariant is a real
        # lost-update check, not an identity.
        self.lookups = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0


class _InFlight:
    """Single-flight record: the leader publishes ``row`` (or ``error``)
    and sets ``event``; followers wait on it instead of re-solving."""

    __slots__ = ("event", "row", "error")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.row: _Row | None = None
        self.error: BaseException | None = None


def coerce_vertex(value, what: str) -> int:
    """Strict vertex-id coercion for the serving API.

    ``bool`` is an ``int`` subclass, so ``True`` would silently become
    vertex 1 under a plain ``isinstance(..., int)`` check — reject it
    (and anything non-integral) instead of guessing."""
    if isinstance(value, (bool, np.bool_)):
        raise TypeError(f"{what} must be an integer vertex id, not a bool")
    if not isinstance(value, (int, np.integer)):
        raise TypeError(
            f"{what} must be an integer vertex id, got "
            f"{type(value).__name__} {value!r}"
        )
    return int(value)


def normalize_query(query) -> SingleSource | PointToPoint | KNearest:
    """Accept ergonomic shorthands: ``int`` → single-source,
    ``(s, t)`` → point-to-point.  Bools are rejected, not coerced.

    Public so every :class:`~repro.serve.surface.QuerySurface`
    implementation normalizes batches identically."""
    if isinstance(query, (SingleSource, PointToPoint, KNearest)):
        return query
    if isinstance(query, (bool, np.bool_)):
        raise TypeError(
            "unsupported query: bool is not a vertex id (True would "
            "silently mean vertex 1)"
        )
    if isinstance(query, (int, np.integer)):
        return SingleSource(int(query))
    if isinstance(query, tuple) and len(query) == 2:
        return PointToPoint(
            coerce_vertex(query[0], "source"), coerce_vertex(query[1], "target")
        )
    raise TypeError(
        f"unsupported query {query!r}; expected SingleSource / PointToPoint "
        "/ KNearest, an int source, or an (s, t) pair"
    )


def nearest_from_row(source: int, dist: np.ndarray, k: int) -> Nearest:
    """The k-nearest answer from a full distance row.

    Shared by :class:`QueryPlanner` and the shard router so both
    surfaces produce bit-identical answers — same candidate filter
    (reachable, source excluded), same deterministic
    ``(distance, vertex)`` tie order, same argpartition bound.
    """
    # candidates: reachable vertices other than the source — an
    # unreachable vertex must never be presented as "nearest"
    others = np.nonzero(np.isfinite(dist))[0]
    others = others[others != source]
    k = min(k, len(others))
    if k <= 0:
        empty = np.empty(0, dtype=np.int64)
        return Nearest(source, empty, np.empty(0))
    d = dist[others]
    # deterministic (distance, vertex) order; argpartition bounds the
    # sort to the k winners instead of all n
    part = np.argpartition(d, k - 1)[:k] if k < len(others) else np.arange(len(others))
    order = np.lexsort((others[part], d[part]))
    take = part[order]
    return Nearest(source, others[take], d[take])


class QueryPlanner:
    """LRU-cached, batch-coalescing, thread-safe query executor.

    Parameters
    ----------
    solver: the preprocessed facade queries run against.
    engine: engine selector; resolved once so ``"auto"`` and its
        concrete name share cache entries.
    capacity: maximum cached source rows across all stripes (LRU
        eviction per stripe); ``0`` disables caching entirely (every
        query misses, nothing is stored — concurrent identical misses
        still collapse onto one solve via single-flight).
    track_parents: cache parent rows too, enabling :meth:`route` paths.
    n_jobs: worker processes for coalesced batch solves.
    stripes: lock stripes for concurrent access.  The effective count
        is clamped to ``capacity`` so every stripe owns at least one
        slot; ``stripes=1`` restores the serial planner's exact global
        LRU eviction order.

    All public methods are safe to call from multiple threads.
    """

    def __init__(
        self,
        solver: PreprocessedSSSP,
        *,
        engine: str = "auto",
        capacity: int = 256,
        track_parents: bool = False,
        n_jobs: int = 1,
        stripes: int = 8,
    ) -> None:
        if capacity < 0:
            raise ValueError("capacity >= 0 required")
        if stripes < 1:
            raise ValueError("stripes >= 1 required")
        self._solver = solver
        self._engine = solver.resolve_engine(engine)
        if track_parents and not get_engine(self._engine).supports_parents:
            if engine == "auto":
                # "auto" may pick the parentless §3.4 engine (unit-weight
                # augmented graph); parent tracking asks for route paths,
                # so fall back to the general engine instead of failing
                # the first query.
                self._engine = "vectorized"
            else:
                raise ValueError(
                    f"the {self._engine} engine does not track parents; "
                    "pass track_parents=False or pick another engine"
                )
        self._graph_hash = solver.graph.content_hash()
        self._capacity = capacity
        self._track_parents = track_parents
        self._n_jobs = n_jobs
        n_stripes = max(1, min(stripes, capacity)) if capacity > 0 else 1
        base, extra = divmod(capacity, n_stripes)
        self._stripes = tuple(
            _Stripe(base + (1 if i < extra else 0)) for i in range(n_stripes)
        )
        # Single-flight table + batch-level counters.  ``_flight_lock``
        # guards only the in-flight dict; it is never held across a
        # solve, a stripe operation, or an event wait (no lock nesting
        # anywhere → no ordering to get wrong).
        self._flight_lock = threading.Lock()
        self._inflight: dict[tuple[str, str, int], _InFlight] = {}
        self._stats_lock = threading.Lock()
        self._coalesced = 0
        self._batches = 0
        self._solves = 0
        self._flight_waits = 0

    @property
    def engine(self) -> str:
        """The resolved registry engine name every query runs through."""
        return self._engine

    # ------------------------------------------------------------------ #
    # Cache plumbing
    # ------------------------------------------------------------------ #
    def _key(self, source: int) -> tuple[str, str, int]:
        return (self._graph_hash, self._engine, int(source))

    def _stripe(self, source: int) -> _Stripe:
        return self._stripes[hash(int(source)) % len(self._stripes)]

    def _lookup(self, source: int) -> _Row | None:
        """Cache probe; refreshes LRU recency, counts hit/miss."""
        key = self._key(source)
        stripe = self._stripe(source)
        with stripe.lock:
            stripe.lookups += 1
            row = stripe.rows.get(key)
            if row is None:
                stripe.misses += 1
                return None
            stripe.rows.move_to_end(key)
            stripe.hits += 1
            return row

    def _peek(self, source: int) -> _Row | None:
        """Counter-free cache re-check (no hit/miss, no LRU refresh).

        Used by a thread that just won a single-flight slot: between its
        (already-counted) miss and the slot registration, the previous
        leader may have published the row and retired its flight — in
        that window the row is in the cache, and re-solving it would
        duplicate work the single-flight design exists to prevent."""
        stripe = self._stripe(source)
        with stripe.lock:
            return stripe.rows.get(self._key(source))

    def _insert(self, source: int, row: _Row) -> None:
        stripe = self._stripe(source)
        with stripe.lock:
            if stripe.capacity == 0:
                return
            key = self._key(source)
            stripe.rows[key] = row
            stripe.rows.move_to_end(key)
            while len(stripe.rows) > stripe.capacity:
                stripe.rows.popitem(last=False)
                stripe.evictions += 1

    def _fetch_rows(self, sources: Iterable[int]) -> dict[int, _Row]:
        """The planning core: cache-hit what we can, coalesce the rest.

        Distinct missing sources split into *leaders* (this thread won
        the in-flight slot and solves them as one ``solve_many`` batch)
        and *followers* (another thread is already solving that source;
        block on its event and share its row).  Every leader row is
        inserted into the cache and published to the in-flight record
        before any answer is built, so followers get the identical row
        object even when ``capacity=0`` or an eviction races the wait.
        """
        wanted: list[int] = []
        seen: set[int] = set()
        for s in sources:
            s = int(s)
            if s not in seen:
                seen.add(s)
                wanted.append(s)
        rows: dict[int, _Row] = {}
        followers: list[tuple[int, _InFlight]] = []
        # flights this thread leads but has not yet published; covered
        # end to end by the except below, so no exception anywhere in
        # the probe/salvage/solve region can strand a registered flight
        # (a stranded entry would block every future request for that
        # source forever — its followers wait without a timeout)
        pending: list[tuple[int, _InFlight]] = []
        try:
            for s in wanted:
                row = self._lookup(s)
                if row is not None:
                    rows[s] = row
                    continue
                with self._flight_lock:
                    flight = self._inflight.get(self._key(s))
                    if flight is None:
                        flight = _InFlight()
                        # track before making it discoverable, so the
                        # cleanup below always sees it
                        pending.append((s, flight))
                        self._inflight[self._key(s)] = flight
                    else:
                        followers.append((s, flight))
            # Close the probe→registration race: a previous leader may
            # have published this source (cache insert precedes flight
            # retirement) between our miss and our slot win — serve the
            # cached row instead of re-solving it.
            i = 0
            while i < len(pending):
                s, flight = pending[i]
                row = self._peek(s)
                if row is None:
                    i += 1
                    continue
                rows[s] = row
                flight.row = row
                with self._flight_lock:
                    self._inflight.pop(self._key(s), None)
                flight.event.set()
                pending.pop(i)
            if pending:
                missing = [s for s, _ in pending]
                with span("planner.solve_missing", sources=len(missing)):
                    results = self._solver.solve_many(
                        missing,
                        engine=self._engine,
                        track_parents=self._track_parents,
                        n_jobs=self._n_jobs,
                    )
                with self._stats_lock:
                    self._batches += 1
                    self._solves += len(missing)
                for res in results:
                    s, flight = pending[0]
                    row = _Row(res.dist, res.parent)
                    rows[s] = row
                    self._insert(s, row)
                    flight.row = row
                    with self._flight_lock:
                        self._inflight.pop(self._key(s), None)
                    flight.event.set()
                    pending.pop(0)
        except BaseException as exc:
            # Never strand a waiter: every registered-but-unpublished
            # flight gets the error and its event set before we re-raise.
            for s, flight in pending:
                flight.error = exc
                with self._flight_lock:
                    self._inflight.pop(self._key(s), None)
                flight.event.set()
            raise
        if followers:
            for s, flight in followers:
                flight.event.wait()
                if flight.error is not None:
                    raise flight.error
                rows[s] = flight.row
            with self._stats_lock:
                self._flight_waits += len(followers)
        return rows

    # ------------------------------------------------------------------ #
    # Answer construction
    # ------------------------------------------------------------------ #
    def _path(self, row: _Row, source: int, target: int) -> tuple[int, ...] | None:
        if row.parent is None or not np.isfinite(row.dist[target]):
            return None
        return tuple(parent_path(row.parent, target))

    def _answer(self, query, rows: dict[int, _Row]):
        if isinstance(query, SingleSource):
            return rows[query.source].dist
        if isinstance(query, PointToPoint):
            row = rows[query.source]
            return Route(
                source=query.source,
                target=query.target,
                distance=float(row.dist[query.target]),
                path=self._path(row, query.source, query.target),
            )
        row = rows[query.source]
        return nearest_from_row(query.source, row.dist, query.k)

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def _check_vertex(self, v: int, what: str) -> None:
        """Type- and range-check a query vertex up front: numpy would
        accept a negative index and silently serve the answer for vertex
        ``n + v``, and ``bool`` would silently mean vertex 0/1 —
        unacceptable from a serving API."""
        v = coerce_vertex(v, what)
        if not 0 <= v < self._solver.graph.n:
            raise ValueError(
                f"{what} {v} out of range for a graph with "
                f"n={self._solver.graph.n} vertices"
            )

    def _validate(self, query) -> None:
        self._check_vertex(query.source, "source")
        if isinstance(query, PointToPoint):
            self._check_vertex(query.target, "target")
        elif isinstance(query, KNearest):
            if isinstance(query.k, (bool, np.bool_)) or not isinstance(
                query.k, (int, np.integer)
            ):
                raise TypeError(f"k must be an integer, got {query.k!r}")
            if query.k < 0:
                raise ValueError(f"k must be >= 0, got {query.k}")

    def execute(self, queries: Sequence) -> list:
        """Answer a mixed batch: one coalesced solve for all cache
        misses, answers in input order."""
        normalized = [normalize_query(q) for q in queries]
        for q in normalized:
            self._validate(q)
        with span("planner.execute", queries=len(normalized), engine=self._engine):
            rows = self._fetch_rows(q.source for q in normalized)
            distinct = len({int(q.source) for q in normalized})
            annotate(distinct_sources=distinct)
            with self._stats_lock:
                self._coalesced += len(normalized) - distinct
            return [self._answer(q, rows) for q in normalized]

    def distances(self, source: int) -> np.ndarray:
        """Full distance row from ``source`` (read-only; cached)."""
        return self.execute([SingleSource(source)])[0]

    def route(self, source: int, target: int) -> Route:
        """Point-to-point answer served from the cached source row."""
        return self.execute([PointToPoint(source, target)])[0]

    def nearest(self, source: int, k: int) -> Nearest:
        """The ``k`` closest vertices to ``source``."""
        return self.execute([KNearest(source, k)])[0]

    def warm(self, sources: Iterable[int]) -> None:
        """Pre-populate the cache (e.g. known depots at boot).

        Sources pass through the same type/range validation as every
        other entry point — ``warm([-1])`` raises instead of silently
        solving from vertex ``n - 1`` and caching it under key ``-1``.
        """
        checked = []
        for s in sources:
            self._check_vertex(s, "source")
            checked.append(int(s))
        self._fetch_rows(checked)

    def stats(self) -> dict:
        """Counter snapshot for benchmarking and monitoring.

        Aggregated across stripes.  Each counter is monotone and
        individually exact; the snapshot as a whole is not atomic under
        concurrent traffic (a probe may land between two stripe reads),
        but at quiescence ``hits + misses == lookups`` and
        ``cached_rows <= capacity`` always hold.
        """
        lookups = hits = misses = evictions = cached = 0
        for stripe in self._stripes:
            with stripe.lock:
                lookups += stripe.lookups
                hits += stripe.hits
                misses += stripe.misses
                evictions += stripe.evictions
                cached += len(stripe.rows)
        with self._stats_lock:
            coalesced = self._coalesced
            batches = self._batches
            solves = self._solves
            flight_waits = self._flight_waits
        with self._flight_lock:
            inflight = len(self._inflight)
        return {
            "engine": self._engine,
            "graph_hash": self._graph_hash,
            "capacity": self._capacity,
            "stripes": len(self._stripes),
            "cached_rows": cached,
            "hits": hits,
            "misses": misses,
            "lookups": lookups,
            "evictions": evictions,
            "coalesced": coalesced,
            "batches": batches,
            "solves": solves,
            "single_flight_waits": flight_waits,
            "inflight": inflight,
        }
