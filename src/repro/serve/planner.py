"""Query planner — the caching, coalescing brain of the serving layer.

The paper amortizes one (k,ρ)-preprocessing pass over many SSSP
queries; real query traffic amortizes further, because it repeats
itself: a routing service sees the same depots, landmarks and hub
vertices as sources over and over, and most requests are not "all n
distances from s" but "distance s→t" or "the 10 closest facilities to
s" — tiny reads against a source row someone else already paid for.

:class:`QueryPlanner` exploits both regularities over any
:class:`~repro.core.solver.PreprocessedSSSP`:

* **LRU source-row cache** keyed by ``(graph hash, engine, source)``:
  a solved distance (and parent) row is kept and every later query
  touching that source — single-source, point-to-point, k-nearest —
  is answered from it without running a solver.
* **Request deduplication**: queries in one batch sharing a source
  collapse onto one solve.
* **Batch coalescing**: all cache-missing sources of a mixed batch go
  to ``solve_many`` as *one* fan-out (one pool, one copy-on-write
  staging), not one solver call per request.

Hit/miss/eviction/coalescing counters are exposed via :meth:`stats`
for the serving benchmark (``benchmarks/bench_serving.py``).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from ..core.result import parent_path
from ..core.solver import PreprocessedSSSP
from ..engine.registry import get_engine

__all__ = [
    "SingleSource",
    "PointToPoint",
    "KNearest",
    "Route",
    "Nearest",
    "QueryPlanner",
]


# --------------------------------------------------------------------- #
# Query and answer records
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class SingleSource:
    """All distances from ``source``; answered with the full row."""

    source: int


@dataclass(frozen=True)
class PointToPoint:
    """One distance (and, when parents are tracked, one path)."""

    source: int
    target: int


@dataclass(frozen=True)
class KNearest:
    """The ``k`` closest *reachable* vertices to ``source`` (excluding
    itself; fewer than ``k`` come back when the component is smaller)."""

    source: int
    k: int


@dataclass(frozen=True)
class Route:
    """Answer to a :class:`PointToPoint` query.

    ``path`` is the vertex sequence source → … → target in the
    *augmented* (k,ρ)-graph — consecutive hops may be shortcut edges,
    whose weights are exact input-graph shortest-path distances, so
    ``distance`` is always the true input-graph metric.  ``None`` when
    the planner does not track parents or the target is unreachable.
    """

    source: int
    target: int
    distance: float
    path: tuple[int, ...] | None = None


@dataclass(frozen=True)
class Nearest:
    """Answer to a :class:`KNearest` query: vertices sorted by
    ``(distance, vertex)``, with their distances."""

    source: int
    vertices: np.ndarray
    distances: np.ndarray


class _Row:
    """One cached source row: read-only distance/parent arrays."""

    __slots__ = ("dist", "parent")

    def __init__(self, dist: np.ndarray, parent: np.ndarray | None) -> None:
        dist = np.asarray(dist)
        dist.setflags(write=False)
        if parent is not None:
            parent = np.asarray(parent)
            parent.setflags(write=False)
        self.dist = dist
        self.parent = parent


def _normalize(query) -> SingleSource | PointToPoint | KNearest:
    """Accept ergonomic shorthands: ``int`` → single-source,
    ``(s, t)`` → point-to-point."""
    if isinstance(query, (SingleSource, PointToPoint, KNearest)):
        return query
    if isinstance(query, (int, np.integer)):
        return SingleSource(int(query))
    if isinstance(query, tuple) and len(query) == 2:
        return PointToPoint(int(query[0]), int(query[1]))
    raise TypeError(
        f"unsupported query {query!r}; expected SingleSource / PointToPoint "
        "/ KNearest, an int source, or an (s, t) pair"
    )


class QueryPlanner:
    """LRU-cached, batch-coalescing query executor.

    Parameters
    ----------
    solver: the preprocessed facade queries run against.
    engine: engine selector; resolved once so ``"auto"`` and its
        concrete name share cache entries.
    capacity: maximum cached source rows (LRU eviction); ``0`` disables
        caching entirely (every query misses, nothing is stored).
    track_parents: cache parent rows too, enabling :meth:`route` paths.
    n_jobs: worker processes for coalesced batch solves.
    """

    def __init__(
        self,
        solver: PreprocessedSSSP,
        *,
        engine: str = "auto",
        capacity: int = 256,
        track_parents: bool = False,
        n_jobs: int = 1,
    ) -> None:
        if capacity < 0:
            raise ValueError("capacity >= 0 required")
        self._solver = solver
        self._engine = solver.resolve_engine(engine)
        if track_parents and not get_engine(self._engine).supports_parents:
            if engine == "auto":
                # "auto" may pick the parentless §3.4 engine (unit-weight
                # augmented graph); parent tracking asks for route paths,
                # so fall back to the general engine instead of failing
                # the first query.
                self._engine = "vectorized"
            else:
                raise ValueError(
                    f"the {self._engine} engine does not track parents; "
                    "pass track_parents=False or pick another engine"
                )
        self._graph_hash = solver.graph.content_hash()
        self._capacity = capacity
        self._track_parents = track_parents
        self._n_jobs = n_jobs
        self._cache: OrderedDict[tuple[str, str, int], _Row] = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._coalesced = 0
        self._batches = 0
        self._solves = 0

    @property
    def engine(self) -> str:
        """The resolved registry engine name every query runs through."""
        return self._engine

    # ------------------------------------------------------------------ #
    # Cache plumbing
    # ------------------------------------------------------------------ #
    def _key(self, source: int) -> tuple[str, str, int]:
        return (self._graph_hash, self._engine, int(source))

    def _lookup(self, source: int) -> _Row | None:
        """Cache probe; refreshes LRU recency, counts hit/miss."""
        key = self._key(source)
        row = self._cache.get(key)
        if row is None:
            self._misses += 1
            return None
        self._cache.move_to_end(key)
        self._hits += 1
        return row

    def _insert(self, source: int, row: _Row) -> None:
        if self._capacity == 0:
            return
        key = self._key(source)
        self._cache[key] = row
        self._cache.move_to_end(key)
        while len(self._cache) > self._capacity:
            self._cache.popitem(last=False)
            self._evictions += 1

    def _fetch_rows(self, sources: Iterable[int]) -> dict[int, _Row]:
        """The planning core: cache-hit what we can, coalesce the rest.

        Distinct missing sources go to ``solve_many`` as one batch (its
        own dedup is a no-op here since the miss list is already
        distinct); every row is inserted into the cache before any
        answer is built.
        """
        wanted: list[int] = []
        seen: set[int] = set()
        for s in sources:
            s = int(s)
            if s not in seen:
                seen.add(s)
                wanted.append(s)
        rows: dict[int, _Row] = {}
        missing: list[int] = []
        for s in wanted:
            row = self._lookup(s)
            if row is None:
                missing.append(s)
            else:
                rows[s] = row
        if missing:
            self._batches += 1
            self._solves += len(missing)
            results = self._solver.solve_many(
                missing,
                engine=self._engine,
                track_parents=self._track_parents,
                n_jobs=self._n_jobs,
            )
            for s, res in zip(missing, results):
                row = _Row(res.dist, res.parent)
                rows[s] = row
                self._insert(s, row)
        return rows

    # ------------------------------------------------------------------ #
    # Answer construction
    # ------------------------------------------------------------------ #
    def _path(self, row: _Row, source: int, target: int) -> tuple[int, ...] | None:
        if row.parent is None or not np.isfinite(row.dist[target]):
            return None
        return tuple(parent_path(row.parent, target))

    def _answer(self, query, rows: dict[int, _Row]):
        if isinstance(query, SingleSource):
            return rows[query.source].dist
        if isinstance(query, PointToPoint):
            row = rows[query.source]
            return Route(
                source=query.source,
                target=query.target,
                distance=float(row.dist[query.target]),
                path=self._path(row, query.source, query.target),
            )
        row = rows[query.source]
        dist = row.dist
        # candidates: reachable vertices other than the source — an
        # unreachable vertex must never be presented as "nearest"
        others = np.nonzero(np.isfinite(dist))[0]
        others = others[others != query.source]
        k = min(query.k, len(others))
        if k <= 0:
            empty = np.empty(0, dtype=np.int64)
            return Nearest(query.source, empty, np.empty(0))
        d = dist[others]
        # deterministic (distance, vertex) order; argpartition bounds the
        # sort to the k winners instead of all n
        part = (
            np.argpartition(d, k - 1)[:k]
            if k < len(others)
            else np.arange(len(others))
        )
        order = np.lexsort((others[part], d[part]))
        take = part[order]
        return Nearest(query.source, others[take], d[take])

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def _check_vertex(self, v: int, what: str) -> None:
        """Range-check a query vertex up front: numpy would accept a
        negative index and silently serve the answer for vertex
        ``n + v`` — unacceptable from a serving API."""
        if not 0 <= v < self._solver.graph.n:
            raise ValueError(
                f"{what} {v} out of range for a graph with "
                f"n={self._solver.graph.n} vertices"
            )

    def execute(self, queries: Sequence) -> list:
        """Answer a mixed batch: one coalesced solve for all cache
        misses, answers in input order."""
        normalized = [_normalize(q) for q in queries]
        for q in normalized:
            self._check_vertex(q.source, "source")
            if isinstance(q, PointToPoint):
                self._check_vertex(q.target, "target")
        rows = self._fetch_rows(q.source for q in normalized)
        distinct = len({q.source for q in normalized})
        self._coalesced += len(normalized) - distinct
        return [self._answer(q, rows) for q in normalized]

    def distances(self, source: int) -> np.ndarray:
        """Full distance row from ``source`` (read-only; cached)."""
        return self.execute([SingleSource(int(source))])[0]

    def route(self, source: int, target: int) -> Route:
        """Point-to-point answer served from the cached source row."""
        return self.execute([PointToPoint(int(source), int(target))])[0]

    def nearest(self, source: int, k: int) -> Nearest:
        """The ``k`` closest vertices to ``source``."""
        return self.execute([KNearest(int(source), int(k))])[0]

    def warm(self, sources: Iterable[int]) -> None:
        """Pre-populate the cache (e.g. known depots at boot)."""
        self._fetch_rows(sources)

    def stats(self) -> dict:
        """Counter snapshot for benchmarking and monitoring."""
        return {
            "engine": self._engine,
            "graph_hash": self._graph_hash,
            "capacity": self._capacity,
            "cached_rows": len(self._cache),
            "hits": self._hits,
            "misses": self._misses,
            "evictions": self._evictions,
            "coalesced": self._coalesced,
            "batches": self._batches,
            "solves": self._solves,
        }
