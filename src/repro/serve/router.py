"""`ShardRouter` — exact cross-shard query serving over shard backends.

The sharded counterpart of :class:`~repro.serve.service.RoutingService`:
a pure **stitching core** (virtual-source overlay Dijkstra + per-shard
fold — no I/O of its own) over one :class:`~repro.serve.backends.ShardBackend`
per shard, behind the same :class:`~repro.serve.surface.QuerySurface` —
so the HTTP front end (or any embedder typed against the surface)
cannot tell the difference, and neither can clients: answers are
**bit-identical** to the unsharded service on integer-weighted graphs.

How a query from source ``s`` (shard ``A``) is answered exactly:

1. ``rowA`` — shard ``A``'s backend solves ``s`` on its own augmented
   (k,ρ)-graph.  For every vertex of ``A`` reached without leaving the
   shard, this is already the true distance (an induced subgraph keeps
   every arc among its vertices).
2. **Overlay solve** — append a virtual source to the overlay,
   connected to each boundary vertex ``b ∈ ∂A`` with weight
   ``rowA[b]``, and run one Dijkstra from it.  Because overlay arcs are
   original cut edges plus exact within-shard boundary distances, the
   result ``ov_dist[b]`` is the true full-graph distance ``d(s, b)``
   for *every* boundary vertex of every shard: any shortest path
   decomposes into maximal intra-shard segments joined by cut edges,
   and each piece is an overlay arc (or the virtual seed).
3. **Stitch** — for each shard ``C``, fetch its finite boundary rows in
   one batched ``backend.rows(...)`` call and fold
   ``ov_dist[b] + d_C(b, ·)`` into the full row with a min-scatter
   (these boundary rows are the hot working set each shard's LRU
   caches across queries).  Folding ``C = A`` too covers re-entrant
   paths that leave the source shard and come back.

Every candidate distance is a float sum of input weights; on integer
weights (< 2⁵³) such sums are exact, the candidate set contains the
true distance, and all candidates dominate it — so the stitched min is
the exact metric, bit for bit what the unsharded planner computes.
Routes are stitched the same way: source-shard path → overlay parent
chain → target-shard path, with composite hops whose weights are exact
input-graph distances (the same contract as
:class:`~repro.serve.planner.Route` on the augmented graph).

Where the rows come *from* is the backend's business:
:class:`~repro.serve.backends.LocalBackend` (per-shard planners in
process — the classic single-box router, built by the constructor) or
:class:`~repro.serve.backends.RemoteBackend` (shard servers across the
wire — built by :meth:`ShardRouter.remote`).  Remote rows travel as
raw float64 frames, so remote stitching preserves the bit-identity
contract; a shard down past its retry budget surfaces as a typed
:class:`~repro.serve.backends.ShardUnavailableError` (→ HTTP 503
naming the shard) instead of a hang.

Concurrency: backends are thread-safe, and the router's own
stitched-row LRU is lock-protected (probe/insert only — never held
across a solve).  Two threads missing the same source may both stitch,
but the expensive per-shard solves underneath are deduplicated by each
local planner's single-flight table (or the remote shard's), and both
stitched rows are identical.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from pathlib import Path
from typing import Iterable, Sequence

import numpy as np

from ..core.dijkstra import dijkstra
from ..core.solver import PreprocessedSSSP
from ..graphs.build import from_arc_arrays
from ..graphs.csr import CSRGraph
from ..obs.trace import span
from ..preprocess.pipeline import ShardedPreprocessResult, build_sharded_kr_graph
from .artifacts import (
    SHARDED_ARTIFACT_VERSION,
    ShardTopology,
    load_shard_topology,
    load_sharded_artifact,
    save_sharded_artifact,
)
from .backends import (
    LocalBackend,
    RemoteBackend,
    ShardBackend,
    ShardUnavailableError,
)
from .obs_bridge import (
    backend_families,
    next_instance_label,
    planner_cache_families,
    stitched_cache_families,
)
from .planner import (
    KNearest,
    Nearest,
    PointToPoint,
    QueryPlanner,
    Route,
    SingleSource,
    coerce_vertex,
    nearest_from_row,
    normalize_query,
)
from .surface import json_finite

__all__ = ["ShardRouter"]

#: planner counter keys summed across shards for the aggregate stats
#: block (remote shards report the same keys from their own planners).
_AGG_KEYS = (
    "capacity",
    "cached_rows",
    "hits",
    "misses",
    "lookups",
    "evictions",
    "coalesced",
    "batches",
    "solves",
    "single_flight_waits",
    "inflight",
)


class _Stitched:
    """One cached stitched row: the full read-only distance row plus the
    overlay solve it was stitched from (kept for route reconstruction)."""

    __slots__ = ("dist", "ov_dist", "ov_parent")

    def __init__(
        self,
        dist: np.ndarray,
        ov_dist: np.ndarray,
        ov_parent: np.ndarray | None,
    ) -> None:
        dist.setflags(write=False)
        ov_dist.setflags(write=False)
        self.dist = dist
        self.ov_dist = ov_dist
        self.ov_parent = ov_parent


class ShardRouter:
    """Shard-routed implementation of the serving query surface.

    Parameters
    ----------
    graph: input graph — sharded-preprocessed on a cold start (ignored
        when ``sharded`` is given).
    sharded: an existing :class:`ShardedPreprocessResult` to serve
        (e.g. from :func:`repro.serve.artifacts.load_sharded_artifact`).
    topology, backends: the transport-agnostic construction — a
        :class:`~repro.serve.artifacts.ShardTopology` plus one
        :class:`~repro.serve.backends.ShardBackend` (or ``None`` for an
        empty shard) per shard.  Mutually exclusive with
        ``graph``/``sharded``; :meth:`remote` is the usual way in.
    n_shards, partition, partition_seed: forwarded to
        :func:`~repro.preprocess.build_sharded_kr_graph` on a cold
        start (``n_shards`` is required then).
    k, rho, heuristic, preprocess_jobs: per-shard preprocessing knobs.
    engine: engine selector for every local per-shard planner.
    cache_capacity: LRU size for the router's stitched full rows *and*
        each local shard planner's row cache (the planners' hot entries
        are the boundary rows stitching re-reads on every query).
    cache_stripes: lock stripes per local shard planner.
    track_parents: record predecessors so :meth:`route` returns stitched
        paths.
    query_jobs: worker processes for each local planner's coalesced
        solves.
    """

    def __init__(
        self,
        graph: CSRGraph | None = None,
        *,
        sharded: ShardedPreprocessResult | None = None,
        topology: ShardTopology | None = None,
        backends: Sequence[ShardBackend | None] | None = None,
        n_shards: int | None = None,
        partition: str = "contiguous",
        partition_seed: int = 0,
        k: int = 2,
        rho: int = 32,
        heuristic: str = "dp",
        engine: str = "auto",
        cache_capacity: int = 256,
        cache_stripes: int = 8,
        track_parents: bool = True,
        preprocess_jobs: int = 1,
        query_jobs: int = 1,
    ) -> None:
        if backends is not None:
            if topology is None:
                raise ValueError("backends require a topology")
            if graph is not None or sharded is not None:
                raise ValueError(
                    "pass either graph/sharded (local shards) or "
                    "topology+backends, not both"
                )
        else:
            if sharded is None:
                if graph is None:
                    raise ValueError("provide either a graph or a sharded result")
                if n_shards is None:
                    raise ValueError("n_shards is required for a cold start")
                sharded = build_sharded_kr_graph(
                    graph,
                    k,
                    rho,
                    n_shards=n_shards,
                    partition=partition,
                    partition_seed=partition_seed,
                    heuristic=heuristic,
                    n_jobs=preprocess_jobs,
                )
            topology = ShardTopology.from_sharded(sharded)
        self._sharded = sharded
        self._topo = topology
        self._labels = topology.labels
        self._n = topology.n
        self._shard_vertices = (
            sharded.shard_vertices
            if sharded is not None
            else topology.shard_vertices()
        )
        self._track_parents = track_parents
        # local[v] = shard-local id of original vertex v
        self._local = np.full(self._n, -1, dtype=np.int64)
        for verts in self._shard_vertices:
            self._local[verts] = np.arange(len(verts), dtype=np.int64)
        if backends is None:
            # one solver + planner per non-empty shard, wrapped in a
            # LocalBackend (an empty shard can never own a query vertex,
            # so it gets no backend)
            backends = []
            for s, pre in enumerate(sharded.shards):
                if len(self._shard_vertices[s]) == 0:
                    backends.append(None)
                    continue
                solver = PreprocessedSSSP.from_preprocessed(pre)
                planner = QueryPlanner(
                    solver,
                    engine=engine,
                    capacity=cache_capacity,
                    track_parents=track_parents,
                    n_jobs=query_jobs,
                    stripes=cache_stripes,
                )
                backends.append(LocalBackend(s, planner, solver))
        else:
            backends = list(backends)
            if len(backends) != topology.n_shards:
                raise ValueError(
                    f"expected {topology.n_shards} backends (None for "
                    f"empty shards), got {len(backends)}"
                )
            for s, backend in enumerate(backends):
                if backend is None and len(self._shard_vertices[s]):
                    raise ValueError(
                        f"shard {s} holds {len(self._shard_vertices[s])} "
                        "vertices but has no backend"
                    )
        self._backends: list[ShardBackend | None] = backends
        # local-mode views (None entries for remote or empty shards):
        # instrument() and the scrape collector reach planners directly
        self._solvers = [getattr(b, "solver", None) for b in backends]
        self._planners = [getattr(b, "planner", None) for b in backends]
        # overlay bookkeeping: boundary vertices per shard, in both
        # overlay-local and shard-local ids (ascending original id)
        ovv = topology.overlay_vertices
        self._ov_vertices = ovv
        self._overlay = topology.overlay_graph
        self._n_ov = len(ovv)
        self._ov_tails = np.repeat(
            np.arange(self._n_ov, dtype=np.int64), self._overlay.degrees()
        )
        self._boundary_ov = [
            np.flatnonzero(self._labels[ovv] == s) if self._n_ov else ovv
            for s in range(topology.n_shards)
        ]
        self._boundary_local = [self._local[ovv[b]] for b in self._boundary_ov]
        # stitched full-row LRU (single lock: held for probe/insert only)
        self._capacity = int(cache_capacity)
        self._cache: OrderedDict[int, _Stitched] = OrderedDict()
        self._cache_lock = threading.Lock()
        self._lookups = 0
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._obs_registry = None
        self._obs_label = ""

    # ------------------------------------------------------------------ #
    # Construction / persistence
    # ------------------------------------------------------------------ #
    @classmethod
    def from_artifact(
        cls,
        path: str | Path,
        *,
        expect_graph: CSRGraph | None = None,
        mmap: bool = False,
        **kwargs,
    ) -> "ShardRouter":
        """Warm start from a sharded bundle directory.

        Mirrors :meth:`RoutingService.from_artifact`: the bundle *is*
        the preprocessing (partition included), so partitioning and
        preprocessing knobs are rejected; remaining keyword arguments
        are the serving knobs of the constructor.  ``mmap=True`` keeps
        every shard's augmented CSR memory-mapped off its member file.
        """
        baked = {
            "graph",
            "sharded",
            "topology",
            "backends",
            "n_shards",
            "partition",
            "partition_seed",
            "k",
            "rho",
            "heuristic",
            "preprocess_jobs",
        }
        rejected = baked & kwargs.keys()
        if rejected:
            raise TypeError(
                f"from_artifact does not accept {sorted(rejected)}: the "
                "bundle fixes the partition and preprocessing; rebuild "
                "with ShardRouter(graph, ...) to change them"
            )
        sharded = load_sharded_artifact(path, expect_graph=expect_graph, mmap=mmap)
        return cls(sharded=sharded, **kwargs)

    @classmethod
    def remote(
        cls,
        bundle: str | Path | ShardTopology,
        endpoints: Sequence[str | None] | None = None,
        *,
        expect_graph: CSRGraph | None = None,
        timeout: float = 5.0,
        retries: int = 2,
        backoff: float = 0.05,
        pool_size: int = 4,
        cache_capacity: int = 256,
        track_parents: bool = True,
    ) -> "ShardRouter":
        """A front-end router over shard servers across the wire.

        ``bundle`` is a sharded bundle directory (only its manifest,
        overlay and topology members need to exist locally — the
        per-shard payloads live on the shard boxes) or an
        already-loaded :class:`~repro.serve.artifacts.ShardTopology`.
        ``endpoints`` lists one ``"http://host:port"`` per shard
        (``None`` for empty shards); omit it to use the hints stamped
        into the bundle manifest
        (:func:`~repro.serve.artifacts.stamp_endpoints`).

        ``timeout`` / ``retries`` / ``backoff`` are each
        :class:`~repro.serve.backends.RemoteBackend`'s deadline and
        bounded-retry budget; past it, queries touching that shard
        raise :class:`~repro.serve.backends.ShardUnavailableError`
        (→ 503 from the HTTP front end).  Row responses are checked
        against the topology's per-shard vertex counts, so a miswired
        endpoint fails loudly instead of stitching another shard's
        distances.
        """
        if isinstance(bundle, ShardTopology):
            topo = bundle
        else:
            topo = load_shard_topology(bundle, expect_graph=expect_graph)
        if endpoints is None:
            endpoints = topo.endpoints
            if endpoints is None:
                raise ValueError(
                    "no endpoints given and none stamped in the bundle "
                    "manifest (see stamp_endpoints)"
                )
        endpoints = list(endpoints)
        if len(endpoints) != topo.n_shards:
            raise ValueError(
                f"expected {topo.n_shards} endpoints (None for empty "
                f"shards), got {len(endpoints)}"
            )
        counts = np.bincount(topo.labels, minlength=topo.n_shards)
        backends: list[ShardBackend | None] = []
        for s, ep in enumerate(endpoints):
            if ep is None:
                backends.append(None)
                continue
            backends.append(
                RemoteBackend(
                    ep,
                    shard=s,
                    timeout=timeout,
                    retries=retries,
                    backoff=backoff,
                    pool_size=pool_size,
                    expect_n=int(counts[s]),
                )
            )
        return cls(
            topology=topo,
            backends=backends,
            cache_capacity=cache_capacity,
            track_parents=track_parents,
        )

    def save_artifact(self, path: str | Path) -> Path:
        """Persist the sharded preprocessing as a bundle directory."""
        if self._sharded is None:
            raise RuntimeError(
                "a remote router holds only the bundle topology, not the "
                "per-shard payloads — save the bundle where it was built"
            )
        return save_sharded_artifact(path, self._sharded)

    def close(self) -> None:
        """Close every backend (idempotent).

        Releases remote connection pools and interrupts any in-flight
        retry backoff, so a request sleeping toward a dead shard fails
        fast instead of finishing its budget.  Local backends are
        unaffected; the router remains usable for local shards only.
        """
        for backend in self._backends:
            if backend is not None:
                backend.close()

    def __enter__(self) -> "ShardRouter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Stitching core (pure fold over backend rows — no I/O of its own)
    # ------------------------------------------------------------------ #
    def _virtual_solve(self, seeds_ov: np.ndarray, seed_dist: np.ndarray):
        """One Dijkstra from a virtual source appended to the overlay,
        wired to the source shard's boundary at the rowA distances."""
        n_ov = self._n_ov
        us = np.concatenate(
            [self._ov_tails, np.full(len(seeds_ov), n_ov, dtype=np.int64)]
        )
        vs = np.concatenate([self._overlay.indices, seeds_ov])
        ws = np.concatenate([self._overlay.weights, seed_dist])
        virt = from_arc_arrays(n_ov + 1, us, vs, ws, symmetrize=True, validate=False)
        return dijkstra(virt, n_ov, track_parents=self._track_parents)

    def _stitch(self, source: int) -> _Stitched:
        shard_a = int(self._labels[source])
        backend_a = self._backends[shard_a]
        with span("router.source_row", shard=shard_a):
            row_a = backend_a.source_row(int(self._local[source]))
        dist = np.full(self._n, np.inf)
        dist[self._shard_vertices[shard_a]] = row_a
        ov_dist = np.full(self._n_ov, np.inf)
        ov_parent: np.ndarray | None = None
        seeds_ov = self._boundary_ov[shard_a]
        seed_dist = row_a[self._boundary_local[shard_a]]
        finite = np.isfinite(seed_dist)
        if self._n_ov and finite.any():
            with span("router.overlay_solve", seeds=int(finite.sum())):
                res = self._virtual_solve(seeds_ov[finite], seed_dist[finite])
            ov_dist = res.dist[: self._n_ov]
            ov_parent = res.parent
            for shard_c in range(self._topo.n_shards):
                b_ov = self._boundary_ov[shard_c]
                if len(b_ov) == 0:
                    continue
                d_b = ov_dist[b_ov]
                ok = np.isfinite(d_b)
                if not ok.any():
                    continue
                backend_c = self._backends[shard_c]
                verts = self._shard_vertices[shard_c]
                with span(
                    "router.fold_shard", shard=shard_c, boundary=int(ok.sum())
                ):
                    rows_c = backend_c.rows(
                        [int(b) for b in self._boundary_local[shard_c][ok]]
                    )
                    best = dist[verts]
                    for row_c, db in zip(rows_c, d_b[ok]):
                        np.minimum(best, db + row_c, out=best)
                    dist[verts] = best
        return _Stitched(dist, ov_dist, ov_parent)

    def _stitched(self, source: int) -> _Stitched:
        source = int(source)
        with self._cache_lock:
            self._lookups += 1
            entry = self._cache.get(source)
            if entry is not None:
                self._cache.move_to_end(source)
                self._hits += 1
                return entry
            self._misses += 1
        with span("router.stitch", source=source):
            entry = self._stitch(source)
        if self._capacity > 0:
            with self._cache_lock:
                self._cache[source] = entry
                self._cache.move_to_end(source)
                while len(self._cache) > self._capacity:
                    self._cache.popitem(last=False)
                    self._evictions += 1
        return entry

    # ------------------------------------------------------------------ #
    # Route stitching
    # ------------------------------------------------------------------ #
    def _translate(self, shard: int, path) -> list[int] | None:
        if path is None:
            return None
        verts = self._shard_vertices[shard]
        return [int(verts[v]) for v in path]

    def _route_path(
        self, source: int, target: int, st: _Stitched, distance: float
    ) -> tuple[int, ...] | None:
        shard_a = int(self._labels[source])
        shard_b = int(self._labels[target])
        local_t = int(self._local[target])
        if shard_b == shard_a:
            # prefer the pure intra-shard path when it realizes the
            # exact stitched distance (it usually does)
            direct = self._backends[shard_a].route(
                int(self._local[source]), local_t
            )
            if direct.path is not None and direct.distance == distance:
                return tuple(self._translate(shard_a, direct.path))
        if st.ov_parent is None:
            return None
        # entry point: the first boundary vertex of the target shard
        # (ascending original id — deterministic) on an optimal path;
        # the finite candidate rows come back in one batched fetch
        candidates = [
            (int(b_ov), int(local_b))
            for b_ov, local_b in zip(
                self._boundary_ov[shard_b], self._boundary_local[shard_b]
            )
            if np.isfinite(st.ov_dist[b_ov])
        ]
        rows_b = self._backends[shard_b].rows([lb for _, lb in candidates])
        entry = -1
        for (b_ov, _local_b), row_b in zip(candidates, rows_b):
            if st.ov_dist[b_ov] + row_b[local_t] == distance:
                entry = b_ov
                break
        if entry < 0:
            # only reachable on non-exactly-representable weights, where
            # no boundary decomposition reproduces the min bit for bit
            return None
        # overlay parent chain: virtual source -> ... -> entry
        chain: list[int] = []
        at = entry
        while at != self._n_ov:
            chain.append(at)
            at = int(st.ov_parent[at])
        chain.reverse()
        first = chain[0]  # boundary vertex of shard A the path exits at
        seg_a = self._backends[shard_a].route(
            int(self._local[source]), int(self._local[self._ov_vertices[first]])
        )
        if seg_a.path is None:
            return None
        path = self._translate(shard_a, seg_a.path)
        # overlay hops are composite edges (cut arcs or within-shard
        # distance arcs) — their endpoints are the stitch points
        for b_ov in chain[1:]:
            path.append(int(self._ov_vertices[b_ov]))
        seg_b = self._backends[shard_b].route(
            int(self._local[self._ov_vertices[entry]]), local_t
        )
        if seg_b.path is None:
            return None
        tail = self._translate(shard_b, seg_b.path)
        if tail and path and tail[0] == path[-1]:
            tail = tail[1:]
        path.extend(tail)
        return tuple(path)

    # ------------------------------------------------------------------ #
    # Validation (mirrors QueryPlanner exactly)
    # ------------------------------------------------------------------ #
    def _check_vertex(self, v, what: str) -> None:
        v = coerce_vertex(v, what)
        if not 0 <= v < self._n:
            raise ValueError(
                f"{what} {v} out of range for a graph with n={self._n} vertices"
            )

    def _validate(self, query) -> None:
        self._check_vertex(query.source, "source")
        if isinstance(query, PointToPoint):
            self._check_vertex(query.target, "target")
        elif isinstance(query, KNearest):
            if isinstance(query.k, (bool, np.bool_)) or not isinstance(
                query.k, (int, np.integer)
            ):
                raise TypeError(f"k must be an integer, got {query.k!r}")
            if query.k < 0:
                raise ValueError(f"k must be >= 0, got {query.k}")

    # ------------------------------------------------------------------ #
    # Query surface
    # ------------------------------------------------------------------ #
    def distances(self, source: int) -> np.ndarray:
        """All input-graph distances from ``source`` (read-only row),
        stitched source shard → overlay → every shard."""
        self._check_vertex(source, "source")
        return self._stitched(int(source)).dist

    def route(self, source: int, target: int) -> Route:
        """Exact distance ``source → target`` plus (when parents are
        tracked) a stitched path whose hops are composite edges carrying
        exact input-graph distances."""
        self._check_vertex(source, "source")
        self._check_vertex(target, "target")
        source, target = int(source), int(target)
        st = self._stitched(source)
        distance = float(st.dist[target])
        path: tuple[int, ...] | None = None
        if self._track_parents and np.isfinite(distance):
            path = self._route_path(source, target, st, distance)
        return Route(source=source, target=target, distance=distance, path=path)

    def nearest(self, source: int, k: int) -> Nearest:
        """The ``k`` closest vertices to ``source``, graph-wide."""
        query = KNearest(source, k)
        self._validate(query)
        return nearest_from_row(
            int(source), self._stitched(int(source)).dist, int(k)
        )

    def batch(self, queries: Sequence) -> list:
        """Mixed batch, answered in input order.  Queries sharing a
        source share one stitched row (router LRU + per-shard backend
        caches underneath)."""
        normalized = [normalize_query(q) for q in queries]
        for q in normalized:
            self._validate(q)
        answers = []
        for q in normalized:
            if isinstance(q, SingleSource):
                answers.append(self._stitched(q.source).dist)
            elif isinstance(q, PointToPoint):
                answers.append(self.route(q.source, q.target))
            else:
                answers.append(
                    nearest_from_row(
                        int(q.source), self._stitched(q.source).dist, int(q.k)
                    )
                )
        return answers

    def warm(self, sources: Iterable[int]) -> None:
        """Pre-stitch known-hot sources (and thereby pre-solve their
        shards' boundary rows, the shared working set)."""
        checked = []
        for s in sources:
            self._check_vertex(s, "source")
            checked.append(int(s))
        for s in checked:
            self._stitched(s)

    # ------------------------------------------------------------------ #
    # Observability
    # ------------------------------------------------------------------ #
    def instrument(self, registry=None) -> str:
        """Attach the router to a metrics registry; returns its
        ``service`` label value.

        The sharded mirror of :meth:`RoutingService.instrument
        <repro.serve.service.RoutingService.instrument>`: one
        :class:`~repro.obs.metrics.EngineTelemetry` observer shared by
        every local shard's solver (engine histograms aggregate across
        shards — the ``engine`` label already distinguishes what
        matters), and one weakly-held scrape-time collector emitting
        ``planner_*`` families per local shard (``shard`` label = shard
        id), the router's own ``router_stitched_*`` LRU families, and
        per-backend ``shard_backend_*`` health/latency families (remote
        shards included — their planner counters live on their *own*
        server's scrape).  Idempotent per registry; ``None`` = the
        process-global default.
        """
        from ..obs.metrics import EngineTelemetry, get_default_registry

        if registry is None:
            registry = get_default_registry()
        if self._obs_registry is registry:
            return self._obs_label
        self._obs_registry = registry
        self._obs_label = next_instance_label("router")
        telemetry = EngineTelemetry(registry)
        for solver in self._solvers:
            if solver is not None:
                solver.set_observer(telemetry)
        registry.register_collector(self._collect_metrics)
        return self._obs_label

    def _collect_metrics(self):
        """Scrape-time collector: per-shard planner counters, the
        stitched-row LRU, per-backend health/latency, and the query
        total."""
        from ..obs.metrics import MetricFamily, Sample

        svc = ("service", self._obs_label)
        entries = [
            ((svc, ("shard", str(s))), planner.stats())
            for s, planner in enumerate(self._planners)
            if planner is not None
        ]
        fams = planner_cache_families(entries)
        with self._cache_lock:
            stitched = {
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
                "cached_rows": len(self._cache),
            }
        fams.extend(stitched_cache_families((svc,), stitched))
        fams.extend(
            backend_families(
                [
                    ((svc, ("shard", str(s)), ("kind", backend.kind)), backend)
                    for s, backend in enumerate(self._backends)
                    if backend is not None
                ]
            )
        )
        queries = MetricFamily(
            "service_queries_answered_total",
            "counter",
            "SSSP queries answered (the amortization denominator)",
        )
        queries.samples.append(
            Sample(
                "",
                (svc,),
                float(
                    sum(
                        solver.queries_answered
                        for solver in self._solvers
                        if solver is not None
                    )
                ),
            )
        )
        fams.append(queries)
        return fams

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def sharded(self) -> ShardedPreprocessResult | None:
        """The underlying sharded preprocessing (``None`` on a remote
        router — the payloads live on the shard boxes)."""
        return self._sharded

    @property
    def topology_info(self) -> ShardTopology:
        """The routing topology (labels, overlay, partition metadata)."""
        return self._topo

    @property
    def backends(self) -> tuple[ShardBackend | None, ...]:
        """Per-shard backends (``None`` entries for empty shards)."""
        return tuple(self._backends)

    @property
    def n_shards(self) -> int:
        """Number of shards."""
        return self._topo.n_shards

    def shard_of(self, vertex: int) -> int:
        """The shard a vertex lives in (input-graph ids)."""
        self._check_vertex(vertex, "vertex")
        return int(self._labels[int(vertex)])

    def topology(self) -> dict:
        """Shard topology: per-shard vertex/boundary counts, resolved
        engines, and the overlay size.

        A remote shard's engine resolves on its own server, so it
        reports ``None`` here; :meth:`stats` fills it in from the
        shard's live ``/stats``.
        """
        shards = []
        for s in range(self.n_shards):
            planner = self._planners[s]
            shards.append(
                {
                    "shard": s,
                    "vertices": int(len(self._shard_vertices[s])),
                    "boundary": int(len(self._boundary_ov[s])),
                    "engine": planner.engine if planner is not None else None,
                }
            )
        return {
            "shards": shards,
            "overlay": {
                "vertices": int(self._n_ov),
                "edges": int(self._overlay.m),
            },
        }

    def stats(self) -> dict:
        """Aggregated planner counters plus sharding topology.

        Per-shard planner counters (hits, misses, solves, …) are summed
        — remote shards report theirs over ``GET /stats`` — the
        ``stitched`` block is the router's own full-row LRU; and the
        satellite topology — artifact version, shard count, per-shard
        vertex/boundary counts — rides along for ``GET /stats``.

        Parity with :meth:`RoutingService.stats
        <repro.serve.service.RoutingService.stats>`: the same
        ``engines`` registry listing, and a ``per_shard`` table giving
        every shard's full planner counter snapshot plus its
        preprocessing provenance (``preferred_engine``, ``reorder``,
        sanitized ``locality``) — the aggregate totals above stay, the
        table is where a per-shard imbalance shows up.

        New with the backend seam: a ``backends`` table — one row per
        shard backend with its kind, endpoint, health, consecutive
        failures, and p50 row-fetch latency (ms) from the backend's own
        histogram.  A shard whose server is unreachable appears in
        ``per_shard`` as ``{"unavailable": true}`` instead of failing
        the whole stats call.
        """
        from ..engine.registry import available_engines, get_engine

        agg = {key: 0 for key in _AGG_KEYS}
        engines = set()
        per_shard = []
        backends_table = []
        queries = 0
        topo = self.topology()
        for s, backend in enumerate(self._backends):
            if backend is None:
                continue
            backends_table.append(backend.backend_stats())
            try:
                pstats = backend.stats()
            except ShardUnavailableError as exc:
                per_shard.append(
                    {
                        "shard": s,
                        "vertices": int(len(self._shard_vertices[s])),
                        "boundary": int(len(self._boundary_ov[s])),
                        "unavailable": True,
                        "error": str(exc),
                    }
                )
                continue
            if "engine" in pstats:
                engines.add(pstats["engine"])
                topo["shards"][s]["engine"] = pstats["engine"]
            for key in agg:
                agg[key] += pstats.get(key, 0)
            solver = self._solvers[s]
            queries += (
                solver.queries_answered
                if solver is not None
                else int(pstats.get("queries_answered", 0))
            )
            if self._sharded is not None:
                pre = self._sharded.shards[s]
                provenance = {
                    "preferred_engine": getattr(pre, "preferred_engine", ""),
                    "reorder": getattr(pre, "reorder", "natural"),
                    "locality": {
                        "before": json_finite(
                            getattr(pre, "locality_before", float("nan"))
                        ),
                        "after": json_finite(
                            getattr(pre, "locality_after", float("nan"))
                        ),
                    },
                }
            else:
                # a remote shard's provenance comes from its own stats
                provenance = {
                    "preferred_engine": pstats.get("preferred_engine", ""),
                    "reorder": pstats.get("reorder", "natural"),
                    "locality": pstats.get(
                        "locality", {"before": None, "after": None}
                    ),
                }
            entry = {
                "shard": s,
                "vertices": int(len(self._shard_vertices[s])),
                "boundary": int(len(self._boundary_ov[s])),
            }
            if self._planners[s] is not None:
                entry.update(pstats)
            else:
                entry.update(
                    {
                        key: pstats[key]
                        for key in (*_AGG_KEYS, "engine", "queries_answered")
                        if key in pstats
                    }
                )
            entry.update(provenance)
            per_shard.append(entry)
        with self._cache_lock:
            stitched = {
                "capacity": self._capacity,
                "cached_rows": len(self._cache),
                "hits": self._hits,
                "misses": self._misses,
                "lookups": self._lookups,
                "evictions": self._evictions,
            }
        return {
            **agg,
            "engine": engines.pop() if len(engines) == 1 else "mixed",
            "queries_answered": queries,
            "n": self._n,
            "k": self._topo.k,
            "rho": self._topo.rho,
            "heuristic": self._topo.heuristic,
            "shards": self.n_shards,
            "partition": self._topo.partition_method,
            "partition_seed": self._topo.partition_seed,
            "edge_cut": self._topo.edge_cut,
            "balance": self._topo.balance,
            "artifact_version": SHARDED_ARTIFACT_VERSION,
            "stitched": stitched,
            "backends": backends_table,
            "engines": {
                name: get_engine(name).description
                for name in available_engines()
            },
            "per_shard": per_shard,
            "topology": topo,
        }

    def healthz(self) -> dict:
        """Liveness payload with the shard topology summary.

        With remote backends, unhealthy shards (down past their retry
        budget on the last request cycle) are named and the status
        degrades — an all-local router keeps the classic three-field
        payload.
        """
        payload = {
            "status": "ok",
            "shards": self.n_shards,
            "artifact_version": SHARDED_ARTIFACT_VERSION,
        }
        remote = [b for b in self._backends if b is not None and b.kind == "remote"]
        if remote:
            unhealthy = [b.shard for b in remote if not b.healthy]
            payload["backends"] = {
                "remote": len(remote),
                "unhealthy": unhealthy,
            }
            if unhealthy:
                payload["status"] = "degraded"
        return payload

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ShardRouter(n={self._n}, shards={self.n_shards}, "
            f"partition={self._topo.partition_method!r}, "
            f"cut={self._topo.edge_cut}, overlay={self._n_ov})"
        )
