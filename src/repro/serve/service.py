"""`RoutingService` — the synchronous serving facade.

One object wires the whole serving stack together: the preprocessed
(k,ρ)-graph (built cold, or warm-started from a persisted artifact,
optionally memory-mapped), the engine registry, the caching/coalescing
:class:`~repro.serve.planner.QueryPlanner`, and the shared-memory bulk
path.  It is the embeddable core a network front end calls into — and
that is safe: the planner underneath is thread-safe (striped cache,
single-flight solves), so :mod:`repro.serve.http`'s
``ThreadingHTTPServer`` worker threads all drive one service instance
concurrently::

    svc = RoutingService(graph, k=2, rho=32)        # cold start
    svc.save_artifact("kr.npz")                     # persist once
    ...
    svc = RoutingService.from_artifact("kr.npz",    # every later boot:
                                       expect_graph=graph)  # milliseconds
    svc.route(3, 94).distance                       # cached after 1st query
    svc.batch([(3, 94), KNearest(3, 5), 17])        # one coalesced solve
    with svc.distance_matrix(range(64), n_jobs=8) as dm:   # bulk, zero-copy
        closest = dm.dist.argmin(axis=0)
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Sequence

import numpy as np

from ..core.solver import PreprocessedSSSP
from ..graphs.csr import CSRGraph
from .artifacts import ARTIFACT_VERSION, load_artifact, save_artifact
from .obs_bridge import next_instance_label, planner_cache_families
from .planner import Nearest, QueryPlanner, Route
from .shm import DistanceMatrix, solve_many_shm
from .surface import json_finite

__all__ = ["RoutingService"]


class RoutingService:
    """Synchronous query-serving facade over a preprocessed graph.

    Parameters
    ----------
    graph: input graph to preprocess (ignored when ``solver`` is given).
    solver: an existing :class:`PreprocessedSSSP` to serve (e.g. from
        :func:`repro.serve.artifacts.load_solver`).
    k, rho, heuristic, preprocess_jobs: forwarded to
        :func:`~repro.preprocess.build_kr_graph` on a cold start.
    reorder, reorder_seed: locality ordering for the cold-start
        preprocessing (:mod:`repro.graphs.reorder`; ``"rcm"`` is the
        usual winner on road-like graphs).  Invisible to every caller —
        queries and answers stay in the input graph's vertex ids — but
        the kernel's CSR gathers run on the cache-friendly layout.
    engine: engine selector for every query (resolved once).
    cache_capacity: planner LRU size (source rows).
    cache_stripes: lock stripes for the planner cache — the service is
        safe to call from many threads (an HTTP front end's worker
        threads); see :class:`~repro.serve.planner.QueryPlanner` for the
        striping / single-flight model.
    track_parents: record predecessors so :meth:`route` returns paths
        (the default — it is a *routing* service).  Distance-only
        workloads should pass ``False``: it halves cached-row memory
        and, on unit-weight graphs, lets ``engine="auto"`` keep the
        specialized parentless §3.4 engine instead of falling back to
        the general one.
    query_jobs: worker processes for coalesced batch solves.
    """

    def __init__(
        self,
        graph: CSRGraph | None = None,
        *,
        solver: PreprocessedSSSP | None = None,
        k: int = 2,
        rho: int = 32,
        heuristic: str = "dp",
        engine: str = "auto",
        cache_capacity: int = 256,
        cache_stripes: int = 8,
        track_parents: bool = True,
        preprocess_jobs: int = 1,
        query_jobs: int = 1,
        reorder: str = "natural",
        reorder_seed: int = 0,
    ) -> None:
        if solver is None:
            if graph is None:
                raise ValueError("provide either a graph or a solver")
            solver = PreprocessedSSSP(
                graph,
                k=k,
                rho=rho,
                heuristic=heuristic,
                n_jobs=preprocess_jobs,
                reorder=reorder,
                reorder_seed=reorder_seed,
            )
        self._solver = solver
        self._planner = QueryPlanner(
            solver,
            engine=engine,
            capacity=cache_capacity,
            track_parents=track_parents,
            n_jobs=query_jobs,
            stripes=cache_stripes,
        )
        self._obs_registry = None
        self._obs_label = ""

    # ------------------------------------------------------------------ #
    # Construction / persistence
    # ------------------------------------------------------------------ #
    @classmethod
    def from_artifact(
        cls,
        path: str | Path,
        *,
        expect_graph: CSRGraph | None = None,
        mmap: bool = False,
        **kwargs,
    ) -> "RoutingService":
        """Warm start: restore the preprocessing from an artifact bundle.

        ``expect_graph`` (recommended) pins the artifact to the graph
        this service is meant to answer for; ``mmap=True`` keeps the
        augmented CSR arrays memory-mapped off the bundle file (the
        near-RAM-size knob — see
        :func:`repro.serve.artifacts.load_artifact`); remaining keyword
        arguments are the serving knobs of the constructor.
        Preprocessing knobs are rejected — the artifact *is* the
        preprocessing, so a ``k``/``rho``/``heuristic`` here would be
        silently ignored, and the caller who wants different ones must
        rebuild and re-save.
        """
        baked = {
            "graph",
            "solver",
            "k",
            "rho",
            "heuristic",
            "preprocess_jobs",
            "reorder",
            "reorder_seed",
        }
        rejected = baked & kwargs.keys()
        if rejected:
            raise TypeError(
                f"from_artifact does not accept {sorted(rejected)}: the "
                "artifact fixes the preprocessing; rebuild with "
                "RoutingService(graph, ...) to change it"
            )
        pre = load_artifact(path, expect_graph=expect_graph, mmap=mmap)
        solver = PreprocessedSSSP.from_preprocessed(pre, input_graph=expect_graph)
        return cls(solver=solver, **kwargs)

    def save_artifact(self, path: str | Path) -> Path:
        """Persist this service's preprocessing for future warm starts."""
        return save_artifact(path, self._solver.preprocessing)

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def distances(self, source: int) -> np.ndarray:
        """All input-graph distances from ``source`` (read-only row)."""
        return self._planner.distances(source)

    def route(self, source: int, target: int) -> Route:
        """Exact distance ``source → target`` plus (when parents are
        tracked) the realizing path in the augmented graph."""
        return self._planner.route(source, target)

    def nearest(self, source: int, k: int) -> Nearest:
        """The ``k`` closest vertices to ``source``."""
        return self._planner.nearest(source, k)

    def batch(self, queries: Sequence) -> list:
        """Mixed batch (query records, ints, or ``(s, t)`` pairs) —
        deduplicated, coalesced onto one solve, answered in order."""
        return self._planner.execute(queries)

    def warm(self, sources: Iterable[int]) -> None:
        """Pre-solve known-hot sources (depots, landmarks) at boot."""
        self._planner.warm(sources)

    def distance_matrix(
        self,
        sources: Iterable[int],
        *,
        track_parents: bool = False,
        n_jobs: int = 1,
    ) -> DistanceMatrix:
        """Bulk path: an (n_sources × n) shared-memory matrix.

        Bypasses the row cache — this is for huge batches (all-pairs
        slices, matrix analytics) where materializing pickled results
        would dominate; use as a context manager to free the segment.
        """
        return solve_many_shm(
            self._solver,
            sources,
            engine=self._planner.engine,
            track_parents=track_parents,
            n_jobs=n_jobs,
        )

    # ------------------------------------------------------------------ #
    # Observability
    # ------------------------------------------------------------------ #
    def instrument(self, registry=None) -> str:
        """Attach this service to a metrics registry; returns its
        ``service`` label value.

        Two things happen, neither touching the query hot path:

        * an :class:`~repro.obs.metrics.EngineTelemetry` observer is
          installed on the solver, so every solve folds its
          step/substep/relaxation counts into the per-engine histograms;
        * a scrape-time collector (held by weak reference — a dropped
          service silently leaves the scrape) is registered that shapes
          :meth:`QueryPlanner.stats` into ``planner_*`` families under a
          process-unique ``service`` label and ``shard="0"``.

        ``registry=None`` uses the process-global default.  Idempotent
        per registry; instrumenting a second registry moves the service
        (one observer, one label).  The HTTP front end calls this
        automatically for any surface that has it.
        """
        from ..obs.metrics import EngineTelemetry, get_default_registry

        if registry is None:
            registry = get_default_registry()
        if self._obs_registry is registry:
            return self._obs_label
        self._obs_registry = registry
        self._obs_label = next_instance_label("service")
        self._solver.set_observer(EngineTelemetry(registry))
        registry.register_collector(self._collect_metrics)
        return self._obs_label

    def _collect_metrics(self):
        """Scrape-time collector: planner counters + query totals."""
        from ..obs.metrics import MetricFamily, Sample

        base = (("service", self._obs_label), ("shard", "0"))
        fams = planner_cache_families([(base, self._planner.stats())])
        queries = MetricFamily(
            "service_queries_answered_total",
            "counter",
            "SSSP queries answered (the amortization denominator)",
        )
        queries.samples.append(
            Sample(
                "",
                (("service", self._obs_label),),
                float(self._solver.queries_answered),
            )
        )
        fams.append(queries)
        return fams

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def solver(self) -> PreprocessedSSSP:
        """The underlying preprocessed facade."""
        return self._solver

    def stats(self) -> dict:
        """Planner counters plus preprocessing provenance.

        ``engine`` is the planner's *resolved* engine (what every query
        actually dispatches to), ``preferred_engine`` the calibrated
        winner stored by preprocessing (``""`` when never calibrated),
        and ``engines`` the full registry with per-engine descriptions
        — enough for an operator at ``GET /stats`` to see which engine
        an artifact selected and what the alternatives are.  ``reorder``
        names the locality ordering preprocessing ran under and
        ``locality`` its mean-neighbor-gap diagnostic (input layout vs
        the layout queries actually run on; ``null`` when the artifact
        predates the diagnostic).

        Topology fields mirror the sharded surface
        (:meth:`repro.serve.router.ShardRouter.stats`): a single-graph
        service is the one-shard special case, so it reports
        ``shards: 1``, its artifact version, and a one-entry per-shard
        table with a zero-size boundary.
        """
        from ..engine.registry import available_engines, get_engine

        pre = self._solver.preprocessing
        return {
            **self._planner.stats(),
            "queries_answered": self._solver.queries_answered,
            "k": pre.k,
            "rho": pre.rho,
            "heuristic": pre.heuristic,
            "n": self._solver.graph.n,
            "m": self._solver.graph.m,
            "shortcut_edges": pre.new_edges,
            "preferred_engine": getattr(pre, "preferred_engine", ""),
            "reorder": getattr(pre, "reorder", "natural"),
            "locality": {
                "before": json_finite(getattr(pre, "locality_before", float("nan"))),
                "after": json_finite(getattr(pre, "locality_after", float("nan"))),
            },
            "engines": {
                name: get_engine(name).description
                for name in available_engines()
            },
            "shards": 1,
            "artifact_version": ARTIFACT_VERSION,
            "topology": {
                "shards": [
                    {
                        "shard": 0,
                        "vertices": self._solver.graph.n,
                        "boundary": 0,
                        "engine": self._planner.engine,
                    }
                ],
                "overlay": {"vertices": 0, "edges": 0},
            },
        }

    def healthz(self) -> dict:
        """Liveness payload (``GET /healthz``): the single-graph service
        is the one-shard special case of the sharded surface."""
        return {
            "status": "ok",
            "shards": 1,
            "artifact_version": ARTIFACT_VERSION,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        s = self.stats()
        return (
            f"RoutingService(n={s['n']}, m={s['m']}, engine={s['engine']!r}, "
            f"{s['cached_rows']}/{s['capacity']} rows cached, "
            f"{s['hits']} hits / {s['misses']} misses)"
        )
