"""Shared-memory batch results — ``solve_many`` without pickling.

:meth:`repro.core.solver.PreprocessedSSSP.solve_many` returns a list of
:class:`~repro.core.result.SsspResult` objects, each carrying an
``n``-long distance array that travels from worker to parent through the
pool's pickle pipe.  For a huge batch that serialization is the
bottleneck: an (n_sources × n) float64 matrix is copied byte-for-byte
through a pipe the kernel already mapped into both processes.

This module gives batches a zero-copy output path: the parent allocates
one ``multiprocessing.shared_memory`` block holding the distance matrix
(and, optionally, the parent matrix), workers attach by name and write
their rows *in place*, and only tiny per-row counters (steps, substeps,
relaxations) come back through the pipe.  The rows are produced by the
same :func:`~repro.engine.registry.solve_with_engine` calls as the
pickle path, so the output is bit-identical — pinned per engine by
``tests/serve/test_shm.py``.

:class:`DistanceMatrix` is a context manager owning the block::

    with solve_many_shm(sp, sources, n_jobs=8) as dm:
        nearest_depot = dm.dist.argmin(axis=0)

On exit the segment is closed and unlinked; without the ``with`` the
caller must pair :meth:`DistanceMatrix.close` / ``unlink`` manually.
A matrix that is simply dropped (no ``close``/``unlink``) is reclaimed
by a :mod:`weakref.finalize` safety net when it is garbage-collected,
with a :class:`ResourceWarning` — the segment is freed deterministically
instead of lingering in ``/dev/shm`` until interpreter exit.
"""

from __future__ import annotations

import warnings
import weakref
from multiprocessing import shared_memory
from typing import Iterable

import numpy as np

from ..core.result import SsspResult
from ..core.solver import PreprocessedSSSP, externalize_result
from ..engine.registry import get_engine, solve_with_engine
from ..parallel.pool import parallel_map_shared

__all__ = ["DistanceMatrix", "solve_many_shm"]


def _attach(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without adopting ownership.

    ``SharedMemory(name=...)`` re-registers the segment with the
    resource tracker (bpo-38119).  Our attachers are always children of
    the creating process (fork/spawn pool workers) or the creator
    itself (the ``n_jobs=1`` inline path), so they share its tracker
    and the re-register is an idempotent no-op on the tracker's name
    set — unregistering here would instead *cancel* the owner's
    registration and break its ``unlink``.  Hence: attach, nothing else.
    """
    return shared_memory.SharedMemory(name=name)


def _reclaim_leaked(shm: shared_memory.SharedMemory, what: str) -> None:
    """:mod:`weakref.finalize` safety net for a dropped matrix.

    A :class:`DistanceMatrix` garbage-collected without ``unlink()``
    would otherwise pin its segment in ``/dev/shm`` until interpreter
    exit (the resource tracker's cleanup).  Reclaim it now and warn —
    the owner should have used the context manager or called
    ``close()``/``unlink()``.  The mapping may still be exported by a
    live numpy view at this point, so a failed ``close()`` is tolerated;
    ``unlink()`` alone already frees the name, and the pages follow when
    the last mapping dies.
    """
    warnings.warn(
        f"DistanceMatrix {what} (segment {shm.name}) was dropped without "
        "close()/unlink(); reclaiming its shared-memory segment — use it "
        "as a context manager or pair close()/unlink() explicitly",
        ResourceWarning,
        stacklevel=2,
    )
    try:
        shm.close()
    except BufferError:  # a view outlived the matrix; unlink still frees
        pass
    try:
        shm.unlink()
    except FileNotFoundError:  # pragma: no cover - reclaimed elsewhere
        pass


def _views(
    buf, n_sources: int, n: int, track_parents: bool
) -> tuple[np.ndarray, np.ndarray | None]:
    """Map the segment layout: dist matrix, then optional parent matrix."""
    dist = np.ndarray((n_sources, n), dtype=np.float64, buffer=buf)
    parent = None
    if track_parents:
        parent = np.ndarray(
            (n_sources, n), dtype=np.int64, buffer=buf, offset=dist.nbytes
        )
    return dist, parent


class DistanceMatrix:
    """An (n_sources × n) batch result living in shared memory.

    Attributes
    ----------
    sources: the requested source per row, in input order.
    dist: float64 view, ``dist[i]`` = distances from ``sources[i]``
        (``inf`` where unreachable).
    parent: int64 view of predecessors, or ``None`` when parents were
        not requested.
    steps / substeps / max_substeps / relaxations: per-row
        instrumentation (ordinary arrays — they are tiny and travel
        back through the pipe).
    engine: resolved registry name that produced the rows.
    algorithm: the solver's ``SsspResult.algorithm`` string.

    The creating process owns the segment: ``close()`` detaches this
    process's mapping, ``unlink()`` frees the segment system-wide, and
    the context manager does both.

    .. warning::
        ``dist`` and ``parent`` are *views into the mapping*, as is any
        slice taken from them.  Once ``close()`` runs (including via the
        context manager's exit) the mapping is gone and touching a
        retained view is a use-after-free — numpy cannot raise for it
        (this is inherent to mmap-backed arrays, cf. the
        :mod:`multiprocessing.shared_memory` docs).  Data that must
        outlive the segment has to be copied out first:
        :meth:`result` returns owning copies, or take ``dm.dist.copy()``
        / ``dm.dist[i].copy()`` before leaving the ``with`` block.
    """

    def __init__(
        self, sources: np.ndarray, n: int, *, track_parents: bool = False
    ) -> None:
        self.sources = np.ascontiguousarray(sources, dtype=np.int64).copy()
        self.n = int(n)
        n_sources = len(self.sources)
        nbytes = 8 * n_sources * self.n * (2 if track_parents else 1)
        self._shm = shared_memory.SharedMemory(create=True, size=max(1, nbytes))
        self._unlinked = False
        # safety net: a matrix dropped without unlink() reclaims its
        # segment at GC time with a ResourceWarning (detached once the
        # owner unlinks properly)
        self._finalizer = weakref.finalize(
            self, _reclaim_leaked, self._shm, f"({n_sources} x {self.n})"
        )
        self.dist, self.parent = _views(
            self._shm.buf, n_sources, self.n, track_parents
        )
        # deterministic contents even for rows no worker writes (n = 0
        # sources aside): unreachable everywhere, no predecessors.
        self.dist.fill(np.inf)
        if self.parent is not None:
            self.parent.fill(-1)
        self.steps = np.zeros(n_sources, dtype=np.int64)
        self.substeps = np.zeros(n_sources, dtype=np.int64)
        self.max_substeps = np.zeros(n_sources, dtype=np.int64)
        self.relaxations = np.zeros(n_sources, dtype=np.int64)
        self.engine = ""
        self.algorithm = ""

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self.sources)

    @property
    def name(self) -> str:
        """System-wide segment name workers attach by."""
        return self._shm.name

    def result(self, i: int) -> SsspResult:
        """Row ``i`` repackaged as a standard :class:`SsspResult`.

        The arrays are *copies* (safe to keep after the segment is
        unlinked); everything else matches the pickle path bit for bit.
        """
        return SsspResult(
            dist=self.dist[i].copy(),
            parent=self.parent[i].copy() if self.parent is not None else None,
            steps=int(self.steps[i]),
            substeps=int(self.substeps[i]),
            max_substeps=int(self.max_substeps[i]),
            relaxations=int(self.relaxations[i]),
            algorithm=self.algorithm,
            params={"source": int(self.sources[i])},
        )

    def close(self) -> None:
        """Release this process's mapping.

        The matrix's own ``dist``/``parent`` attributes are dropped so
        later attribute access fails loudly, but copies of those views
        held by the caller become dangling (see the class warning) —
        copy data out *before* closing.
        """
        self.dist = self.parent = None
        self._shm.close()

    def unlink(self) -> None:
        """Free the segment system-wide (owner's responsibility)."""
        if not self._unlinked:
            self._unlinked = True
            self._finalizer.detach()  # properly released — no warning at GC
            self._shm.unlink()

    def __enter__(self) -> "DistanceMatrix":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
        self.unlink()


def _row_groups(inverse: np.ndarray, n_unique: int) -> tuple[np.ndarray, np.ndarray]:
    """Group input rows by unique-source id in O(S log S), once.

    Returns ``(order, bounds)``: the rows requesting unique source ``u``
    are ``order[bounds[u]:bounds[u + 1]]`` — the worker-side scatter and
    the parent-side counter fan-out both slice this instead of scanning
    ``inverse`` per source (which would be O(unique × S)).
    """
    order = np.argsort(inverse, kind="stable")
    bounds = np.searchsorted(
        inverse[order], np.arange(n_unique + 1, dtype=np.int64)
    )
    return order, bounds


def _solve_rows(payload: tuple, items: np.ndarray) -> tuple:
    """Pool worker: solve a chunk of unique sources, write rows in place.

    ``items`` indexes the deduplicated source array; each solve's row is
    scattered to every input position that requested that source.  Only
    the per-source counters return through the pipe.  ``unique`` holds
    *input-space* sources: on a reordered preprocessing the worker
    translates to internal numbering for the solve and externalizes the
    row before writing it, so the matrix is always indexed by input ids
    — bit-identical to the pickled ``solve_many`` path.
    """
    (
        graph,
        radii,
        engine,
        track_parents,
        perm,
        inv,
        unique,
        order,
        bounds,
        shm_name,
        n_rows,
    ) = payload
    shm = _attach(shm_name)
    try:
        dist, parent = _views(shm.buf, n_rows, graph.n, track_parents)
        stats = np.zeros((4, len(items)), dtype=np.int64)
        algorithm = ""
        for j, u in enumerate(items):
            source = int(unique[u]) if perm is None else int(perm[unique[u]])
            res = externalize_result(
                solve_with_engine(
                    engine, graph, source, radii, track_parents=track_parents
                ),
                perm,
                inv,
            )
            rows = order[bounds[u] : bounds[u + 1]]
            dist[rows] = res.dist
            if parent is not None:
                parent[rows] = res.parent
            stats[:, j] = (res.steps, res.substeps, res.max_substeps, res.relaxations)
            algorithm = res.algorithm
        return items, stats, algorithm
    finally:
        shm.close()


def solve_many_shm(
    solver: PreprocessedSSSP,
    sources: Iterable[int],
    *,
    engine: str = "auto",
    track_parents: bool = False,
    n_jobs: int = 1,
) -> DistanceMatrix:
    """Batched multi-source solve writing into shared memory.

    Semantics match :meth:`PreprocessedSSSP.solve_many` exactly — same
    engine dispatch, same deduplication of repeated sources, same
    deterministic input-order rows for any ``n_jobs`` — but the result
    is one :class:`DistanceMatrix` instead of a list of pickled
    ``SsspResult`` objects.  The caller owns the returned matrix; use it
    as a context manager (or call ``close()``/``unlink()``) to free the
    segment.
    """
    source_arr = np.asarray(list(sources), dtype=np.int64)
    name = solver.resolve_engine(engine)
    spec = get_engine(name)  # fail fast before allocating the segment
    if track_parents and not spec.supports_parents:
        raise ValueError(f"the {name} engine does not track parents")
    solver.count_queries(len(source_arr))
    dm = DistanceMatrix(source_arr, solver.graph.n, track_parents=track_parents)
    dm.engine = name
    try:
        unique, inverse = np.unique(source_arr, return_inverse=True)
        order, bounds = _row_groups(inverse, len(unique))
        payload = (
            solver.graph,
            solver.radii,
            name,
            track_parents,
            solver.perm,
            solver.inv_perm,
            unique,
            order,
            bounds,
            dm.name,
            len(source_arr),
        )
        blocks = parallel_map_shared(
            _solve_rows,
            payload,
            np.arange(len(unique), dtype=np.int64),
            n_jobs=n_jobs,
        )
        for items, stats, algorithm in blocks:
            for j, u in enumerate(items):
                rows = order[bounds[u] : bounds[u + 1]]
                dm.steps[rows] = stats[0, j]
                dm.substeps[rows] = stats[1, j]
                dm.max_substeps[rows] = stats[2, j]
                dm.relaxations[rows] = stats[3, j]
            if algorithm:
                dm.algorithm = algorithm
    except Exception:
        dm.close()
        dm.unlink()
        raise
    return dm
