"""The query-surface protocol every serving front end is written against.

PR 8 split serving into two implementations of one surface: the
single-graph :class:`~repro.serve.service.RoutingService` and the
shard-routed :class:`~repro.serve.router.ShardRouter`.  The HTTP front
end (and any future async/gRPC front end) is constructed against this
protocol, not a concrete class — sharded serving is a drop-in behind
the same JSON API.

The surface is the contract the planner answer records define:
``distances`` returns a read-only full distance row in *input-graph*
vertex ids, ``route`` a :class:`~repro.serve.planner.Route`,
``nearest`` a :class:`~repro.serve.planner.Nearest`, ``batch`` a list
of those in input order, ``warm`` pre-solves sources, ``stats`` a
JSON-serializable counter/topology snapshot, and ``healthz`` the
liveness payload (status plus shard topology).  Implementations must be
safe to call from many threads — the HTTP server drives one instance
from every worker thread.
"""

from __future__ import annotations

import math
from typing import Iterable, Protocol, Sequence, runtime_checkable

import numpy as np

from .planner import Nearest, Route

__all__ = ["QuerySurface", "json_finite"]


def json_finite(value) -> float | None:
    """``float(value)``, or ``None`` when it is not finite.

    ``stats()`` payloads are served verbatim as JSON, and ``NaN`` /
    ``Infinity`` are not JSON — every surface implementation sanitizes
    unmeasured diagnostics (pre-v3 artifacts carry ``nan`` locality)
    through this one helper so they agree on ``null``.
    """
    value = float(value)
    return value if math.isfinite(value) else None


@runtime_checkable
class QuerySurface(Protocol):
    """Structural protocol for a query-serving backend.

    ``runtime_checkable`` so front ends can fail fast at construction
    (method presence only — signatures are this module's docs).
    """

    def distances(self, source: int) -> np.ndarray:
        """Full distance row from ``source`` (read-only, input ids)."""
        ...

    def route(self, source: int, target: int) -> Route:
        """Exact distance plus (when tracked) a realizing path."""
        ...

    def nearest(self, source: int, k: int) -> Nearest:
        """The ``k`` closest reachable vertices to ``source``."""
        ...

    def batch(self, queries: Sequence) -> list:
        """Mixed query batch, answered in input order."""
        ...

    def warm(self, sources: Iterable[int]) -> None:
        """Pre-solve known-hot sources."""
        ...

    def stats(self) -> dict:
        """JSON-serializable counters + topology snapshot."""
        ...

    def healthz(self) -> dict:
        """Liveness payload: ``status`` plus shard topology summary."""
        ...
