"""Unit tests for the ASCII log-log plotter."""

from repro.analysis import loglog_plot


class TestLogLogPlot:
    def test_renders_markers_and_legend(self):
        out = loglog_plot(
            {"a": [(1, 100), (10, 10), (100, 1)], "b": [(1, 50), (100, 50)]},
            title="T",
        )
        assert out.splitlines()[0] == "T"
        assert "o = a" in out and "x = b" in out
        assert "o" in out

    def test_drops_nonpositive(self):
        out = loglog_plot({"a": [(0, 5), (-1, 2), (3, 0)]})
        assert "(no positive data)" in out

    def test_single_point(self):
        out = loglog_plot({"a": [(10, 10)]})
        assert "o" in out

    def test_inverse_proportional_is_descending_diagonal(self):
        """y = 1000/x on log-log must occupy a descending diagonal: the
        marker column increases while the row increases (lower y)."""
        out = loglog_plot({"s": [(1, 1000), (10, 100), (100, 10), (1000, 1)]},
                          width=40, height=10)
        rows = [
            (r, line.index("o"))
            for r, line in enumerate(out.splitlines())
            if "o" in line and line.startswith("|")
        ]
        cols = [c for _, c in rows]
        assert cols == sorted(cols)
        assert len(rows) >= 4

    def test_axis_labels(self):
        out = loglog_plot({"a": [(1, 1), (10, 10)]}, xlabel="rho", ylabel="steps")
        assert "log10(rho)" in out
        assert "log10(steps)" in out
