"""Tests for the measured Figure 1 (annuli strip chart)."""

import pytest

from repro.analysis import render_annuli
from repro.core import radius_stepping
from repro.core.result import StepTrace
from repro.graphs.generators import grid_2d
from repro.graphs.weights import random_integer_weights


def trace_of(steps):
    return [
        StepTrace(step=i, radius=r, substeps=s, settled=v, relaxations=10)
        for i, (r, s, v) in enumerate(steps)
    ]


class TestRender:
    def test_empty(self):
        assert render_annuli([]) == "(empty trace)"

    def test_one_row_per_step(self):
        out = render_annuli(trace_of([(1.0, 1, 3), (2.0, 2, 5), (4.0, 1, 7)]))
        lines = out.splitlines()
        assert len(lines) == 2 + 3  # header x2 + steps
        assert "d_max = 4" in lines[0]

    def test_bars_cover_axis_monotonically(self):
        out = render_annuli(trace_of([(1.0, 1, 1), (2.0, 1, 1), (8.0, 1, 1)]))
        rows = out.splitlines()[2:]
        # later annuli start where earlier ones end (no overlap on the axis)
        starts = [r.index("#") for r in rows]
        assert starts == sorted(starts)
        # the last bar reaches the right edge of the axis
        assert rows[-1].split("|")[1].rstrip().endswith("#")

    def test_elision_of_long_traces(self):
        t = trace_of([(float(i + 1), 1, 1) for i in range(100)])
        out = render_annuli(t, max_rows=10)
        assert "elided" in out
        assert len(out.splitlines()) < 20

    def test_width_validation(self):
        with pytest.raises(ValueError):
            render_annuli(trace_of([(1.0, 1, 1)]), width=4)


class TestOnRealRun:
    def test_real_trace_renders(self):
        g = random_integer_weights(grid_2d(8, 8), low=1, high=50, seed=0)
        res = radius_stepping(g, 0, 20.0, track_trace=True)
        out = render_annuli(res.trace)
        assert f"annuli of {res.steps} steps" in out
        # settled counts in the chart sum to n - 1 (all but the source)
        total = sum(
            int(line.split()[-2])
            for line in out.splitlines()[2:]
            if line.strip() and "elided" not in line
        )
        assert total == g.n - 1
