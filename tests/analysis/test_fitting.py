"""Tests for the log-log power-law fitter."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import fit_power_law


class TestExactFits:
    def test_inverse_proportionality(self):
        xs = [1, 2, 5, 10, 100]
        ys = [1000 / x for x in xs]
        fit = fit_power_law(xs, ys)
        assert fit.slope == pytest.approx(-1.0)
        assert fit.r_squared == pytest.approx(1.0)
        assert fit.predict(50) == pytest.approx(20.0)

    def test_constant_series_slope_zero(self):
        fit = fit_power_law([1, 2, 4, 8], [7, 7, 7, 7])
        assert fit.slope == pytest.approx(0.0)

    def test_quadratic(self):
        xs = np.array([1.0, 3.0, 9.0, 27.0])
        fit = fit_power_law(xs, 2.5 * xs**2)
        assert fit.slope == pytest.approx(2.0)

    @given(
        slope=st.floats(-3, 3, allow_nan=False),
        c=st.floats(0.1, 100, allow_nan=False),
    )
    @settings(max_examples=40, deadline=None)
    def test_recovers_planted_law(self, slope, c):
        """Noise-free data: the planted slope comes back and the fit is
        (numerically) perfect.  Tolerances are 1e-6, not exact: slopes
        within float-epsilon of zero leave log-variance at rounding scale
        where R² loses a few ulps legitimately."""
        xs = np.array([1.0, 2.0, 4.0, 8.0, 16.0])
        fit = fit_power_law(xs, c * xs**slope)
        assert fit.slope == pytest.approx(slope, abs=1e-6)
        assert fit.r_squared >= 1.0 - 1e-6


class TestNoise:
    def test_r_squared_degrades_with_noise(self):
        rng = np.random.default_rng(0)
        xs = np.logspace(0, 3, 30)
        clean = 100 / xs
        noisy = clean * np.exp(rng.normal(0, 0.5, size=30))
        f_clean = fit_power_law(xs, clean)
        f_noisy = fit_power_law(xs, noisy)
        assert f_noisy.r_squared < f_clean.r_squared
        assert f_noisy.slope == pytest.approx(-1.0, abs=0.5)


class TestValidation:
    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            fit_power_law([1, 2], [0, 3])
        with pytest.raises(ValueError):
            fit_power_law([-1, 2], [1, 3])

    def test_rejects_single_x(self):
        with pytest.raises(ValueError):
            fit_power_law([5, 5], [1, 2])

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            fit_power_law([1, 2, 3], [1, 2])


class TestOnSolverData:
    def test_steps_decay_is_near_inverse_on_grid(self):
        """§5.3: on grids the steps-vs-ρ decay on weighted graphs is
        near-inverse (slope clearly negative, good linearity)."""
        from repro.core import radius_stepping
        from repro.graphs.generators import grid_2d
        from repro.graphs.weights import random_integer_weights
        from repro.preprocess import compute_radii_sweep

        g = random_integer_weights(grid_2d(16, 16), low=1, high=10**4, seed=0)
        rhos = (2, 4, 8, 16, 32)
        radii = compute_radii_sweep(g, rhos)
        steps = [radius_stepping(g, 0, radii[r]).steps for r in rhos]
        fit = fit_power_law(rhos, steps)
        assert fit.slope < -0.4
        assert fit.r_squared > 0.8
