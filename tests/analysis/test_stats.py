"""Unit tests for multi-source aggregation."""

import numpy as np
import pytest

from repro.analysis import aggregate_over_sources, pick_sources
from repro.core import dijkstra_steps, radius_stepping
from repro.graphs.generators import grid_2d

from tests.helpers import random_connected_graph


class TestPickSources:
    def test_all_when_num_ge_n(self):
        assert pick_sources(4, 10).tolist() == [0, 1, 2, 3]

    def test_sample_properties(self):
        s = pick_sources(100, 12, seed=4)
        assert len(s) == 12
        assert len(np.unique(s)) == 12

    def test_deterministic(self):
        assert np.array_equal(pick_sources(50, 5, seed=2), pick_sources(50, 5, seed=2))

    def test_seed_matters(self):
        assert not np.array_equal(
            pick_sources(500, 5, seed=1), pick_sources(500, 5, seed=2)
        )

    def test_invalid(self):
        with pytest.raises(ValueError):
            pick_sources(10, 0)


class TestAggregate:
    def test_means(self):
        g = random_connected_graph(30, 70, seed=0)
        stats = aggregate_over_sources(g, dijkstra_steps, [0, 5, 9])
        assert stats.mean_steps == stats.steps.mean()
        assert len(stats.steps) == 3
        assert stats.worst_max_substeps >= 1
        assert stats.mean_relaxations > 0
        assert stats.mean_substeps >= stats.mean_steps

    def test_solver_callable(self):
        g = grid_2d(5, 5)
        stats = aggregate_over_sources(
            g, lambda gr, s: radius_stepping(gr, s, 1.0), [0, 12, 24]
        )
        assert (stats.steps > 0).all()

    def test_empty_sources(self):
        g = grid_2d(2, 2)
        with pytest.raises(ValueError):
            aggregate_over_sources(g, dijkstra_steps, [])
