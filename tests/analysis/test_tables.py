"""Unit tests for table rendering and number formatting."""

import pytest

from repro.analysis import format_number, render_kv, render_table


class TestFormatNumber:
    def test_factors_two_decimals(self):
        assert format_number(1.6789) == "1.68"
        assert format_number(0.005) == "0.01"

    def test_large_counts_abbreviated(self):
        assert format_number(986_000) == "986K"
        assert format_number(1_252_000) == "1M"

    def test_mid_integers_plain(self):
        assert format_number(1504.0) == "1504"

    def test_special_values(self):
        assert format_number(float("nan")) == "-"
        assert format_number(float("inf")) == "inf"

    def test_decimals_param(self):
        assert format_number(2.3456, decimals=3) == "2.346"


class TestRenderTable:
    def test_alignment_and_separator(self):
        out = render_table(["a", "bb"], [["x", 1.0], ["yy", 22.5]])
        lines = out.splitlines()
        assert lines[0].split(" | ")[-1].strip() == "bb"
        assert set(lines[1]) <= {"-", "+"}
        widths = {len(line) for line in lines}
        assert len(widths) == 1  # all rows equal width

    def test_title(self):
        out = render_table(["c"], [[1]], title="T")
        assert out.splitlines()[0] == "T"

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [["only-one"]])

    def test_numbers_formatted(self):
        out = render_table(["v"], [[986_000.0]])
        assert "986K" in out


class TestRenderKv:
    def test_aligned(self):
        out = render_kv([("key", 1), ("longer_key", "x")], title="H")
        lines = out.splitlines()
        assert lines[0] == "H"
        assert lines[1].index(":") == lines[2].index(":")

    def test_empty(self):
        assert render_kv([]) == ""
