"""Unit tests for the theory-bound formulas."""

import pytest

from repro.analysis import (
    TABLE1_ROWS,
    max_steps_bound,
    max_substeps_bound,
    preprocessing_depth,
    preprocessing_work,
    radius_stepping_depth,
    radius_stepping_work,
)


class TestSubstepsBound:
    def test_k_plus_2(self):
        assert max_substeps_bound(1) == 3
        assert max_substeps_bound(4) == 6

    def test_negative_k(self):
        with pytest.raises(ValueError):
            max_substeps_bound(-1)


class TestStepsBound:
    def test_formula(self):
        # ceil(100/10) * (1 + ceil(log2(10*4))) = 10 * (1 + 6) = 70
        assert max_steps_bound(100, 10, 4.0) == 70

    def test_unweighted_rho1(self):
        # ceil(n/1) * (1 + ceil(log2(1))) = n
        assert max_steps_bound(50, 1, 1.0) == 50

    def test_monotone_decreasing_in_rho(self):
        vals = [max_steps_bound(1000, r, 100.0) for r in (1, 2, 8, 32, 128)]
        assert vals == sorted(vals, reverse=True)

    def test_invalid(self):
        with pytest.raises(ValueError):
            max_steps_bound(0, 1, 1.0)
        with pytest.raises(ValueError):
            max_steps_bound(5, 0, 1.0)
        with pytest.raises(ValueError):
            max_steps_bound(5, 1, 0.0)


class TestCostFormulas:
    def test_work_scales_with_m(self):
        assert radius_stepping_work(100, 2000) == 2 * radius_stepping_work(100, 1000)

    def test_depth_inverse_in_rho(self):
        d1 = radius_stepping_depth(1000, 10, 100.0)
        d2 = radius_stepping_depth(1000, 20, 100.0)
        assert d1 > d2

    def test_preprocessing_variants(self):
        assert preprocessing_work(100, 300, 8, bst=True) >= preprocessing_work(
            100, 300, 8
        )
        assert preprocessing_depth(16) == 256
        assert preprocessing_depth(16, bst=True) == 64


class TestTable1:
    def test_rows_present(self):
        algos = {r.algorithm for r in TABLE1_ROWS}
        assert "This work" in algos
        assert "Standard BFS" in algos
        assert len(TABLE1_ROWS) == 11

    def test_settings_partition(self):
        settings = {r.setting for r in TABLE1_ROWS}
        assert settings == {"Unweighted (BFS)", "Weighted SSSP"}
