"""Suite-wide pytest/hypothesis configuration.

Hypothesis profiles keep the property tests' budget predictable on a
single-core box:

* ``repro`` (default): moderate example counts, no deadline (solver
  properties legitimately vary in runtime with the generated graph).
* ``thorough``: 10x examples for release validation —
  ``HYPOTHESIS_PROFILE=thorough pytest tests/``.
"""

from __future__ import annotations

import os

from hypothesis import HealthCheck, settings

settings.register_profile(
    "repro",
    deadline=None,
    max_examples=25,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.register_profile(
    "thorough",
    deadline=None,
    max_examples=250,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "repro"))
