"""Unit tests for round-synchronous Bellman–Ford."""

import numpy as np
import pytest

from repro.core import bellman_ford, dijkstra, dijkstra_minhop
from repro.graphs import from_edge_list
from repro.graphs.generators import path_graph, star_graph

from tests.helpers import assert_valid_parents, random_connected_graph


class TestCorrectness:
    @pytest.mark.parametrize("seed", range(4))
    def test_matches_dijkstra(self, seed):
        g = random_connected_graph(35, 80, seed=seed)
        res = bellman_ford(g, 1)
        assert np.allclose(res.dist, dijkstra(g, 1).dist)

    def test_disconnected(self):
        g = from_edge_list(4, [(0, 1, 3.0)])
        res = bellman_ford(g, 0)
        assert np.isinf(res.dist[2])

    def test_parents(self):
        g = random_connected_graph(20, 45, seed=9)
        res = bellman_ford(g, 0, track_parents=True)
        assert_valid_parents(g, res.dist, res.parent, 0)

    def test_bad_source(self):
        with pytest.raises(ValueError):
            bellman_ford(path_graph(3), 9)


class TestRounds:
    """Round convention: hop eccentricity + 1 verification round — the same
    convention under which Thm 3.2's k+2 counts its confirming substep."""

    def test_path_rounds_equal_length_plus_verify(self):
        res = bellman_ford(path_graph(6), 0)
        assert res.substeps == 5 + 1  # one round per hop level + verify
        assert res.steps == 1  # Bellman–Ford is a single "step"

    def test_star_one_round_plus_verify(self):
        res = bellman_ford(star_graph(5), 0)
        assert res.substeps == 1 + 1

    def test_rounds_equal_minhop_radius_plus_one(self):
        g = random_connected_graph(40, 90, seed=5)
        res = bellman_ford(g, 0)
        _, hops, _ = dijkstra_minhop(g, 0)
        assert res.substeps == hops.max() + 1
