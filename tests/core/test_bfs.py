"""Unit tests for level-synchronous BFS and the frontier gather kernel."""

import numpy as np
import pytest

from repro.core import bfs, bfs_levels, dijkstra, gather_frontier_arcs
from repro.graphs import from_edge_list
from repro.graphs.generators import grid_2d, path_graph, star_graph

from tests.helpers import random_connected_graph


class TestBfsLevels:
    def test_path(self):
        levels, rounds = bfs_levels(path_graph(5), 0)
        assert levels.tolist() == [0, 1, 2, 3, 4]
        assert rounds == 4

    def test_star_one_round(self):
        levels, rounds = bfs_levels(star_graph(8), 0)
        assert rounds == 1
        assert (levels[1:] == 1).all()

    def test_disconnected_minus_one(self):
        g = from_edge_list(4, [(0, 1)])
        levels, rounds = bfs_levels(g, 0)
        assert levels.tolist() == [0, 1, -1, -1]

    def test_matches_unweighted_dijkstra(self):
        g = random_connected_graph(60, 150, seed=4, weighted=False)
        levels, _ = bfs_levels(g, 7)
        ref = dijkstra(g, 7).dist
        assert np.array_equal(levels.astype(float), ref)

    def test_bad_source(self):
        with pytest.raises(ValueError):
            bfs_levels(path_graph(2), 2)


class TestBfsResult:
    def test_dist_semantics(self):
        g = from_edge_list(4, [(0, 1), (1, 2)])
        res = bfs(g, 0)
        assert res.dist[2] == 2.0
        assert np.isinf(res.dist[3])
        assert res.algorithm == "bfs"

    def test_rounds_equal_eccentricity(self):
        g = grid_2d(4, 9)
        res = bfs(g, 0)
        assert res.steps == 3 + 8


class TestGatherFrontierArcs:
    def test_flattens_all_arcs(self):
        g = grid_2d(3, 3)
        frontier = np.array([0, 4], dtype=np.int64)
        arcpos, tails = gather_frontier_arcs(g, frontier)
        assert len(arcpos) == g.degree(0) + g.degree(4)
        assert set(tails.tolist()) == {0, 4}
        # arc positions point into the right adjacency slices
        for pos, tail in zip(arcpos, tails):
            assert g.indptr[tail] <= pos < g.indptr[tail + 1]

    def test_empty_frontier(self):
        g = grid_2d(2, 2)
        arcpos, tails = gather_frontier_arcs(g, np.empty(0, dtype=np.int64))
        assert len(arcpos) == 0 and len(tails) == 0

    def test_isolated_vertices(self):
        g = from_edge_list(3, [(0, 1)])
        arcpos, tails = gather_frontier_arcs(g, np.array([2], dtype=np.int64))
        assert len(arcpos) == 0

    def test_order_matches_csr(self):
        g = grid_2d(3, 4)
        frontier = np.array([5, 1], dtype=np.int64)
        arcpos, _ = gather_frontier_arcs(g, frontier)
        expect = np.concatenate(
            [np.arange(g.indptr[u], g.indptr[u + 1]) for u in frontier]
        )
        assert np.array_equal(arcpos, expect)
