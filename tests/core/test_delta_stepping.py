"""Unit tests for the ∆-stepping baseline."""

import numpy as np
import pytest

from repro.core import delta_stepping, dijkstra, suggest_delta
from repro.graphs import from_edge_list
from repro.graphs.generators import grid_2d, path_graph
from repro.graphs.weights import random_integer_weights

from tests.helpers import random_connected_graph


class TestCorrectness:
    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("delta", [1.0, 7.0, 100.0, None])
    def test_matches_dijkstra(self, seed, delta):
        g = random_connected_graph(30, 70, seed=seed, weight_high=20)
        res = delta_stepping(g, 0, delta)
        assert np.allclose(res.dist, dijkstra(g, 0).dist)

    def test_disconnected(self):
        g = from_edge_list(4, [(0, 1, 2.0)])
        res = delta_stepping(g, 0, 1.0)
        assert np.isinf(res.dist[3])

    def test_unweighted(self):
        g = grid_2d(6, 6)
        res = delta_stepping(g, 0, 1.0)
        assert np.allclose(res.dist, dijkstra(g, 0).dist)


class TestParameters:
    def test_invalid_delta(self):
        g = path_graph(3)
        for bad in (0.0, -1.0, float("inf"), float("nan")):
            with pytest.raises(ValueError):
                delta_stepping(g, 0, bad)

    def test_bad_source(self):
        with pytest.raises(ValueError):
            delta_stepping(path_graph(3), 4, 1.0)

    def test_suggest_delta_positive(self):
        g = random_connected_graph(30, 60, seed=0)
        assert suggest_delta(g) > 0

    def test_suggest_delta_degenerate_weight_ranges(self):
        """Regression: all-zero weights used to suggest ∆ = inf
        (``min_positive_weight`` is inf when no weight is positive),
        which ``delta_stepping`` then rejected; degenerate ranges must
        clamp to a positive finite floor instead."""
        import math

        from repro.graphs.weights import uniform_weights

        all_zero = uniform_weights(
            random_connected_graph(20, 45, seed=3, weighted=False),
            low=0.0,
            high=0.0,
        )
        d = suggest_delta(all_zero)
        assert d > 0 and math.isfinite(d)
        res = delta_stepping(all_zero, 0)  # default delta must be usable
        assert np.all(res.dist == 0.0)

    def test_suggest_delta_edgeless(self):
        import math

        from repro.graphs.csr import CSRGraph

        lonely = CSRGraph(
            np.zeros(4, dtype=np.int64),
            np.empty(0, dtype=np.int64),
            np.empty(0),
        )
        d = suggest_delta(lonely)
        assert d > 0 and math.isfinite(d)


class TestStepBehaviour:
    def test_huge_delta_single_bucket(self):
        """∆ ≥ max distance → Bellman–Ford-like single step."""
        g = random_connected_graph(20, 50, seed=1, weight_high=5)
        res = delta_stepping(g, 0, 1e9)
        assert res.steps == 1

    def test_small_delta_many_steps(self):
        g = random_integer_weights(grid_2d(5, 5), low=1, high=10, seed=2)
        fine = delta_stepping(g, 0, 1.0)
        coarse = delta_stepping(g, 0, 50.0)
        assert fine.steps > coarse.steps

    def test_trace(self):
        g = random_connected_graph(20, 45, seed=3, weight_high=10)
        res = delta_stepping(g, 0, 10.0, track_trace=True)
        assert res.trace is not None
        assert len(res.trace) == res.steps
        assert sum(t.substeps for t in res.trace) == res.substeps
        assert res.max_substeps == max(t.substeps for t in res.trace)

    def test_light_heavy_split(self):
        """Heavy-only graph: each bucket needs exactly 1 light + 1 heavy
        phase."""
        g = from_edge_list(3, [(0, 1, 10.0), (1, 2, 10.0)])
        res = delta_stepping(g, 0, 1.0, track_trace=True)
        assert all(t.substeps == 2 for t in res.trace)
