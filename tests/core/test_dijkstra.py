"""Unit tests for Dijkstra variants (the correctness oracle itself)."""

import numpy as np
import pytest

from repro.core import bfs_levels, dijkstra, dijkstra_minhop, dijkstra_steps
from repro.graphs import from_edge_list
from repro.graphs.generators import grid_2d, path_graph
from repro.graphs.weights import random_integer_weights

from tests.helpers import (
    assert_valid_parents,
    brute_force_distances,
    random_connected_graph,
)


class TestDijkstra:
    @pytest.mark.parametrize("seed", range(5))
    def test_matches_brute_force(self, seed):
        g = random_connected_graph(30, 70, seed=seed)
        res = dijkstra(g, 0)
        assert np.allclose(res.dist, brute_force_distances(g, 0))

    def test_parents_realize_distances(self):
        g = random_connected_graph(25, 60, seed=3)
        res = dijkstra(g, 4)
        assert_valid_parents(g, res.dist, res.parent, 4)

    def test_unreachable_inf(self):
        g = from_edge_list(4, [(0, 1, 2.0), (2, 3, 1.0)])
        res = dijkstra(g, 0)
        assert res.dist[1] == 2.0
        assert np.isinf(res.dist[2]) and np.isinf(res.dist[3])
        assert res.reached == 2

    def test_source_zero(self):
        res = dijkstra(path_graph(4), 2)
        assert res.dist[2] == 0.0

    def test_track_parents_off(self):
        assert dijkstra(path_graph(3), 0, track_parents=False).parent is None

    def test_bad_source(self):
        with pytest.raises(ValueError):
            dijkstra(path_graph(3), 5)

    def test_path_reconstruction(self):
        g = from_edge_list(4, [(0, 1, 1.0), (1, 2, 1.0), (0, 2, 5.0), (2, 3, 1.0)])
        res = dijkstra(g, 0)
        assert res.path_to(3) == [0, 1, 2, 3]

    def test_zero_weight_edges(self):
        g = from_edge_list(3, [(0, 1, 0.0), (1, 2, 0.0)])
        res = dijkstra(g, 0)
        assert np.array_equal(res.dist, [0.0, 0.0, 0.0])


class TestDijkstraMinhop:
    def test_distances_match_plain(self):
        g = random_connected_graph(40, 90, seed=1)
        dist, hops, parent = dijkstra_minhop(g, 0)
        assert np.allclose(dist, dijkstra(g, 0).dist)

    def test_hops_are_minimum_over_shortest_paths(self):
        # Two shortest paths to 3: 0-1-2-3 (3 hops) and 0-4-3 (2 hops),
        # both weight 3.
        g = from_edge_list(
            5,
            [(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (0, 4, 1.5), (4, 3, 1.5)],
        )
        dist, hops, parent = dijkstra_minhop(g, 0)
        assert dist[3] == 3.0
        assert hops[3] == 2
        assert parent[3] == 4

    def test_unweighted_hops_equal_bfs(self):
        g = grid_2d(5, 6)
        dist, hops, _ = dijkstra_minhop(g, 0)
        levels, _ = bfs_levels(g, 0)
        assert np.array_equal(hops, levels)

    def test_unreachable_hops_minus_one(self):
        g = from_edge_list(3, [(0, 1, 1.0)])
        _, hops, _ = dijkstra_minhop(g, 0)
        assert hops[2] == -1

    def test_parent_chain_has_min_hops(self):
        g = random_integer_weights(grid_2d(5, 5), low=1, high=3, seed=5)
        dist, hops, parent = dijkstra_minhop(g, 0)
        for v in range(g.n):
            count = 0
            u = v
            while parent[u] >= 0:
                u = int(parent[u])
                count += 1
            assert count == hops[v]

    def test_bad_source(self):
        with pytest.raises(ValueError):
            dijkstra_minhop(path_graph(3), -1)


class TestDijkstraSteps:
    def test_distances_exact(self):
        g = random_connected_graph(30, 60, seed=2)
        res = dijkstra_steps(g, 0)
        assert np.allclose(res.dist, dijkstra(g, 0).dist)

    def test_unweighted_steps_equal_eccentricity(self):
        g = grid_2d(4, 7)
        res = dijkstra_steps(g, 0)
        _, rounds = bfs_levels(g, 0)
        assert res.steps == rounds

    def test_ties_batched(self):
        # Star: all leaves at equal distance settle in one step.
        from repro.graphs.generators import star_graph

        res = dijkstra_steps(star_graph(6), 0)
        assert res.steps == 1
