"""Tests for the landmark (Ullman–Yannakakis / Klein–Subramanian) baseline."""

import numpy as np
import pytest

from repro.core import (
    bfs,
    dijkstra,
    hop_limited_distances,
    landmark_sssp,
    sample_landmarks,
)
from repro.graphs.generators import grid_2d, path_graph

from tests.helpers import random_connected_graph


class TestHopLimited:
    def test_path_truncation(self):
        g = path_graph(8)
        d = hop_limited_distances(g, 0, 3)
        assert d[:4].tolist() == [0, 1, 2, 3]
        assert np.isinf(d[4:]).all()

    def test_full_hops_is_exact(self):
        g = random_connected_graph(30, 70, seed=0)
        d = hop_limited_distances(g, 0, g.n)
        assert np.allclose(d, dijkstra(g, 0).dist)

    def test_weighted_hop_limit_not_truncated_dijkstra(self):
        """d_t is the min over <=t-edge paths — a 2-hop light path must
        lose to a 1-hop heavy edge at t=1."""
        from repro.graphs import from_edge_list

        g = from_edge_list(3, [(0, 1, 1.0), (1, 2, 1.0), (0, 2, 5.0)])
        d1 = hop_limited_distances(g, 0, 1)
        assert d1[2] == 5.0  # only the direct edge fits in one hop
        d2 = hop_limited_distances(g, 0, 2)
        assert d2[2] == 2.0

    def test_monotone_in_t(self):
        g = random_connected_graph(25, 60, seed=1)
        prev = hop_limited_distances(g, 0, 1)
        for t in (2, 4, 8):
            cur = hop_limited_distances(g, 0, t)
            assert np.all(cur <= prev + 1e-12)
            prev = cur


class TestSampleLandmarks:
    def test_source_always_included(self):
        lm = sample_landmarks(100, 10, source=42, seed=0)
        assert 42 in lm

    def test_sorted_unique(self):
        lm = sample_landmarks(200, 5, source=0, seed=1)
        assert np.array_equal(lm, np.unique(lm))

    def test_count_scales_inverse_t(self):
        small_t = sample_landmarks(500, 2, source=0, seed=2)
        big_t = sample_landmarks(500, 50, source=0, seed=2)
        assert len(big_t) < len(small_t)

    def test_validation(self):
        with pytest.raises(ValueError):
            sample_landmarks(10, 0, source=0)
        with pytest.raises(ValueError):
            sample_landmarks(10, 2, source=0, oversample=0)


class TestLandmarkSssp:
    @pytest.mark.parametrize("seed", range(4))
    def test_exact_on_weighted(self, seed):
        g = random_connected_graph(50, 120, seed=seed, weight_high=9)
        res = landmark_sssp(g, 0, t=6, seed=seed)
        assert np.allclose(res.dist, dijkstra(g, 0).dist)

    def test_exact_on_unweighted_grid(self):
        g = grid_2d(8, 8)
        res = landmark_sssp(g, 5, t=5, seed=0)
        assert np.allclose(res.dist, bfs(g, 5).dist)

    def test_depth_is_t(self):
        g = grid_2d(6, 6)
        res = landmark_sssp(g, 0, t=4, seed=0)
        assert res.substeps == 4

    def test_large_t_needs_few_landmarks(self):
        """With t >= n the sample shrinks to ~oversample·ln n landmarks
        and each hop-limited search is a full Bellman–Ford."""
        import math

        g = random_connected_graph(20, 45, seed=3)
        res = landmark_sssp(g, 0, t=g.n, seed=0)
        assert np.allclose(res.dist, dijkstra(g, 0).dist)
        assert res.params["landmarks"] <= math.ceil(3 * math.log(g.n)) + 1

    def test_work_depth_tradeoff_vs_radius_stepping(self):
        """Table 1's contrast: at comparable depth the landmark family
        pays far more work (relaxations) than Radius-Stepping."""
        from repro.core import radius_stepping
        from repro.preprocess import build_kr_graph

        g = random_connected_graph(120, 300, seed=4, weight_high=9)
        pre = build_kr_graph(g, k=2, rho=16, heuristic="dp")
        rs = radius_stepping(pre.graph, 0, pre.radii)
        lm = landmark_sssp(g, 0, t=8, seed=0)
        assert np.allclose(lm.dist, rs.dist)
        assert lm.relaxations > rs.relaxations

    def test_bad_source(self):
        with pytest.raises(ValueError):
            landmark_sssp(path_graph(4), 9, t=2)
