"""Unit + property tests for the vectorized Radius-Stepping engine."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    as_radii,
    bellman_ford,
    bfs_levels,
    dijkstra,
    radius_stepping,
)
from repro.graphs import from_edge_list
from repro.graphs.generators import grid_2d, path_graph, star_graph
from repro.graphs.weights import random_integer_weights
from repro.pram import Ledger

from tests.helpers import assert_valid_parents, random_connected_graph


class TestCorrectnessAnyRadii:
    """§3: 'The algorithm is correct for any radii r(·).'"""

    @pytest.mark.parametrize("seed", range(5))
    def test_random_radii(self, seed):
        g = random_connected_graph(40, 90, seed=seed)
        rng = np.random.default_rng(seed)
        radii = rng.uniform(0, 30, size=g.n)
        res = radius_stepping(g, 0, radii)
        assert np.allclose(res.dist, dijkstra(g, 0).dist)

    @given(
        n=st.integers(5, 25),
        seed=st.integers(0, 10**6),
        radius=st.floats(0, 100, allow_nan=False),
    )
    @settings(max_examples=40, deadline=None)
    def test_scalar_radius_property(self, n, seed, radius):
        g = random_connected_graph(n, 2 * n, seed=seed, weight_high=10)
        res = radius_stepping(g, 0, radius)
        assert np.allclose(res.dist, dijkstra(g, 0).dist)

    def test_disconnected(self):
        g = from_edge_list(5, [(0, 1, 2.0), (2, 3, 1.0)])
        res = radius_stepping(g, 0, 1.0)
        assert res.dist[1] == 2.0
        assert np.isinf(res.dist[2:]).all()

    def test_single_vertex(self):
        g = from_edge_list(1, [])
        res = radius_stepping(g, 0, 0.0)
        assert res.steps == 0 and res.dist[0] == 0.0

    def test_zero_weight_edges(self):
        g = from_edge_list(3, [(0, 1, 0.0), (1, 2, 1.0)])
        res = radius_stepping(g, 0, 0.0)
        assert res.dist.tolist() == [0.0, 0.0, 1.0]


class TestDegenerations:
    """§3's r = 0 / ∆ / ∞ special cases."""

    def test_zero_radius_is_dijkstra_steps(self):
        g = random_connected_graph(25, 60, seed=1, weight_high=10**6)
        res = radius_stepping(g, 0, 0.0)
        # distinct weights -> essentially one settle per step
        assert res.steps >= g.n - 5
        assert res.max_substeps == 1

    def test_infinite_radius_is_bellman_ford(self):
        g = random_connected_graph(25, 60, seed=2)
        res = radius_stepping(g, 0, np.inf)
        bf = bellman_ford(g, 0)
        assert res.steps == 1
        # Algorithm 1's Line 2 relaxes N(s) before the substep loop, so the
        # standalone Bellman–Ford pays exactly one extra round for it.
        assert res.substeps == bf.substeps - 1
        assert np.allclose(res.dist, bf.dist)

    def test_unweighted_zero_radius_counts_bfs_levels(self):
        g = grid_2d(5, 8)
        res = radius_stepping(g, 0, 0.0)
        _, rounds = bfs_levels(g, 0)
        assert res.steps == rounds


class TestInstrumentation:
    def test_trace_consistency(self):
        g = random_connected_graph(30, 70, seed=3)
        res = radius_stepping(g, 0, 5.0, track_trace=True)
        assert len(res.trace) == res.steps
        assert sum(t.substeps for t in res.trace) == res.substeps
        assert sum(t.settled for t in res.trace) == res.reached - 1  # source
        radii_seq = [t.radius for t in res.trace]
        assert radii_seq == sorted(radii_seq), "d_i must be non-decreasing"

    def test_parents(self):
        g = random_connected_graph(30, 70, seed=4)
        res = radius_stepping(g, 2, 10.0, track_parents=True)
        assert_valid_parents(g, res.dist, res.parent, 2)

    def test_ledger_charges(self):
        g = random_connected_graph(20, 50, seed=5)
        ledger = Ledger()
        radius_stepping(g, 0, 3.0, ledger=ledger)
        assert ledger.work > 0 and ledger.depth > 0
        assert "substep relax" in ledger.by_label

    def test_relaxations_counted(self):
        g = star_graph(5)
        res = radius_stepping(g, 0, 0.0)
        assert res.relaxations > 0


class TestAsRadii:
    def test_none_is_zeros(self):
        g = path_graph(3)
        assert np.array_equal(as_radii(g, None), np.zeros(3))

    def test_scalar_broadcast(self):
        g = path_graph(3)
        assert np.array_equal(as_radii(g, 2.5), np.full(3, 2.5))

    def test_array_passthrough(self):
        g = path_graph(3)
        r = np.array([0.0, 1.0, 2.0])
        assert np.array_equal(as_radii(g, r), r)

    def test_rejects_negative(self):
        g = path_graph(3)
        with pytest.raises(ValueError):
            as_radii(g, -1.0)
        with pytest.raises(ValueError):
            as_radii(g, np.array([0.0, -2.0, 0.0]))

    def test_rejects_nan(self):
        g = path_graph(3)
        with pytest.raises(ValueError):
            as_radii(g, np.array([0.0, np.nan, 0.0]))

    def test_rejects_bad_shape(self):
        g = path_graph(3)
        with pytest.raises(ValueError):
            as_radii(g, np.zeros(4))

    def test_bad_source(self):
        with pytest.raises(ValueError):
            radius_stepping(path_graph(3), 7, 0.0)


class TestMonotonicity:
    def test_larger_radii_fewer_steps(self):
        """Growing every radius can only merge annuli (d_i grows)."""
        g = random_integer_weights(grid_2d(8, 8), low=1, high=50, seed=6)
        steps = [
            radius_stepping(g, 0, float(r)).steps for r in (0, 10, 50, 200, 10**9)
        ]
        assert steps[0] >= steps[1] >= steps[2] >= steps[3] >= steps[-1]
        assert steps[-1] == 1
