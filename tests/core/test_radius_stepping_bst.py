"""Cross-validation of the Algorithm-2 (BST) engine.

The vectorized engine and the faithful BST engine must agree *exactly* on
distances, steps, and total substeps — they implement the same algorithm
with different data structures.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import dijkstra, radius_stepping, radius_stepping_bst
from repro.graphs import from_edge_list
from repro.graphs.generators import grid_2d, path_graph
from repro.pram import Ledger

from tests.helpers import random_connected_graph


class TestParity:
    @pytest.mark.parametrize("seed", range(6))
    def test_engines_agree(self, seed):
        g = random_connected_graph(30, 70, seed=seed, weight_high=15)
        rng = np.random.default_rng(seed)
        radii = rng.integers(0, 12, size=g.n).astype(float)
        a = radius_stepping(g, 0, radii)
        b = radius_stepping_bst(g, 0, radii)
        assert np.allclose(a.dist, b.dist)
        assert a.steps == b.steps
        assert a.substeps == b.substeps
        assert a.max_substeps == b.max_substeps

    @given(
        n=st.integers(4, 20),
        seed=st.integers(0, 10**6),
        rmax=st.integers(0, 20),
    )
    @settings(max_examples=30, deadline=None)
    def test_parity_property(self, n, seed, rmax):
        g = random_connected_graph(n, 2 * n, seed=seed, weight_high=8)
        rng = np.random.default_rng(seed + 1)
        radii = rng.integers(0, rmax + 1, size=g.n).astype(float)
        a = radius_stepping(g, 0, radii)
        b = radius_stepping_bst(g, 0, radii)
        assert np.allclose(a.dist, b.dist)
        assert (a.steps, a.substeps) == (b.steps, b.substeps)


class TestStandalone:
    def test_matches_dijkstra(self):
        g = random_connected_graph(25, 55, seed=7)
        res = radius_stepping_bst(g, 0, 5.0)
        assert np.allclose(res.dist, dijkstra(g, 0).dist)

    def test_disconnected(self):
        g = from_edge_list(4, [(0, 1, 1.0)])
        res = radius_stepping_bst(g, 0, 2.0)
        assert np.isinf(res.dist[2])

    def test_trace(self):
        g = grid_2d(4, 4)
        res = radius_stepping_bst(g, 0, 1.0, track_trace=True)
        assert len(res.trace) == res.steps
        assert sum(t.settled for t in res.trace) == g.n - 1

    def test_bad_source(self):
        with pytest.raises(ValueError):
            radius_stepping_bst(path_graph(3), -1, 0.0)


class TestLedger:
    def test_costs_charged_to_q_and_r(self):
        g = random_connected_graph(20, 50, seed=8)
        ledger = Ledger()
        radius_stepping_bst(g, 0, 4.0, ledger=ledger)
        assert ledger.work > 0
        assert {"Q", "R"} <= set(ledger.by_label)

    def test_more_radius_less_depth(self):
        """Bigger radii -> fewer steps -> strictly less charged depth."""
        g = random_connected_graph(40, 90, seed=9, weight_high=100)
        lo, hi = Ledger(), Ledger()
        radius_stepping_bst(g, 0, 0.0, ledger=lo)
        radius_stepping_bst(g, 0, 1e9, ledger=hi)
        assert hi.depth < lo.depth
