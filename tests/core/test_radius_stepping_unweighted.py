"""Tests for the §3.4 unweighted (BFS-style) Radius-Stepping engine."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    bfs,
    radius_stepping,
    radius_stepping_unweighted,
)
from repro.graphs import from_edge_list, unit_weights
from repro.graphs.generators import grid_2d, path_graph, scale_free
from repro.pram import Ledger
from repro.preprocess import compute_radii

from tests.helpers import random_connected_graph


class TestParityWithGeneralEngine:
    """§3.4 changes the data structures, not the algorithm: steps,
    substeps, and distances must match the general engine exactly."""

    @pytest.mark.parametrize("seed", range(5))
    def test_random_graphs(self, seed):
        g = random_connected_graph(40, 90, seed=seed, weighted=False)
        rng = np.random.default_rng(seed)
        radii = rng.integers(0, 4, size=g.n).astype(float)
        a = radius_stepping(g, 0, radii)
        b = radius_stepping_unweighted(g, 0, radii)
        assert np.allclose(a.dist, b.dist)
        assert a.steps == b.steps
        assert a.substeps == b.substeps
        assert a.max_substeps == b.max_substeps

    @given(
        n=st.integers(4, 30),
        seed=st.integers(0, 10**6),
        rmax=st.integers(0, 5),
    )
    @settings(max_examples=25, deadline=None)
    def test_parity_property(self, n, seed, rmax):
        g = random_connected_graph(n, 2 * n, seed=seed, weighted=False)
        rng = np.random.default_rng(seed + 1)
        radii = rng.integers(0, rmax + 1, size=g.n).astype(float)
        a = radius_stepping(g, 0, radii)
        b = radius_stepping_unweighted(g, 0, radii)
        assert np.allclose(a.dist, b.dist)
        assert (a.steps, a.substeps) == (b.steps, b.substeps)

    def test_with_real_rho_radii(self):
        g = grid_2d(9, 9)
        radii = compute_radii(g, rho=6)
        a = radius_stepping(g, 0, radii)
        b = radius_stepping_unweighted(g, 0, radii)
        assert np.allclose(a.dist, b.dist)
        assert a.steps == b.steps


class TestSemantics:
    def test_zero_radius_counts_bfs_levels(self):
        g = grid_2d(6, 7)
        res = radius_stepping_unweighted(g, 0, 0.0)
        assert res.steps == bfs(g, 0).steps
        assert np.allclose(res.dist, bfs(g, 0).dist)

    def test_distances_are_hops(self):
        g = path_graph(8)
        res = radius_stepping_unweighted(g, 0, 2.0)
        assert res.dist.tolist() == list(range(8))

    def test_scale_free_few_steps(self):
        """Hubs keep the hop diameter tiny, so even moderate radii collapse
        the run to a handful of steps (the paper's §5.3 webgraph story)."""
        g = scale_free(300, attach=3, seed=0)
        bfs_steps = radius_stepping_unweighted(g, 0, 0.0).steps
        ball_steps = radius_stepping_unweighted(g, 0, 2.0).steps
        assert ball_steps <= bfs_steps

    def test_disconnected(self):
        g = from_edge_list(5, [(0, 1, 1.0), (2, 3, 1.0)])
        res = radius_stepping_unweighted(g, 0, 1.0)
        assert res.dist[1] == 1.0
        assert np.isinf(res.dist[2:]).all()

    def test_single_vertex(self):
        g = from_edge_list(1, [])
        res = radius_stepping_unweighted(g, 0, 0.0)
        assert res.steps == 0 and res.dist[0] == 0.0

    def test_trace(self):
        g = grid_2d(5, 5)
        res = radius_stepping_unweighted(g, 0, 1.0, track_trace=True)
        assert len(res.trace) == res.steps
        assert sum(t.settled for t in res.trace) == g.n - 1
        radii_seq = [t.radius for t in res.trace]
        assert radii_seq == sorted(radii_seq)


class TestValidation:
    def test_rejects_weighted_graph(self):
        g = from_edge_list(3, [(0, 1, 2.5), (1, 2, 1.0)])
        with pytest.raises(ValueError, match="unit weights"):
            radius_stepping_unweighted(g, 0, 0.0)

    def test_unit_weights_fixes_it(self):
        g = from_edge_list(3, [(0, 1, 2.5), (1, 2, 1.0)])
        res = radius_stepping_unweighted(unit_weights(g), 0, 0.0)
        assert res.dist.tolist() == [0.0, 1.0, 2.0]

    def test_bad_source(self):
        with pytest.raises(ValueError):
            radius_stepping_unweighted(path_graph(3), 5, 0.0)


class TestLedger:
    def test_no_log_n_factor(self):
        """Lemma 3.10: unweighted work is O(m + n) — the ledger's total
        work stays within a small constant of the arcs touched, with no
        tree (log n) term."""
        g = grid_2d(12, 12)
        ledger = Ledger()
        res = radius_stepping_unweighted(g, 0, 1.0, ledger=ledger)
        assert ledger.work <= 4.0 * (res.relaxations + g.n)
        assert "substep relax" in ledger.by_label
