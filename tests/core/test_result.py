"""Unit tests for the SsspResult record."""

import numpy as np
import pytest

from repro.core import SsspResult, StepTrace, dijkstra
from repro.graphs import from_edge_list


@pytest.fixture
def solved():
    g = from_edge_list(4, [(0, 1, 1.0), (1, 2, 2.0), (0, 3, 10.0)])
    return dijkstra(g, 0)


class TestPathTo:
    def test_path(self, solved):
        assert solved.path_to(2) == [0, 1, 2]

    def test_source_path(self, solved):
        assert solved.path_to(0) == [0]

    def test_unreachable(self):
        g = from_edge_list(3, [(0, 1, 1.0)])
        res = dijkstra(g, 0)
        with pytest.raises(ValueError, match="unreachable"):
            res.path_to(2)

    def test_no_parents_recorded(self):
        res = SsspResult(dist=np.array([0.0, 1.0]))
        with pytest.raises(ValueError, match="parents"):
            res.path_to(1)

    def test_cycle_guard(self):
        res = SsspResult(
            dist=np.array([0.0, 1.0, 1.0]),
            parent=np.array([-1, 2, 1]),
        )
        with pytest.raises(RuntimeError, match="cycle"):
            res.path_to(1)


class TestReached:
    def test_counts_finite(self):
        res = SsspResult(dist=np.array([0.0, np.inf, 3.0]))
        assert res.reached == 2


class TestStepTrace:
    def test_frozen(self):
        t = StepTrace(step=0, radius=1.0, substeps=2, settled=3, relaxations=4)
        with pytest.raises(AttributeError):
            t.step = 1

    def test_repr_mentions_algorithm(self, solved):
        assert "dijkstra" in repr(solved)
