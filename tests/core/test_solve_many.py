"""Batched multi-source queries: determinism, parallel fan-out, dispatch."""

import numpy as np
import pytest

from repro.core import dijkstra
from repro.core.solver import PreprocessedSSSP
from repro.graphs.generators import grid_2d

from tests.helpers import random_connected_graph

SOURCES = [0, 7, 19, 33, 42, 55, 11, 3]


@pytest.fixture(scope="module")
def solver():
    g = random_connected_graph(60, 140, seed=8, weight_high=30)
    return g, PreprocessedSSSP(g, k=2, rho=10, heuristic="dp")


class TestDeterminism:
    @pytest.mark.parametrize("n_jobs", [1, 4])
    def test_matches_oracle_any_worker_count(self, solver, n_jobs):
        g, sp = solver
        results = sp.solve_many(SOURCES, n_jobs=n_jobs)
        assert len(results) == len(SOURCES)
        for s, res in zip(SOURCES, results):
            assert np.allclose(res.dist, dijkstra(g, s).dist)

    def test_parallel_bitwise_equals_serial(self, solver):
        """Fan-out must not change a single bit: chunked results come back
        in input order and each query is computed identically."""
        _, sp = solver
        serial = sp.solve_many(SOURCES, n_jobs=1)
        parallel = sp.solve_many(SOURCES, n_jobs=4)
        for a, b in zip(serial, parallel):
            assert np.array_equal(a.dist, b.dist)
            assert (a.steps, a.substeps, a.relaxations) == (
                b.steps,
                b.substeps,
                b.relaxations,
            )

    def test_input_order_preserved(self, solver):
        _, sp = solver
        results = sp.solve_many([42, 0, 7], n_jobs=4)
        assert [r.params["source"] for r in results] == [42, 0, 7]


class TestDispatch:
    def test_engine_override(self, solver):
        _, sp = solver
        results = sp.solve_many([0, 7], engine="bucket", n_jobs=1)
        assert all(r.algorithm == "radius-stepping-bucket" for r in results)

    def test_parallel_engine_override(self, solver):
        _, sp = solver
        a = sp.solve_many([0, 7, 19], engine="dijkstra", n_jobs=1)
        b = sp.solve_many([0, 7, 19], engine="dijkstra", n_jobs=4)
        for x, y in zip(a, b):
            assert np.array_equal(x.dist, y.dist)

    def test_track_parents(self, solver):
        _, sp = solver
        results = sp.solve_many([0, 7], track_parents=True, n_jobs=4)
        assert all(r.parent is not None for r in results)

    def test_parent_support_enforced(self, solver):
        _, sp = solver
        with pytest.raises(ValueError, match="does not track parents"):
            sp.solve_many([0], engine="bst", track_parents=True)

    def test_unknown_engine_rejected(self, solver):
        _, sp = solver
        with pytest.raises(ValueError, match="registered engines"):
            sp.solve_many([0], engine="quantum")

    def test_query_counter_counts_batch(self, solver):
        g = random_connected_graph(30, 70, seed=1)
        sp = PreprocessedSSSP(g, k=1, rho=6, heuristic="full")
        sp.solve_many([0, 1, 2], n_jobs=2)
        assert sp.queries_answered == 3

    def test_auto_resolves_unweighted(self):
        sp = PreprocessedSSSP(grid_2d(6, 6), k=1, rho=4, heuristic="full")
        if sp.graph.is_unweighted:
            results = sp.solve_many([0, 5], n_jobs=2)
            assert all(
                r.algorithm == "radius-stepping-unweighted" for r in results
            )

    def test_empty_batch(self, solver):
        _, sp = solver
        assert sp.solve_many([], n_jobs=4) == []
