"""Batched multi-source queries: determinism, parallel fan-out, dispatch."""

import numpy as np
import pytest

from repro.core import dijkstra
from repro.core.solver import PreprocessedSSSP
from repro.graphs.generators import grid_2d

from tests.helpers import random_connected_graph

SOURCES = [0, 7, 19, 33, 42, 55, 11, 3]


@pytest.fixture(scope="module")
def solver():
    g = random_connected_graph(60, 140, seed=8, weight_high=30)
    return g, PreprocessedSSSP(g, k=2, rho=10, heuristic="dp")


class TestDeterminism:
    @pytest.mark.parametrize("n_jobs", [1, 4])
    def test_matches_oracle_any_worker_count(self, solver, n_jobs):
        g, sp = solver
        results = sp.solve_many(SOURCES, n_jobs=n_jobs)
        assert len(results) == len(SOURCES)
        for s, res in zip(SOURCES, results):
            assert np.allclose(res.dist, dijkstra(g, s).dist)

    def test_parallel_bitwise_equals_serial(self, solver):
        """Fan-out must not change a single bit: chunked results come back
        in input order and each query is computed identically."""
        _, sp = solver
        serial = sp.solve_many(SOURCES, n_jobs=1)
        parallel = sp.solve_many(SOURCES, n_jobs=4)
        for a, b in zip(serial, parallel):
            assert np.array_equal(a.dist, b.dist)
            assert (a.steps, a.substeps, a.relaxations) == (
                b.steps,
                b.substeps,
                b.relaxations,
            )

    def test_input_order_preserved(self, solver):
        _, sp = solver
        results = sp.solve_many([42, 0, 7], n_jobs=4)
        assert [r.params["source"] for r in results] == [42, 0, 7]


class TestDispatch:
    def test_engine_override(self, solver):
        _, sp = solver
        results = sp.solve_many([0, 7], engine="bucket", n_jobs=1)
        assert all(r.algorithm == "radius-stepping-bucket" for r in results)

    def test_parallel_engine_override(self, solver):
        _, sp = solver
        a = sp.solve_many([0, 7, 19], engine="dijkstra", n_jobs=1)
        b = sp.solve_many([0, 7, 19], engine="dijkstra", n_jobs=4)
        for x, y in zip(a, b):
            assert np.array_equal(x.dist, y.dist)

    def test_track_parents(self, solver):
        _, sp = solver
        results = sp.solve_many([0, 7], track_parents=True, n_jobs=4)
        assert all(r.parent is not None for r in results)

    def test_parent_support_enforced(self, solver):
        _, sp = solver
        with pytest.raises(ValueError, match="does not track parents"):
            sp.solve_many([0], engine="bst", track_parents=True)

    def test_unknown_engine_rejected(self, solver):
        _, sp = solver
        with pytest.raises(ValueError, match="registered engines"):
            sp.solve_many([0], engine="quantum")

    def test_query_counter_counts_batch(self, solver):
        g = random_connected_graph(30, 70, seed=1)
        sp = PreprocessedSSSP(g, k=1, rho=6, heuristic="full")
        sp.solve_many([0, 1, 2], n_jobs=2)
        assert sp.queries_answered == 3

    def test_auto_resolves_unweighted(self):
        sp = PreprocessedSSSP(grid_2d(6, 6), k=1, rho=4, heuristic="full")
        if sp.graph.is_unweighted:
            results = sp.solve_many([0, 5], n_jobs=2)
            assert all(
                r.algorithm == "radius-stepping-unweighted" for r in results
            )

    def test_empty_batch(self, solver):
        _, sp = solver
        assert sp.solve_many([], n_jobs=4) == []


class TestSourceDedup:
    """Repeated sources are solved once and fanned back in input order."""

    @pytest.mark.parametrize("n_jobs", [1, 4])
    def test_duplicates_answered_in_input_order(self, solver, n_jobs):
        g, sp = solver
        dup_sources = [7, 0, 7, 19, 0, 7]
        results = sp.solve_many(dup_sources, n_jobs=n_jobs)
        assert [r.params["source"] for r in results] == dup_sources
        for s, res in zip(dup_sources, results):
            assert np.array_equal(res.dist, dijkstra(g, s).dist)

    def test_duplicates_share_one_solve(self, solver):
        """The compute side sees each distinct source once: duplicate
        positions share the result object of the unique solve."""
        _, sp = solver
        results = sp.solve_many([3, 11, 3, 3, 11])
        assert results[0] is results[2] is results[3]
        assert results[1] is results[4]
        assert results[0] is not results[1]

    def test_duplicated_equals_deduplicated_run(self, solver):
        _, sp = solver
        a = sp.solve_many([0, 7, 19])
        b = sp.solve_many([0, 7, 0, 19, 7])
        for x, y in zip(a, (b[0], b[1], b[3])):
            assert np.array_equal(x.dist, y.dist)
            assert (x.steps, x.substeps, x.relaxations) == (
                y.steps,
                y.substeps,
                y.relaxations,
            )

    def test_mean_steps_weights_duplicates(self, solver):
        """mean_steps averages over *requested* sources, so a duplicated
        source keeps its weight in the mean."""
        _, sp = solver
        lone = sp.solve_many([0, 7])
        expected = (2 * lone[0].steps + lone[1].steps) / 3
        assert sp.mean_steps([0, 0, 7]) == expected


class TestQueryCounter:
    """queries_answered is the amortization denominator: every query
    path charges it — solve, solve_many (duplicates included), and
    mean_steps."""

    def test_counter_across_all_paths(self):
        g = random_connected_graph(30, 70, seed=2)
        sp = PreprocessedSSSP(g, k=1, rho=6, heuristic="full")
        assert sp.queries_answered == 0
        sp.solve(0)
        assert sp.queries_answered == 1
        sp.distances(5)
        assert sp.queries_answered == 2
        sp.solve_many([0, 1, 2, 1])  # dedup must not shrink the count
        assert sp.queries_answered == 6
        sp.mean_steps([3, 4])
        assert sp.queries_answered == 8
        sp.solve_many([], n_jobs=2)
        assert sp.queries_answered == 8

    def test_count_queries_hook(self):
        """External batch paths (the serving layer's shared-memory
        matrix) charge the same counter through count_queries."""
        g = random_connected_graph(20, 50, seed=3)
        sp = PreprocessedSSSP(g, k=1, rho=4, heuristic="full")
        sp.count_queries(5)
        sp.count_queries()
        assert sp.queries_answered == 6
