"""Tests for the amortized PreprocessedSSSP facade."""

import numpy as np
import pytest

from repro.core import dijkstra
from repro.core.solver import PreprocessedSSSP
from repro.graphs.generators import grid_2d, scale_free

from tests.helpers import random_connected_graph


@pytest.fixture(scope="module")
def weighted_solver():
    g = random_connected_graph(60, 140, seed=0, weight_high=30)
    return g, PreprocessedSSSP(g, k=2, rho=12, heuristic="dp")


class TestCorrectness:
    def test_matches_dijkstra_from_many_sources(self, weighted_solver):
        g, sp = weighted_solver
        for s in (0, 17, 42):
            assert np.allclose(sp.distances(s), dijkstra(g, s).dist)

    def test_augmentation_preserves_metric(self, weighted_solver):
        """Shortcuts carry exact shortest-path weights (Lemma 4.1), so
        queries on the augmented graph return input-graph distances."""
        g, sp = weighted_solver
        assert sp.graph.m >= g.m
        assert np.allclose(sp.distances(5), dijkstra(g, 5).dist)

    def test_parents_realize_distances(self, weighted_solver):
        g, sp = weighted_solver
        res = sp.solve(3, track_parents=True)
        v = int(np.argmax(np.where(np.isfinite(res.dist), res.dist, -1)))
        path = res.path_to(v)
        assert path[0] == 3 and path[-1] == v


class TestEngines:
    def test_auto_picks_unweighted_on_unit_graph(self):
        sp = PreprocessedSSSP(grid_2d(8, 8), k=1, rho=4, heuristic="full")
        if sp.graph.is_unweighted:
            res = sp.solve(0)
            assert res.algorithm == "radius-stepping-unweighted"

    def test_auto_picks_vectorized_on_weighted(self, weighted_solver):
        _, sp = weighted_solver
        assert sp.solve(0).algorithm == "radius-stepping"

    def test_engines_agree(self, weighted_solver):
        _, sp = weighted_solver
        a = sp.solve(7, engine="vectorized")
        b = sp.solve(7, engine="bst")
        assert np.allclose(a.dist, b.dist)
        assert (a.steps, a.substeps) == (b.steps, b.substeps)

    def test_bad_engine_rejected(self, weighted_solver):
        _, sp = weighted_solver
        with pytest.raises(ValueError):
            sp.solve(0, engine="quantum")

    def test_bst_engine_rejects_parent_tracking(self, weighted_solver):
        _, sp = weighted_solver
        with pytest.raises(ValueError):
            sp.solve(0, engine="bst", track_parents=True)


class TestAmortization:
    def test_query_counter(self, weighted_solver):
        g = random_connected_graph(30, 70, seed=1)
        sp = PreprocessedSSSP(g, k=1, rho=6, heuristic="full")
        sp.solve_many([0, 1, 2])
        assert sp.queries_answered == 3

    def test_mean_steps_beats_dijkstra(self):
        """The whole point: preprocessed queries take far fewer rounds."""
        g = random_connected_graph(150, 400, seed=2, weight_high=10**4)
        sp = PreprocessedSSSP(g, k=2, rho=24, heuristic="dp")
        sources = [0, 50, 100]
        base = np.mean([dijkstra(g, s).steps for s in sources])
        assert sp.mean_steps(sources) * 2 < base

    def test_substep_bound_holds_on_hub_graph(self):
        web = scale_free(200, attach=3, seed=5)
        sp = PreprocessedSSSP(web, k=3, rho=16, heuristic="dp")
        res = sp.solve(0)
        assert res.max_substeps <= 3 + 2
