"""Calibration-race tests: pick_engine / race_engines semantics."""

import numpy as np
import pytest

from repro.engine.autoselect import (
    DEFAULT_CANDIDATES,
    pick_engine,
    race_engines,
    sample_sources,
)
from repro.engine.registry import available_engines
from repro.graphs.generators import grid_2d

from tests.helpers import random_connected_graph


@pytest.fixture(scope="module")
def graph():
    return random_connected_graph(120, 300, seed=5)


class TestSampleSources:
    def test_distinct_and_in_range(self, graph):
        s = sample_sources(graph, 5, seed=1)
        assert len(s) == len(set(s.tolist())) == 5
        assert ((0 <= s) & (s < graph.n)).all()

    def test_deterministic(self, graph):
        assert np.array_equal(
            sample_sources(graph, 4, seed=2), sample_sources(graph, 4, seed=2)
        )

    def test_clamped_to_n(self):
        g = random_connected_graph(6, 8, seed=0)
        assert len(sample_sources(g, 100, seed=0)) == 6


class TestRaceEngines:
    def test_default_candidates_all_registered(self):
        registered = set(available_engines())
        assert set(DEFAULT_CANDIDATES) <= registered
        assert "vectorized" in DEFAULT_CANDIDATES  # the old fixed default

    def test_times_every_applicable_engine(self, graph):
        t = race_engines(graph, samples=1, budget=5.0)
        assert set(t) == set(DEFAULT_CANDIDATES)
        assert all(v > 0 for v in t.values())

    def test_inapplicable_engines_dropped(self, graph):
        # "unweighted" raises on weighted graphs — dropped, not fatal.
        t = race_engines(
            graph, engines=("dijkstra", "unweighted"), samples=1, budget=5.0
        )
        assert set(t) == {"dijkstra"}

    def test_all_inapplicable_yields_empty(self, graph):
        assert race_engines(graph, engines=("unweighted",), samples=1) == {}

    def test_empty_candidate_tuple_rejected(self, graph):
        with pytest.raises(ValueError, match="no candidate"):
            race_engines(graph, engines=())


class TestPickEngine:
    def test_returns_registered_candidate(self, graph):
        choice = pick_engine(graph, budget=0.5, samples=2)
        assert choice in DEFAULT_CANDIDATES

    def test_respects_explicit_candidates(self, graph):
        choice = pick_engine(
            graph, engines=("dijkstra", "delta"), budget=0.5, samples=1
        )
        assert choice in ("dijkstra", "delta")

    def test_unweighted_engine_can_win_on_unit_graphs(self):
        # On a unit-weight grid every candidate works; just assert the
        # race completes and yields a valid engine either way.
        g = grid_2d(8, 8)
        choice = pick_engine(
            g, engines=("unweighted", "dijkstra"), budget=0.5, samples=1
        )
        assert choice in ("unweighted", "dijkstra")

    def test_no_survivors_raises(self, graph):
        with pytest.raises(ValueError, match="no candidate engine"):
            pick_engine(graph, engines=("unweighted",), samples=1)
