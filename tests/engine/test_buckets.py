"""Unit tests for the lazy calendar-queue bucket structure."""

import math

import numpy as np
import pytest

from repro.engine import LazyBucketQueue


def make_state(n, dists):
    dist = np.array(dists, dtype=np.float64)
    dead = np.zeros(n, dtype=bool)
    return dist, dead, (lambda vs: dist[vs])


class TestPush:
    def test_len_counts_entries(self):
        q = LazyBucketQueue(1.0)
        q.push(np.array([0, 1, 2]), np.array([0.5, 1.5, 2.5]))
        assert len(q) == 3

    def test_invalid_width(self):
        for bad in (0.0, -1.0, math.inf, math.nan):
            with pytest.raises(ValueError):
                LazyBucketQueue(bad)

    def test_empty_push_noop(self):
        q = LazyBucketQueue(1.0)
        q.push(np.empty(0, dtype=np.int64), np.empty(0))
        assert len(q) == 0


class TestMinFreshKey:
    def test_returns_smallest_fresh(self):
        dist, dead, key = make_state(3, [5.0, 2.0, 9.0])
        q = LazyBucketQueue(1.0)
        q.push(np.array([0, 1, 2]), dist[[0, 1, 2]])
        assert q.min_fresh_key(key, dead) == 2.0

    def test_skips_stale_keys(self):
        """An entry whose stored key no longer matches the current key is
        pruned, exactly like the heaps' lazy deletion."""
        dist, dead, key = make_state(2, [5.0, 7.0])
        q = LazyBucketQueue(1.0)
        q.push(np.array([0]), np.array([5.0]))
        dist[0] = 3.0  # improvement: the old entry is now stale
        q.push(np.array([0]), np.array([3.0]))
        assert q.min_fresh_key(key, dead) == 3.0

    def test_skips_dead_vertices(self):
        dist, dead, key = make_state(2, [1.0, 4.0])
        q = LazyBucketQueue(1.0)
        q.push(np.array([0, 1]), dist[[0, 1]])
        dead[0] = True
        assert q.min_fresh_key(key, dead) == 4.0

    def test_empty_returns_none(self):
        dist, dead, key = make_state(1, [0.0])
        q = LazyBucketQueue(1.0)
        assert q.min_fresh_key(key, dead) is None

    def test_all_stale_returns_none(self):
        dist, dead, key = make_state(1, [1.0])
        q = LazyBucketQueue(1.0)
        q.push(np.array([0]), np.array([1.0]))
        dead[0] = True
        assert q.min_fresh_key(key, dead) is None

    def test_infinite_keys(self):
        """r(v) = inf entries live in the overflow bucket and surface only
        when no finite key remains."""
        dist, dead, key = make_state(2, [math.inf, 3.0])
        q = LazyBucketQueue(1.0)
        q.push(np.array([0, 1]), dist[[0, 1]])
        assert q.min_fresh_key(key, dead) == 3.0
        dead[1] = True
        assert q.min_fresh_key(key, dead) == math.inf


class TestPopFreshUntil:
    def test_pops_up_to_bound_sorted(self):
        dist, dead, key = make_state(4, [3.0, 1.0, 2.0, 8.0])
        q = LazyBucketQueue(1.0)
        q.push(np.arange(4), dist)
        out = q.pop_fresh_until(3.0, key, dead)
        assert out.tolist() == [1, 2, 0]  # (key, vertex) order
        assert q.min_fresh_key(key, dead) == 8.0

    def test_boundary_bucket_keeps_above_bound(self):
        """Entries sharing the boundary bucket but above the bound stay."""
        dist, dead, key = make_state(2, [2.1, 2.9])
        q = LazyBucketQueue(1.0)
        q.push(np.array([0, 1]), dist)
        out = q.pop_fresh_until(2.5, key, dead)
        assert out.tolist() == [0]
        assert q.min_fresh_key(key, dead) == 2.9

    def test_discards_stale(self):
        dist, dead, key = make_state(2, [1.0, 1.0])
        q = LazyBucketQueue(1.0)
        q.push(np.array([0, 1]), np.array([1.0, 1.0]))
        dead[0] = True
        out = q.pop_fresh_until(5.0, key, dead)
        assert out.tolist() == [1]
        assert q.min_fresh_key(key, dead) is None

    def test_infinite_bound_drains_everything(self):
        dist, dead, key = make_state(3, [1.0, math.inf, 50.0])
        q = LazyBucketQueue(1.0)
        q.push(np.arange(3), dist)
        out = q.pop_fresh_until(math.inf, key, dead)
        assert out.tolist() == [0, 2, 1]

    def test_infinite_duplicates_deduped(self):
        """Every improvement re-pushes at key inf; a drain must yield the
        vertex once."""
        dist, dead, key = make_state(1, [math.inf])
        q = LazyBucketQueue(1.0)
        q.push(np.array([0]), np.array([math.inf]))
        q.push(np.array([0]), np.array([math.inf]))
        out = q.pop_fresh_until(math.inf, key, dead)
        assert out.tolist() == [0]


class TestKthFreshKey:
    """Partition-select over the buckets — ρ-stepping's bound oracle."""

    def test_kth_smallest(self):
        dist, dead, key = make_state(5, [5.0, 1.0, 9.0, 3.0, 7.0])
        q = LazyBucketQueue(1.0)
        q.push(np.arange(5), dist)
        assert q.kth_fresh_key(1, key, dead) == 1.0
        assert q.kth_fresh_key(3, key, dead) == 5.0
        assert q.kth_fresh_key(5, key, dead) == 9.0

    def test_k_beyond_population_returns_max(self):
        dist, dead, key = make_state(3, [2.0, 4.0, 6.0])
        q = LazyBucketQueue(1.0)
        q.push(np.arange(3), dist)
        assert q.kth_fresh_key(10, key, dead) == 6.0

    def test_empty_returns_none(self):
        dist, dead, key = make_state(1, [1.0])
        q = LazyBucketQueue(1.0)
        assert q.kth_fresh_key(1, key, dead) is None

    def test_skips_stale_and_dead(self):
        dist, dead, key = make_state(4, [1.0, 2.0, 3.0, 4.0])
        q = LazyBucketQueue(1.0)
        q.push(np.arange(4), dist.copy())
        dead[0] = True  # dead: dropped
        dist[1] = 1.7   # improvement: re-push, old entry (2.0) goes stale
        q.push(np.array([1]), np.array([1.7]))
        assert q.kth_fresh_key(1, key, dead) == 1.7
        assert q.kth_fresh_key(2, key, dead) == 3.0
        assert q.kth_fresh_key(3, key, dead) == 4.0

    def test_peek_not_pop(self):
        dist, dead, key = make_state(3, [1.0, 2.0, 3.0])
        q = LazyBucketQueue(1.0)
        q.push(np.arange(3), dist)
        q.kth_fresh_key(2, key, dead)
        out = q.pop_fresh_until(np.inf, key, dead)
        assert out.tolist() == [0, 1, 2]

    def test_invalid_k(self):
        dist, dead, key = make_state(1, [1.0])
        q = LazyBucketQueue(1.0)
        with pytest.raises(ValueError):
            q.kth_fresh_key(0, key, dead)

    def test_boundary_within_one_bucket(self):
        """k lands mid-bucket: the answer comes from np.partition inside
        the boundary bucket, not from the bucket's max."""
        dist, dead, key = make_state(4, [1.1, 1.2, 1.3, 1.4])
        q = LazyBucketQueue(10.0)  # all four share one bucket
        q.push(np.arange(4), dist)
        assert q.kth_fresh_key(2, key, dead) == 1.2


class TestAutoResize:
    """Brown 1988 §4 recalibration: width is a hint, semantics are not."""

    def test_bad_hint_gets_recalibrated(self):
        """A width off by orders of magnitude is corrected once the
        population doubles past the floor."""
        rng = np.random.default_rng(3)
        n = 500
        dist = rng.uniform(0, 1000, n)
        dead = np.zeros(n, dtype=bool)
        q = LazyBucketQueue(1e-7, auto_resize=True)
        q.push(np.arange(n), dist)
        q.min_fresh_key(lambda vs: dist[vs], dead)  # flush → retune
        assert q._retunes >= 1
        assert q.width > 1e-3  # pulled toward spread / (live / occupancy)

    def test_fixed_width_never_retunes(self):
        rng = np.random.default_rng(4)
        n = 300
        dist = rng.uniform(0, 1000, n)
        dead = np.zeros(n, dtype=bool)
        q = LazyBucketQueue(1e-7, auto_resize=False)
        q.push(np.arange(n), dist)
        q.min_fresh_key(lambda vs: dist[vs], dead)
        assert q._retunes == 0
        assert q.width == 1e-7

    def test_resize_preserves_entries_and_min(self):
        rng = np.random.default_rng(5)
        n = 400
        dist = rng.uniform(5, 50, n)
        dead = np.zeros(n, dtype=bool)
        key = lambda vs: dist[vs]
        tuned = LazyBucketQueue(1e9, auto_resize=True)
        fixed = LazyBucketQueue(1.0)
        for q in (tuned, fixed):
            q.push(np.arange(n), dist)
        assert tuned.min_fresh_key(key, dead) == fixed.min_fresh_key(key, dead)
        assert len(tuned) == len(fixed) == n

    @pytest.mark.parametrize("hint", [1e-6, 1.0, 1e6])
    def test_pop_sequence_identical_to_heap_under_resize(self, hint):
        """The popped (key, vertex) sequence must not depend on the hint
        or on how many recalibrations fired along the way."""
        import heapq

        rng = np.random.default_rng(11)
        n = 600
        dist = rng.uniform(0, 2000, n)
        dead = np.zeros(n, dtype=bool)
        key = lambda vs: dist[vs]
        q = LazyBucketQueue(hint, auto_resize=True)
        heap = []
        got: list[int] = []
        want: list[int] = []
        for lo in range(0, n, 100):  # interleave pushes and partial drains
            batch = np.arange(lo, lo + 100)
            q.push(batch, dist[batch])
            for v in batch.tolist():
                heapq.heappush(heap, (dist[v], v))
            bound = float(np.quantile(dist[: lo + 100], 0.4))
            got.extend(q.pop_fresh_until(bound, key, dead).tolist())
            while heap and heap[0][0] <= bound:
                k, v = heapq.heappop(heap)
                if not dead[v] and k == dist[v]:
                    want.append(v)
        got.extend(q.pop_fresh_until(math.inf, key, dead).tolist())
        while heap:
            k, v = heapq.heappop(heap)
            if not dead[v] and k == dist[v]:
                want.append(v)
        assert got == want

    def test_shrink_trigger_recalibrates_after_collapse(self):
        """After a drain leaves a sliver of the population, the next
        flush fires the collapse branch of the trigger."""
        rng = np.random.default_rng(6)
        n = 1000
        dist = rng.uniform(0, 100, n)
        dead = np.zeros(n, dtype=bool)
        key = lambda vs: dist[vs]
        q = LazyBucketQueue(0.001, auto_resize=True)
        q.push(np.arange(n), dist)
        q.min_fresh_key(key, dead)  # flush at full population → retune
        tuned_at = q._tuned_size
        q.pop_fresh_until(float(np.quantile(dist, 0.95)), key, dead)
        q.push(np.array([0]), np.array([dist[0]]))  # any flush re-checks
        q.min_fresh_key(key, dead)
        assert q._tuned_size < tuned_at  # collapse branch fired

    def test_infinite_keys_survive_resize(self):
        dist = np.full(200, math.inf)
        dist[:100] = np.linspace(0, 1000, 100)
        dead = np.zeros(200, dtype=bool)
        key = lambda vs: dist[vs]
        q = LazyBucketQueue(1e-8, auto_resize=True)
        q.push(np.arange(200), dist)
        assert q.min_fresh_key(key, dead) == 0.0
        out = q.pop_fresh_until(math.inf, key, dead)
        assert len(out) == 200
        assert out[:100].tolist() == list(range(100))  # finite prefix order


class TestHeapEquivalence:
    def test_random_sequences_match_heap(self):
        """Pushed with random keys and random staleness, the fresh-key
        sequence must equal a lazy binary heap's."""
        import heapq

        rng = np.random.default_rng(7)
        n = 200
        dist = rng.uniform(0, 100, n)
        dead = np.zeros(n, dtype=bool)
        key = lambda vs: dist[vs]
        q = LazyBucketQueue(3.7)
        heap = []
        for v in range(n):
            q.push(np.array([v]), dist[[v]])
            heapq.heappush(heap, (dist[v], v))
        # improve a random subset (re-push, old entries stale)
        for v in rng.choice(n, 60, replace=False):
            dist[v] *= 0.5
            q.push(np.array([v]), dist[[v]])
            heapq.heappush(heap, (dist[v], v))
        # kill a random subset
        dead[rng.choice(n, 40, replace=False)] = True

        def heap_pop_fresh():
            while heap:
                k, v = heapq.heappop(heap)
                if dead[v] or k != dist[v]:
                    continue
                return k, v
            return None

        got = q.pop_fresh_until(math.inf, key, dead).tolist()
        want = []
        while True:
            item = heap_pop_fresh()
            if item is None:
                break
            want.append(item[1])
        assert got == want
