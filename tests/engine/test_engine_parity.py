"""Engine-parity suite: every registered engine, one ground truth.

The registry's whole promise is that any engine answers any query with
exact distances.  This suite runs every registered engine over a graph
gauntlet — random weighted, disconnected, single-vertex, zero-weight
edges, infinite radii — and compares against the sequential Dijkstra
oracle and SciPy, in the style of ``tests/test_scipy_reference.py``.
"""

import math

import numpy as np
import pytest
from scipy.sparse import csr_matrix
from scipy.sparse.csgraph import dijkstra as scipy_dijkstra

from repro.core import dijkstra, radius_stepping
from repro.engine import (
    BellmanFordSchedule,
    DeltaSchedule,
    RadiusBucketSchedule,
    RadiusSchedule,
    available_engines,
    get_engine,
    register_engine,
    run_engine,
    solve_with_engine,
)
from repro.graphs import from_edge_list, unit_weights
from repro.graphs.generators import (
    erdos_renyi,
    grid_2d,
    road_network,
    scale_free,
    small_world,
)
from repro.graphs.weights import random_integer_weights, uniform_weights
from repro.preprocess import build_kr_graph

from tests.helpers import assert_valid_parents, random_connected_graph

ALL_ENGINES = available_engines()
WEIGHTED_ENGINES = tuple(e for e in ALL_ENGINES if e != "unweighted")
PARENT_ENGINES = tuple(
    e for e in WEIGHTED_ENGINES if get_engine(e).supports_parents
)


def scipy_dist(graph, source):
    mat = csr_matrix(
        (graph.weights, graph.indices, graph.indptr), shape=(graph.n, graph.n)
    )
    return scipy_dijkstra(mat, directed=False, indices=source)


@pytest.fixture(scope="module")
def weighted_case():
    g = random_connected_graph(60, 150, seed=11, weight_high=40)
    pre = build_kr_graph(g, k=2, rho=10, heuristic="dp")
    return pre.graph, pre.radii, scipy_dist(g, 0)


class TestDistanceParity:
    @pytest.mark.parametrize("engine", WEIGHTED_ENGINES)
    def test_weighted_kr_graph(self, engine, weighted_case):
        graph, radii, ref = weighted_case
        res = solve_with_engine(engine, graph, 0, radii)
        assert np.allclose(res.dist, ref, equal_nan=True)

    @pytest.mark.parametrize("engine", ALL_ENGINES)
    def test_unit_grid(self, engine):
        g = grid_2d(7, 9)
        res = solve_with_engine(engine, g, 0, 2.0)
        assert np.allclose(res.dist, scipy_dist(g, 0))

    @pytest.mark.parametrize("engine", ALL_ENGINES)
    def test_disconnected(self, engine):
        g = unit_weights(from_edge_list(5, [(0, 1, 1.0), (2, 3, 1.0)]))
        res = solve_with_engine(engine, g, 0, 1.0)
        assert res.dist[1] == 1.0
        assert np.isinf(res.dist[2:]).all()

    @pytest.mark.parametrize("engine", ALL_ENGINES)
    def test_single_vertex(self, engine):
        g = from_edge_list(1, [])
        res = solve_with_engine(engine, g, 0, 0.0)
        assert res.dist.tolist() == [0.0]

    @pytest.mark.parametrize("engine", WEIGHTED_ENGINES)
    def test_zero_weight_edges(self, engine):
        g = from_edge_list(4, [(0, 1, 0.0), (1, 2, 1.0), (2, 3, 0.0)])
        res = solve_with_engine(engine, g, 0, 0.5)
        assert res.dist.tolist() == [0.0, 0.0, 1.0, 1.0]

    @pytest.mark.parametrize("engine", ("vectorized", "bucket", "bst"))
    def test_infinite_radii(self, engine):
        """r(v) = ∞ turns Radius-Stepping into single-step Bellman–Ford;
        the treap reference handles the ∞-key convention too (the Line
        11 case analysis is a membership test, not a distance test)."""
        g = random_connected_graph(30, 70, seed=5)
        res = solve_with_engine(engine, g, 0, np.full(g.n, math.inf))
        assert np.allclose(res.dist, dijkstra(g, 0).dist)
        assert res.steps == 1

    @pytest.mark.parametrize("engine", ("vectorized", "bucket", "bst"))
    def test_mixed_inf_radii(self, engine):
        g = random_connected_graph(30, 70, seed=6)
        radii = np.zeros(g.n)
        radii[::3] = math.inf
        res = solve_with_engine(engine, g, 0, radii)
        assert np.allclose(res.dist, dijkstra(g, 0).dist)

    def test_bst_inf_radii_matches_vectorized_instrumentation(self):
        """Beyond distances: the treap engine must agree with the
        vectorized engine on steps/substeps under ∞ keys."""
        g = random_connected_graph(25, 60, seed=7, weight_high=12)
        radii = np.zeros(g.n)
        radii[1::2] = math.inf
        a = solve_with_engine("vectorized", g, 0, radii)
        b = solve_with_engine("bst", g, 0, radii)
        assert np.array_equal(a.dist, b.dist)
        assert (a.steps, a.substeps) == (b.steps, b.substeps)

    @pytest.mark.parametrize("seed", range(3))
    @pytest.mark.parametrize("engine", WEIGHTED_ENGINES)
    def test_random_graphs_exact_integer_distances(self, engine, seed):
        """Integer weights sum exactly in float64, so every engine must be
        *bit-identical* to Dijkstra, not merely close."""
        g = random_connected_graph(40, 90, seed=seed, weight_high=25)
        res = solve_with_engine(engine, g, 0, 5.0)
        assert np.array_equal(res.dist, dijkstra(g, 0).dist)


def _family_graphs():
    """One graph per generator family, continuous uniform weights.

    Continuous weights make the shortest-path tree unique (almost
    surely, and verified for these pinned seeds), so *parents* — not
    just distances — must be bit-identical across every engine: the
    kernel's parent rule is "last strict improver", and with a unique
    SPT there is exactly one improver at each vertex's final distance.
    """
    road, _coords = road_network(80, seed=21)
    return {
        "road": uniform_weights(road, low=0.5, high=2.0, seed=22),
        "power-law": uniform_weights(
            scale_free(70, attach=3, seed=23), low=0.5, high=2.0, seed=24
        ),
        "small-world": uniform_weights(
            small_world(64, k=6, p=0.2, seed=25), low=0.5, high=2.0, seed=26
        ),
        "random": uniform_weights(
            erdos_renyi(60, 150, seed=27), low=0.5, high=2.0, seed=28
        ),
    }


FAMILY_GRAPHS = _family_graphs()


class TestCrossEngineFamilies:
    """The PR-6 acceptance suite: every registered engine, every graph
    family, bit-identical ``dist``/``parent`` — plus the tie-heavy and
    ∞-distance corners where only distances (and parent *validity*) are
    pinned."""

    @pytest.mark.parametrize("family", sorted(FAMILY_GRAPHS))
    @pytest.mark.parametrize("engine", PARENT_ENGINES)
    def test_dist_and_parent_bit_identical(self, engine, family):
        g = FAMILY_GRAPHS[family]
        ref = solve_with_engine("dijkstra", g, 0, None, track_parents=True)
        res = solve_with_engine(engine, g, 0, None, track_parents=True)
        assert np.array_equal(res.dist, ref.dist)
        assert np.array_equal(res.parent, ref.parent)

    @pytest.mark.parametrize("family", sorted(FAMILY_GRAPHS))
    @pytest.mark.parametrize("engine", WEIGHTED_ENGINES)
    def test_dist_bit_identical_integer_weights(self, engine, family):
        """Integer reweighting of each family: ties galore, but integer
        sums are exact in float64 so distances stay bit-identical (this
        also covers the parentless ``bst`` reference)."""
        g = random_integer_weights(FAMILY_GRAPHS[family], low=1, high=30, seed=31)
        ref = solve_with_engine("dijkstra", g, 1, None)
        res = solve_with_engine(engine, g, 1, None)
        assert np.array_equal(res.dist, ref.dist)

    @pytest.mark.parametrize("engine", PARENT_ENGINES)
    def test_infinite_distance_vertices(self, engine):
        """Disconnected input: unreachable vertices must come back with
        dist = inf and parent = -1 from every engine (np.array_equal
        treats matching infs as equal)."""
        g = from_edge_list(
            9,
            [(0, 1, 1.5), (1, 2, 2.0), (2, 3, 0.5), (4, 5, 1.0), (5, 6, 3.0)],
        )
        ref = solve_with_engine("dijkstra", g, 0, None, track_parents=True)
        res = solve_with_engine(engine, g, 0, None, track_parents=True)
        assert np.isinf(res.dist[4:]).all()
        assert np.array_equal(res.dist, ref.dist)
        assert np.array_equal(res.parent, ref.parent)
        assert (res.parent[4:] == -1).all()

    @pytest.mark.parametrize("engine", PARENT_ENGINES)
    def test_zero_weight_edges_parents_valid(self, engine):
        """Zero-weight edges create genuinely tied shortest paths, where
        the winning parent legitimately depends on relaxation order —
        so distances must stay bit-identical but parents are only
        required to *realize* those distances."""
        g = from_edge_list(
            6,
            [
                (0, 1, 0.0),
                (0, 2, 1.0),
                (1, 2, 1.0),
                (2, 3, 0.0),
                (3, 4, 2.0),
                (2, 4, 2.0),
                (4, 5, 0.0),
            ],
        )
        ref = solve_with_engine("dijkstra", g, 0, None)
        res = solve_with_engine(engine, g, 0, None, track_parents=True)
        assert np.array_equal(res.dist, ref.dist)
        assert_valid_parents(g, res.dist, res.parent, 0)


class TestBucketHeapEquivalence:
    """The calendar-queue schedule serves the exact fresh-key sequence of
    the heaps, so the two radius engines must agree on *instrumentation*,
    not just distances."""

    @pytest.mark.parametrize("seed", range(4))
    def test_full_parity(self, seed):
        g = random_connected_graph(50, 120, seed=seed, weight_high=60)
        pre = build_kr_graph(g, k=2, rho=8, heuristic="dp")
        a = run_engine(
            pre.graph, 0, RadiusSchedule(pre.radii), track_trace=True
        )
        b = run_engine(
            pre.graph, 0, RadiusBucketSchedule(pre.radii), track_trace=True
        )
        assert np.array_equal(a.dist, b.dist)
        assert (a.steps, a.substeps, a.max_substeps) == (
            b.steps,
            b.substeps,
            b.max_substeps,
        )
        assert a.relaxations == b.relaxations
        assert [(t.radius, t.substeps, t.settled) for t in a.trace] == [
            (t.radius, t.substeps, t.settled) for t in b.trace
        ]

    def test_bucket_matches_seed_radius_stepping(self):
        g = random_connected_graph(45, 110, seed=9, weight_high=30)
        a = radius_stepping(g, 0, 7.0)
        b = solve_with_engine("bucket", g, 0, 7.0)
        assert np.array_equal(a.dist, b.dist)
        assert (a.steps, a.substeps) == (b.steps, b.substeps)

    def test_bucket_width_override(self):
        g = random_connected_graph(30, 70, seed=2)
        for width in (0.5, 5.0, 500.0):
            res = run_engine(
                g, 0, RadiusBucketSchedule(np.zeros(g.n), width=width)
            )
            assert np.allclose(res.dist, dijkstra(g, 0).dist)

    @pytest.mark.parametrize("hint", [1e-6, 1e5])
    def test_auto_resize_full_parity_under_bad_hint(self, hint):
        """Self-tuning (Brown 1988 §4) makes the width a hint only: even
        a pathological starting width must reproduce the heap schedule's
        distances AND step/substep accounting exactly."""
        g = random_connected_graph(80, 200, seed=13, weight_high=50)
        pre = build_kr_graph(g, k=2, rho=12, heuristic="dp")
        a = run_engine(
            pre.graph, 0, RadiusSchedule(pre.radii), track_trace=True
        )
        b = run_engine(
            pre.graph,
            0,
            RadiusBucketSchedule(pre.radii, width=hint, auto_resize=True),
            track_trace=True,
        )
        assert np.array_equal(a.dist, b.dist)
        assert (a.steps, a.substeps, a.max_substeps, a.relaxations) == (
            b.steps,
            b.substeps,
            b.max_substeps,
            b.relaxations,
        )
        assert [(t.radius, t.substeps, t.settled) for t in a.trace] == [
            (t.radius, t.substeps, t.settled) for t in b.trace
        ]


class TestScheduleSemantics:
    def test_bellman_ford_schedule_single_step(self):
        g = random_connected_graph(25, 60, seed=1)
        res = run_engine(g, 0, BellmanFordSchedule())
        assert res.steps == 1
        assert np.allclose(res.dist, dijkstra(g, 0).dist)

    def test_delta_schedule_boundaries_monotone(self):
        g = random_connected_graph(25, 60, seed=2, weight_high=10)
        res = run_engine(g, 0, DeltaSchedule(4.0), track_trace=True)
        radii_seq = [t.radius for t in res.trace]
        assert radii_seq == sorted(radii_seq)
        assert all(r % 4.0 == 0 for r in radii_seq)

    def test_delta_schedule_rejects_bad_delta(self):
        for bad in (0.0, -2.0, math.inf):
            with pytest.raises(ValueError):
                DeltaSchedule(bad)

    def test_parents_valid_across_schedules(self):
        g = random_connected_graph(35, 80, seed=3)
        for engine in PARENT_ENGINES:
            res = solve_with_engine(engine, g, 2, 5.0, track_parents=True)
            assert_valid_parents(g, res.dist, res.parent, 2)

    def test_rho_schedule_rejects_bad_rho(self):
        from repro.engine import RhoSchedule

        for bad in (0, -3):
            with pytest.raises(ValueError):
                RhoSchedule(bad)

    def test_delta_star_schedule_rejects_bad_delta(self):
        from repro.engine import DeltaStarSchedule

        for bad in (0.0, -2.0, math.inf):
            with pytest.raises(ValueError):
                DeltaStarSchedule(bad)

    def test_rho_one_settles_like_dijkstra(self):
        """ρ = 1 must settle one frontier vertex per step (plus exact
        ties), interpolating down to batched Dijkstra."""
        from repro.engine import RhoSchedule

        g = random_connected_graph(30, 70, seed=8, weight_high=1000)
        res = run_engine(g, 0, RhoSchedule(1), track_trace=True)
        ref = solve_with_engine("dijkstra", g, 0, None, track_trace=True)
        assert np.array_equal(res.dist, ref.dist)
        assert res.steps == ref.steps

    def test_rho_n_single_step(self):
        """ρ ≥ n pops the whole frontier every step — Bellman–Ford-like
        step counts on a connected graph."""
        from repro.engine import RhoSchedule

        g = random_connected_graph(25, 60, seed=9)
        res = run_engine(g, 0, RhoSchedule(g.n))
        assert np.allclose(res.dist, dijkstra(g, 0).dist)
        assert res.steps <= 2

    def test_rho_steps_shrink_as_rho_grows(self):
        from repro.engine import RhoSchedule

        g = random_connected_graph(120, 300, seed=10)
        steps = [
            run_engine(g, 0, RhoSchedule(rho)).steps for rho in (1, 8, 64)
        ]
        assert steps[0] >= steps[1] >= steps[2]

    def test_delta_star_bounds_float_with_frontier_min(self):
        """∆*-stepping's d_i = min + ∆ floats with the frontier: every
        traced radius must exceed its step's minimum fresh key by
        exactly ∆, and the sequence must be strictly increasing."""
        from repro.engine import DeltaStarSchedule

        g = random_connected_graph(40, 100, seed=11, weight_high=15)
        res = run_engine(g, 0, DeltaStarSchedule(4.0), track_trace=True)
        assert np.array_equal(res.dist, dijkstra(g, 0).dist)
        radii_seq = [t.radius for t in res.trace]
        assert radii_seq == sorted(radii_seq)

    def test_delta_star_heavy_arcs_excluded_from_substeps(self):
        """A graph whose only route crosses a heavy arc: the heavy edge
        must still be relaxed (once, at settle time) and the distances
        must stay exact."""
        from repro.engine import DeltaStarSchedule

        g = from_edge_list(4, [(0, 1, 1.0), (1, 2, 50.0), (2, 3, 1.0)])
        res = run_engine(g, 0, DeltaStarSchedule(2.0), track_parents=True)
        assert res.dist.tolist() == [0.0, 1.0, 51.0, 52.0]
        assert res.parent.tolist() == [-1, 0, 1, 2]


class TestRegistry:
    def test_known_engines_present(self):
        for name in (
            "vectorized",
            "bucket",
            "bst",
            "unweighted",
            "dijkstra",
            "delta",
            "delta-star",
            "rho",
            "bellman-ford",
        ):
            assert name in ALL_ENGINES

    def test_unknown_engine_lists_names(self):
        with pytest.raises(ValueError, match="registered engines"):
            get_engine("quantum")

    def test_parent_support_enforced(self):
        g = grid_2d(3, 3)
        with pytest.raises(ValueError, match="does not track parents"):
            solve_with_engine("bst", g, 0, 0.0, track_parents=True)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_engine("vectorized", lambda *a, **k: None)

    def test_invalid_names_rejected(self):
        for bad in ("", "auto"):
            with pytest.raises(ValueError):
                register_engine(bad, lambda *a, **k: None)

    def test_custom_schedule_plugin(self):
        """A third-party schedule registers and serves like a built-in —
        the extension path examples/engine_plugins.py demonstrates."""

        class EveryReachedSchedule(BellmanFordSchedule):
            name = "test-every-reached"

        def solve(graph, source, radii, *, track_parents, track_trace, ledger):
            return run_engine(
                graph,
                source,
                EveryReachedSchedule(),
                track_parents=track_parents,
                track_trace=track_trace,
                ledger=ledger,
            )

        spec = register_engine("test-every-reached", solve, overwrite=True)
        try:
            g = random_connected_graph(20, 50, seed=4)
            res = solve_with_engine("test-every-reached", g, 0, None)
            assert np.allclose(res.dist, dijkstra(g, 0).dist)
            assert spec.name in available_engines()
        finally:
            import repro.engine.registry as reg

            reg._REGISTRY.pop("test-every-reached", None)
