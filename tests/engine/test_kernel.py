"""Unit tests for the shared relaxation kernel."""

import numpy as np
import pytest

from repro.engine import RelaxationKernel, gather_frontier_arcs
from repro.graphs import from_edge_list

from tests.helpers import random_connected_graph


class TestRelax:
    def test_source_relax_improves_neighbors(self):
        g = from_edge_list(4, [(0, 1, 2.0), (0, 2, 5.0), (2, 3, 1.0)])
        k = RelaxationKernel(g, 0)
        improved = k.relax_source(0)
        assert improved.tolist() == [1, 2]
        assert k.dist.tolist() == [0.0, 2.0, 5.0, np.inf]
        assert k.relaxations == g.degree(0)

    def test_exclude_settled_filters_arcs(self):
        g = from_edge_list(3, [(0, 1, 1.0), (1, 2, 1.0)])
        k = RelaxationKernel(g, 0)
        k.relax_source(0)
        # arcs back into the settled source are dropped
        improved, n_arcs = k.relax(np.array([1]), exclude_settled=True)
        assert n_arcs == 1
        assert improved.tolist() == [2]

    def test_arc_mask(self):
        g = from_edge_list(3, [(0, 1, 1.0), (0, 2, 10.0)])
        k = RelaxationKernel(g, 0)
        light = g.weights <= 5.0
        improved, n_arcs = k.relax(
            np.array([0]), exclude_settled=False, arc_mask=light
        )
        assert improved.tolist() == [1]
        assert n_arcs == 1
        assert np.isinf(k.dist[2])

    def test_quiescence_returns_zero_arcs(self):
        g = from_edge_list(2, [(0, 1, 1.0)])
        k = RelaxationKernel(g, 0)
        k.relax_source(0)
        k.settle(np.array([1]))
        improved, n_arcs = k.relax(np.array([1]), exclude_settled=True)
        assert n_arcs == 0 and len(improved) == 0

    def test_bad_source(self):
        with pytest.raises(ValueError):
            RelaxationKernel(from_edge_list(2, [(0, 1, 1.0)]), 5)


class TestParentTracking:
    def test_tie_does_not_rewrite_parent(self):
        """Regression: an arc that merely *ties* a pre-existing distance
        must not steal the parent of an already-correct vertex (the seed
        engines compared against post-scatter distances, so it did)."""
        g = from_edge_list(3, [(0, 1, 1.0), (0, 2, 2.0), (1, 2, 1.0)])
        k = RelaxationKernel(g, 0, track_parents=True)
        k.relax_source(0)
        assert k.parent.tolist() == [-1, 0, 0]
        # relaxing 1 offers 2 a tying path 0->1->2 of the same weight 2
        improved, _ = k.relax(np.array([1]), exclude_settled=True)
        assert len(improved) == 0
        assert k.parent[2] == 0, "non-improving arc rewrote the parent"

    def test_improvement_does_rewrite_parent(self):
        g = from_edge_list(3, [(0, 1, 1.0), (0, 2, 5.0), (1, 2, 1.0)])
        k = RelaxationKernel(g, 0, track_parents=True)
        k.relax_source(0)
        k.relax(np.array([1]), exclude_settled=True)
        assert k.dist[2] == 2.0
        assert k.parent[2] == 1

    def test_zero_weight_tie_cycle_impossible(self):
        """With strict-improvement wins, zero-weight ties cannot create a
        parent cycle."""
        g = from_edge_list(3, [(0, 1, 0.0), (1, 2, 0.0), (0, 2, 0.0)])
        k = RelaxationKernel(g, 0, track_parents=True)
        frontier = k.relax_source(0)
        while len(frontier):
            frontier, _ = k.relax(frontier, exclude_settled=True)
        # follow parents from every vertex; must terminate at the source
        for v in range(3):
            seen = set()
            while v != 0:
                assert v not in seen, "parent cycle"
                seen.add(v)
                v = int(k.parent[v])


class TestSplitMembers:
    def test_partition_preserves_order(self):
        g = from_edge_list(6, [(0, 1, 1.0)])
        k = RelaxationKernel(g, 0)
        members = np.array([2, 4, 5])
        cand = np.array([5, 1, 4, 3])
        fresh, seen = k.split_members(members, cand)
        assert fresh.tolist() == [1, 3]
        assert seen.tolist() == [5, 4]

    def test_scratch_mask_restored(self):
        g = from_edge_list(4, [(0, 1, 1.0)])
        k = RelaxationKernel(g, 0)
        k.split_members(np.array([1, 2]), np.array([2, 3]))
        fresh, seen = k.split_members(np.array([3]), np.array([1, 2, 3]))
        assert fresh.tolist() == [1, 2]
        assert seen.tolist() == [3]

    def test_matches_isin_on_random_input(self):
        g = random_connected_graph(50, 120, seed=3)
        k = RelaxationKernel(g, 0)
        rng = np.random.default_rng(0)
        members = rng.choice(50, 20, replace=False)
        cand = rng.choice(50, 30, replace=False)
        fresh, seen = k.split_members(members, cand)
        isin = np.isin(cand, members)
        assert fresh.tolist() == cand[~isin].tolist()
        assert seen.tolist() == cand[isin].tolist()


class TestGatherReExport:
    def test_core_bfs_reexports_kernel_gather(self):
        from repro.core.bfs import gather_frontier_arcs as legacy

        assert legacy is gather_frontier_arcs
