"""Relabel equivariance across the whole engine registry.

For every registered engine and every registered ordering:
``solve(permute(g), perm[s]).dist[perm] == solve(g, s).dist`` —
bit-for-bit, not approximately.  Converged SSSP distances are minima
over per-path left-to-right float sums, and relabeling permutes the
path set without touching any sum, so even float rounding is identical.
This is the property that lets the serving layer run queries on a
locality-reordered graph and hand back answers in the caller's ids with
zero numerical drift.
"""

import numpy as np
import pytest

from repro.engine.registry import available_engines, get_engine, solve_with_engine
from repro.graphs.reorder import available_orderings, reorder_graph
from repro.graphs.weights import unit_weights

from tests.helpers import assert_valid_parents, random_connected_graph

RADII_SEED = 99


def _case(engine):
    """Integer weights so equality is exact; unit weights for the
    unweighted engine (its registered contract)."""
    g = random_connected_graph(60, 140, seed=31, weight_high=25)
    if engine == "unweighted":
        g = unit_weights(g)
    rng = np.random.default_rng(RADII_SEED)
    radii = rng.uniform(0.5, 6.0, g.n)
    return g, radii


@pytest.mark.parametrize("engine", available_engines())
@pytest.mark.parametrize("method", available_orderings())
def test_dist_bit_identical_under_relabeling(engine, method):
    g, radii = _case(engine)
    res = reorder_graph(g, method, seed=41)
    source = 3
    a = solve_with_engine(engine, g, source, radii)
    b = solve_with_engine(
        engine, res.graph, int(res.perm[source]), radii[res.inv_perm]
    )
    assert np.array_equal(b.dist[res.perm], a.dist), (
        f"{engine} under {method}: distances drifted"
    )


@pytest.mark.parametrize("engine", available_engines())
def test_parents_valid_under_relabeling(engine):
    """Parent pointers may differ on equal-weight ties, but the mapped
    tree must still realize every distance in the original graph."""
    spec = get_engine(engine)
    if not spec.supports_parents:
        pytest.skip(f"{engine} does not track parents")
    g, radii = _case(engine)
    res = reorder_graph(g, "rcm", seed=41)
    source = 3
    b = solve_with_engine(
        engine,
        res.graph,
        int(res.perm[source]),
        radii[res.inv_perm],
        track_parents=True,
    )
    # map back to original ids: parent_ext[v] = inv[parent_int[perm[v]]]
    p_int = b.parent[res.perm]
    parent = np.full(g.n, -1, dtype=np.int64)
    mask = p_int >= 0
    parent[mask] = res.inv_perm[p_int[mask]]
    assert_valid_parents(g, b.dist[res.perm], parent, source)


@pytest.mark.parametrize("engine", available_engines())
def test_relaxation_count_invariant(engine):
    """Work accounting is also permutation-invariant for radius-driven
    engines: the schedule depends on (dist, radii) values, not ids —
    the fairness property the reorder benchmark relies on."""
    if engine in ("delta", "delta-star", "rho", "bst"):
        pytest.skip("schedule breaks distance ties by id")
    g, radii = _case(engine)
    res = reorder_graph(g, "random", seed=43)
    a = solve_with_engine(engine, g, 5, radii)
    b = solve_with_engine(
        engine, res.graph, int(res.perm[5]), radii[res.inv_perm]
    )
    assert a.relaxations == b.relaxations
