"""Tests for the Theorem 3.2/3.3 ablation driver."""

import pytest

from repro.experiments.bounds_check import render_bounds, run_bounds_check


@pytest.fixture(scope="module")
def points():
    return run_bounds_check(
        "tiny",
        datasets=("grid2d",),
        ks=(1, 2),
        rhos=(4, 8),
        heuristics=("full", "dp"),
        weighted=True,
    )


class TestBounds:
    def test_every_configuration_holds(self, points):
        for p in points:
            assert p.holds, f"bound violated: {p}"

    def test_slacks_in_unit_interval(self, points):
        for p in points:
            assert 0 < p.substep_slack <= 1.0
            assert 0 < p.step_slack <= 1.0

    def test_full_runs_once_per_rho(self, points):
        full_points = [p for p in points if p.heuristic == "full"]
        assert len(full_points) == 2  # one per rho, not per k

    def test_render(self, points):
        out = render_bounds(points)
        assert "Theorem 3.2 / 3.3" in out
        assert "NO" not in out.split("holds")[-1] or "yes" in out
