"""Unit tests for the six evaluation datasets."""

import numpy as np
import pytest

from repro.experiments import DATASET_NAMES, get_scale, make_all_datasets, make_dataset
from repro.graphs import is_connected, validate_graph


@pytest.fixture(scope="module")
def tiny():
    return get_scale("tiny")


class TestConstruction:
    def test_all_six_build(self, tiny):
        data = make_all_datasets(tiny)
        assert set(data) == set(DATASET_NAMES)
        for ds in data.values():
            validate_graph(ds.unweighted)
            assert is_connected(ds.unweighted)

    def test_weighted_variant(self, tiny):
        ds = make_dataset("grid2d", tiny)
        assert ds.unweighted.is_unweighted
        assert not ds.weighted.is_unweighted
        assert ds.weighted.max_weight <= 10_000
        assert ds.weighted.m == ds.unweighted.m

    def test_sizes_match_scale(self, tiny):
        assert make_dataset("grid2d", tiny).n == tiny.grid2d_side**2
        assert make_dataset("grid3d", tiny).n == tiny.grid3d_side**3
        assert make_dataset("road-pa", tiny).n == tiny.road_n[0]

    def test_deterministic(self, tiny):
        a = make_dataset("web-nd", tiny)
        b = make_dataset("web-nd", tiny)
        assert a.unweighted == b.unweighted
        assert np.array_equal(a.weighted.weights, b.weighted.weights)

    def test_unknown_name(self, tiny):
        with pytest.raises(ValueError):
            make_dataset("road-xx", tiny)


class TestCharacter:
    def test_road_is_sparse(self, tiny):
        ds = make_dataset("road-pa", tiny)
        assert 2 * ds.m / ds.n < 3.2

    def test_web_has_hubs(self, tiny):
        ds = make_dataset("web-st", tiny)
        deg = ds.unweighted.degrees()
        assert deg.max() > 8 * np.median(deg)

    def test_scale_lookup(self):
        with pytest.raises(ValueError, match="unknown scale"):
            get_scale("huge")
        assert get_scale("tiny").name == "tiny"
