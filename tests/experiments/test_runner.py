"""Tests for the CLI runner."""

import pytest

from repro.experiments.runner import EXPERIMENTS, build_parser, main


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["fig2"])
        assert args.scale == "small"
        assert args.n_jobs == 1

    def test_multiple_experiments(self):
        args = build_parser().parse_args(["table2", "table3", "--scale", "tiny"])
        assert args.experiments == ["table2", "table3"]

    def test_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table99"])

    def test_rejects_unknown_scale(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig2", "--scale", "galactic"])

    def test_all_registered_experiments_have_callables(self):
        expected = {
            "fig1", "fig2", "fig3", "fig4", "fig5",
            "table1", "table2", "table3", "table4",
            "table5", "table6", "table7",
            "workdepth", "bounds",
        }
        assert set(EXPERIMENTS) == expected


class TestMain:
    def test_fig2_and_table1(self, capsys):
        assert main(["fig2", "table1", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "Figure 2 check" in out
        assert "Table 1" in out
        assert "# configuration" in out
