"""Tests for the Figure 3 / Tables 2–3 drivers (reduced sweep)."""

import pytest

from repro.experiments import get_scale
from repro.experiments.shortcut_edges import (
    render_factor_table,
    render_fig3,
    run_shortcut_suite,
)


@pytest.fixture(scope="module")
def suite():
    return run_shortcut_suite(
        "tiny",
        datasets=("grid2d", "web-st"),
        ks=(2, 3),
        rhos=(5, 10, 20),
        with_rounds=True,
    )


class TestSuite:
    def test_structure(self, suite):
        assert set(suite.counts) == {"grid2d", "web-st"}
        assert suite.ks == (2, 3)

    def test_dp_never_worse(self, suite):
        for name in suite.counts:
            for k in suite.ks:
                for rho in suite.rhos:
                    assert suite.factor(name, "dp", k, rho) <= suite.factor(
                        name, "greedy", k, rho
                    ) + 1e-12

    def test_larger_k_fewer_edges(self, suite):
        """§5.4: 'A larger k will reduce the number of added edges.'"""
        for name in suite.counts:
            for rho in suite.rhos:
                assert suite.factor(name, "dp", 3, rho) <= suite.factor(
                    name, "dp", 2, rho
                ) + 1e-12

    def test_webgraph_dp_small(self, suite):
        """Hubs make DP nearly free on scale-free graphs (§5.2)."""
        assert suite.factor("web-st", "dp", 3, 20) < 0.5

    def test_rounds_reduction_present(self, suite):
        assert set(suite.rounds_reduction) == {"grid2d", "web-st"}
        for per_rho in suite.rounds_reduction.values():
            assert all(v >= 1.0 for v in per_rho.values())


class TestRenderers:
    def test_table2(self, suite):
        out = render_factor_table(suite, "greedy")
        assert "Table 2" in out and "red. rounds" in out

    def test_table3(self, suite):
        out = render_factor_table(suite, "dp")
        assert "Table 3" in out

    def test_fig3(self, suite):
        out = render_fig3(suite, k=3)
        assert "Figure 3" in out and "legend" in out

    def test_fig3_bad_k(self, suite):
        with pytest.raises(ValueError):
            render_fig3(suite, k=9)
