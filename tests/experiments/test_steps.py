"""Tests for the Figure 4/5 and Tables 4–7 drivers (reduced sweep)."""

import pytest

from repro.experiments import get_scale, make_dataset
from repro.experiments.steps import (
    render_reduction_table,
    render_steps_figure,
    render_steps_table,
    run_steps_for_dataset,
    run_steps_suite,
)


@pytest.fixture(scope="module")
def suite():
    cfg = get_scale("tiny")
    return run_steps_suite(
        cfg,
        weighted=False,
        datasets=("grid2d", "web-st"),
        rhos=(1, 4, 16),
        num_sources=2,
    )


class TestRunSuite:
    def test_structure(self, suite):
        assert set(suite.results) == {"grid2d", "web-st"}
        assert suite.rhos == (1, 4, 16)

    def test_steps_decrease_with_rho(self, suite):
        for res in suite.results.values():
            assert res.mean_steps(1) >= res.mean_steps(4) >= res.mean_steps(16)

    def test_reduction_ge_one(self, suite):
        for res in suite.results.values():
            for rho in (4, 16):
                assert res.reduction(rho) >= 1.0

    def test_rho1_equals_bfs_rounds(self, suite):
        """The headline convention check: unweighted ρ=1 == BFS."""
        for res in suite.results.values():
            assert res.mean_steps(1) == pytest.approx(res.bfs_rounds)

    def test_accepts_scale_name(self):
        s = run_steps_suite(
            "tiny",
            weighted=True,
            datasets=("grid2d",),
            rhos=(1, 8),
            num_sources=1,
        )
        assert s.weighted
        # weighted rho=1 is near one-settle-per-step
        res = s.results["grid2d"]
        assert res.mean_steps(1) > res.n * 0.8


class TestWeightedSuite:
    def test_weighted_larger_reduction(self):
        """Weighted ρ=1 takes ~n steps, so even small ρ reduces steps far
        more than in the unweighted case (§5.3)."""
        cfg = get_scale("tiny")
        uw = run_steps_suite(
            cfg, weighted=False, datasets=("grid2d",), rhos=(1, 8), num_sources=2
        )
        w = run_steps_suite(
            cfg, weighted=True, datasets=("grid2d",), rhos=(1, 8), num_sources=2
        )
        assert w.results["grid2d"].reduction(8) > uw.results["grid2d"].reduction(8)


class TestRenderers:
    def test_steps_table(self, suite):
        out = render_steps_table(suite)
        assert "Table 4" in out
        assert "grid2d" in out and "web-st" in out
        assert "vertices" in out

    def test_reduction_table(self, suite):
        out = render_reduction_table(suite)
        assert "Table 5" in out
        # rho=1 row excluded (it is the baseline)
        assert not any(line.startswith("  1 |") for line in out.splitlines())

    def test_figure(self, suite):
        out = render_steps_figure(suite)
        assert "Figure 4" in out
        assert "legend" in out
