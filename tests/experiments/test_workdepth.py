"""Tests for the Table 1 / work-depth measurement driver."""

import pytest

from repro.experiments.workdepth import (
    render_table1,
    render_workdepth,
    run_workdepth,
)


@pytest.fixture(scope="module")
def points():
    return run_workdepth(sides=(6, 10), rhos=(4, 8), k=2)


class TestMeasurement:
    def test_points_produced(self, points):
        assert len(points) == 4

    def test_ratios_bounded(self, points):
        """Measured PRAM costs must track the Theorem 1.1 shapes: the
        constant in front of the bound stays modest across sizes."""
        for p in points:
            assert 0 < p.work_ratio < 50
            assert 0 < p.depth_ratio < 50

    def test_work_grows_with_size(self, points):
        small = [p for p in points if p.n <= 36]
        large = [p for p in points if p.n >= 100]
        assert min(p.work for p in large) > max(p.work for p in small) * 0.5

    def test_depth_decreases_with_rho(self, points):
        by_n: dict[int, dict[int, float]] = {}
        for p in points:
            by_n.setdefault(p.n, {})[p.rho] = p.depth
        for depths in by_n.values():
            assert depths[8] <= depths[4]


class TestRenderers:
    def test_table1_text(self):
        out = render_table1()
        assert "This work" in out
        assert "O((m + n p) log n)" in out

    def test_workdepth_table(self, points):
        out = render_workdepth(points)
        assert "Theorem 1.1" in out
