"""Unit tests for graph construction and transformations."""

import numpy as np
import pytest

from repro.graphs import (
    add_shortcuts,
    connected_components,
    from_adjacency,
    from_arc_arrays,
    from_edge_list,
    induced_subgraph,
    is_connected,
    largest_connected_component,
    reweighted,
)
from repro.graphs.generators import grid_2d, path_graph


class TestFromEdgeList:
    def test_basic(self):
        g = from_edge_list(3, [(0, 1), (1, 2)])
        assert g.m == 2 and g.is_unweighted

    def test_duplicates_keep_min_weight(self):
        g = from_edge_list(2, [(0, 1, 5.0), (1, 0, 3.0), (0, 1, 9.0)])
        assert g.m == 1
        assert g.edge_weight(0, 1) == 3.0

    def test_self_loops_dropped(self):
        g = from_edge_list(2, [(0, 0), (0, 1)])
        assert g.m == 1

    def test_empty(self):
        assert from_edge_list(4, []).m == 0

    def test_out_of_range_rejected(self):
        with pytest.raises(Exception):
            from_edge_list(2, [(0, 5)])


class TestFromArcArrays:
    def test_symmetrize_default(self):
        g = from_arc_arrays(3, np.array([0]), np.array([1]))
        assert g.has_edge(1, 0)

    def test_no_symmetrize_requires_symmetric_input(self):
        from repro.graphs import GraphValidationError

        with pytest.raises(GraphValidationError):
            from_arc_arrays(
                3, np.array([0]), np.array([1]), symmetrize=False, validate=True
            )

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            from_arc_arrays(3, np.array([0]), np.array([1, 2]))


class TestFromAdjacency:
    def test_weighted_mapping(self):
        g = from_adjacency({0: {1: 2.0}, 1: {2: 4.0}})
        assert g.n == 3
        assert g.edge_weight(1, 2) == 4.0

    def test_unweighted_lists(self):
        g = from_adjacency({0: [1, 2]})
        assert g.m == 2 and g.is_unweighted


class TestAddShortcuts:
    def test_adds_new_edges(self):
        g = path_graph(4)
        aug = add_shortcuts(
            g, np.array([0]), np.array([3]), np.array([3.0])
        )
        assert aug.m == g.m + 1
        assert aug.edge_weight(0, 3) == 3.0

    def test_merge_keeps_min_weight(self):
        g = from_edge_list(2, [(0, 1, 5.0)])
        aug = add_shortcuts(g, np.array([0]), np.array([1]), np.array([2.0]))
        assert aug.m == 1
        assert aug.edge_weight(0, 1) == 2.0

    def test_never_raises_existing_weight(self):
        g = from_edge_list(2, [(0, 1, 2.0)])
        aug = add_shortcuts(g, np.array([0]), np.array([1]), np.array([9.0]))
        assert aug.edge_weight(0, 1) == 2.0

    def test_empty_shortcuts_identity(self):
        g = grid_2d(3, 3)
        aug = add_shortcuts(
            g, np.empty(0, np.int64), np.empty(0, np.int64), np.empty(0)
        )
        assert aug == g


class TestComponents:
    def test_single_component(self):
        assert is_connected(grid_2d(4, 4))

    def test_two_components(self):
        g = from_edge_list(5, [(0, 1), (2, 3)])
        labels = connected_components(g)
        assert labels[0] == labels[1]
        assert labels[2] == labels[3]
        assert labels[0] != labels[2]
        assert not is_connected(g)

    def test_isolated_vertices_are_components(self):
        g = from_edge_list(3, [(0, 1)])
        labels = connected_components(g)
        assert len(set(labels.tolist())) == 2

    def test_largest_component(self):
        g = from_edge_list(6, [(0, 1), (1, 2), (3, 4)])
        sub, ids = largest_connected_component(g)
        assert sub.n == 3
        assert ids.tolist() == [0, 1, 2]

    def test_empty_graph_connected(self):
        assert is_connected(from_edge_list(0, []))


class TestInducedSubgraph:
    def test_keeps_internal_edges_only(self):
        g = from_edge_list(4, [(0, 1, 2.0), (1, 2, 3.0), (2, 3, 4.0)])
        sub, ids = induced_subgraph(g, np.array([1, 2, 3]))
        assert sub.n == 3
        assert sub.m == 2
        assert ids.tolist() == [1, 2, 3]
        assert sub.edge_weight(0, 1) == 3.0  # old (1, 2)

    def test_empty_vertex_set(self):
        """An empty shard is a legal (if useless) partition block: the
        induced subgraph is the empty graph, not an error."""
        g = from_edge_list(4, [(0, 1), (1, 2), (2, 3)])
        sub, ids = induced_subgraph(g, np.empty(0, dtype=np.int64))
        assert sub.n == 0
        assert sub.m == 0
        assert ids.tolist() == []

    def test_singleton_shard(self):
        """One vertex: no internal edges survive, whatever its degree."""
        g = from_edge_list(4, [(0, 1), (1, 2), (1, 3)])
        sub, ids = induced_subgraph(g, np.array([1]))
        assert sub.n == 1
        assert sub.m == 0
        assert ids.tolist() == [1]

    def test_zero_boundary_shard_is_exact_component(self):
        """A shard with no cut edges (a whole connected component) keeps
        every edge at its weight — its induced metric is the full-graph
        metric restricted to it."""
        g = from_edge_list(5, [(0, 1, 2.0), (1, 2, 5.0), (3, 4, 7.0)])
        sub, ids = induced_subgraph(g, np.array([3, 4]))
        assert sub.n == 2
        assert sub.m == 1
        assert ids.tolist() == [3, 4]
        assert sub.edge_weight(0, 1) == 7.0


class TestReweighted:
    def test_weights_replaced(self):
        g = path_graph(3)
        g2 = reweighted(g, np.full(g.num_arcs, 4.0))
        assert g2.edge_weight(0, 1) == 4.0
        assert g2.m == g.m

    def test_asymmetric_weights_rejected(self):
        from repro.graphs import GraphValidationError

        g = path_graph(3)
        w = g.weights.copy()
        w[0] = 9.0
        with pytest.raises(GraphValidationError):
            reweighted(g, w)
