"""Unit tests for the CSR graph kernel."""

import numpy as np
import pytest

from repro.graphs import CSRGraph, from_edge_list
from repro.graphs.generators import grid_2d, path_graph


@pytest.fixture
def triangle() -> CSRGraph:
    return from_edge_list(3, [(0, 1, 2.0), (1, 2, 3.0), (0, 2, 7.0)])


class TestSizes:
    def test_counts(self, triangle):
        assert triangle.n == 3
        assert triangle.m == 3
        assert triangle.num_arcs == 6

    def test_isolated_vertices_allowed(self):
        g = from_edge_list(5, [(0, 1)])
        assert g.n == 5
        assert g.m == 1
        assert g.degree(4) == 0

    def test_empty_graph(self):
        g = from_edge_list(2, [])
        assert g.n == 2 and g.m == 0
        assert g.max_weight == 0.0
        assert g.min_positive_weight == float("inf")


class TestWeightsSummaries:
    def test_min_positive_and_max(self, triangle):
        assert triangle.min_positive_weight == 2.0
        assert triangle.max_weight == 7.0

    def test_is_unweighted(self):
        assert path_graph(4).is_unweighted
        assert not from_edge_list(2, [(0, 1, 2.5)]).is_unweighted

    def test_summaries_cached(self, triangle):
        assert triangle.min_positive_weight == triangle.min_positive_weight
        assert triangle.max_weight == triangle.max_weight


class TestLocalStructure:
    def test_neighbors_sorted_union(self, triangle):
        assert sorted(triangle.neighbors(0).tolist()) == [1, 2]
        assert sorted(triangle.neighbors(1).tolist()) == [0, 2]

    def test_neighbor_weights_parallel(self, triangle):
        nbrs = triangle.neighbors(0)
        ws = triangle.neighbor_weights(0)
        lookup = dict(zip(nbrs.tolist(), ws.tolist()))
        assert lookup == {1: 2.0, 2: 7.0}

    def test_degrees(self, triangle):
        assert triangle.degrees().tolist() == [2, 2, 2]
        assert triangle.degree(1) == 2

    def test_has_edge(self, triangle):
        assert triangle.has_edge(0, 1)
        assert not triangle.has_edge(1, 1)

    def test_edge_weight(self, triangle):
        assert triangle.edge_weight(2, 0) == 7.0
        with pytest.raises(KeyError):
            from_edge_list(3, [(0, 1)]).edge_weight(0, 2)


class TestExport:
    def test_iter_edges_each_once(self, triangle):
        edges = sorted(triangle.iter_edges())
        assert edges == [(0, 1, 2.0), (0, 2, 7.0), (1, 2, 3.0)]

    def test_edge_array_matches_iter(self, triangle):
        us, vs, ws = triangle.edge_array()
        got = sorted(zip(us.tolist(), vs.tolist(), ws.tolist()))
        assert got == sorted(triangle.iter_edges())
        assert (us < vs).all()

    def test_memory_bytes_positive(self, triangle):
        assert triangle.memory_bytes() > 0


class TestImmutability:
    def test_arrays_read_only(self, triangle):
        with pytest.raises(ValueError):
            triangle.indices[0] = 0
        with pytest.raises(ValueError):
            triangle.weights[0] = 1.0

    def test_equality(self, triangle):
        other = from_edge_list(3, [(0, 1, 2.0), (1, 2, 3.0), (0, 2, 7.0)])
        assert triangle == other
        assert triangle != grid_2d(2, 2)
        assert triangle != 5

    def test_hashable(self, triangle):
        assert isinstance(hash(triangle), int)
