"""Unit and property tests for the graph generators."""

import numpy as np
import pytest

from repro.core.bfs import bfs_levels
from repro.graphs import is_connected, validate_graph
from repro.graphs.generators import (
    binary_tree,
    complete_graph,
    cycle_graph,
    erdos_renyi,
    figure2_graph,
    greedy_bad_tree,
    grid_2d,
    grid_3d,
    path_graph,
    random_geometric,
    road_network,
    scale_free,
    small_world,
    star_graph,
)


class TestElementary:
    def test_path(self):
        g = path_graph(5)
        assert (g.n, g.m) == (5, 4)
        assert g.degree(0) == 1 and g.degree(2) == 2

    def test_cycle(self):
        g = cycle_graph(6)
        assert g.m == 6
        assert all(g.degree(v) == 2 for v in range(6))

    def test_star(self):
        g = star_graph(7)
        assert g.degree(0) == 7
        assert g.m == 7

    def test_complete(self):
        g = complete_graph(5)
        assert g.m == 10

    def test_binary_tree(self):
        g = binary_tree(3)
        assert g.n == 15 and g.m == 14
        levels, rounds = bfs_levels(g, 0)
        assert rounds == 3

    @pytest.mark.parametrize(
        "factory, bad",
        [
            (path_graph, 0),
            (cycle_graph, 2),
            (star_graph, 0),
            (complete_graph, 1),
            (binary_tree, -1),
        ],
    )
    def test_invalid_sizes(self, factory, bad):
        with pytest.raises(ValueError):
            factory(bad)


class TestGrids:
    def test_grid2d_counts(self):
        g = grid_2d(4, 5)
        assert g.n == 20
        assert g.m == 4 * 4 + 3 * 5  # horizontal + vertical

    def test_grid2d_diagonals(self):
        g = grid_2d(3, 3, diagonals=True)
        assert g.m == 12 + 8

    def test_grid2d_bfs_distance_is_manhattan(self):
        g = grid_2d(5, 7)
        levels, _ = bfs_levels(g, 0)
        for r in range(5):
            for c in range(7):
                assert levels[r * 7 + c] == r + c

    def test_grid3d_counts(self):
        g = grid_3d(3, 4, 5)
        assert g.n == 60
        assert g.m == 2 * 4 * 5 + 3 * 3 * 5 + 3 * 4 * 4

    def test_grids_connected_and_valid(self):
        for g in (grid_2d(6, 3), grid_3d(3, 3, 3)):
            validate_graph(g)
            assert is_connected(g)


class TestRandomModels:
    def test_erdos_renyi_connected(self):
        g = erdos_renyi(60, 90, seed=1)
        assert is_connected(g)
        assert g.m >= 90

    def test_erdos_renyi_deterministic(self):
        assert erdos_renyi(40, 60, seed=9) == erdos_renyi(40, 60, seed=9)

    def test_erdos_renyi_overfull_clamps_to_complete(self):
        """Requests beyond C(n,2) must terminate with the complete graph,
        not loop in rejection sampling (regression: n=4, m=8 used to
        hang the whole suite via hypothesis)."""
        g = erdos_renyi(4, 8)
        assert g.m == 6
        assert is_connected(g)

    def test_erdos_renyi_exactly_complete(self):
        g = erdos_renyi(5, 10)
        assert g.m == 10

    def test_erdos_renyi_dense_regime_exact_count(self):
        """The dense path (m > C(n,2)/2) returns exactly m edges."""
        g = erdos_renyi(12, 50, seed=3, connect=False)
        assert g.m == 50
        h = erdos_renyi(12, 50, seed=3, connect=False)
        assert g == h  # deterministic in the dense regime too

    def test_scale_free_has_hubs(self):
        g = scale_free(400, 2, seed=0)
        assert is_connected(g)
        deg = g.degrees()
        # Preferential attachment: max degree far above the median.
        assert deg.max() >= 6 * np.median(deg)

    def test_scale_free_edge_count(self):
        n, a = 100, 3
        g = scale_free(n, a, seed=4)
        expected = a * (a + 1) // 2 + (n - a - 1) * a
        assert g.m == expected

    def test_scale_free_invalid(self):
        with pytest.raises(ValueError):
            scale_free(3, 3)
        with pytest.raises(ValueError):
            scale_free(10, 0)

    def test_road_network_profile(self):
        g, pts = road_network(500, seed=3)
        validate_graph(g)
        assert is_connected(g)
        avg_deg = 2 * g.m / g.n
        assert 2.5 <= avg_deg <= 3.1
        assert pts.shape == (500, 2)

    def test_road_network_deterministic(self):
        a, _ = road_network(200, seed=5)
        b, _ = road_network(200, seed=5)
        assert a == b

    def test_small_world_always_connected(self):
        """The offset-1 ring is never rewired, so connectivity survives
        any rewiring probability — including p = 1."""
        for p in (0.0, 0.1, 1.0):
            g = small_world(60, k=4, p=p, seed=7)
            validate_graph(g)
            assert is_connected(g)

    def test_small_world_lattice_at_p_zero(self):
        g = small_world(40, k=6, p=0.0, seed=0)
        assert g.m == 40 * 3  # exact ring lattice: n*k/2 edges
        assert all(g.degree(v) == 6 for v in range(g.n))

    def test_small_world_rewiring_shrinks_diameter(self):
        ring = small_world(200, k=4, p=0.0, seed=1)
        rewired = small_world(200, k=4, p=0.3, seed=1)
        d_ring = bfs_levels(ring, 0)[0].max()
        d_rewired = bfs_levels(rewired, 0)[0].max()
        assert d_rewired < d_ring  # the small-world effect

    def test_small_world_deterministic(self):
        assert small_world(50, k=4, p=0.2, seed=9) == small_world(
            50, k=4, p=0.2, seed=9
        )

    def test_small_world_invalid(self):
        with pytest.raises(ValueError):
            small_world(10, k=3)  # odd k
        with pytest.raises(ValueError):
            small_world(5, k=6)  # n too small
        with pytest.raises(ValueError):
            small_world(20, k=4, p=1.5)

    def test_random_geometric(self):
        g, pts = random_geometric(150, 0.15, seed=2)
        validate_graph(g)
        assert g.n == 150

    def test_random_geometric_too_sparse(self):
        with pytest.raises(ValueError):
            random_geometric(10, 1e-6, seed=0)


class TestPathological:
    def test_figure2_structure(self):
        d = 5
        g = figure2_graph(d)
        validate_graph(g)
        assert g.n % d == 0
        # every vertex sees the two adjacent groups: degree 2d
        assert all(int(x) == 2 * d for x in g.degrees())

    def test_figure2_quadratic_scan(self):
        """Reaching ~3d vertices inspects Ω(d²) arcs (the paper's point)."""
        from repro.preprocess.ball import ball_search

        for d in (4, 8, 16):
            g = figure2_graph(d)
            ball = ball_search(g, 0, 3 * d + 1)
            assert ball.edges_scanned >= d * d

    def test_figure2_invalid(self):
        with pytest.raises(ValueError):
            figure2_graph(0)
        with pytest.raises(ValueError):
            figure2_graph(3, groups=2)

    def test_greedy_bad_tree_shape(self):
        g = greedy_bad_tree(k=3, leaves=10)
        assert g.n == 3 + 1 + 10
        levels, rounds = bfs_levels(g, 0)
        assert rounds == 4  # chain of 3 plus the leaf layer
        assert int(np.sum(levels == 4)) == 10

    def test_greedy_bad_tree_invalid(self):
        with pytest.raises(ValueError):
            greedy_bad_tree(0, 5)
        with pytest.raises(ValueError):
            greedy_bad_tree(2, 0)
