"""Unit tests for SNAP-style edge-list I/O."""

import numpy as np
import pytest

from repro.graphs import (
    from_edge_list,
    load_snap_graph,
    read_edge_list,
    write_edge_list,
)
from repro.graphs.generators import grid_2d
from repro.graphs.weights import random_integer_weights


class TestRoundTrip:
    def test_unweighted(self, tmp_path):
        g = grid_2d(4, 4)
        path = tmp_path / "g.txt"
        write_edge_list(g, path)
        assert read_edge_list(path) == g

    def test_weighted(self, tmp_path):
        g = random_integer_weights(grid_2d(4, 4), seed=0)
        path = tmp_path / "g.txt"
        write_edge_list(g, path)
        back = read_edge_list(path)
        assert back == g

    def test_float_weights(self, tmp_path):
        g = from_edge_list(2, [(0, 1, 2.5)])
        path = tmp_path / "g.txt"
        write_edge_list(g, path)
        assert read_edge_list(path).edge_weight(0, 1) == 2.5

    def test_gzip(self, tmp_path):
        g = grid_2d(3, 3)
        path = tmp_path / "g.txt.gz"
        write_edge_list(g, path)
        assert read_edge_list(path) == g


class TestReading:
    def test_comments_and_blanks_skipped(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# header\n\n0\t1\n# mid\n1\t2\n")
        g = read_edge_list(path)
        assert g.n == 3 and g.m == 2

    def test_directed_input_symmetrized(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1\n1 0\n1 2\n")
        g = read_edge_list(path)
        assert g.m == 2
        assert g.has_edge(2, 1)

    def test_explicit_n(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1\n")
        assert read_edge_list(path, n=10).n == 10

    def test_malformed_line(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0\n")
        with pytest.raises(ValueError):
            read_edge_list(path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# nothing\n")
        g = read_edge_list(path)
        assert g.n == 0 and g.m == 0


class TestLoadSnap:
    def test_restricts_to_largest_component(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1\n1 2\n5 6\n")
        g = load_snap_graph(path)
        assert g.n == 3 and g.m == 2
