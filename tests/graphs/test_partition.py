"""Partitioner registry, both shipped partitioners, and the Partition
record's derived metrics (boundary, edge cut, balance)."""

import numpy as np
import pytest

from repro.graphs import (
    Partition,
    available_partitioners,
    compute_partition,
    register_partitioner,
)
from repro.graphs.build import from_edge_list
from repro.graphs.generators import grid_2d, path_graph, small_world
from repro.graphs.partition import PARTITIONERS

from tests.helpers import random_connected_graph


class TestRegistry:
    def test_both_shipped_partitioners_registered(self):
        assert set(available_partitioners()) >= {"contiguous", "ldd"}

    def test_unknown_partitioner_rejected(self):
        g = path_graph(4)
        with pytest.raises(ValueError, match="unknown partitioner"):
            compute_partition(g, "metis", 2)

    def test_register_and_dispatch(self):
        def halves(graph, n_shards, seed):
            return (np.arange(graph.n) * n_shards) // max(graph.n, 1)

        register_partitioner("halves-test", halves, overwrite=True)
        try:
            part = compute_partition(path_graph(10), "halves-test", 2)
            assert part.method == "halves-test"
            assert part.shard_sizes().tolist() == [5, 5]
            assert part.edge_cut == 1
        finally:
            PARTITIONERS.pop("halves-test", None)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_partitioner("contiguous", lambda g, s, seed: None)

    def test_bad_labels_rejected(self):
        register_partitioner(
            "broken-test", lambda g, s, seed: np.zeros(g.n + 1), overwrite=True
        )
        register_partitioner(
            "out-of-range-test",
            lambda g, s, seed: np.full(g.n, s, dtype=np.int64),
            overwrite=True,
        )
        try:
            with pytest.raises(ValueError, match="shape"):
                compute_partition(path_graph(4), "broken-test", 2)
            with pytest.raises(ValueError, match="outside"):
                compute_partition(path_graph(4), "out-of-range-test", 2)
        finally:
            PARTITIONERS.pop("broken-test", None)
            PARTITIONERS.pop("out-of-range-test", None)

    def test_n_shards_bounds(self):
        g = path_graph(4)
        with pytest.raises(ValueError, match="n_shards"):
            compute_partition(g, "contiguous", 0)
        with pytest.raises(ValueError, match="exceeds"):
            compute_partition(g, "contiguous", 5)


@pytest.mark.parametrize("method", ["contiguous", "ldd"])
class TestPartitioners:
    def test_valid_partition_of_grid(self, method):
        g = grid_2d(8, 9)
        part = compute_partition(g, method, 4, seed=3)
        assert isinstance(part, Partition)
        assert part.labels.shape == (g.n,)
        assert part.n_shards == 4
        assert part.shard_sizes().sum() == g.n
        # every shard non-empty and reasonably balanced on a grid
        assert part.shard_sizes().min() >= 1
        assert part.balance < 2.0

    def test_boundary_is_exactly_cross_arc_tails(self, method):
        g = small_world(80, 4, seed=5)
        part = compute_partition(g, method, 3, seed=1)
        labels = part.labels
        expected = set()
        for u in range(g.n):
            for v in g.neighbors(u):
                if labels[u] != labels[v]:
                    expected.add(u)
        assert set(part.boundary_vertices.tolist()) == expected
        # boundary_of partitions the boundary set by shard
        recombined = np.concatenate(
            [part.boundary_of(s) for s in range(part.n_shards)]
        )
        assert sorted(recombined.tolist()) == sorted(expected)

    def test_edge_cut_counts_undirected_edges(self, method):
        g = grid_2d(6, 6)
        part = compute_partition(g, method, 2, seed=0)
        labels = part.labels
        cut = sum(
            1
            for u, v, _w in g.iter_edges()
            if labels[u] != labels[v]
        )
        assert part.edge_cut == cut

    def test_single_shard_has_no_boundary(self, method):
        g = grid_2d(5, 5)
        part = compute_partition(g, method, 1)
        assert part.n_shards == 1
        assert part.edge_cut == 0
        assert len(part.boundary_vertices) == 0
        assert part.balance == 1.0

    def test_deterministic_per_seed(self, method):
        g = small_world(60, 4, seed=9)
        a = compute_partition(g, method, 3, seed=7)
        b = compute_partition(g, method, 3, seed=7)
        assert np.array_equal(a.labels, b.labels)

    def test_disconnected_graph_fully_labeled(self, method):
        # two components + an isolated vertex: every vertex gets a shard
        g = from_edge_list(7, [(0, 1), (1, 2), (3, 4), (4, 5)])
        part = compute_partition(g, method, 2, seed=2)
        assert part.labels.min() >= 0
        assert part.shard_sizes().sum() == 7


class TestContiguousLocality:
    def test_contiguous_cut_beats_random_labels_on_grid(self):
        """The point of the RCM range partition: far fewer cut edges
        than an arbitrary equal-size labeling."""
        g = grid_2d(12, 12)
        part = compute_partition(g, "contiguous", 4, seed=0)
        rng = np.random.default_rng(0)
        random_labels = rng.permutation(np.arange(g.n) % 4)
        random_cut = sum(
            1
            for u, v, _w in g.iter_edges()
            if random_labels[u] != random_labels[v]
        )
        assert part.edge_cut < random_cut / 2


class TestLddStructure:
    def test_clusters_have_bounded_hop_radius(self):
        """Every vertex was claimed through a BFS wave from some center,
        so intra-cluster hop distances stay small on a bounded-degree
        graph; sanity-check shards are contiguous unions of such balls
        by verifying balance stays bounded by the largest cluster."""
        g = grid_2d(10, 10)
        part = compute_partition(g, "ldd", 4, seed=1)
        assert part.balance < 2.0
        assert part.shard_sizes().min() > 0

    def test_weighted_graph_accepted(self):
        g = random_connected_graph(70, 160, seed=3)
        part = compute_partition(g, "ldd", 3, seed=4)
        assert part.shard_sizes().sum() == g.n
